// Real TCP recognition server: the epoll front (net::RecognizerServer)
// over either Recognizer implementation.
//
//   tcp_server --port 7070 --backend local
//   tcp_server --port 7070 --backend sharded --shards 2
//
// Clients speak the length-prefixed wire protocol (see
// net/wire_protocol.hpp); examples/load_client.cpp is the matching load
// generator. With --max-connections N the server exits once N
// connections have been accepted and fully drained — the CI smoke mode,
// so a scripted client run bounds the server's lifetime without signals.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "net/recognizer_server.hpp"
#include "obs/telemetry.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "serve/local_recognizer.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

struct Backend {
  std::unique_ptr<SpeechModel> model;
  std::unique_ptr<CompiledSpeechModel> compiled;  // local only
  std::unique_ptr<serve::Recognizer> recognizer;
  serve::ShardedEngine* sharded = nullptr;  // owned by `recognizer`
};

/// An untrained BSP-pruned model: this example demonstrates transport,
/// not accuracy (same policy as streaming_server.cpp).
Backend build_backend(const std::string& kind, std::size_t hidden,
                      std::size_t shards, obs::Telemetry* telemetry) {
  Backend backend;
  Rng rng(2024);
  backend.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  backend.model->init(rng);
  std::map<std::string, BlockMask> masks;
  ParamSet params;
  backend.model->register_params(params);
  for (const std::string& name : backend.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, 0.25);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }
  CompilerOptions options;
  options.format = SparseFormat::kBspc;

  if (kind == "sharded") {
    serve::ShardConfig config;
    config.shards = shards;
    config.engine.telemetry = telemetry;
    auto engine = std::make_unique<serve::ShardedEngine>(
        *backend.model, masks, options, config);
    engine->start();  // pump threads serve; the epoll loop only waits
    backend.sharded = engine.get();
    backend.recognizer = std::move(engine);
  } else {
    backend.compiled = std::make_unique<CompiledSpeechModel>(
        *backend.model, masks, options, nullptr);
    runtime::EngineConfig engine_config;
    engine_config.telemetry = telemetry;
    backend.recognizer = std::make_unique<serve::LocalRecognizer>(
        *backend.compiled, engine_config);
  }
  return backend;
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("port", "0", "TCP port to bind (0 = ephemeral, printed)");
  cli.add_flag("backend", "local", "recognizer behind the front: "
                                   "local | sharded");
  cli.add_flag("shards", "2", "engine replicas (backend = sharded)");
  cli.add_flag("hidden", "64", "GRU hidden size of the served model");
  cli.add_flag("max-connections", "0",
               "exit once this many connections were accepted and "
               "drained (0 = serve forever)");
  cli.add_flag("metrics-port", "-1",
               "HTTP port serving GET /metrics and /metrics.json "
               "(0 = ephemeral, printed; -1 = observability off)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help("tcp_server").c_str());
    return 1;
  }
  const std::string backend_kind = cli.get_string("backend");
  const std::size_t hidden = static_cast<std::size_t>(cli.get_int("hidden"));
  const std::size_t shards = static_cast<std::size_t>(cli.get_int("shards"));
  const std::uint64_t max_connections =
      static_cast<std::uint64_t>(cli.get_int("max-connections"));

  const std::int64_t metrics_port = cli.get_int("metrics-port");

  // Must outlive the backend AND the server (both hold pointers into it).
  std::unique_ptr<obs::Telemetry> telemetry;
  if (metrics_port >= 0) telemetry = std::make_unique<obs::Telemetry>();

  Backend backend =
      build_backend(backend_kind, hidden, shards, telemetry.get());
  net::ServerConfig config;
  config.port = static_cast<std::uint16_t>(cli.get_int("port"));
  config.drive_recognizer = backend.sharded == nullptr;
  config.telemetry = telemetry.get();
  if (metrics_port >= 0) {
    config.metrics_port = static_cast<std::uint16_t>(metrics_port);
  }
  net::RecognizerServer server(*backend.recognizer, config);
  server.start();
  std::printf("tcp_server: backend=%s hidden=%zu listening on 127.0.0.1:%u\n",
              backend_kind.c_str(), hidden, server.port());
  if (telemetry != nullptr) {
    std::printf("tcp_server: metrics on http://127.0.0.1:%u/metrics\n",
                server.metrics_port());
  }
  std::fflush(stdout);

  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (max_connections > 0 &&
        server.accepted_total() >= max_connections &&
        server.connection_count() == 0) {
      break;
    }
  }
  server.stop();
  if (backend.sharded != nullptr) backend.sharded->stop();

  const serve::GlobalStats stats = backend.recognizer->stats();
  std::printf(
      "tcp_server: served %llu connections, %zu frames in %zu steps "
      "(%.0f frames/s)\n",
      static_cast<unsigned long long>(server.accepted_total()),
      stats.merged.frames_processed, stats.merged.steps,
      stats.merged.frames_per_second());
  return 0;
}
