// Exports synthesized corpus audio as WAV files with transcripts — lets
// you listen to what the MFCC front end actually consumes.
//
// Flags: --count (default 3), --out-dir (default "."), --seed.
#include <cstdio>

#include "speech/corpus.hpp"
#include "speech/phones.hpp"
#include "speech/synth.hpp"
#include "speech/wav.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace rtmobile;
  CliParser cli;
  cli.add_flag("count", "3", "number of utterances to export");
  cli.add_flag("out-dir", ".", "output directory (must exist)");
  cli.add_flag("seed", "7", "corpus seed");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help(argv[0]).c_str());
    return 1;
  }
  const auto count = static_cast<std::size_t>(cli.get_int("count"));
  const std::string out_dir = cli.get_string("out-dir");

  speech::CorpusConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const speech::SyntheticTimit generator(config);
  const speech::Synthesizer synth;
  Rng rng(config.seed);

  const auto& phones = speech::surface_phones();
  for (std::size_t i = 0; i < count; ++i) {
    const auto sequence = generator.sample_surface_sequence(rng);
    // 80-160 ms per phone at 16 kHz.
    std::vector<std::size_t> durations(sequence.size());
    for (auto& d : durations) d = 1280 + rng.next_below(1280);
    const auto waveform = synth.render_sequence(sequence, durations, rng);

    const std::string path =
        out_dir + "/utterance_" + std::to_string(i) + ".wav";
    speech::save_wav(path, waveform,
                     static_cast<std::uint32_t>(
                         synth.config().sample_rate_hz));
    std::printf("%s  (%.2f s):", path.c_str(),
                static_cast<double>(waveform.size()) /
                    synth.config().sample_rate_hz);
    for (const std::size_t p : sequence) {
      std::printf(" %.*s", static_cast<int>(phones[p].name.size()),
                  phones[p].name.data());
    }
    std::printf("\n");
  }
  return 0;
}
