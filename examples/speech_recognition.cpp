// End-to-end speech recognition: the paper's full workflow with knobs.
//
// Pipeline: synthetic corpus (optionally through the waveform + MFCC front
// end) -> dense GRU training -> PER -> BSP pruning at a chosen compression
// -> masked retraining -> compiled inference + timing.
//
// Flags:
//   --hidden         GRU width (default 64)
//   --utterances     training utterances (default 48)
//   --compression    column compression target (default 10)
//   --row-rate       row compression target (default 1 = off)
//   --waveform       use the waveform+MFCC front end (slower, realistic)
//   --threads        executor threads (default 4)
#include <cstdio>

#include "core/rtmobile.hpp"
#include "hw/timer.hpp"
#include "speech/corpus.hpp"
#include "speech/per.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace rtmobile;
  CliParser cli;
  cli.add_flag("hidden", "64", "GRU hidden width");
  cli.add_flag("utterances", "48", "number of training utterances");
  cli.add_flag("compression", "10", "column compression target (x)");
  cli.add_flag("row-rate", "1", "row compression target (x)");
  cli.add_flag("threads", "4", "executor threads");
  cli.add_flag("epochs", "10", "dense training epochs");
  cli.add_switch("waveform", "synthesize audio and extract real MFCCs");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help(argv[0]).c_str());
    return 1;
  }

  // ---- corpus ------------------------------------------------------------
  speech::CorpusConfig corpus_config;
  corpus_config.num_train_utterances =
      static_cast<std::size_t>(cli.get_int("utterances"));
  corpus_config.num_test_utterances =
      std::max<std::size_t>(8, corpus_config.num_train_utterances / 4);
  corpus_config.mode = cli.get_switch("waveform")
                           ? speech::FeatureMode::kWaveform
                           : speech::FeatureMode::kDirect;
  corpus_config.seed = 99;
  std::printf("generating corpus (%s features)...\n",
              cli.get_switch("waveform") ? "waveform+MFCC" : "direct");
  const speech::Corpus corpus =
      speech::SyntheticTimit(corpus_config).generate();

  // ---- dense training ----------------------------------------------------
  ModelConfig model_config;
  model_config.input_dim = corpus.feature_dim;
  model_config.hidden_dim = static_cast<std::size_t>(cli.get_int("hidden"));
  model_config.num_layers = 2;
  model_config.num_classes = corpus.num_classes;
  SpeechModel model(model_config);
  Rng rng(1);
  model.init(rng);
  std::printf("training dense GRU (2x%zu, %zu params)...\n",
              model_config.hidden_dim, model.param_count());
  {
    Trainer trainer(model);
    Adam adam(4e-3);
    TrainConfig train_config;
    train_config.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    train_config.lr_decay = 0.92;
    WallTimer timer;
    const double loss = trainer.train(train_config, corpus.train, adam, rng);
    std::printf("  final loss %.4f (%.1f s)\n", loss,
                timer.elapsed_us() / 1e6);
  }
  const EvalResult dense_eval = Trainer::evaluate(model, corpus.test);
  const double dense_per = speech::corpus_per(model, corpus.test);
  std::printf("dense: frame accuracy %.1f%%, PER %.2f%%\n",
              dense_eval.frame_accuracy * 100.0, dense_per);

  // ---- BSP pruning + compilation ------------------------------------------
  const double compression = cli.get_double("compression");
  const double row_rate = cli.get_double("row-rate");
  RtMobileConfig config;
  config.bsp.num_r = 8;
  config.bsp.num_c = 8;
  config.bsp.col_keep_fraction = 1.0 / compression;
  config.bsp.row_keep_fraction = 1.0 / row_rate;
  config.bsp.admm_rounds_step1 = 2;
  config.bsp.admm_rounds_step2 = row_rate > 1.0 ? 1 : 0;
  config.bsp.retrain_epochs = 3;
  config.bsp.prune_fc = false;
  config.compiler.threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  std::printf("BSP pruning (%.0fx columns, %.0fx rows) + compiling...\n",
              compression, row_rate);
  const RtMobile framework(config);
  const Deployment deployment = framework.deploy(model, corpus.train, rng);
  const double pruned_per = speech::corpus_per(model, corpus.test);
  std::printf("pruned: %.1fx overall compression, PER %.2f%% (%+.2f)\n",
              deployment.pruning.stats.overall_rate(), pruned_per,
              pruned_per - dense_per);

  // ---- compiled inference timing -------------------------------------------
  WallTimer timer;
  std::size_t frames = 0;
  speech::EditStats edits;
  for (const auto& utt : corpus.test) {
    const Matrix logits = deployment.compiled->infer(utt.features);
    frames += logits.rows();
    const auto decoded = speech::greedy_decode(logits);
    edits += speech::align({utt.phones.data(), utt.phones.size()},
                           {decoded.data(), decoded.size()});
  }
  const double us_per_frame =
      timer.elapsed_us() / static_cast<double>(frames);
  std::printf(
      "compiled executor: PER %.2f%%, %.1f us/frame, real-time factor "
      "%.4f (10 ms frames)\n",
      edits.rate() * 100.0, us_per_frame, us_per_frame / 10000.0);
  std::printf("compiled weight storage: %.1f KB\n",
              static_cast<double>(
                  deployment.compiled->total_memory_bytes()) /
                  1024.0);
  return 0;
}
