// Auto-tuner walkthrough: how the compiler searches block size / thread
// count / LRE for one weight matrix, and what the accuracy-performance
// trade-off looks like.
//
// Flags:
//   --rows/--cols       matrix shape (default 512 x 512)
//   --compression       column compression target (default 16)
//   --floor             retained-energy accuracy floor (default 0.3)
#include <cstdio>

#include "compiler/auto_tuner.hpp"
#include "tensor/ops.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmobile;
  CliParser cli;
  cli.add_flag("rows", "512", "matrix rows");
  cli.add_flag("cols", "512", "matrix cols");
  cli.add_flag("compression", "16", "column compression target");
  cli.add_flag("floor", "0.1", "retained-energy accuracy floor");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help(argv[0]).c_str());
    return 1;
  }

  const auto rows = static_cast<std::size_t>(cli.get_int("rows"));
  const auto cols = static_cast<std::size_t>(cli.get_int("cols"));

  Rng rng(2718);
  Matrix weights(rows, cols);
  fill_normal(weights.span(), rng, 1.0F);

  TunerConfig config;
  config.num_c_candidates = {2, 4, 8, 16, 32};
  config.thread_candidates = {1, 2, 4};
  config.num_r = std::min<std::size_t>(32, rows);
  config.col_keep_fraction = 1.0 / cli.get_double("compression");
  config.min_energy_retained = cli.get_double("floor");

  std::printf("tuning %zux%zu at %.0fx column compression...\n\n", rows,
              cols, cli.get_double("compression"));
  const TunerResult result = tune_layer(weights, config);

  Table table({"num_c", "threads", "time us", "energy", "note"});
  for (const TunerCandidate& candidate : result.all) {
    const bool best = candidate.num_c == result.best.num_c &&
                      candidate.threads == result.best.threads;
    const bool feasible =
        candidate.energy_retained >= config.min_energy_retained;
    table.add_row({std::to_string(candidate.num_c),
                   std::to_string(candidate.threads),
                   format_double(candidate.time_us, 1),
                   format_double(candidate.energy_retained, 4),
                   best ? "<== selected"
                        : (feasible ? "" : "below accuracy floor")});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "selected: num_c=%zu threads=%zu lre=%s (%.1f us, energy %.4f)\n",
      result.best.num_c, result.best.threads,
      result.best.lre ? "on" : "off", result.best.time_us,
      result.best.energy_retained);
  return 0;
}
