// Simulated sharded recognition service on the unified Recognizer API.
//
// N clients speak synthesized phone sequences. Each client opens a
// stream against the ShardedEngine — the same serve::Recognizer surface
// LocalRecognizer speaks, so the submission loop below is byte-for-byte
// the client code a single-engine deployment would run. The router
// places each stream (round-robin, least-loaded, or session-hash), then
// every client delivers audio in 100 ms chunks from its own producer
// thread through the shard's lock-free-ish MPSC ingress — no client
// ever touches an engine lock. One pump thread per shard applies
// arrivals, steps its replica, and flushes each stream's decoder events
// into its handle's mailbox; a consumer thread concurrently drains all
// streams' hypothesis events through the drain-all poll. When all
// clients hang up, the engine stops gracefully, finals (bit-identical
// to batch greedy_decode) print per client, and the per-shard plus
// aggregated fleet stats close the report.
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "speech/phones.hpp"
#include "speech/synth.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace rtmobile {
namespace {

/// An untrained but BSP-pruned model: the sharded serving plumbing is
/// what this example demonstrates, not recognition accuracy.
struct Service {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
};

Service build_service(std::size_t hidden) {
  Service service;
  Rng rng(2024);
  service.model =
      std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  service.model->init(rng);

  ParamSet params;
  service.model->register_params(params);
  for (const std::string& name : service.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, 0.25);
    mask.apply(w);
    service.masks.emplace(name, std::move(mask));
  }
  service.options.format = SparseFormat::kBspc;
  return service;
}

/// A random phone sequence rendered to a 16 kHz waveform.
std::vector<float> client_utterance(std::size_t num_phones, Rng& rng) {
  const std::size_t phone_count = speech::surface_phones().size();
  std::vector<std::size_t> phones(num_phones);
  std::vector<std::size_t> durations(num_phones);
  for (std::size_t i = 0; i < num_phones; ++i) {
    phones[i] = static_cast<std::size_t>(
        rng.uniform(0.0F, static_cast<float>(phone_count) - 0.001F));
    durations[i] =
        static_cast<std::size_t>(rng.uniform(800.0F, 2400.0F));  // 50-150 ms
  }
  speech::Synthesizer synth;
  return synth.render_sequence(phones, durations, rng);
}

std::string phone_string(std::span<const std::uint16_t> ids) {
  std::string out;
  const auto& names = speech::surface_phones();
  for (const std::uint16_t id : ids) {
    if (!out.empty()) out += ' ';
    out += id < names.size() ? names[id].name : "?";
  }
  return out;
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("clients", "6", "number of concurrent client streams");
  cli.add_flag("phones", "12", "phones per client utterance");
  cli.add_flag("hidden", "128", "GRU hidden size of the served model");
  cli.add_flag("shards", "2", "engine replicas");
  cli.add_flag("threads-per-shard", "1", "pool width per shard");
  cli.add_flag("policy", "least-loaded",
               "round-robin | least-loaded | session-hash");
  cli.add_switch("pin", "pin each shard to its disjoint core range");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 cli.help("sharded_server").c_str());
    return 1;
  }
  const std::size_t clients =
      static_cast<std::size_t>(cli.get_int("clients"));
  const std::size_t phones = static_cast<std::size_t>(cli.get_int("phones"));
  const std::size_t hidden = static_cast<std::size_t>(cli.get_int("hidden"));

  serve::ShardConfig config;
  config.shards = static_cast<std::size_t>(cli.get_int("shards"));
  config.threads_per_shard =
      static_cast<std::size_t>(cli.get_int("threads-per-shard"));
  config.policy = serve::parse_route_policy(cli.get_string("policy"));
  config.pin_cores = cli.get_switch("pin");

  std::printf(
      "sharded_server: %zu clients over %zu shards (%zu threads each), "
      "policy=%s%s, hidden=%zu\n\n",
      clients, config.shards, config.threads_per_shard,
      to_string(config.policy), config.pin_cores ? ", pinned" : "", hidden);

  const Service service = build_service(hidden);
  serve::ShardedEngine engine(*service.model, service.masks,
                              service.options, config);

  Rng rng(7);
  std::vector<std::vector<float>> audio;
  std::vector<serve::StreamHandle> handles;
  for (std::size_t c = 0; c < clients; ++c) {
    audio.push_back(client_utterance(phones, rng));
    serve::StreamConfig stream;
    stream.session_key = c;  // sticky under the session-hash policy
    handles.push_back(engine.open_stream(stream));
  }

  engine.start();

  // Each client is its own producer thread delivering 100 ms chunks and
  // honoring ingress backpressure — the shape of real packet arrival.
  std::vector<std::thread> producers;
  for (std::size_t c = 0; c < clients; ++c) {
    producers.emplace_back([&engine, &audio, &handles, c] {
      constexpr std::size_t kChunk = 1600;
      const std::vector<float>& wave = audio[c];
      for (std::size_t pos = 0; pos < wave.size(); pos += kChunk) {
        const std::size_t n = std::min(kChunk, wave.size() - pos);
        while (!engine.submit_audio(
            handles[c], std::span<const float>(wave).subspan(pos, n))) {
          std::this_thread::yield();
        }
      }
      while (!engine.finish_stream(handles[c])) std::this_thread::yield();
    });
  }

  // One consumer drains every stream's hypothesis events while the
  // pumps serve — partials flow out mid-utterance, concurrently with
  // submission, through the drain-all poll.
  std::unordered_map<std::uint64_t, std::vector<std::uint16_t>> hypotheses;
  std::unordered_map<std::uint64_t, bool> finals_seen;
  std::size_t partial_updates = 0;
  std::thread consumer([&] {
    std::vector<serve::RecognizerEvent> events;
    std::size_t finals = 0;
    while (finals < clients) {
      events.clear();
      if (engine.poll_events(events) == 0) {
        std::this_thread::yield();
        continue;
      }
      for (const serve::RecognizerEvent& tagged : events) {
        std::vector<std::uint16_t>& hyp = hypotheses[tagged.stream.id];
        hyp.insert(hyp.end(), tagged.event.stable.begin(),
                   tagged.event.stable.end());
        partial_updates += tagged.event.partial.empty() ? 0 : 1;
        if (tagged.event.is_final && !finals_seen[tagged.stream.id]) {
          finals_seen[tagged.stream.id] = true;
          ++finals;
        }
      }
    }
  });

  for (std::thread& t : producers) t.join();
  consumer.join();
  engine.stop();  // graceful: everything submitted has been served

  for (std::size_t c = 0; c < clients; ++c) {
    const Matrix logits = engine.stream_logits(handles[c]);
    std::printf("client %zu (shard %zu): %4zu frames -> %s\n", c,
                engine.stream_shard(handles[c]), logits.rows(),
                phone_string(hypotheses[handles[c].id]).c_str());
    // Results read: release the session so the shard does not hold
    // finished streams forever.
    if (!engine.close_stream(handles[c])) {
      std::fprintf(stderr, "close_stream(%zu) backpressured\n", c);
    }
  }
  std::printf("\n%zu partial-hypothesis updates streamed mid-utterance\n",
              partial_updates);

  std::printf("\nper-shard:\n");
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    const runtime::RuntimeStats& stats = engine.shard_stats(s);
    std::printf(
        "  shard %zu: %5zu frames in %4zu steps (mean batch %.1f), "
        "p50 %.1f us, p95 %.1f us, %.0f frames/s\n",
        s, stats.frames_processed, stats.steps, stats.mean_batch(),
        stats.step_latency.p50_us(), stats.step_latency.p95_us(),
        stats.frames_per_second());
  }

  const serve::GlobalStats global = engine.stats();
  std::printf(
      "\nfleet: %zu frames over %zu shards\n"
      "merged step latency p50 %.1f us, p95 %.1f us\n"
      "aggregate capacity %.0f frames/s, wall throughput %.0f frames/s\n"
      "wall real-time factor %.1fx\n",
      global.merged.frames_processed, global.shards,
      global.merged.step_latency.p50_us(),
      global.merged.step_latency.p95_us(), global.aggregate_fps,
      global.wall_fps(), global.wall_real_time_factor());
  return 0;
}
