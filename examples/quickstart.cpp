// Quickstart: the whole RTMobile pipeline in one page.
//
//   1. generate a (synthetic) speech corpus
//   2. train a dense GRU phone recognizer
//   3. BSP-prune it 10x with ADMM + masked retraining
//   4. compile it (BSPC + reorder + LRE, multithreaded)
//   5. run real-time-style inference with the compiled model
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/rtmobile.hpp"
#include "hw/timer.hpp"
#include "speech/corpus.hpp"
#include "speech/per.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

int main() {
  using namespace rtmobile;

  // 1. A small synthetic TIMIT-style corpus (39 phone classes).
  speech::CorpusConfig corpus_config;
  corpus_config.num_train_utterances = 32;
  corpus_config.num_test_utterances = 8;
  corpus_config.seed = 1;
  const speech::Corpus corpus =
      speech::SyntheticTimit(corpus_config).generate();
  std::printf("corpus: %zu train / %zu test utterances, %zu-dim features\n",
              corpus.train.size(), corpus.test.size(), corpus.feature_dim);

  // 2. Train a dense 2-layer GRU.
  ModelConfig model_config;
  model_config.input_dim = corpus.feature_dim;
  model_config.hidden_dim = 64;
  model_config.num_layers = 2;
  model_config.num_classes = corpus.num_classes;
  SpeechModel model(model_config);
  Rng rng(42);
  model.init(rng);
  {
    Trainer trainer(model);
    Adam adam(4e-3);
    TrainConfig train_config;
    train_config.epochs = 8;
    train_config.lr_decay = 0.9;
    trainer.train(train_config, corpus.train, adam, rng);
  }
  const double dense_per = speech::corpus_per(model, corpus.test);
  std::printf("dense model: %zu params, PER %.2f%%\n",
              model.nonzero_param_count(), dense_per);

  // 3 + 4. BSP pruning (10x) and compilation, via the RtMobile facade.
  RtMobileConfig config;
  config.bsp.num_r = 8;
  config.bsp.num_c = 8;
  config.bsp.col_keep_fraction = 0.1;   // 10x column compression
  config.bsp.row_keep_fraction = 1.0;   // no row pruning at 10x (Table I)
  config.bsp.admm_rounds_step1 = 2;
  config.bsp.retrain_epochs = 3;
  config.bsp.prune_fc = false;
  config.compiler.format = SparseFormat::kBspc;
  config.compiler.threads = 4;
  const RtMobile framework(config);
  const Deployment deployment = framework.deploy(model, corpus.train, rng);
  std::printf("BSP pruning: %.1fx compression (%zu -> %zu weights)\n",
              deployment.pruning.stats.overall_rate(),
              deployment.pruning.stats.total_weights,
              deployment.pruning.stats.kept_weights);

  // 5. Inference with the compiled model.
  const double pruned_per = speech::corpus_per(model, corpus.test);
  WallTimer timer;
  std::size_t frames = 0;
  for (const auto& utt : corpus.test) {
    const Matrix logits = deployment.compiled->infer(utt.features);
    frames += logits.rows();
  }
  const double us_per_frame = timer.elapsed_us() / static_cast<double>(frames);
  std::printf("pruned model: PER %.2f%% (degradation %+.2f)\n", pruned_per,
              pruned_per - dense_per);
  std::printf("compiled inference: %.1f us/frame (%zu frames), %.2f KB "
              "weights (fp32)\n",
              us_per_frame, frames,
              static_cast<double>(
                  deployment.compiled->total_memory_bytes()) /
                  1024.0);
  std::printf("real-time factor vs 10 ms frame shift: %.4f\n",
              us_per_frame / 10000.0);
  return 0;
}
