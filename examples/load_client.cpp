// Open-loop load generator for the TCP recognition front.
//
//   tcp_server --port 7070 &
//   load_client --port 7070 --connections 16 --seconds 2
//
// Each connection is one stream: open, ship audio in chunks, finish,
// read events until the final hypothesis. A dedicated reader thread per
// connection timestamps the first partial as it arrives, so the reported
// wire-to-first-partial latency includes server compute and both socket
// hops — not just the send side. With --realtime chunks are paced at the
// audio rate (one chunk per chunk-ms of wall clock); the default pushes
// audio as fast as TCP accepts it, which is how the server's ingress
// backpressure gets exercised.
//
// Exit status is nonzero when any stream fails in an untyped way, so CI
// can smoke-test the whole transport with one pipeline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire_client.hpp"
#include "net/wire_protocol.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

constexpr double kSampleRateHz = 16000.0;  // MfccConfig default

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ConnResult {
  bool connected = false;
  bool rejected = false;       // typed OPEN-time refusal
  bool failed = false;         // anything untyped (protocol/socket)
  bool got_final = false;
  /// The server hung up (or shed us) mid-stream — retryable: the whole
  /// stream is re-run from open on a fresh connection.
  bool server_closed = false;
  double first_partial_ms = -1.0;
  std::size_t events = 0;
  net::WireError error = net::WireError::kProtocol;
};

struct LoadConfig {
  std::string host;
  std::uint16_t port = 0;
  std::size_t seconds = 2;
  std::size_t chunk_ms = 100;
  double budget = 0.0;
  bool realtime = false;
};

/// Drives one full stream over one connection.
ConnResult run_connection(const LoadConfig& config, std::size_t index) {
  ConnResult result;
  const auto chunk_samples = static_cast<std::size_t>(
      kSampleRateHz * static_cast<double>(config.chunk_ms) / 1000.0);
  const auto total_samples =
      static_cast<std::size_t>(kSampleRateHz) * config.seconds;

  // Synthetic program material; content is irrelevant to transport load.
  Rng rng(7000 + index);
  std::vector<float> wave(total_samples);
  for (float& s : wave) s = 0.25F * rng.normal();

  try {
    net::WireClient client;
    client.connect(config.host, config.port);
    result.connected = true;

    net::OpenRequest request;
    request.deadline_budget_seconds = config.budget;
    request.session_key = index;
    // Admission-path congestion (typed backpressure, or the server
    // closing the socket mid-handshake) is ridden out with reconnects
    // under capped exponential backoff instead of failing the stream.
    net::OpenRetryPolicy retry;
    retry.jitter_seed = 9000 + index;
    net::WireError open_error = net::WireError::kProtocol;
    if (!client.open_with_retry(request, retry, &open_error)) {
      result.rejected = open_error == net::WireError::kRejectedOverBudget ||
                        open_error == net::WireError::kBackpressureOverflow;
      result.failed = !result.rejected;
      result.error = open_error;
      return result;
    }

    const Clock::time_point first_audio = Clock::now();
    std::thread reader([&client, &result, first_audio] {
      try {
        for (;;) {
          const auto message = client.read_message();
          if (!message) {  // server closed before the final event
            result.server_closed = true;
            return;
          }
          if (message->type == net::FrameType::kError) {
            result.error = message->error;
            // A typed timeout/backpressure shed is the server defending
            // itself, not a transport bug — retry, don't fail.
            if (message->error == net::WireError::kBackpressureOverflow ||
                message->error == net::WireError::kTimeout) {
              result.server_closed = true;
            } else {
              result.failed = true;
            }
            return;
          }
          ++result.events;
          if (result.first_partial_ms < 0.0) {
            result.first_partial_ms = ms_since(first_audio);
          }
          if (message->event.is_final) {
            result.got_final = true;
            return;
          }
        }
      } catch (const std::exception&) {
        result.failed = true;
      }
    });

    for (std::size_t offset = 0; offset < wave.size();
         offset += chunk_samples) {
      const std::size_t n = std::min(chunk_samples, wave.size() - offset);
      client.send_audio({wave.data() + offset, n});
      if (config.realtime) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config.chunk_ms));
      }
    }
    client.send_finish();
    reader.join();
    if (result.got_final) client.send_close();
    client.disconnect();
  } catch (const std::exception& e) {
    if (result.connected) {
      // Sends to a connection the server already closed surface as
      // socket errors; same retryable shed as a mid-read close.
      result.server_closed = true;
    } else {
      std::fprintf(stderr, "connection %zu: %s\n", index, e.what());
      result.failed = true;
    }
  }
  return result;
}

/// One worker: re-runs the stream after server-initiated sheds with
/// capped exponential backoff, so transient overload does not turn a
/// load run into a nonzero exit.
ConnResult run_with_reconnect(const LoadConfig& config, std::size_t index) {
  Rng jitter(11000 + index);
  std::chrono::milliseconds backoff{20};
  constexpr int kMaxRuns = 4;
  ConnResult result;
  for (int run = 0; run < kMaxRuns; ++run) {
    result = run_connection(config, index);
    if (!result.server_closed || result.got_final) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<std::int64_t>(
            jitter.uniform(1.0F, static_cast<float>(backoff.count())))));
    backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
  }
  return result;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("host", "127.0.0.1", "server address");
  cli.add_flag("port", "0", "server port (required)");
  cli.add_flag("connections", "8", "concurrent streams to open");
  cli.add_flag("seconds", "2", "audio per stream (seconds)");
  cli.add_flag("chunk-ms", "100", "audio chunk size (milliseconds)");
  cli.add_flag("budget", "0", "per-stream deadline budget in seconds "
                              "(0 = none; nonzero arms OPEN admission)");
  cli.add_switch("realtime", "pace chunks at the audio rate instead of "
                             "pushing as fast as TCP accepts");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help("load_client").c_str());
    return 1;
  }

  LoadConfig config;
  config.host = cli.get_string("host");
  config.port = static_cast<std::uint16_t>(cli.get_int("port"));
  config.seconds = static_cast<std::size_t>(cli.get_int("seconds"));
  config.chunk_ms = static_cast<std::size_t>(cli.get_int("chunk-ms"));
  config.budget = cli.get_double("budget");
  config.realtime = cli.get_switch("realtime");
  const auto connections =
      static_cast<std::size_t>(cli.get_int("connections"));
  if (config.port == 0) {
    std::fprintf(stderr, "--port is required\n%s",
                 cli.help("load_client").c_str());
    return 1;
  }

  std::vector<ConnResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  const Clock::time_point wall_start = Clock::now();
  for (std::size_t i = 0; i < connections; ++i) {
    workers.emplace_back([&config, &results, i] {
      results[i] = run_with_reconnect(config, i);
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ms = ms_since(wall_start);

  std::size_t finals = 0;
  std::size_t rejected = 0;
  std::size_t failed = 0;
  std::size_t shed = 0;  // server-closed streams whose retries ran out
  std::vector<double> first_partial;
  for (const ConnResult& r : results) {
    finals += r.got_final ? 1 : 0;
    rejected += r.rejected ? 1 : 0;
    failed += r.failed ? 1 : 0;
    shed += (r.server_closed && !r.got_final) ? 1 : 0;
    if (r.first_partial_ms >= 0.0) first_partial.push_back(r.first_partial_ms);
  }

  std::printf(
      "load_client: %zu connections in %.0f ms -> %zu finals, "
      "%zu rejected (typed), %zu shed (retries exhausted), %zu failed\n",
      connections, wall_ms, finals, rejected, shed, failed);
  if (!first_partial.empty()) {
    std::printf("wire-to-first-partial: p50 %.2f ms, p99 %.2f ms (%zu "
                "streams)\n",
                percentile(first_partial, 0.50),
                percentile(first_partial, 0.99), first_partial.size());
  }
  // Typed rejections are the admission control working as designed, not
  // a transport failure; anything untyped fails the run.
  return failed == 0 && finals + rejected == connections ? 0 : 1;
}
