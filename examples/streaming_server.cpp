// Simulated streaming recognition server on the unified Recognizer API.
//
// N clients speak synthesized phone sequences; their audio arrives in
// 100 ms chunks, interleaved across clients the way packets arrive at a
// real service. The server is a LocalRecognizer — one InferenceEngine
// behind the same serve::Recognizer surface the sharded fleet speaks, so
// this client loop runs unmodified against either. After every arrival
// round the recognizer drains and hypothesis events are polled: each
// stream's partial hypotheses print as they evolve mid-utterance
// (stable prefix | unstable tail), and the final hypotheses — which are
// bit-identical to batch greedy_decode of the stream's logits — print
// with the serving stats at the end.
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "serve/local_recognizer.hpp"
#include "sparse/block_mask.hpp"
#include "speech/phones.hpp"
#include "speech/synth.hpp"
#include "train/projection.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace rtmobile {
namespace {

/// An untrained but BSP-pruned compiled model: the serving plumbing is
/// what this example demonstrates, not recognition accuracy.
struct Server {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<SpeechModel> model;
  std::unique_ptr<CompiledSpeechModel> compiled;
};

Server build_server(std::size_t hidden, std::size_t threads) {
  Server server;
  Rng rng(2024);
  server.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  server.model->init(rng);

  std::map<std::string, BlockMask> masks;
  ParamSet params;
  server.model->register_params(params);
  for (const std::string& name : server.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 8, 4, 0.25);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }

  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.threads = threads;
  if (threads > 1) server.pool = std::make_unique<ThreadPool>(threads);
  server.compiled = std::make_unique<CompiledSpeechModel>(
      *server.model, masks, options, server.pool.get());
  return server;
}

/// A random phone sequence rendered to a 16 kHz waveform.
std::vector<float> client_utterance(std::size_t num_phones, Rng& rng) {
  const std::size_t phone_count = speech::surface_phones().size();
  std::vector<std::size_t> phones(num_phones);
  std::vector<std::size_t> durations(num_phones);
  for (std::size_t i = 0; i < num_phones; ++i) {
    phones[i] = static_cast<std::size_t>(
        rng.uniform(0.0F, static_cast<float>(phone_count) - 0.001F));
    durations[i] =
        static_cast<std::size_t>(rng.uniform(800.0F, 2400.0F));  // 50-150 ms
  }
  speech::Synthesizer synth;
  return synth.render_sequence(phones, durations, rng);
}

std::string phone_string(std::span<const std::uint16_t> ids) {
  std::string out;
  const auto& names = speech::surface_phones();
  for (const std::uint16_t id : ids) {
    if (!out.empty()) out += ' ';
    out += id < names.size() ? names[id].name : "?";
  }
  return out;
}

}  // namespace
}  // namespace rtmobile

int main(int argc, char** argv) {
  using namespace rtmobile;

  CliParser cli;
  cli.add_flag("clients", "6", "number of concurrent client streams");
  cli.add_flag("phones", "12", "phones per client utterance");
  cli.add_flag("hidden", "128", "GRU hidden size of the served model");
  cli.add_flag("threads", std::to_string(ThreadPool::default_thread_count()),
               "thread pool size");
  cli.add_flag("watch", "0", "client whose partial hypotheses print live");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 cli.help("streaming_server").c_str());
    return 1;
  }
  const std::size_t clients =
      static_cast<std::size_t>(cli.get_int("clients"));
  const std::size_t phones = static_cast<std::size_t>(cli.get_int("phones"));
  const std::size_t hidden = static_cast<std::size_t>(cli.get_int("hidden"));
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  const std::size_t watch = static_cast<std::size_t>(cli.get_int("watch"));

  std::printf("streaming_server: %zu clients, hidden=%zu, threads=%zu\n\n",
              clients, hidden, threads);
  Server server = build_server(hidden, threads);
  serve::LocalRecognizer recognizer(*server.compiled);

  Rng rng(7);
  std::vector<std::vector<float>> audio;
  std::vector<serve::StreamHandle> handles;
  std::vector<std::vector<std::uint16_t>> hypotheses(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    handles.push_back(recognizer.open_stream());  // greedy decode default
    audio.push_back(client_utterance(phones, rng));
  }

  // Interleaved arrival: every round each live client delivers 100 ms,
  // the recognizer serves what is ready, and hypothesis events stream
  // out. The watched client's partials print as they evolve.
  constexpr std::size_t kChunk = 1600;
  std::vector<std::size_t> positions(clients, 0);
  std::vector<speech::StreamEvent> events;
  bool arriving = true;
  while (arriving) {
    arriving = false;
    for (std::size_t c = 0; c < clients; ++c) {
      if (positions[c] >= audio[c].size()) continue;
      const std::size_t n =
          std::min(kChunk, audio[c].size() - positions[c]);
      (void)recognizer.submit_audio(
          handles[c],
          std::span<const float>(audio[c]).subspan(positions[c], n));
      positions[c] += n;
      if (positions[c] >= audio[c].size()) {
        (void)recognizer.finish_stream(handles[c]);
      }
      arriving = arriving || positions[c] < audio[c].size();
    }
    recognizer.drain();  // recognition overlaps with arrival
    for (std::size_t c = 0; c < clients; ++c) {
      events.clear();
      recognizer.poll_events(handles[c], events);
      for (const speech::StreamEvent& event : events) {
        hypotheses[c].insert(hypotheses[c].end(), event.stable.begin(),
                             event.stable.end());
        if (c == watch && (!event.stable.empty() || event.is_final)) {
          std::printf("client %zu @%4zu frames: %s | %s\n", c, event.frames,
                      phone_string(hypotheses[c]).c_str(),
                      phone_string(event.partial).c_str());
        }
      }
    }
  }
  recognizer.drain();

  std::printf("\nfinal hypotheses:\n");
  const speech::MfccConfig& mfcc = recognizer.engine().config().mfcc;
  const double seconds_per_frame =
      static_cast<double>(mfcc.frame_shift) / mfcc.sample_rate_hz;
  for (std::size_t c = 0; c < clients; ++c) {
    events.clear();
    recognizer.poll_events(handles[c], events);
    for (const speech::StreamEvent& event : events) {
      hypotheses[c].insert(hypotheses[c].end(), event.stable.begin(),
                           event.stable.end());
    }
    const Matrix logits = recognizer.stream_logits(handles[c]);
    std::printf("client %zu: %5.2f s audio, %4zu frames -> %s\n", c,
                static_cast<double>(logits.rows()) * seconds_per_frame,
                logits.rows(), phone_string(hypotheses[c]).c_str());
    (void)recognizer.close_stream(handles[c]);
  }

  const serve::GlobalStats stats = recognizer.stats();
  std::printf(
      "\nserved %zu frames in %zu steps (mean batch %.1f)\n"
      "step latency p50 %.1f us, p95 %.1f us\n"
      "aggregate %.0f frames/s, real-time factor %.1fx\n",
      stats.merged.frames_processed, stats.merged.steps,
      stats.merged.mean_batch(), stats.merged.step_latency.p50_us(),
      stats.merged.step_latency.p95_us(), stats.merged.frames_per_second(),
      stats.merged.real_time_factor());
  return 0;
}
