// Head-to-head comparison of compression schemes (a runnable mini Table I):
// BSP vs ESE vs C-LSTM vs BBS vs Wang vs E-RNN at ~8x compression (4x for
// Wang, matching its published operating point), all starting from the
// same pretrained dense GRU on the same corpus.
#include <cstdio>
#include <functional>

#include "baselines/bbs.hpp"
#include "baselines/clstm.hpp"
#include "baselines/ernn.hpp"
#include "baselines/ese.hpp"
#include "baselines/wang.hpp"
#include "core/bsp.hpp"
#include "speech/corpus.hpp"
#include "speech/per.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace rtmobile;

  speech::CorpusConfig corpus_config;
  corpus_config.num_train_utterances = 40;
  corpus_config.num_test_utterances = 12;
  corpus_config.seed = 5;
  const speech::Corpus corpus =
      speech::SyntheticTimit(corpus_config).generate();

  ModelConfig model_config;
  model_config.input_dim = corpus.feature_dim;
  model_config.hidden_dim = 64;
  model_config.num_layers = 2;
  model_config.num_classes = corpus.num_classes;
  SpeechModel dense(model_config);
  Rng rng(17);
  dense.init(rng);
  std::printf("pretraining shared dense model...\n");
  {
    Trainer trainer(dense);
    Adam adam(4e-3);
    TrainConfig config;
    config.epochs = 10;
    config.lr_decay = 0.92;
    trainer.train(config, corpus.train, adam, rng);
  }
  const double dense_per = speech::corpus_per(dense, corpus.test);
  std::printf("dense PER: %.2f%%\n\n", dense_per);

  Table table({"method", "target", "achieved", "PER", "degradation"});
  const auto report = [&](const char* method, double target, double achieved,
                          const SpeechModel& model) {
    const double per = speech::corpus_per(model, corpus.test);
    table.add_row({method, format_double(target, 0) + "x",
                   format_double(achieved, 1) + "x", format_double(per, 2),
                   format_double(per - dense_per, 2)});
  };

  {
    std::printf("running BSP (8x)...\n");
    SpeechModel model = dense;
    BspConfig config;
    config.num_r = 8;
    config.num_c = 4;
    config.col_keep_fraction = 0.125;
    config.rho = 5e-2;
    config.admm_rounds_step1 = 2;
    config.retrain_epochs = 6;
    config.retrain_learning_rate = 2e-3;
    config.prune_fc = false;
    Rng local_rng(21);
    const BspResult result =
        BspPruner(config).prune(model, corpus.train, local_rng);
    report("BSP (ours)", 8, result.stats.overall_rate(), model);
  }
  {
    std::printf("running ESE (8x)...\n");
    SpeechModel model = dense;
    baselines::EseConfig config;
    config.keep_fraction = 0.125;
    config.rho = 5e-2;
    config.admm_rounds = 2;
    config.retrain_epochs = 6;
    config.retrain_learning_rate = 2e-3;
    Rng local_rng(22);
    const auto outcome = baselines::EsePruner(config).compress(
        model, corpus.train, local_rng);
    report("ESE", 8, outcome.compression_rate(), model);
  }
  {
    std::printf("running C-LSTM (8x)...\n");
    SpeechModel model = dense;
    baselines::ClstmConfig config;
    config.block_size = 8;
    config.projected_epochs = 16;
    config.final_epochs = 4;
    config.learning_rate = 3e-3;
    Rng local_rng(23);
    const auto outcome = baselines::ClstmCompressor(config).compress(
        model, corpus.train, local_rng);
    report("C-LSTM", 8, outcome.compression_rate(), model);
  }
  {
    std::printf("running BBS (8x)...\n");
    SpeechModel model = dense;
    baselines::BbsConfig config;
    config.bank_size = 16;
    config.keep_per_bank = 2;
    config.rho = 5e-2;
    config.admm_rounds = 2;
    config.retrain_epochs = 6;
    config.retrain_learning_rate = 2e-3;
    Rng local_rng(24);
    const auto outcome = baselines::BbsPruner(config).compress(
        model, corpus.train, local_rng);
    report("BBS", 8, outcome.compression_rate(), model);
  }
  {
    std::printf("running Wang (4x)...\n");
    SpeechModel model = dense;
    baselines::WangConfig config;
    config.retrain_epochs = 6;
    config.retrain_learning_rate = 2e-3;
    Rng local_rng(25);
    const auto outcome = baselines::WangPruner(config).compress(
        model, corpus.train, local_rng);
    report("Wang", 4, outcome.compression_rate(), model);
  }
  {
    std::printf("running E-RNN (8x)...\n");
    SpeechModel model = dense;
    baselines::ErnnConfig config;
    config.block_size = 8;
    config.rho = 5e-2;
    config.admm_rounds = 2;
    config.finetune_epochs = 6;
    config.finetune_learning_rate = 2e-3;
    Rng local_rng(26);
    const auto outcome = baselines::ErnnCompressor(config).compress(
        model, corpus.train, local_rng);
    report("E-RNN", 8, outcome.compression_rate(), model);
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "Expected ordering (paper Table I): BSP's fine-grained blocks hold\n"
      "accuracy best; coarse structured pruning (Wang) costs the most.\n");
  return 0;
}
