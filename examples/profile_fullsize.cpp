// Profiles the full-size paper model (153 -> 1024 -> 1024 -> 39) compiled
// at a chosen compression rate: per-matrix timing breakdown, per-frame
// latency, and the real-time margin against the 10 ms frame shift — the
// "is it actually real-time?" question the paper's title asks.
//
// Flags: --compression (default 29), --threads (default host cores).
#include <cstdio>

#include "core/bsp.hpp"
#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "rnn/model.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rtmobile;
  CliParser cli;
  cli.add_flag("compression", "29", "overall compression target (x)");
  cli.add_flag("threads", "0", "executor threads (0 = host default)");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), cli.help(argv[0]).c_str());
    return 1;
  }
  const double compression = cli.get_double("compression");
  std::size_t threads = static_cast<std::size_t>(cli.get_int("threads"));
  if (threads == 0) threads = ThreadPool::default_thread_count();

  std::printf("building full-size GRU (153 -> 1024 -> 1024 -> 39)...\n");
  Rng rng(123);
  SpeechModel model(ModelConfig::paper_full_size());
  model.init(rng);

  BspConfig config;
  config.num_r = 64;
  config.num_c = 16;
  const double col_rate = std::min(compression, 16.0);
  config.col_keep_fraction = 1.0 / col_rate;
  config.row_keep_fraction =
      compression > col_rate ? col_rate / compression : 1.0;
  config.prune_fc = true;
  BspPruner pruner(config);
  const BspResult result = pruner.prune_one_shot(model);
  std::printf("pruned structure: %.1fx overall (%.0fx columns, %.1fx rows)\n",
              result.stats.overall_rate(), result.stats.column_rate(),
              result.stats.row_rate());

  ThreadPool pool(threads);
  CompilerOptions options;
  options.format = compression > 1.0 ? SparseFormat::kBspc
                                     : SparseFormat::kDense;
  options.threads = threads;
  options.value_bytes = 2;
  const CompiledSpeechModel compiled(model, result.block_masks, options,
                                     &pool);

  std::printf("profiling per-matrix plans (%zu threads)...\n\n", threads);
  const auto profiles = compiled.profile(30);
  Table table({"plan", "nnz", "matvec us", "share"});
  for (const auto& entry : profiles) {
    table.add_row({entry.name,
                   format_si(static_cast<double>(entry.nnz), 2),
                   format_double(entry.time_us, 2),
                   format_percent(entry.share, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  constexpr std::size_t kFrames = 30;
  const double frame_us = time_best_of_us(
      [&] { compiled.run_recurrence(kFrames); }, 2, 3);
  std::printf("inference: %.0f us per %zu-timestep frame "
              "(%.1f us/timestep)\n",
              frame_us, kFrames, frame_us / kFrames);
  std::printf("weight storage (fp16 accounting): %.2f MB\n",
              static_cast<double>(compiled.total_memory_bytes()) / 1e6);
  const double rtf = (frame_us / kFrames) / 10000.0;
  std::printf("real-time factor vs 10 ms frame shift: %.4f (%s)\n", rtf,
              rtf < 1.0 ? "real-time" : "NOT real-time");
  return 0;
}
