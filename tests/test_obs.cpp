// Tests for the observability layer: the metrics registry (typed
// instruments, concurrency, Prometheus/JSON exposition), per-stage span
// tracing (ring overflow, exact aggregates, slow-stream exemplars), the
// LatencyRecorder histogram export, the pluggable log sink, and the
// end-to-end guarantee the whole design exists for — a live /metrics
// scrape over TCP whose engine counters exactly equal the
// StatsAggregator totals for the same workload.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "net/recognizer_server.hpp"
#include "net/wire_client.hpp"
#include "net/wire_protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/stats.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramData;
using obs::InstrumentKind;
using obs::Labels;
using obs::MetricSample;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::Stage;
using obs::Telemetry;
using obs::TraceCollector;
using net::RecognizerServer;
using runtime::LatencyRecorder;

// ---------------------------------------------------------- registry

TEST(ObsMetrics, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c_total", "a counter");
  Gauge& g = registry.gauge("g", "a gauge");
  Histogram& h = registry.histogram("h_us", "a histogram", {1.0, 10.0});

  c.add(3);
  c.add(4);
  g.set(2.5);
  g.add(-0.5);
  h.observe(0.5);   // le=1
  h.observe(1.0);   // le=1 (bounds are inclusive upper edges)
  h.observe(5.0);   // le=10
  h.observe(100.0); // +Inf

  EXPECT_EQ(c.value(), 7U);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_EQ(h.count(), 4U);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 3U);
  const MetricSample* hs = snap.find("h_us", {});
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->histogram.cumulative,
            (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_DOUBLE_EQ(hs->histogram.sum, 106.5);
  EXPECT_EQ(hs->histogram.count, 4U);
}

TEST(ObsMetrics, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry registry;
  Counter& a = registry.counter("dup_total", "help");
  Counter& b = registry.counter("dup_total", "other help text");
  EXPECT_EQ(&a, &b);  // same (name, labels) -> same cell
  EXPECT_EQ(registry.instrument_count(), 1U);

  // Distinct labels are a distinct instrument of the same family.
  Counter& labeled =
      registry.counter("dup_total", "help", {{"shard", "0"}});
  EXPECT_NE(&a, &labeled);
  EXPECT_EQ(registry.instrument_count(), 2U);

  // Re-registering a name as a different kind is a caller bug.
  EXPECT_THROW(registry.gauge("dup_total", "help"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("dup_total", "help", {1.0}),
               std::invalid_argument);
}

TEST(ObsMetrics, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits_total", "hammered counter");
  Histogram& h =
      registry.histogram("lat_us", "hammered histogram", {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(static_cast<double>((i + static_cast<std::uint64_t>(t)) %
                                      200));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  const HistogramData data = h.snapshot();
  EXPECT_EQ(data.count, kThreads * kPerThread);
  EXPECT_EQ(data.cumulative.back(), kThreads * kPerThread);
}

TEST(ObsMetrics, CollectorsRunAtSnapshotTime) {
  MetricsRegistry registry;
  Gauge& depth = registry.gauge("depth", "refreshed on scrape");
  int source = 0;
  registry.add_collector([&depth, &source] {
    depth.set(static_cast<double>(source));
  });
  source = 7;
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("depth", {})->gauge_value, 7.0);
}

TEST(ObsMetrics, PrometheusGoldenOutput) {
  MetricsRegistry registry;
  registry.counter("req_total", "Requests served", {{"shard", "0"}}).add(5);
  registry.counter("req_total", "Requests served", {{"shard", "1"}}).add(2);
  registry.gauge("queue_depth", "Live queue depth").set(3.0);
  Histogram& h = registry.histogram("lat_us", "Latency", {1.0, 2.5});
  h.observe(0.5);
  h.observe(2.0);
  h.observe(9.0);

  const std::string expected =
      "# HELP req_total Requests served\n"
      "# TYPE req_total counter\n"
      "req_total{shard=\"0\"} 5\n"
      "req_total{shard=\"1\"} 2\n"
      "# HELP queue_depth Live queue depth\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 3\n"
      "# HELP lat_us Latency\n"
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"1\"} 1\n"
      "lat_us_bucket{le=\"2.5\"} 2\n"
      "lat_us_bucket{le=\"+Inf\"} 3\n"
      "lat_us_sum 11.5\n"
      "lat_us_count 3\n";
  EXPECT_EQ(registry.snapshot().to_prometheus(), expected);
}

TEST(ObsMetrics, EmptyRegistryAndEmptyHistogramRender) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.snapshot().to_prometheus(), "");
  EXPECT_EQ(registry.snapshot().to_json(), "[\n]\n");

  // A registered-but-never-observed histogram still renders a complete,
  // all-zero bucket ladder (scrapers rely on the family existing).
  registry.histogram("idle_us", "never observed", {5.0});
  const std::string rendered = registry.snapshot().to_prometheus();
  EXPECT_NE(rendered.find("idle_us_bucket{le=\"5\"} 0\n"), std::string::npos);
  EXPECT_NE(rendered.find("idle_us_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(rendered.find("idle_us_count 0\n"), std::string::npos);
}

// ------------------------------------------------------------- tracing

TEST(ObsTrace, SpansCarryStageAndStreamAttribution) {
  TraceCollector trace(64);
  { RT_SPAN(&trace, kMfcc, 42); }
  { RT_SPAN(&trace, kLayerStep, obs::kNoStream); }
  trace.record(Stage::kDecode, 42, trace.now_us(), 3.5);

  const auto stats = trace.stage_stats();
  EXPECT_EQ(stats[static_cast<std::size_t>(Stage::kMfcc)].count, 1U);
  EXPECT_EQ(stats[static_cast<std::size_t>(Stage::kLayerStep)].count, 1U);
  EXPECT_EQ(stats[static_cast<std::size_t>(Stage::kDecode)].count, 1U);
  EXPECT_DOUBLE_EQ(
      stats[static_cast<std::size_t>(Stage::kDecode)].total_us, 3.5);

  const std::vector<obs::SpanRecord> spans = trace.recent_spans();
  ASSERT_EQ(spans.size(), 3U);
  // Sorted by start time; the hand-recorded decode span started last.
  EXPECT_EQ(spans.back().stage, Stage::kDecode);
  EXPECT_EQ(spans.back().stream_id, 42U);
  EXPECT_EQ(trace.dropped_spans(), 0U);
  EXPECT_EQ(trace.ring_count(), 1U);
}

TEST(ObsTrace, RingOverflowCountsDropsButAggregatesStayExact) {
  TraceCollector trace(4);
  for (int i = 0; i < 20; ++i) {
    trace.record(Stage::kGather, obs::kNoStream,
                 static_cast<double>(i), 1.0);
  }
  EXPECT_EQ(trace.recent_spans().size(), 4U);   // ring keeps the newest
  EXPECT_EQ(trace.dropped_spans(), 16U);
  const auto stats = trace.stage_stats();
  // The exact accumulators survive the overwrites.
  EXPECT_EQ(stats[static_cast<std::size_t>(Stage::kGather)].count, 20U);
  EXPECT_DOUBLE_EQ(
      stats[static_cast<std::size_t>(Stage::kGather)].total_us, 20.0);
}

TEST(ObsTrace, PerThreadRingsMergeInStageStats) {
  TraceCollector trace(64);
  constexpr int kThreads = 4;
  constexpr int kSpans = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kSpans; ++i) {
        trace.record(Stage::kLayerStep, obs::kNoStream, 0.0, 2.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.ring_count(), static_cast<std::size_t>(kThreads));
  const auto stats = trace.stage_stats();
  EXPECT_EQ(stats[static_cast<std::size_t>(Stage::kLayerStep)].count,
            static_cast<std::uint64_t>(kThreads) * kSpans);
}

TEST(ObsTrace, ExemplarsKeepLatestPerStreamAndEvictOldest) {
  TraceCollector trace(64);
  trace.record(Stage::kDecode, 7, 0.0, 1.0);
  trace.capture_exemplar(7, 100.0);
  trace.record(Stage::kDecode, 7, 5.0, 2.0);
  trace.capture_exemplar(7, 200.0);  // latest capture wins

  std::vector<TraceCollector::Exemplar> exemplars = trace.exemplars();
  ASSERT_EQ(exemplars.size(), 1U);
  EXPECT_EQ(exemplars[0].stream_id, 7U);
  EXPECT_DOUBLE_EQ(exemplars[0].lag_us, 200.0);
  ASSERT_FALSE(exemplars[0].spans.empty());
  for (const obs::SpanRecord& span : exemplars[0].spans) {
    EXPECT_TRUE(span.stream_id == 7U || span.stream_id == obs::kNoStream);
  }

  // Flood with more streams than the store holds: bounded, oldest out.
  for (std::uint64_t s = 100; s < 100 + TraceCollector::kMaxExemplars + 3;
       ++s) {
    trace.record(Stage::kDecode, s, 0.0, 1.0);
    trace.capture_exemplar(s, 50.0);
  }
  exemplars = trace.exemplars();
  EXPECT_EQ(exemplars.size(), TraceCollector::kMaxExemplars);
  for (const TraceCollector::Exemplar& e : exemplars) {
    EXPECT_GE(e.stream_id, 100U + 3U);  // stream 7 and the first 3 evicted
  }
}

TEST(ObsTrace, TelemetrySnapshotSynthesizesStageSamples) {
  Telemetry telemetry(8);
  { RT_SPAN(&telemetry.trace(), kSocketWrite, 1); }
  const MetricsSnapshot snap = telemetry.snapshot();
  const MetricSample* spans =
      snap.find("rt_stage_spans_total", {{"stage", "socket_write"}});
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->counter_value, 1U);
  ASSERT_NE(snap.find("rt_stage_us_total", {{"stage", "socket_write"}}),
            nullptr);
  ASSERT_NE(snap.find("rt_stage_spans_dropped_total", {}), nullptr);
  // The JSON rendering carries the exemplar section even when empty.
  EXPECT_NE(telemetry.render_json().find("\"slow_stream_exemplars\""),
            std::string::npos);
}

// --------------------------------------- LatencyRecorder -> histogram

TEST(ObsStats, ToHistogramExactWhileUndecimated) {
  LatencyRecorder recorder;
  const std::array<double, 6> values{0.5, 1.0, 3.0, 7.0, 12.0, 100.0};
  for (const double v : values) recorder.record(v);
  const std::array<double, 3> bounds{1.0, 5.0, 10.0};

  const HistogramData data = recorder.to_histogram(bounds);
  EXPECT_EQ(data.cumulative,
            (std::vector<std::uint64_t>{2, 3, 4, 6}));
  EXPECT_EQ(data.count, 6U);
  EXPECT_DOUBLE_EQ(data.sum, 123.5);
}

TEST(ObsStats, ToHistogramSumsToCountAfterDecimation) {
  LatencyRecorder recorder(8);  // capped: decimation kicks in
  for (int i = 0; i < 1000; ++i) {
    recorder.record(static_cast<double>(i % 50));
  }
  ASSERT_EQ(recorder.count(), 1000U);
  ASSERT_LT(recorder.retained(), 1000U);

  const std::array<double, 3> bounds{10.0, 25.0, 40.0};
  const HistogramData data = recorder.to_histogram(bounds);
  // The invariant the exporter promises: bucket counts account for every
  // observed sample, decimated or not.
  EXPECT_EQ(data.count, 1000U);
  EXPECT_EQ(data.cumulative.back(), 1000U);
  for (std::size_t b = 1; b < data.cumulative.size(); ++b) {
    EXPECT_GE(data.cumulative[b], data.cumulative[b - 1]);
  }
}

TEST(ObsStats, ToHistogramEmptyRecorderIsAllZeros) {
  const LatencyRecorder recorder;
  const std::array<double, 2> bounds{1.0, 2.0};
  const HistogramData data = recorder.to_histogram(bounds);
  EXPECT_EQ(data.count, 0U);
  EXPECT_EQ(data.cumulative, (std::vector<std::uint64_t>{0, 0, 0}));
  EXPECT_DOUBLE_EQ(data.sum, 0.0);
}

// ------------------------------------------------------------ log sink

TEST(ObsLog, SinkCapturesRecordsAndEmptyRestoresDefault) {
  struct Record {
    LogLevel level;
    std::string tag;
    std::string message;
  };
  std::vector<Record> captured;
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  set_log_sink([&captured](LogLevel level, std::string_view tag,
                           std::string_view message) {
    captured.push_back({level, std::string(tag), std::string(message)});
  });

  RT_LOG(Info, "obs-test") << "stream=" << 9 << " captured";
  RT_LOG(Debug, "obs-test") << "below the level filter";

  set_log_sink({});  // restore stderr before asserting (test hygiene)
  set_log_level(saved);

  ASSERT_EQ(captured.size(), 1U);  // the Debug line was filtered out
  EXPECT_EQ(captured[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured[0].tag, "obs-test");
  EXPECT_EQ(captured[0].message, "stream=9 captured");
}

// --------------------------------------------------- scrape E2E (TCP)

std::vector<float> random_waveform(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

struct ServeFixture {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
};

ServeFixture make_fixture(std::size_t hidden, std::uint64_t seed) {
  ServeFixture f;
  Rng rng(seed);
  f.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  f.model->init(rng);
  ParamSet params;
  f.model->register_params(params);
  for (const std::string& name : f.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    f.masks.emplace(name, std::move(mask));
  }
  f.options.format = SparseFormat::kBspc;
  return f;
}

/// Blocking HTTP/1.0 exchange against the metrics port: connect, send
/// one request, read to EOF (the server closes after responding).
std::string http_request(std::uint16_t port, const std::string& head) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string request = head + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ADD_FAILURE() << "send failed on metrics socket";
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_body(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

/// Parses an unlabeled sample line ("name value") out of Prometheus text.
std::uint64_t counter_value(const std::string& body,
                            const std::string& name) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + ' ', 0) == 0) {
      return std::stoull(line.substr(name.size() + 1));
    }
  }
  ADD_FAILURE() << "metric not found in scrape: " << name;
  return ~0ULL;
}

double gauge_value(const std::string& body, const std::string& name) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + ' ', 0) == 0) {
      return std::stod(line.substr(name.size() + 1));
    }
  }
  ADD_FAILURE() << "metric not found in scrape: " << name;
  return -1.0;
}

TEST(ObsE2E, LiveScrapeMatchesStatsAggregatorExactly) {
  const ServeFixture f = make_fixture(16, 700);
  Telemetry telemetry;

  serve::ShardConfig shard_config;
  shard_config.shards = 2;
  shard_config.engine.telemetry = &telemetry;
  serve::ShardedEngine engine(*f.model, f.masks, f.options, shard_config);
  engine.start();

  net::ServerConfig config;
  config.drive_recognizer = false;
  config.telemetry = &telemetry;
  RecognizerServer server(engine, config);
  ASSERT_NE(server.metrics_port(), 0);
  server.start();

  // Deterministic workload: three wire clients, interleaved chunks.
  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < 3; ++s) {
    waves.push_back(random_waveform(4000 + 800 * s, 70 + s));
  }
  const net::OpenRequest request =
      net::OpenRequest::from_stream_config(serve::StreamConfig{});
  std::vector<net::WireClient> clients(waves.size());
  for (auto& client : clients) client.connect("127.0.0.1", server.port());
  for (auto& client : clients) {
    ASSERT_TRUE(client.open(request).has_value());
  }
  for (std::size_t s = 0; s < waves.size(); ++s) {
    clients[s].send_audio(waves[s]);
    clients[s].send_finish();
  }
  for (std::size_t s = 0; s < waves.size(); ++s) {
    std::vector<speech::StreamEvent> events;
    ASSERT_EQ(clients[s].collect_until_final(events), std::nullopt);
    clients[s].send_close();
  }

  // Quiesce the pumps so stats() is final, then scrape the live server.
  engine.stop();
  const serve::GlobalStats stats = engine.stats();
  ASSERT_GT(stats.merged.frames_processed, 0U);

  const std::string response = http_request(
      server.metrics_port(), "GET /metrics HTTP/1.0\r\nHost: test");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = http_body(response);

  // The tentpole guarantee: scrape == StatsAggregator, exactly. The
  // telemetry counters are bumped in the same statements as the
  // RuntimeStats fields, and shards share one counter cell, so no
  // tolerance is needed on the integer counters.
  EXPECT_EQ(counter_value(body, "rt_engine_frames_total"),
            stats.merged.frames_processed);
  EXPECT_EQ(counter_value(body, "rt_engine_steps_total"),
            stats.merged.steps);
  EXPECT_EQ(counter_value(body, "rt_engine_deadline_misses_total"),
            stats.merged.deadline_misses);
  EXPECT_EQ(counter_value(body, "rt_engine_shed_frames_total"),
            stats.merged.shed_frames);
  EXPECT_EQ(counter_value(body, "rt_engine_rejected_streams_total"),
            stats.merged.rejected_streams);
  // Gauges accumulate float adds in shard-interleaved order; allow ulp-
  // scale drift against the merge's shard-ordered sums.
  EXPECT_NEAR(gauge_value(body, "rt_engine_busy_us"), stats.merged.busy_us,
              1e-6 * (1.0 + stats.merged.busy_us));
  EXPECT_NEAR(gauge_value(body, "rt_engine_audio_seconds"),
              stats.merged.audio_seconds,
              1e-9 * (1.0 + stats.merged.audio_seconds));
  // Step-latency histogram count tracks engine rounds one-for-one.
  EXPECT_EQ(counter_value(body, "rt_engine_step_latency_us_count"),
            stats.merged.steps);
  // Fused-step accounting mirrors RuntimeStats exactly: every round that
  // dispatched compute is either fused or a per-stream fallback (with
  // the cache off here, that is every round), and the fused-width
  // histogram holds one observation per fused round.
  EXPECT_EQ(counter_value(body, "rt_fused_steps_total"),
            stats.merged.fused_steps);
  EXPECT_EQ(counter_value(body, "rt_fallback_steps_total"),
            stats.merged.fallback_steps);
  EXPECT_EQ(stats.merged.fused_steps + stats.merged.fallback_steps,
            stats.merged.steps);
  EXPECT_EQ(counter_value(body, "rt_fused_batch_width_count"),
            stats.merged.fused_steps);
  EXPECT_EQ(stats.merged.fused_width.count(), stats.merged.fused_steps);

  // Net-front counters: all three data-plane clients are visible.
  EXPECT_EQ(counter_value(body, "rt_net_accepted_total"), 3U);
  EXPECT_GT(counter_value(body, "rt_net_bytes_in_total"), 0U);
  EXPECT_GT(counter_value(body, "rt_net_bytes_out_total"), 0U);
  EXPECT_EQ(counter_value(body, "rt_net_protocol_errors_total"), 0U);

  // Per-shard gauges exist for both shards (labeled samples).
  EXPECT_NE(body.find("rt_shard_queue_depth{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(body.find("rt_shard_queue_depth{shard=\"1\"}"),
            std::string::npos);
  // The engine hot path ran under spans: stage timings are non-empty.
  EXPECT_NE(body.find("rt_stage_spans_total{stage=\"layer_step\"}"),
            std::string::npos);

  // Second scrape sees the first one counted.
  const std::string second = http_body(http_request(
      server.metrics_port(), "GET /metrics HTTP/1.0\r\nHost: test"));
  EXPECT_GE(counter_value(second, "rt_net_scrapes_total"), 1U);

  // JSON exposition and HTTP error paths on the same listener.
  const std::string json_response = http_request(
      server.metrics_port(), "GET /metrics.json HTTP/1.0\r\nHost: test");
  EXPECT_NE(json_response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(json_response.find("application/json"), std::string::npos);
  EXPECT_NE(http_body(json_response).find("\"rt_engine_frames_total\""),
            std::string::npos);
  EXPECT_NE(http_request(server.metrics_port(),
                         "GET /nope HTTP/1.0\r\nHost: test")
                .find("404"),
            std::string::npos);
  EXPECT_NE(http_request(server.metrics_port(),
                         "POST /metrics HTTP/1.0\r\nHost: test")
                .find("405"),
            std::string::npos);

  server.stop();
}

TEST(ObsE2E, CacheCountersOnLiveScrapeMatchMergedStats) {
  // One shard (one shard-local cache, so the resident gauge equals the
  // merged residency exactly), prefix cache on, and a repeat-heavy
  // workload: the same utterance served twice over the wire. The replay
  // must show up as rt_cache_hits_total on a live scrape, equal to the
  // StatsAggregator's merged counters — same contract as the engine
  // counters above.
  const ServeFixture f = make_fixture(16, 701);
  Telemetry telemetry;

  serve::ShardConfig shard_config;
  shard_config.shards = 1;
  shard_config.engine.telemetry = &telemetry;
  shard_config.engine.cache.enabled = true;
  serve::ShardedEngine engine(*f.model, f.masks, f.options, shard_config);
  engine.start();

  net::ServerConfig config;
  config.drive_recognizer = false;
  config.telemetry = &telemetry;
  RecognizerServer server(engine, config);
  ASSERT_NE(server.metrics_port(), 0);
  server.start();

  const std::vector<float> wave = random_waveform(4800, 73);
  const net::OpenRequest request =
      net::OpenRequest::from_stream_config(serve::StreamConfig{});
  // Two passes, strictly sequential so the second replays a warm cache.
  for (int pass = 0; pass < 2; ++pass) {
    net::WireClient client;
    client.connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.open(request).has_value());
    client.send_audio(wave);
    client.send_finish();
    std::vector<speech::StreamEvent> events;
    ASSERT_EQ(client.collect_until_final(events), std::nullopt);
    client.send_close();
  }

  engine.stop();
  const serve::GlobalStats stats = engine.stats();
  ASSERT_GT(stats.merged.cache_hits, 0U);    // the replay hit
  ASSERT_GT(stats.merged.cache_misses, 0U);  // the first pass computed
  // Frames either hit the cache or were computed — never both, never
  // neither.
  EXPECT_EQ(stats.merged.cache_hits + stats.merged.cache_misses,
            stats.merged.frames_processed);

  const std::string body = http_body(http_request(
      server.metrics_port(), "GET /metrics HTTP/1.0\r\nHost: test"));
  EXPECT_EQ(counter_value(body, "rt_cache_hits_total"),
            stats.merged.cache_hits);
  EXPECT_EQ(counter_value(body, "rt_cache_misses_total"),
            stats.merged.cache_misses);
  EXPECT_EQ(counter_value(body, "rt_cache_skipped_steps_total"),
            stats.merged.cache_skipped_steps);
  EXPECT_EQ(counter_value(body, "rt_cache_evictions_total"),
            stats.merged.cache_evictions);
  EXPECT_GT(counter_value(body, "rt_cache_bytes_total"), 0U);
  EXPECT_EQ(gauge_value(body, "rt_cache_resident_bytes"),
            static_cast<double>(stats.merged.cache_bytes));

  server.stop();
}

}  // namespace
}  // namespace rtmobile
