// Unit tests for the training stack: loss, optimizers, clipping, masks,
// projections, the ADMM engine, and the trainer loop.
#include <gtest/gtest.h>

#include <cmath>

#include "rnn/model.hpp"
#include "train/admm.hpp"
#include "train/loss.hpp"
#include "train/mask_set.hpp"
#include "train/optimizer.hpp"
#include "train/projection.hpp"
#include "train/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

// ------------------------------------------------------------------ loss
TEST(Loss, MatchesHandComputedCrossEntropy) {
  Matrix logits(1, 3, std::vector<float>{1.0F, 2.0F, 3.0F});
  const std::vector<std::uint16_t> labels = {2};
  const double loss = softmax_cross_entropy(logits, labels);
  const double z = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(loss, -std::log(std::exp(3.0) / z), 1e-5);
}

TEST(Loss, GradientIsSoftmaxMinusOnehotOverT) {
  Matrix logits(2, 3, std::vector<float>{0.5F, -1.0F, 2.0F,
                                         1.0F, 1.0F, 1.0F});
  const std::vector<std::uint16_t> labels = {2, 0};
  Matrix dlogits(2, 3);
  static_cast<void>(softmax_cross_entropy(logits, labels, &dlogits));
  // Row sums to zero; label entry negative; scaled by 1/T.
  for (std::size_t t = 0; t < 2; ++t) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      row_sum += static_cast<double>(dlogits(t, c));
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
    EXPECT_LT(dlogits(t, labels[t]), 0.0F);
  }
  EXPECT_NEAR(dlogits(1, 1), (1.0 / 3.0) / 2.0, 1e-5);
}

TEST(Loss, GradientMatchesFiniteDifferences) {
  Rng rng(1);
  Matrix logits(3, 5);
  fill_normal(logits.span(), rng, 1.0F);
  const std::vector<std::uint16_t> labels = {4, 0, 2};
  Matrix dlogits(3, 5);
  static_cast<void>(softmax_cross_entropy(logits, labels, &dlogits));
  constexpr double kEps = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits.span()[i];
    logits.span()[i] = saved + static_cast<float>(kEps);
    const double up = softmax_cross_entropy(logits, labels);
    logits.span()[i] = saved - static_cast<float>(kEps);
    const double down = softmax_cross_entropy(logits, labels);
    logits.span()[i] = saved;
    EXPECT_NEAR(dlogits.span()[i], (up - down) / (2 * kEps), 2e-3);
  }
}

TEST(Loss, ValidatesLabels) {
  Matrix logits(1, 3);
  const std::vector<std::uint16_t> bad = {3};
  EXPECT_THROW(static_cast<void>(softmax_cross_entropy(logits, bad)),
               std::invalid_argument);
}

TEST(Loss, FrameAccuracy) {
  Matrix logits(2, 2, std::vector<float>{1.0F, 0.0F, 0.0F, 1.0F});
  const std::vector<std::uint16_t> labels = {0, 0};
  EXPECT_DOUBLE_EQ(frame_accuracy(logits, labels), 0.5);
}

// ------------------------------------------------------------ optimizers
// Minimizing f(w) = 0.5 ||w - target||^2 with gradient (w - target).
class QuadraticProblem {
 public:
  QuadraticProblem() : w_(1, 4, 0.0F), g_(1, 4, 0.0F), target_(1, 4) {
    target_(0, 0) = 1.0F;
    target_(0, 1) = -2.0F;
    target_(0, 2) = 0.5F;
    target_(0, 3) = 3.0F;
    params_.add("w", &w_);
    grads_.add("w", &g_);
  }

  void compute_gradient() {
    for (std::size_t i = 0; i < w_.size(); ++i) {
      g_.span()[i] = w_.span()[i] - target_.span()[i];
    }
  }

  [[nodiscard]] double loss() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < w_.size(); ++i) {
      const double d = static_cast<double>(w_.span()[i]) -
                       static_cast<double>(target_.span()[i]);
      acc += 0.5 * d * d;
    }
    return acc;
  }

  Matrix w_, g_, target_;
  ParamSet params_, grads_;
};

TEST(Optimizer, SgdConvergesOnQuadratic) {
  QuadraticProblem problem;
  Sgd sgd(0.1, 0.9);
  for (int step = 0; step < 200; ++step) {
    problem.compute_gradient();
    sgd.step(problem.params_, problem.grads_);
  }
  EXPECT_LT(problem.loss(), 1e-6);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  QuadraticProblem problem;
  Adam adam(0.05);
  for (int step = 0; step < 500; ++step) {
    problem.compute_gradient();
    adam.step(problem.params_, problem.grads_);
  }
  EXPECT_LT(problem.loss(), 1e-4);
}

TEST(Optimizer, AdamFirstStepIsLearningRateSized) {
  // With bias correction, the first Adam update is ~lr * sign(grad).
  QuadraticProblem problem;
  Adam adam(0.01);
  problem.compute_gradient();
  adam.step(problem.params_, problem.grads_);
  EXPECT_NEAR(problem.w_(0, 0), 0.01F, 1e-4F);
  EXPECT_NEAR(problem.w_(0, 1), -0.01F, 1e-4F);
}

TEST(Optimizer, HyperparameterValidation) {
  EXPECT_THROW(Sgd(-1.0), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 0.9, 0.999, 0.0), std::invalid_argument);
}

TEST(Optimizer, ClipGlobalNorm) {
  Matrix g(1, 2, std::vector<float>{3.0F, 4.0F});
  ParamSet grads;
  grads.add("g", &g);
  const double norm = clip_global_norm(grads, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(g(0, 0), 0.6F, 1e-5F);
  EXPECT_NEAR(g(0, 1), 0.8F, 1e-5F);
  // No-op when already below the bound or when disabled.
  const double norm2 = clip_global_norm(grads, 10.0);
  EXPECT_NEAR(norm2, 1.0, 1e-5);
  EXPECT_NEAR(g(0, 0), 0.6F, 1e-5F);
  clip_global_norm(grads, 0.0);
  EXPECT_NEAR(g(0, 0), 0.6F, 1e-5F);
}

// --------------------------------------------------------------- masking
TEST(MaskSet, AppliesToParamsAndGrads) {
  Matrix w(2, 2, 5.0F);
  Matrix g(2, 2, 3.0F);
  ParamSet params;
  params.add("w", &w);
  ParamSet grads;
  grads.add("w", &g);

  Matrix mask(2, 2, 1.0F);
  mask(0, 1) = 0.0F;
  MaskSet masks;
  masks.set("w", mask);

  masks.apply(params);
  masks.apply_to_grads(grads);
  EXPECT_FLOAT_EQ(w(0, 1), 0.0F);
  EXPECT_FLOAT_EQ(w(0, 0), 5.0F);
  EXPECT_FLOAT_EQ(g(0, 1), 0.0F);
  EXPECT_EQ(masks.total_kept(), 3U);
  EXPECT_EQ(masks.total_slots(), 4U);
}

TEST(MaskSet, RejectsNonBinaryMasks) {
  MaskSet masks;
  Matrix bad(1, 1, 0.5F);
  EXPECT_THROW(masks.set("w", bad), std::invalid_argument);
}

TEST(MaskSet, ShapeMismatchDetected) {
  Matrix w(2, 3, 1.0F);
  ParamSet params;
  params.add("w", &w);
  MaskSet masks;
  masks.set("w", Matrix(3, 2, 1.0F));
  EXPECT_THROW(masks.apply(params), std::invalid_argument);
}

// ------------------------------------------------------------ projections
TEST(Projection, KeepCountRounds) {
  EXPECT_EQ(keep_count(100, 0.1), 10U);
  EXPECT_EQ(keep_count(10, 0.06), 1U);
  EXPECT_EQ(keep_count(10, 0.04), 0U);
  EXPECT_EQ(keep_count(10, 1.0), 10U);
  EXPECT_THROW(static_cast<void>(keep_count(10, 1.5)),
               std::invalid_argument);
}

TEST(Projection, TopKIndicesSortedAndCorrect) {
  const std::vector<double> scores = {0.5, 3.0, 1.0, 3.0, 0.1};
  const auto top = top_k_indices(scores, 2);
  ASSERT_EQ(top.size(), 2U);
  EXPECT_EQ(top[0], 1U);  // ties break toward lower index
  EXPECT_EQ(top[1], 3U);
  EXPECT_EQ(top_k_indices(scores, 99).size(), 5U);
  EXPECT_TRUE(top_k_indices(scores, 0).empty());
}

TEST(Projection, MagnitudeKeepsLargest) {
  Matrix w(2, 2, std::vector<float>{0.1F, -5.0F, 2.0F, 0.3F});
  const Matrix projected = project_magnitude(w, 0.5);
  EXPECT_FLOAT_EQ(projected(0, 1), -5.0F);
  EXPECT_FLOAT_EQ(projected(1, 0), 2.0F);
  EXPECT_EQ(projected.count_nonzero(), 2U);
}

TEST(Projection, BlockColumnMaskKeepsHighestEnergyColumns) {
  // Stripe 0 rows {0,1}, stripe 1 rows {2,3}; one block spanning 4 cols.
  Matrix w(4, 4, 0.0F);
  // Stripe 0: column 2 carries all the energy.
  w(0, 2) = 3.0F;
  w(1, 2) = -2.0F;
  w(0, 0) = 0.1F;
  // Stripe 1: column 1 dominates.
  w(2, 1) = 5.0F;
  w(3, 1) = 1.0F;
  w(3, 3) = 0.2F;
  const BlockMask mask = block_column_mask(w, 2, 1, 0.25);
  EXPECT_TRUE(mask.is_kept(0, 2));
  EXPECT_FALSE(mask.is_kept(0, 0));
  EXPECT_TRUE(mask.is_kept(2, 1));
  EXPECT_FALSE(mask.is_kept(2, 3));
  EXPECT_EQ(mask.nnz(), 4U);  // one column per stripe, two rows each
}

TEST(Projection, RowPruningKeepsHighestEnergyRows) {
  Matrix w(4, 2, 0.0F);
  w(0, 0) = 5.0F;
  w(1, 0) = 0.1F;
  w(2, 1) = 4.0F;
  w(3, 1) = 0.2F;
  BlockMask mask(4, 2, 2, 1);
  apply_row_pruning(w, 0.5, mask);
  EXPECT_TRUE(mask.row_kept(0));
  EXPECT_FALSE(mask.row_kept(1));
  EXPECT_TRUE(mask.row_kept(2));
  EXPECT_FALSE(mask.row_kept(3));
}

TEST(Projection, BspProjectionIsIdempotent) {
  Rng rng(2);
  Matrix w(16, 16);
  fill_normal(w.span(), rng, 1.0F);
  const Matrix once = project_bsp(w, 4, 4, 0.25, 0.5);
  const Matrix twice = project_bsp(once, 4, 4, 0.25, 0.5);
  EXPECT_EQ(once, twice);
}

TEST(Projection, RowColumnProjection) {
  Rng rng(3);
  Matrix w(8, 8);
  fill_normal(w.span(), rng, 1.0F);
  const Matrix projected = project_row_column(w, 0.5, 0.5);
  // Exactly 4 surviving rows and 4 surviving columns.
  std::size_t live_rows = 0;
  std::size_t live_cols = 0;
  for (std::size_t r = 0; r < 8; ++r) {
    bool any = false;
    for (std::size_t c = 0; c < 8; ++c) any |= projected(r, c) != 0.0F;
    if (any) ++live_rows;
  }
  for (std::size_t c = 0; c < 8; ++c) {
    bool any = false;
    for (std::size_t r = 0; r < 8; ++r) any |= projected(r, c) != 0.0F;
    if (any) ++live_cols;
  }
  EXPECT_EQ(live_rows, 4U);
  EXPECT_EQ(live_cols, 4U);
  EXPECT_EQ(projected.count_nonzero(), 16U);
}

// ------------------------------------------------------------------ ADMM
TEST(Admm, PenaltyGradientIsRhoTimesResidual) {
  Matrix w(1, 2, std::vector<float>{1.0F, 2.0F});
  AdmmState admm;
  admm.attach("w", &w, [](const Matrix& m) { return project_magnitude(m, 0.5); },
              2.0);
  admm.initialize();
  // Z = [0, 2] (keeps the larger), U = 0; penalty grad = rho*(W - Z).
  Matrix g(1, 2, 0.0F);
  ParamSet grads;
  grads.add("w", &g);
  admm.add_penalty_gradients(grads);
  EXPECT_NEAR(g(0, 0), 2.0F * 1.0F, 1e-5F);
  EXPECT_NEAR(g(0, 1), 0.0F, 1e-5F);
}

TEST(Admm, DualUpdateTracksResidual) {
  Matrix w(1, 2, std::vector<float>{1.0F, 2.0F});
  AdmmState admm;
  admm.attach("w", &w, [](const Matrix& m) { return project_magnitude(m, 0.5); },
              1.0);
  admm.initialize();
  admm.dual_update();
  // U = W - Z = [1, 0].
  EXPECT_NEAR(admm.u("w")(0, 0), 1.0F, 1e-5F);
  EXPECT_NEAR(admm.u("w")(0, 1), 0.0F, 1e-5F);
}

TEST(Admm, GradientFlowDrivesWeightsTowardConstraint) {
  // Minimize 0.5||W - target||^2 + ADMM penalty, target not sparse.
  // After enough rounds, W should be (near-)50%-sparse. rho must exceed
  // the loss curvature here: at equilibrium a pruned coordinate carries
  // u = t/rho, and |w + u| = |t|/rho competes in the magnitude projection
  // with kept coordinates' |t| — rho < 1 makes the support oscillate.
  Rng rng(4);
  Matrix w(4, 4);
  fill_normal(w.span(), rng, 1.0F);
  Matrix target = w;

  AdmmState admm;
  admm.attach("w", &w, [](const Matrix& m) { return project_magnitude(m, 0.5); },
              2.0);
  admm.initialize();

  Matrix g(4, 4, 0.0F);
  ParamSet params;
  params.add("w", &w);
  ParamSet grads;
  grads.add("w", &g);
  Sgd sgd(0.1, 0.0);
  for (int round = 0; round < 60; ++round) {
    for (int inner = 0; inner < 10; ++inner) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        g.span()[i] = w.span()[i] - target.span()[i];
      }
      admm.add_penalty_gradients(grads);
      sgd.step(params, grads);
    }
    admm.dual_update();
  }
  EXPECT_LT(admm.max_relative_residual(), 0.15);
  // Hard prune lands exactly on the constraint set.
  const MaskSet masks = admm.hard_prune();
  EXPECT_EQ(w.count_nonzero(), 8U);
  EXPECT_EQ(masks.total_kept(), 8U);
}

TEST(Admm, ValidatesUsage) {
  AdmmState admm;
  Matrix w(2, 2);
  EXPECT_THROW(admm.attach("w", nullptr,
                           [](const Matrix& m) { return m; }, 1.0),
               std::invalid_argument);
  admm.attach("w", &w, [](const Matrix& m) { return m; }, 1.0);
  EXPECT_THROW(admm.attach("w", &w, [](const Matrix& m) { return m; }, 1.0),
               std::invalid_argument);
  EXPECT_THROW(admm.dual_update(), std::invalid_argument);  // not initialized
  EXPECT_THROW(static_cast<void>(admm.z("nope")),
               std::invalid_argument);
}

// --------------------------------------------------------------- trainer
std::vector<LabeledSequence> toy_dataset(std::size_t utterances,
                                         std::size_t frames,
                                         std::size_t input_dim,
                                         std::size_t classes,
                                         std::uint64_t seed) {
  // Learnable toy task: class = argmax over first `classes` feature dims.
  Rng rng(seed);
  std::vector<LabeledSequence> data(utterances);
  for (auto& utt : data) {
    utt.features = Matrix(frames, input_dim);
    fill_normal(utt.features.span(), rng, 1.0F);
    utt.labels.resize(frames);
    for (std::size_t t = 0; t < frames; ++t) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < classes; ++c) {
        if (utt.features(t, c) > utt.features(t, best)) best = c;
      }
      utt.labels[t] = static_cast<std::uint16_t>(best);
    }
  }
  return data;
}

TEST(Trainer, LossDecreasesOnToyTask) {
  Rng rng(5);
  ModelConfig config;
  config.input_dim = 8;
  config.hidden_dim = 16;
  config.num_layers = 1;
  config.num_classes = 4;
  SpeechModel model(config);
  model.init(rng);
  const auto data = toy_dataset(12, 6, 8, 4, 6);

  Trainer trainer(model);
  Adam adam(5e-3);
  const double initial_loss = Trainer::evaluate(model, data).loss;
  TrainConfig train_config;
  train_config.epochs = 8;
  trainer.train(train_config, data, adam, rng);
  const EvalResult result = Trainer::evaluate(model, data);
  EXPECT_LT(result.loss, initial_loss * 0.7);
  EXPECT_GT(result.frame_accuracy, 0.5);
}

TEST(Trainer, MaskedTrainingPreservesZeros) {
  Rng rng(7);
  ModelConfig config;
  config.input_dim = 6;
  config.hidden_dim = 8;
  config.num_layers = 1;
  config.num_classes = 3;
  SpeechModel model(config);
  model.init(rng);
  const auto data = toy_dataset(6, 5, 6, 3, 8);

  // Mask out half of u_h and train; the zeros must survive.
  Matrix mask(8, 8, 1.0F);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 4; ++c) mask(r, c) = 0.0F;
  }
  MaskSet masks;
  masks.set("gru0.u_h", mask);
  ParamSet params;
  model.register_params(params);
  masks.apply(params);

  Trainer trainer(model);
  Adam adam(2e-3);
  TrainConfig train_config;
  train_config.epochs = 3;
  trainer.train(train_config, data, adam, rng, nullptr, &masks);
  const Matrix& u_h = model.layer(0).u_h;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(u_h(r, c), 0.0F);
    }
  }
  // Unmasked half must have been trained (nonzero).
  EXPECT_GT(u_h.count_nonzero(), 0U);
}

TEST(Trainer, RejectsEmptyDataset) {
  Rng rng(9);
  SpeechModel model(ModelConfig::scaled(8));
  model.init(rng);
  Trainer trainer(model);
  Adam adam(1e-3);
  std::vector<LabeledSequence> empty;
  EXPECT_THROW(trainer.run_epoch(empty, adam, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rtmobile
