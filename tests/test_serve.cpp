// Tests for the sharded serving layer: MPSC submission queue semantics,
// router policies, cross-shard stats identities, and — the load-bearing
// guarantee — that per-stream logits are bit-identical to whole-utterance
// inference regardless of which shard serves the stream, whether pumping
// is synchronous or threaded, and even when a stream migrates between
// shards mid-utterance.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "core/bsp.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/stats.hpp"
#include "serve/shard_router.hpp"
#include "serve/sharded_engine.hpp"
#include "serve/stats_aggregator.hpp"
#include "serve/submission_queue.hpp"
#include "speech/mfcc.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using runtime::RuntimeStats;
using serve::RoutePolicy;
using serve::ShardConfig;
using serve::ShardedEngine;
using serve::ShardRouter;
using serve::StatsAggregator;
using serve::StreamCommand;
using serve::StreamHandle;
using serve::SubmissionQueue;

std::vector<float> random_waveform(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

speech::MfccConfig streaming_mfcc_config() {
  speech::MfccConfig config;
  config.cepstral_mean_norm = false;  // whole-utterance; cannot stream
  return config;
}

/// A small BSP-pruned model plus everything a ShardedEngine needs.
struct ServeFixture {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
};

ServeFixture make_fixture(std::size_t hidden, std::uint64_t seed) {
  ServeFixture f;
  Rng rng(seed);
  f.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  f.model->init(rng);

  ParamSet params;
  f.model->register_params(params);
  for (const std::string& name : f.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    f.masks.emplace(name, std::move(mask));
  }
  f.options.format = SparseFormat::kBspc;
  return f;
}

/// Reference logits: whole-utterance infer through a standalone compile
/// of the same model (the arithmetic every shard must reproduce).
Matrix reference_logits(const ServeFixture& f,
                        const std::vector<float>& wave) {
  const CompiledSpeechModel compiled(*f.model, f.masks, f.options, nullptr);
  return compiled.infer(
      speech::MfccExtractor(streaming_mfcc_config()).extract(wave));
}

StreamCommand audio_command(std::uint64_t stream,
                            std::vector<float> samples) {
  StreamCommand c;
  c.kind = StreamCommand::Kind::kAudio;
  c.stream = stream;
  c.samples = std::move(samples);
  return c;
}

// ------------------------------------------------------ submission queue
TEST(SubmissionQueue, FifoAndBackpressure) {
  SubmissionQueue queue(4);  // rounds to capacity 4
  EXPECT_EQ(queue.capacity(), 4U);
  EXPECT_EQ(queue.depth(), 0U);

  StreamCommand out;
  EXPECT_FALSE(queue.try_pop(out));

  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.try_push(audio_command(i, {static_cast<float>(i)})));
  }
  EXPECT_EQ(queue.depth(), 4U);
  EXPECT_FALSE(queue.try_push(audio_command(99, {})));  // full

  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out.stream, i);  // FIFO
    ASSERT_EQ(out.samples.size(), 1U);
    EXPECT_EQ(out.samples[0], static_cast<float>(i));
  }
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(queue.depth(), 0U);

  // The ring is reusable after wrapping.
  EXPECT_TRUE(queue.try_push(audio_command(7, {})));
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.stream, 7U);
}

TEST(SubmissionQueue, MultiProducerSingleConsumerDeliversEverything) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  SubmissionQueue queue(64);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        StreamCommand c = audio_command(p * kPerProducer + i, {});
        while (!queue.try_push(std::move(c))) std::this_thread::yield();
      }
    });
  }

  std::set<std::uint64_t> seen;
  StreamCommand out;
  while (seen.size() < kProducers * kPerProducer) {
    if (queue.try_pop(out)) {
      EXPECT_TRUE(seen.insert(out.stream).second) << "duplicate delivery";
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);  // nothing lost
  EXPECT_FALSE(queue.try_pop(out));
}

// --------------------------------------------------------------- router
TEST(ShardRouter, RoundRobinCyclesAndSkipsDrained) {
  ShardRouter router(3, RoutePolicy::kRoundRobin);
  const std::vector<std::size_t> loads{5, 0, 9};  // ignored by this policy
  EXPECT_EQ(router.pick(loads), 0U);
  EXPECT_EQ(router.pick(loads), 1U);
  EXPECT_EQ(router.pick(loads), 2U);
  EXPECT_EQ(router.pick(loads), 0U);
  router.set_admissible(1, false);
  EXPECT_EQ(router.pick(loads), 2U);  // 1 skipped
  EXPECT_EQ(router.pick(loads), 0U);
  EXPECT_EQ(router.admissible_count(), 2U);
}

TEST(ShardRouter, LeastLoadedPicksMinWithStableTies) {
  ShardRouter router(3, RoutePolicy::kLeastLoaded);
  EXPECT_EQ(router.pick(std::vector<std::size_t>{3, 1, 2}), 1U);
  EXPECT_EQ(router.pick(std::vector<std::size_t>{2, 2, 2}), 0U);  // tie: lowest
  router.set_admissible(0, false);
  EXPECT_EQ(router.pick(std::vector<std::size_t>{0, 2, 2}), 1U);
}

TEST(ShardRouter, SessionHashIsStickyAndProbesPastDrainedShards) {
  ShardRouter router(4, RoutePolicy::kSessionHash);
  const std::vector<std::size_t> loads(4, 0);
  const std::size_t home = router.pick(loads, 1234);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(router.pick(loads, 1234), home);  // sticky
  }
  router.set_admissible(home, false);
  const std::size_t fallback = router.pick(loads, 1234);
  EXPECT_NE(fallback, home);
  EXPECT_EQ(router.pick(loads, 1234), fallback);  // fallback also stable

  // Distinct keys spread: with 64 keys over 4 shards every shard should
  // see at least one stream.
  router.set_admissible(home, true);
  std::set<std::size_t> hit;
  for (std::uint64_t key = 0; key < 64; ++key) {
    hit.insert(router.pick(loads, key));
  }
  EXPECT_EQ(hit.size(), 4U);
}

TEST(ShardRouter, ThrowsWhenNothingAdmissible) {
  ShardRouter router(2, RoutePolicy::kLeastLoaded);
  router.set_admissible(0, false);
  router.set_admissible(1, false);
  EXPECT_THROW((void)router.pick(std::vector<std::size_t>{0, 0}),
               std::invalid_argument);
}

TEST(ShardRouter, PolicyNamesRoundTrip) {
  for (const RoutePolicy policy :
       {RoutePolicy::kRoundRobin, RoutePolicy::kLeastLoaded,
        RoutePolicy::kSessionHash}) {
    EXPECT_EQ(serve::parse_route_policy(serve::to_string(policy)), policy);
  }
  EXPECT_THROW((void)serve::parse_route_policy("zone-aware"),
               std::invalid_argument);
}

// ------------------------------------------------------ stats aggregation
TEST(StatsAggregator, MergeOfSplitsEqualsWhole) {
  // Build one "whole workload" stats object and the same workload split
  // across two shards; merging the splits must reproduce the whole.
  RuntimeStats whole;
  RuntimeStats half_a;
  RuntimeStats half_b;
  Rng rng(9);
  for (int i = 0; i < 101; ++i) {
    const double latency = 50.0 + 10.0 * rng.normal();
    RuntimeStats& half = i % 2 == 0 ? half_a : half_b;
    for (RuntimeStats* stats : {&whole, &half}) {
      stats->step_latency.record(latency);
      stats->steps += 1;
      stats->frames_processed += 3;
      stats->busy_us += latency;
      stats->audio_seconds += 0.03;
    }
  }

  RuntimeStats merged;
  merged.merge_from(half_a);
  merged.merge_from(half_b);
  EXPECT_EQ(merged.frames_processed, whole.frames_processed);
  EXPECT_EQ(merged.steps, whole.steps);
  EXPECT_EQ(merged.step_latency.count(), whole.step_latency.count());
  // Quantiles sort the union of samples, so they merge exactly.
  EXPECT_DOUBLE_EQ(merged.step_latency.p50_us(),
                   whole.step_latency.p50_us());
  EXPECT_DOUBLE_EQ(merged.step_latency.p95_us(),
                   whole.step_latency.p95_us());
  // Sums (and the ratios derived from them) accumulate in a different
  // association order after a split, so they agree to rounding only.
  const double rel = 1e-12;
  EXPECT_NEAR(merged.busy_us, whole.busy_us, rel * whole.busy_us);
  EXPECT_NEAR(merged.audio_seconds, whole.audio_seconds,
              rel * whole.audio_seconds);
  EXPECT_NEAR(merged.step_latency.mean_us(), whole.step_latency.mean_us(),
              rel * whole.step_latency.mean_us());
  EXPECT_NEAR(merged.frames_per_second(), whole.frames_per_second(),
              rel * whole.frames_per_second());
  EXPECT_NEAR(merged.real_time_factor(), whole.real_time_factor(),
              rel * whole.real_time_factor());
}

TEST(StatsAggregator, AggregateFpsSumsShardCapacity) {
  RuntimeStats a;
  a.frames_processed = 100;
  a.busy_us = 1e6;  // 100 fps
  RuntimeStats b;
  b.frames_processed = 300;
  b.busy_us = 1e6;  // 300 fps

  StatsAggregator aggregator;
  aggregator.add_shard(a);
  aggregator.add_shard(b);
  aggregator.set_wall_us(2e6);
  const serve::GlobalStats& global = aggregator.global();
  EXPECT_EQ(global.shards, 2U);
  EXPECT_DOUBLE_EQ(global.aggregate_fps, 400.0);  // capacity: sum of shards
  EXPECT_EQ(global.merged.frames_processed, 400U);
  EXPECT_DOUBLE_EQ(global.wall_fps(), 200.0);  // 400 frames over 2 s wall
}

// ------------------------------------------------- sharded serving layer
TEST(ShardedEngine, StreamsAcrossShardsMatchWholeUtteranceInfer) {
  constexpr std::size_t kStreams = 6;
  const ServeFixture f = make_fixture(24, 301);

  ShardConfig config;
  config.shards = 3;
  config.policy = RoutePolicy::kLeastLoaded;
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  std::vector<std::vector<float>> waves;
  std::vector<StreamHandle> handles;
  for (std::size_t s = 0; s < kStreams; ++s) {
    waves.push_back(random_waveform(6000 + 800 * s, 40 + s));
    handles.push_back(engine.open_stream());
  }
  // Least-loaded admission with equal per-stream load spreads evenly.
  std::vector<std::size_t> per_shard(config.shards, 0);
  for (const StreamHandle h : handles) {
    per_shard[engine.stream_shard(h)] += 1;
  }
  for (const std::size_t count : per_shard) EXPECT_EQ(count, 2U);

  // Interleaved chunked arrival with pumping between rounds.
  std::vector<std::size_t> positions(kStreams, 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t s = 0; s < kStreams; ++s) {
      if (positions[s] >= waves[s].size()) continue;
      const std::size_t n =
          std::min<std::size_t>(900 + 70 * s, waves[s].size() - positions[s]);
      ASSERT_TRUE(engine.submit_audio(
          handles[s],
          std::span<const float>(waves[s]).subspan(positions[s], n)));
      positions[s] += n;
      if (positions[s] >= waves[s].size()) {
        ASSERT_TRUE(engine.finish_stream(handles[s]));
      }
      any = any || positions[s] < waves[s].size();
    }
    for (std::size_t shard = 0; shard < config.shards; ++shard) {
      engine.pump_shard(shard);
    }
  }
  engine.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(engine.stream_done(handles[s])) << "stream " << s;
    EXPECT_EQ(engine.stream_logits(handles[s]), reference_logits(f, waves[s]))
        << "stream " << s;  // bitwise
  }

  const serve::GlobalStats global = engine.stats();
  std::size_t expected_frames = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    expected_frames += engine.stream_logits(handles[s]).rows();
  }
  EXPECT_EQ(global.merged.frames_processed, expected_frames);
  EXPECT_EQ(global.shards, config.shards);
}

TEST(ShardedEngine, PlacementDoesNotChangeLogitsBitwise) {
  // The determinism guarantee: the same audio served by shard 0, by
  // shard 1, or by the reference whole-utterance path produces
  // bit-identical logits. Round-robin admission forces the placements.
  const ServeFixture f = make_fixture(20, 77);
  const std::vector<float> wave = random_waveform(9000, 5);
  const Matrix reference = reference_logits(f, wave);

  ShardConfig config;
  config.shards = 2;
  config.policy = RoutePolicy::kRoundRobin;
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  const StreamHandle on_shard0 = engine.open_stream();
  const StreamHandle on_shard1 = engine.open_stream();
  ASSERT_EQ(engine.stream_shard(on_shard0), 0U);
  ASSERT_EQ(engine.stream_shard(on_shard1), 1U);

  for (const StreamHandle h : {on_shard0, on_shard1}) {
    ASSERT_TRUE(engine.submit_audio(h, wave));
    ASSERT_TRUE(engine.finish_stream(h));
  }
  engine.drain();

  EXPECT_EQ(engine.stream_logits(on_shard0), reference);  // bitwise
  EXPECT_EQ(engine.stream_logits(on_shard1), reference);  // bitwise
}

TEST(ShardedEngine, MigrationPreservesLogitsBitwise) {
  // Serve half the utterance on the stream's home shard, drain that
  // shard (migrating the live stream with hidden state and queued frames
  // intact), finish on the sibling — output must equal an unmigrated run.
  const ServeFixture f = make_fixture(20, 88);
  const std::vector<float> wave = random_waveform(12000, 13);
  const Matrix reference = reference_logits(f, wave);

  ShardConfig config;
  config.shards = 2;
  config.policy = RoutePolicy::kRoundRobin;
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  const StreamHandle h = engine.open_stream();
  const std::size_t home = engine.stream_shard(h);
  const std::size_t half = wave.size() / 2;
  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(0, half)));
  engine.drain();
  ASSERT_FALSE(engine.stream_done(h));

  EXPECT_EQ(engine.drain_shard(home), 1U);
  const std::size_t away = engine.stream_shard(h);
  EXPECT_NE(away, home);

  // New streams cannot land on the drained shard.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.stream_shard(engine.open_stream()), away);
  }

  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(half, wave.size() - half)));
  ASSERT_TRUE(engine.finish_stream(h));
  engine.drain();

  ASSERT_TRUE(engine.stream_done(h));
  EXPECT_EQ(engine.stream_logits(h), reference);  // bitwise

  // The shard can rejoin the fleet.
  engine.set_shard_admissible(home, true);
  bool home_used = false;
  for (int i = 0; i < 4; ++i) {
    home_used = home_used ||
                engine.stream_shard(engine.open_stream()) == home;
  }
  EXPECT_TRUE(home_used);
}

TEST(ShardedEngine, MigrationFollowsSessionHashKey) {
  // Under the session-hash policy a migrated stream must land where
  // future streams of the same client key will land, or stickiness
  // silently breaks after a drain.
  const ServeFixture f = make_fixture(16, 21);
  ShardConfig config;
  config.shards = 3;
  config.policy = RoutePolicy::kSessionHash;
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  const std::uint64_t key = 777;
  const StreamHandle h = engine.open_stream(key);
  const std::size_t home = engine.stream_shard(h);
  const std::vector<float> wave = random_waveform(8000, 3);
  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(0, wave.size() / 2)));
  engine.drain();
  ASSERT_FALSE(engine.stream_done(h));

  ASSERT_EQ(engine.drain_shard(home), 1U);
  const std::size_t away = engine.stream_shard(h);
  EXPECT_NE(away, home);
  // A fresh stream with the same key joins its migrated sibling.
  EXPECT_EQ(engine.stream_shard(engine.open_stream(key)), away);
}

TEST(ShardedEngine, ThreadedPumpsServeConcurrentProducers) {
  constexpr std::size_t kStreams = 4;
  const ServeFixture f = make_fixture(16, 555);

  ShardConfig config;
  config.shards = 2;
  config.policy = RoutePolicy::kSessionHash;
  config.queue_capacity = 8;  // small ring: exercise backpressure
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  std::vector<std::vector<float>> waves;
  std::vector<StreamHandle> handles;
  for (std::size_t s = 0; s < kStreams; ++s) {
    waves.push_back(random_waveform(5000 + 777 * s, 900 + s));
    handles.push_back(engine.open_stream(/*session_key=*/s));
  }

  engine.start();
  EXPECT_TRUE(engine.running());

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kStreams; ++s) {
    producers.emplace_back([&engine, &waves, &handles, s] {
      const std::vector<float>& wave = waves[s];
      for (std::size_t pos = 0; pos < wave.size(); pos += 1600) {
        const std::size_t n =
            std::min<std::size_t>(1600, wave.size() - pos);
        while (!engine.submit_audio(
            handles[s], std::span<const float>(wave).subspan(pos, n))) {
          std::this_thread::yield();  // ring full: backpressure
        }
      }
      while (!engine.finish_stream(handles[s])) std::this_thread::yield();
    });
  }
  for (std::thread& t : producers) t.join();

  // Graceful stop: everything submitted must be served before return.
  engine.stop();
  EXPECT_FALSE(engine.running());

  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(engine.stream_done(handles[s])) << "stream " << s;
    EXPECT_EQ(engine.stream_logits(handles[s]), reference_logits(f, waves[s]))
        << "stream " << s;  // bitwise
  }
  const serve::GlobalStats global = engine.stats();
  EXPECT_GT(global.wall_us, 0.0);
  EXPECT_GT(global.wall_fps(), 0.0);
}

TEST(ShardedEngine, CloseReleasesSessionsAndLateCommandsAreDropped) {
  const ServeFixture f = make_fixture(16, 91);
  ShardConfig config;
  config.shards = 2;
  config.policy = RoutePolicy::kRoundRobin;
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  const std::vector<float> wave = random_waveform(4000, 8);
  const StreamHandle done_stream = engine.open_stream();
  const StreamHandle abandoned = engine.open_stream();
  ASSERT_TRUE(engine.submit_audio(done_stream, wave));
  ASSERT_TRUE(engine.finish_stream(done_stream));
  ASSERT_TRUE(engine.submit_audio(abandoned, wave));
  engine.drain();
  ASSERT_TRUE(engine.stream_done(done_stream));

  // Late/duplicate commands for a completed stream are accepted at the
  // ring and dropped at apply time — they must not kill the shard.
  ASSERT_TRUE(engine.finish_stream(done_stream));
  ASSERT_TRUE(engine.submit_audio(done_stream, wave));
  engine.drain();
  const Matrix before_close = engine.stream_logits(done_stream);

  // Closing reaps the session from its engine; the handle is then dead.
  ASSERT_TRUE(engine.close_stream(done_stream));
  EXPECT_THROW((void)engine.stream_logits(done_stream),
               std::invalid_argument);
  ASSERT_TRUE(engine.close_stream(done_stream));  // double close: no-op

  // Abandoning the live stream mid-utterance reaps it too.
  ASSERT_TRUE(engine.close_stream(abandoned));
  EXPECT_TRUE(engine.stream_done(abandoned));
  engine.drain();
  std::size_t held = 0;
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    held += engine.shard_session_count(s);
  }
  EXPECT_EQ(held, 0U);

  // The fleet still serves new work afterwards, reusing freed handle
  // slots: the closed handles go stale instead of aliasing the newcomer.
  const StreamHandle fresh = engine.open_stream();
  EXPECT_EQ(fresh.id & ((1ULL << 20) - 1),
            abandoned.id & ((1ULL << 20) - 1));  // slot reissued (LIFO)
  EXPECT_NE(fresh.id, abandoned.id);             // under a new generation
  EXPECT_THROW((void)engine.stream_done(abandoned), std::invalid_argument);
  ASSERT_TRUE(engine.submit_audio(fresh, wave));
  ASSERT_TRUE(engine.finish_stream(fresh));
  engine.drain();
  ASSERT_TRUE(engine.stream_done(fresh));
  EXPECT_EQ(engine.stream_logits(fresh), before_close);  // same audio
}

TEST(ShardedEngine, RecordsCoreRangeHintsWhenPinning) {
  const ServeFixture f = make_fixture(16, 4);
  ShardConfig config;
  config.shards = 2;
  config.threads_per_shard = 2;
  config.pin_cores = true;
  ShardedEngine engine(*f.model, f.masks, f.options, config);
  for (std::size_t s = 0; s < 2; ++s) {
    const CompilerOptions& options = engine.shard_model(s).options();
    ASSERT_TRUE(options.core_range.has_value());
    EXPECT_EQ(options.core_range->begin, s * 2);
    EXPECT_EQ(options.core_range->count, 2U);
    EXPECT_EQ(options.threads, 2U);
  }
}

}  // namespace
}  // namespace rtmobile
