// Unit and property tests for BlockMask, the BSP structure descriptor.
#include <gtest/gtest.h>

#include <numeric>

#include "sparse/block_mask.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

TEST(BlockMask, ConstructionValidatesGrid) {
  EXPECT_NO_THROW(BlockMask(8, 8, 2, 2));
  EXPECT_THROW(BlockMask(0, 8, 1, 1), std::invalid_argument);
  EXPECT_THROW(BlockMask(8, 8, 9, 1), std::invalid_argument);
  EXPECT_THROW(BlockMask(8, 8, 1, 9), std::invalid_argument);
}

TEST(BlockMask, FreshMaskIsFullyDense) {
  const BlockMask mask(6, 9, 2, 3);
  EXPECT_EQ(mask.nnz(), 54U);
  EXPECT_EQ(mask.kept_row_count(), 6U);
  EXPECT_DOUBLE_EQ(mask.column_keep_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(mask.row_keep_fraction(), 1.0);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      EXPECT_TRUE(mask.is_kept(r, c));
    }
  }
}

TEST(BlockMask, PartitionCoversMatrixExactly) {
  // Uneven splits: 10 rows into 3 stripes, 11 cols into 4 blocks.
  const BlockMask mask(10, 11, 3, 4);
  std::size_t covered_rows = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(mask.row_begin(s), covered_rows);
    EXPECT_GT(mask.row_end(s), mask.row_begin(s));
    covered_rows = mask.row_end(s);
  }
  EXPECT_EQ(covered_rows, 10U);
  std::size_t covered_cols = 0;
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(mask.col_begin(b), covered_cols);
    covered_cols = mask.col_end(b);
  }
  EXPECT_EQ(covered_cols, 11U);
}

TEST(BlockMask, StripeAndBlockLookupInvertPartition) {
  const BlockMask mask(10, 11, 3, 4);
  for (std::size_t r = 0; r < 10; ++r) {
    const std::size_t s = mask.stripe_of_row(r);
    EXPECT_GE(r, mask.row_begin(s));
    EXPECT_LT(r, mask.row_end(s));
  }
  for (std::size_t c = 0; c < 11; ++c) {
    const std::size_t b = mask.block_of_col(c);
    EXPECT_GE(c, mask.col_begin(b));
    EXPECT_LT(c, mask.col_end(b));
  }
}

TEST(BlockMask, SetBlockColsValidation) {
  BlockMask mask(8, 8, 2, 2);
  // Block 1 covers columns [4, 8).
  EXPECT_NO_THROW(mask.set_block_cols(0, 1, {4, 6}));
  EXPECT_THROW(mask.set_block_cols(0, 1, {3, 6}), std::invalid_argument);
  EXPECT_THROW(mask.set_block_cols(0, 1, {6, 4}), std::invalid_argument);
  EXPECT_THROW(mask.set_block_cols(0, 1, {5, 5}), std::invalid_argument);
  EXPECT_THROW(mask.set_block_cols(2, 0, {0}), std::invalid_argument);
}

TEST(BlockMask, ColumnPruningAffectsOnlyItsStripe) {
  BlockMask mask(8, 8, 2, 2);
  mask.set_block_cols(0, 0, {1});  // stripe 0, block 0 keeps column 1 only
  EXPECT_TRUE(mask.is_kept(0, 1));
  EXPECT_FALSE(mask.is_kept(0, 0));
  EXPECT_FALSE(mask.is_kept(3, 2));
  // Stripe 1 untouched.
  EXPECT_TRUE(mask.is_kept(4, 0));
  EXPECT_EQ(mask.nnz(), 4U * (1 + 4) + 4U * 8);
}

TEST(BlockMask, RowPruningZerosWholeRow) {
  BlockMask mask(4, 4, 2, 2);
  mask.set_row_kept(2, false);
  EXPECT_FALSE(mask.row_kept(2));
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_FALSE(mask.is_kept(2, c));
  }
  EXPECT_EQ(mask.kept_row_count(), 3U);
  EXPECT_EQ(mask.nnz(), 12U);
  EXPECT_DOUBLE_EQ(mask.row_keep_fraction(), 0.75);
}

TEST(BlockMask, ApplyZeroesPrunedEntries) {
  BlockMask mask(4, 4, 2, 2);
  mask.set_block_cols(0, 0, {0});
  mask.set_row_kept(3, false);
  Matrix weights(4, 4, 1.0F);
  mask.apply(weights);
  EXPECT_FLOAT_EQ(weights(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(weights(0, 1), 0.0F);
  EXPECT_FLOAT_EQ(weights(3, 0), 0.0F);
  EXPECT_EQ(weights.count_nonzero(), mask.nnz());

  Matrix wrong(3, 4, 1.0F);
  EXPECT_THROW(mask.apply(wrong), std::invalid_argument);
}

// Property: is_kept agrees with the dense rendering on random masks.
class BlockMaskPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BlockMaskPropertyTest, DenseRenderingAgreesWithIsKept) {
  Rng rng(GetParam());
  const std::size_t rows = 4 + rng.next_below(20);
  const std::size_t cols = 4 + rng.next_below(20);
  const std::size_t num_r = 1 + rng.next_below(std::min<std::size_t>(rows, 5));
  const std::size_t num_c = 1 + rng.next_below(std::min<std::size_t>(cols, 5));
  BlockMask mask(rows, cols, num_r, num_c);

  // Random column subsets per (stripe, block).
  for (std::size_t s = 0; s < num_r; ++s) {
    for (std::size_t b = 0; b < num_c; ++b) {
      std::vector<std::uint32_t> kept;
      for (std::size_t c = mask.col_begin(b); c < mask.col_end(b); ++c) {
        if (rng.bernoulli(0.4)) {
          kept.push_back(static_cast<std::uint32_t>(c));
        }
      }
      mask.set_block_cols(s, b, kept);
    }
  }
  // Random row pruning.
  for (std::size_t r = 0; r < rows; ++r) {
    mask.set_row_kept(r, rng.bernoulli(0.7));
  }

  const Matrix dense = mask.to_dense();
  std::size_t dense_nnz = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const bool kept = mask.is_kept(r, c);
      EXPECT_EQ(kept, dense(r, c) != 0.0F)
          << "disagreement at (" << r << ',' << c << ')';
      if (kept) ++dense_nnz;
    }
  }
  EXPECT_EQ(dense_nnz, mask.nnz());
}

INSTANTIATE_TEST_SUITE_P(RandomMasks, BlockMaskPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(BlockMask, EqualityComparesPattern) {
  BlockMask a(4, 4, 2, 2);
  BlockMask b(4, 4, 2, 2);
  EXPECT_TRUE(a == b);
  b.set_row_kept(0, false);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace rtmobile
