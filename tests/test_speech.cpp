// Unit tests for the speech substrate: phone inventory, MFCC front end,
// waveform synthesis, the synthetic corpus, decoding, and PER scoring.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "speech/corpus.hpp"
#include "speech/decoder.hpp"
#include "speech/mfcc.hpp"
#include "speech/per.hpp"
#include "speech/phones.hpp"
#include "speech/synth.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace rtmobile::speech {
namespace {

// ---------------------------------------------------------------- phones
TEST(Phones, InventorySizes) {
  EXPECT_EQ(surface_phones().size(), kNumSurfacePhones);
  EXPECT_EQ(folded_phone_names().size(), kNumFoldedPhones);
}

TEST(Phones, EveryFoldTargetIsValid) {
  for (const SurfacePhone& phone : surface_phones()) {
    EXPECT_LT(phone.folded, kNumFoldedPhones) << phone.name;
  }
}

TEST(Phones, EveryFoldedClassIsReachable) {
  std::set<std::uint16_t> reached;
  for (const SurfacePhone& phone : surface_phones()) {
    reached.insert(phone.folded);
  }
  EXPECT_EQ(reached.size(), kNumFoldedPhones);
}

TEST(Phones, CanonicalFoldings) {
  // Spot-check the Lee & Hon folding rules.
  const auto folded_of = [](std::string_view name) {
    return surface_phones()[surface_phone_id(name)].folded;
  };
  EXPECT_EQ(folded_of("ix"), folded_phone_id("ih"));
  EXPECT_EQ(folded_of("ax"), folded_phone_id("ah"));
  EXPECT_EQ(folded_of("ao"), folded_phone_id("aa"));
  EXPECT_EQ(folded_of("el"), folded_phone_id("l"));
  EXPECT_EQ(folded_of("zh"), folded_phone_id("sh"));
  EXPECT_EQ(folded_of("pcl"), silence_phone());
  EXPECT_EQ(folded_of("h#"), silence_phone());
  EXPECT_EQ(folded_of("q"), silence_phone());
}

TEST(Phones, LookupThrowsOnUnknown) {
  EXPECT_THROW(static_cast<void>(surface_phone_id("xyzzy")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(folded_phone_id("xyzzy")),
               std::invalid_argument);
}

// ------------------------------------------------------------------ MFCC
TEST(Mfcc, MelScaleRoundTrip) {
  for (const double hz : {100.0, 440.0, 1000.0, 4000.0, 7999.0}) {
    EXPECT_NEAR(mel_to_hz(hz_to_mel(hz)), hz, hz * 1e-9);
  }
  EXPECT_NEAR(hz_to_mel(1000.0), 999.99, 1.0);  // mel(1kHz) ~ 1000
}

TEST(Mfcc, FilterBankPartitionsSpectrum) {
  MfccConfig config;
  const MelFilterBank bank(config);
  EXPECT_EQ(bank.num_filters(), config.num_mel_filters);
  // Adjacent triangles overlap: the pointwise sum over filters should be
  // positive across the passband interior.
  std::vector<float> total(config.fft_size / 2 + 1, 0.0F);
  for (std::size_t f = 0; f < bank.num_filters(); ++f) {
    const auto weights = bank.filter(f);
    for (std::size_t b = 0; b < total.size(); ++b) total[b] += weights[b];
  }
  const double hz_per_bin = config.sample_rate_hz /
                            static_cast<double>(config.fft_size);
  for (std::size_t b = 0; b < total.size(); ++b) {
    const double hz = static_cast<double>(b) * hz_per_bin;
    if (hz > 300.0 && hz < 7000.0) {
      EXPECT_GT(total[b], 0.0F) << "gap in mel coverage at " << hz << " Hz";
    }
  }
}

TEST(Mfcc, FrameCountFormula) {
  const MfccExtractor mfcc;
  EXPECT_EQ(mfcc.frame_count(399), 0U);
  EXPECT_EQ(mfcc.frame_count(400), 1U);
  EXPECT_EQ(mfcc.frame_count(400 + 160), 2U);
  EXPECT_EQ(mfcc.frame_count(16000), 1U + (16000 - 400) / 160);
}

TEST(Mfcc, ExtractShapesAndFiniteness) {
  MfccExtractor mfcc;
  EXPECT_EQ(mfcc.feature_dim(), 39U);
  Rng rng(1);
  std::vector<float> wave(16000);
  for (auto& s : wave) s = 0.1F * rng.normal();
  const Matrix features = mfcc.extract(wave);
  EXPECT_EQ(features.cols(), 39U);
  EXPECT_EQ(features.rows(), mfcc.frame_count(wave.size()));
  for (const float v : features.span()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Mfcc, FrameScratchReuseIsBitIdenticalToFreshScratch) {
  // The allocation-free frame path (caller-provided FrameScratch, the
  // one the 10 ms streaming front end runs) must be insensitive to
  // scratch history: state left behind by frame n must not leak into
  // frame n+1.
  const MfccExtractor mfcc;
  const MfccConfig& config = mfcc.config();
  Rng rng(7);
  std::vector<float> wave(config.frame_length + 1);
  for (auto& s : wave) s = 0.1F * rng.normal();
  const std::span<const float> samples{wave.data() + 1,
                                       config.frame_length};

  MfccExtractor::FrameScratch fresh(config);
  std::vector<float> expected(config.num_cepstra);
  mfcc.extract_frame(samples, wave[0], expected, fresh);

  MfccExtractor::FrameScratch scratch(config);
  std::vector<float> reused(config.num_cepstra);
  // Dirty the scratch with a different frame first, then recompute.
  mfcc.extract_frame({wave.data(), config.frame_length}, 0.25F, reused,
                     scratch);
  mfcc.extract_frame(samples, wave[0], reused, scratch);
  EXPECT_EQ(expected, reused);
}

TEST(Mfcc, CmnZeroesColumnMeans) {
  Rng rng(2);
  Matrix features(50, 13);
  fill_normal(features.span(), rng, 1.0F);
  for (std::size_t d = 0; d < 13; ++d) features(0, d) += 5.0F;  // bias
  cepstral_mean_normalize(features);
  for (std::size_t d = 0; d < 13; ++d) {
    double mean = 0.0;
    for (std::size_t t = 0; t < 50; ++t) {
      mean += static_cast<double>(features(t, d));
    }
    EXPECT_NEAR(mean / 50.0, 0.0, 1e-4);
  }
}

TEST(Mfcc, DeltasOfConstantSignalAreZero) {
  Matrix base(10, 3, 2.5F);
  const Matrix with_deltas = add_delta_features(base);
  EXPECT_EQ(with_deltas.cols(), 9U);
  for (std::size_t t = 0; t < 10; ++t) {
    for (std::size_t d = 3; d < 9; ++d) {
      EXPECT_FLOAT_EQ(with_deltas(t, d), 0.0F);
    }
  }
}

TEST(Mfcc, DeltasOfLinearRampAreConstant) {
  Matrix base(12, 1);
  for (std::size_t t = 0; t < 12; ++t) {
    base(t, 0) = static_cast<float>(t);
  }
  const Matrix with_deltas = add_delta_features(base);
  // Interior delta of a unit ramp is 1 (regression estimate of the slope);
  // edge clamping distorts t < 2 and t >= 10.
  for (std::size_t t = 2; t < 10; ++t) {
    EXPECT_NEAR(with_deltas(t, 1), 1.0F, 1e-5F);
  }
  // Delta-delta is zero where its own window sees only interior deltas
  // (t in [4, 8)): the clamped edge deltas leak two frames further in.
  for (std::size_t t = 4; t < 8; ++t) {
    EXPECT_NEAR(with_deltas(t, 2), 0.0F, 1e-5F);
  }
}

TEST(Mfcc, DistinguishesSpectrallyDifferentSignals) {
  // 300 Hz tone vs 3 kHz tone must produce clearly different cepstra.
  MfccConfig config;
  config.add_deltas = false;
  config.cepstral_mean_norm = false;
  const MfccExtractor mfcc(config);
  std::vector<float> low(4000);
  std::vector<float> high(4000);
  for (std::size_t i = 0; i < low.size(); ++i) {
    const double t = static_cast<double>(i) / 16000.0;
    low[i] = static_cast<float>(std::sin(2 * std::numbers::pi * 300.0 * t));
    high[i] = static_cast<float>(std::sin(2 * std::numbers::pi * 3000.0 * t));
  }
  const Matrix f_low = mfcc.extract(low);
  const Matrix f_high = mfcc.extract(high);
  double diff = 0.0;
  for (std::size_t d = 0; d < 13; ++d) {
    diff += std::fabs(static_cast<double>(f_low(5, d)) -
                      static_cast<double>(f_high(5, d)));
  }
  EXPECT_GT(diff, 5.0);
}

// ----------------------------------------------------------------- synth
TEST(Synth, RendersFiniteBoundedAudio) {
  Synthesizer synth;
  Rng rng(3);
  std::vector<float> wave;
  synth.render_phone(surface_phone_id("aa"), 1600, rng, wave);
  EXPECT_EQ(wave.size(), 1600U);
  for (const float s : wave) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_LT(std::fabs(s), 4.0F);
  }
}

TEST(Synth, VowelHasMoreEnergyThanSilence) {
  Synthesizer synth;
  Rng rng(4);
  std::vector<float> vowel;
  std::vector<float> silence;
  synth.render_phone(surface_phone_id("aa"), 1600, rng, vowel);
  synth.render_phone(surface_phone_id("h#"), 1600, rng, silence);
  EXPECT_GT(norm2(std::span<const float>(vowel)),
            10.0 * norm2(std::span<const float>(silence)));
}

TEST(Synth, SequenceLengthAccountsForCrossfade) {
  Synthesizer synth;
  Rng rng(5);
  const std::vector<std::size_t> phones = {surface_phone_id("s"),
                                           surface_phone_id("iy")};
  const std::vector<std::size_t> durations = {800, 800};
  const auto wave = synth.render_sequence(phones, durations, rng);
  // Cross-fade overlaps fade-length samples per boundary.
  const std::size_t fade = static_cast<std::size_t>(
      synth.config().coarticulation_ms / 1000.0 *
      synth.config().sample_rate_hz);
  EXPECT_EQ(wave.size(), 1600U - fade);
}

TEST(Synth, AcousticsTableCoversAllPhones) {
  EXPECT_EQ(phone_acoustics().size(), kNumSurfacePhones);
  // Vowels must have formants; silence must be near-silent.
  const auto& aa = phone_acoustics()[surface_phone_id("aa")];
  EXPECT_GT(aa.f1_hz, 0.0);
  EXPECT_GT(aa.voicing, 0.5);
  const auto& sil = phone_acoustics()[surface_phone_id("h#")];
  EXPECT_EQ(sil.level, 0.0);
}

// ---------------------------------------------------------------- corpus
TEST(Corpus, DeterministicForSeed) {
  CorpusConfig config;
  config.num_train_utterances = 4;
  config.num_test_utterances = 2;
  const Corpus a = SyntheticTimit(config).generate();
  const Corpus b = SyntheticTimit(config).generate();
  ASSERT_EQ(a.train.size(), 4U);
  ASSERT_EQ(a.test.size(), 2U);
  EXPECT_EQ(a.train[0].features, b.train[0].features);
  EXPECT_EQ(a.train[0].labels, b.train[0].labels);
  EXPECT_EQ(a.test[1].phones, b.test[1].phones);
}

TEST(Corpus, DifferentSeedsDiffer) {
  CorpusConfig config_a;
  config_a.num_train_utterances = 2;
  config_a.num_test_utterances = 1;
  CorpusConfig config_b = config_a;
  config_b.seed = config_a.seed + 1;
  const Corpus a = SyntheticTimit(config_a).generate();
  const Corpus b = SyntheticTimit(config_b).generate();
  EXPECT_FALSE(a.train[0].features == b.train[0].features);
}

TEST(Corpus, LabelsAreValidFoldedPhones) {
  CorpusConfig config;
  config.num_train_utterances = 6;
  config.num_test_utterances = 2;
  const Corpus corpus = SyntheticTimit(config).generate();
  for (const auto& utt : corpus.train) {
    EXPECT_EQ(utt.features.rows(), utt.labels.size());
    EXPECT_EQ(utt.features.cols(), corpus.feature_dim);
    for (const std::uint16_t label : utt.labels) {
      EXPECT_LT(label, kNumFoldedPhones);
    }
    // Reference phones are the collapsed frame labels.
    EXPECT_EQ(utt.phones, collapse_sequence(utt.labels));
    // Utterances are bracketed by silence.
    EXPECT_EQ(utt.phones.front(), silence_phone());
    EXPECT_EQ(utt.phones.back(), silence_phone());
  }
}

TEST(Corpus, SurfaceSequencesRespectPhonotactics) {
  const SyntheticTimit generator;
  Rng rng(6);
  const auto& phones = surface_phones();
  for (int trial = 0; trial < 20; ++trial) {
    const auto seq = generator.sample_surface_sequence(rng);
    ASSERT_GE(seq.size(), 4U);
    EXPECT_EQ(phones[seq.front()].name, "h#");
    EXPECT_EQ(phones[seq.back()].name, "h#");
  }
}

TEST(Corpus, WaveformModeProducesMfccFeatures) {
  CorpusConfig config;
  config.mode = FeatureMode::kWaveform;
  config.num_train_utterances = 1;
  config.num_test_utterances = 1;
  config.min_phones = 3;
  config.max_phones = 5;
  const Corpus corpus = SyntheticTimit(config).generate();
  EXPECT_EQ(corpus.feature_dim, 39U);
  const auto& utt = corpus.train[0];
  EXPECT_GT(utt.features.rows(), 10U);
  EXPECT_EQ(utt.features.cols(), 39U);
  EXPECT_EQ(utt.labels.size(), utt.features.rows());
  for (const float v : utt.features.span()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Corpus, CollapseSequence) {
  EXPECT_EQ(collapse_sequence({1, 1, 2, 2, 2, 1}),
            (std::vector<std::uint16_t>{1, 2, 1}));
  EXPECT_TRUE(collapse_sequence({}).empty());
}

// --------------------------------------------------------------- decoder
TEST(Decoder, FrameArgmax) {
  Matrix logits(2, 3, std::vector<float>{0.1F, 0.9F, 0.0F,
                                         2.0F, -1.0F, 1.0F});
  EXPECT_EQ(frame_argmax(logits), (std::vector<std::uint16_t>{1, 0}));
}

TEST(Decoder, MajoritySmoothingRemovesSpikes) {
  const std::vector<std::uint16_t> noisy = {5, 5, 5, 9, 5, 5, 5};
  EXPECT_EQ(majority_smooth(noisy, 3),
            (std::vector<std::uint16_t>{5, 5, 5, 5, 5, 5, 5}));
  EXPECT_EQ(majority_smooth(noisy, 1), noisy);
  EXPECT_THROW(majority_smooth(noisy, 2), std::invalid_argument);
}

TEST(Decoder, CollapseRunsWithMinimumLength) {
  const std::vector<std::uint16_t> frames = {1, 1, 1, 2, 3, 3, 3, 3};
  EXPECT_EQ(collapse_runs(frames, 1), (std::vector<std::uint16_t>{1, 2, 3}));
  EXPECT_EQ(collapse_runs(frames, 2), (std::vector<std::uint16_t>{1, 3}));
}

TEST(Decoder, CollapseNeverReturnsEmptyForNonEmptyInput) {
  const std::vector<std::uint16_t> frames = {1, 2, 3};
  EXPECT_EQ(collapse_runs(frames, 5), (std::vector<std::uint16_t>{1, 2, 3}));
}

// ------------------------------------------------------------------- PER
TEST(Per, IdenticalSequencesScoreZero) {
  const std::vector<std::uint16_t> seq = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(phone_error_rate(seq, seq), 0.0);
}

TEST(Per, KnownEditDistances) {
  const std::vector<std::uint16_t> ref = {1, 2, 3};
  const std::vector<std::uint16_t> sub = {1, 9, 3};
  const std::vector<std::uint16_t> del = {1, 3};
  const std::vector<std::uint16_t> ins = {1, 2, 9, 3};
  EXPECT_NEAR(phone_error_rate(ref, sub), 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(phone_error_rate(ref, del), 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(phone_error_rate(ref, ins), 100.0 / 3.0, 1e-9);
}

TEST(Per, AlignSplitsErrorTypes) {
  const std::vector<std::uint16_t> ref = {1, 2, 3, 4};
  const std::vector<std::uint16_t> hyp = {1, 9, 4};  // sub(2->9), del(3)
  const EditStats stats = align(ref, hyp);
  EXPECT_EQ(stats.substitutions + stats.deletions + stats.insertions, 2U);
  EXPECT_EQ(stats.reference_length, 4U);
  EXPECT_NEAR(stats.rate(), 0.5, 1e-9);
}

TEST(Per, EmptySequencesHandled) {
  const std::vector<std::uint16_t> empty;
  const std::vector<std::uint16_t> abc = {1, 2, 3};
  EXPECT_EQ(align(empty, abc).insertions, 3U);
  EXPECT_EQ(align(abc, empty).deletions, 3U);
  EXPECT_DOUBLE_EQ(align(empty, empty).rate(), 0.0);
}

TEST(Per, RateCanExceedOne) {
  const std::vector<std::uint16_t> ref = {1};
  const std::vector<std::uint16_t> hyp = {2, 3, 4};
  EXPECT_GT(align(ref, hyp).rate(), 1.0);
}

// ------------------------------------------------ repeat-heavy traffic

TEST(Zipf, ProbabilitiesMatchTheLaw) {
  const ZipfSampler zipf(8, 1.1);
  // p(r) proportional to 1/(r+1)^s, normalized.
  double total = 0.0;
  for (std::size_t r = 0; r < 8; ++r) total += 1.0 / std::pow(r + 1.0, 1.1);
  double sum = 0.0;
  for (std::size_t r = 0; r < 8; ++r) {
    const double expected = (1.0 / std::pow(r + 1.0, 1.1)) / total;
    EXPECT_NEAR(zipf.probability(r), expected, 1e-12);
    sum += zipf.probability(r);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, ZeroSkewIsUniform) {
  const ZipfSampler zipf(5, 0.0);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(zipf.probability(r), 0.2, 1e-12);
  }
}

TEST(Zipf, EmpiricalFrequenciesTrackTheDistribution) {
  const ZipfSampler zipf(8, 1.1);
  Rng rng(42);
  constexpr std::size_t kDraws = 40000;
  std::vector<std::size_t> counts(zipf.size(), 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < zipf.size(); ++r) {
    const double freq = static_cast<double>(counts[r]) / kDraws;
    // ~4-sigma binomial tolerance at this sample size.
    EXPECT_NEAR(freq, zipf.probability(r), 0.012)
        << "rank " << r << " drifted";
  }
  // The defining shape: strictly heavier head than tail.
  EXPECT_GT(counts[0], counts[zipf.size() - 1] * 2);
}

TEST(Traffic, SameSeedSameTraffic) {
  RepeatTrafficConfig config;
  config.distinct_utterances = 6;
  config.phones_per_utterance = 3;
  config.samples_per_phone = 400;
  config.seed = 1234;
  UtteranceRepeatGenerator a(config);
  UtteranceRepeatGenerator b(config);
  ASSERT_EQ(a.pool_size(), 6U);
  for (std::size_t r = 0; r < a.pool_size(); ++r) {
    ASSERT_FALSE(a.utterance(r).empty());
    EXPECT_EQ(a.utterance(r), b.utterance(r)) << "pool rank " << r;
  }
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.next_rank(), b.next_rank()) << "draw " << i;
  }
}

TEST(Traffic, DifferentSeedsDiverge) {
  RepeatTrafficConfig config;
  config.distinct_utterances = 4;
  config.phones_per_utterance = 3;
  config.samples_per_phone = 400;
  config.seed = 1;
  UtteranceRepeatGenerator a(config);
  config.seed = 2;
  UtteranceRepeatGenerator b(config);
  EXPECT_NE(a.utterance(0), b.utterance(0));
  std::size_t differing_draws = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    if (a.next_rank() != b.next_rank()) ++differing_draws;
  }
  EXPECT_GT(differing_draws, 0U);
}

TEST(Traffic, DrawsStayInPoolAndDrawingNeverMutatesPool) {
  RepeatTrafficConfig config;
  config.distinct_utterances = 5;
  config.phones_per_utterance = 2;
  config.samples_per_phone = 300;
  UtteranceRepeatGenerator gen(config);
  const std::vector<float> hot = gen.utterance(0);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_LT(gen.next_rank(), gen.pool_size());
  }
  EXPECT_EQ(gen.utterance(0), hot);
}

}  // namespace
}  // namespace rtmobile::speech
