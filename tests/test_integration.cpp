// Integration tests: the paper's pipeline end to end on a scaled task —
// synthetic corpus -> dense training -> PER scoring -> BSP pruning ->
// compilation -> compiled inference agreeing with the reference model.
#include <gtest/gtest.h>

#include "compiler/gru_executor.hpp"
#include "core/bsp.hpp"
#include "core/rtmobile.hpp"
#include "speech/corpus.hpp"
#include "speech/per.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

/// Shared fixture: one small corpus and one dense-trained model reused by
/// all integration tests (training is the expensive part).
class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    speech::CorpusConfig corpus_config;
    corpus_config.num_train_utterances = 24;
    corpus_config.num_test_utterances = 8;
    corpus_config.min_phones = 4;
    corpus_config.max_phones = 8;
    corpus_config.seed = 2024;
    corpus = new speech::Corpus(
        speech::SyntheticTimit(corpus_config).generate());

    ModelConfig model_config;
    model_config.input_dim = 39;
    model_config.hidden_dim = 48;
    model_config.num_layers = 2;
    model_config.num_classes = 39;
    model = new SpeechModel(model_config);
    Rng rng(7);
    model->init(rng);

    Trainer trainer(*model);
    Adam adam(4e-3);
    TrainConfig train_config;
    train_config.epochs = 10;
    train_config.lr_decay = 0.9;
    trainer.train(train_config, corpus->train, adam, rng);
  }

  static void TearDownTestSuite() {
    delete model;
    model = nullptr;
    delete corpus;
    corpus = nullptr;
  }

  static speech::Corpus* corpus;
  static SpeechModel* model;
};

speech::Corpus* EndToEnd::corpus = nullptr;
SpeechModel* EndToEnd::model = nullptr;

TEST_F(EndToEnd, DenseModelLearnsTheTask) {
  const EvalResult train_eval = Trainer::evaluate(*model, corpus->train);
  const EvalResult test_eval = Trainer::evaluate(*model, corpus->test);
  EXPECT_GT(train_eval.frame_accuracy, 0.55);
  EXPECT_GT(test_eval.frame_accuracy, 0.45);
  // PER must be far below the 100% of an untrained model.
  const double per = speech::corpus_per(*model, corpus->test);
  EXPECT_LT(per, 65.0);
}

TEST_F(EndToEnd, ModeratePruningPreservesPer) {
  // The paper's core accuracy claim, scaled down: a moderate BSP
  // compression (~4x on this small model) with ADMM + retraining should
  // cost little PER versus dense.
  SpeechModel pruned = *model;
  BspConfig config;
  config.num_r = 4;
  config.num_c = 4;
  config.col_keep_fraction = 0.25;
  config.row_keep_fraction = 1.0;
  config.rho = 5e-2;
  config.admm_rounds_step1 = 3;
  config.epochs_per_round = 1;
  config.retrain_epochs = 6;
  config.prune_fc = false;
  BspPruner pruner(config);
  Rng rng(11);
  const BspResult result = pruner.prune(pruned, corpus->train, rng);
  EXPECT_GT(result.stats.overall_rate(), 3.0);

  const double dense_per = speech::corpus_per(*model, corpus->test);
  const double pruned_per = speech::corpus_per(pruned, corpus->test);
  // Graceful: within 12 points of dense on this small task.
  EXPECT_LT(pruned_per, dense_per + 12.0);
}

TEST_F(EndToEnd, ExtremePruningDegradesMoreThanModerate) {
  // Table I's shape: degradation grows with compression.
  SpeechModel moderate = *model;
  SpeechModel extreme = *model;
  BspConfig config;
  config.num_r = 4;
  config.num_c = 4;
  config.admm_rounds_step1 = 1;
  config.retrain_epochs = 2;
  config.prune_fc = false;
  Rng rng(12);

  config.col_keep_fraction = 0.5;
  BspPruner(config).prune(moderate, corpus->train, rng);
  config.col_keep_fraction = 0.1;
  config.row_keep_fraction = 0.5;
  BspPruner(config).prune(extreme, corpus->train, rng);

  const double moderate_per = speech::corpus_per(moderate, corpus->test);
  const double extreme_per = speech::corpus_per(extreme, corpus->test);
  EXPECT_GE(extreme_per, moderate_per - 2.0)
      << "20x pruning should not beat 2x pruning";
}

TEST_F(EndToEnd, CompiledModelReproducesReferencePer) {
  SpeechModel pruned = *model;
  BspConfig config;
  config.num_r = 4;
  config.num_c = 4;
  config.col_keep_fraction = 0.25;
  BspPruner pruner(config);
  const BspResult result = pruner.prune_one_shot(pruned);

  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.threads = 2;
  ThreadPool pool(2);
  const CompiledSpeechModel compiled(pruned, result.block_masks, options,
                                     &pool);
  // Per-utterance logits agree, therefore PER agrees.
  for (const auto& utt : corpus->test) {
    const Matrix reference = pruned.forward(utt.features);
    const Matrix fast = compiled.infer(utt.features);
    EXPECT_LT(max_abs_diff(reference.span(), fast.span()), 5e-3F);
  }
}

TEST_F(EndToEnd, FacadeDeploysTrainedModel) {
  SpeechModel work = *model;
  RtMobileConfig config;
  config.bsp.num_r = 4;
  config.bsp.num_c = 4;
  config.bsp.col_keep_fraction = 0.25;
  config.bsp.rho = 5e-2;
  config.bsp.admm_rounds_step1 = 2;
  config.bsp.admm_rounds_step2 = 0;
  config.bsp.retrain_epochs = 4;
  config.bsp.prune_fc = false;
  config.compiler.threads = 2;
  Rng rng(13);
  const RtMobile framework(config);
  const Deployment deployment =
      framework.deploy(work, corpus->train, rng);
  ASSERT_NE(deployment.compiled, nullptr);
  EXPECT_GT(deployment.pruning.stats.overall_rate(), 3.0);
  // The deployed executor still recognizes speech (PER not catastrophic
  // versus the dense reference).
  speech::DecoderConfig decoder;
  double compiled_per = 0.0;
  {
    speech::EditStats total;
    for (const auto& utt : corpus->test) {
      const Matrix logits = deployment.compiled->infer(utt.features);
      const auto decoded = speech::greedy_decode(logits, decoder);
      total += speech::align({utt.phones.data(), utt.phones.size()},
                             {decoded.data(), decoded.size()});
    }
    compiled_per = total.rate() * 100.0;
  }
  const double dense_per = speech::corpus_per(*model, corpus->test);
  EXPECT_LT(compiled_per, dense_per + 15.0);
}

TEST_F(EndToEnd, WaveformPipelineEndToEnd) {
  // Waveform -> MFCC -> trained model: exercises the full speech stack.
  speech::CorpusConfig corpus_config;
  corpus_config.mode = speech::FeatureMode::kWaveform;
  corpus_config.num_train_utterances = 2;
  corpus_config.num_test_utterances = 1;
  corpus_config.min_phones = 3;
  corpus_config.max_phones = 5;
  const speech::Corpus wave_corpus =
      speech::SyntheticTimit(corpus_config).generate();
  ASSERT_EQ(wave_corpus.feature_dim, 39U);
  // The dense model consumes the MFCC features directly.
  const Matrix logits = model->forward(wave_corpus.test[0].features);
  EXPECT_EQ(logits.rows(), wave_corpus.test[0].features.rows());
  EXPECT_EQ(logits.cols(), 39U);
}

}  // namespace
}  // namespace rtmobile
