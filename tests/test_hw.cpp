// Unit tests for the hardware layer: thread pool, timers, device/energy
// models, and the calibration of the models against the paper's Table II.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "hw/device_model.hpp"
#include "hw/energy_model.hpp"
#include "hw/paper_reference.hpp"
#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"

namespace rtmobile {
namespace {

/// Keeps the optimizer from discarding a benchmark-style computation.
void benchmark_do_not_optimize(double& value) {
  asm volatile("" : "+m"(value));
}

// ----------------------------------------------------------- thread pool
TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, HandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 3);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, RunAllExecutesEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(tasks);
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw std::runtime_error("worker failure"); });
  tasks.emplace_back([] {});
  EXPECT_THROW(pool.run_all(tasks), std::runtime_error);
  // Pool must still be usable after an exception.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  EXPECT_GE(ThreadPool::default_thread_count(), 1U);
  EXPECT_LE(ThreadPool::default_thread_count(), 16U);
}

// ----------------------------------------------------------------- timer
TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  benchmark_do_not_optimize(sink);
  EXPECT_GT(timer.elapsed_us(), 0.0);
}

TEST(Timer, BestOfIsNotWorseThanAnyRun) {
  int calls = 0;
  const double best = time_best_of_us([&calls] { ++calls; }, 10, 3);
  EXPECT_EQ(calls, 30);
  EXPECT_GE(best, 0.0);
  EXPECT_THROW(time_mean_us([] {}, 0), std::invalid_argument);
}

// ---------------------------------------------------------- device model
TEST(DeviceModel, ThroughputDecaysMonotonicallyWithCompression) {
  const DeviceModel gpu = DeviceModel::adreno640_gpu();
  double previous = gpu.effective_gops(1.0);
  for (const double cr : {10.0, 43.0, 103.0, 301.0}) {
    const double current = gpu.effective_gops(cr);
    EXPECT_LT(current, previous);
    previous = current;
  }
  // Clamped beyond the calibration anchor.
  EXPECT_NEAR(gpu.effective_gops(301.0), gpu.effective_gops(500.0), 1e-9);
  EXPECT_THROW(static_cast<void>(gpu.effective_gops(0.5)),
               std::invalid_argument);
}

TEST(DeviceModel, CalibratedEndpointsMatchTable2) {
  const DeviceModel gpu = DeviceModel::adreno640_gpu();
  const DeviceModel cpu = DeviceModel::kryo485_cpu();
  const auto rows = paper::table2();
  const auto& dense = rows.front();
  const auto& sparsest = rows.back();
  // Endpoints were used for calibration: require < 3% error there.
  EXPECT_NEAR(gpu.time_us({dense.gop, dense.compression_rate}),
              dense.gpu_time_us, dense.gpu_time_us * 0.03);
  EXPECT_NEAR(gpu.time_us({sparsest.gop, sparsest.compression_rate}),
              sparsest.gpu_time_us, sparsest.gpu_time_us * 0.03);
  EXPECT_NEAR(cpu.time_us({dense.gop, dense.compression_rate}),
              dense.cpu_time_us, dense.cpu_time_us * 0.03);
  EXPECT_NEAR(cpu.time_us({sparsest.gop, sparsest.compression_rate}),
              sparsest.cpu_time_us, sparsest.cpu_time_us * 0.03);
}

TEST(DeviceModel, InteriorPointsPredictedWithinTolerance) {
  // The interior rows of Table II are *predictions* of the endpoint-
  // calibrated model. The GPU column follows the CR^q law closely (<=10%);
  // the CPU column is noisier in the paper itself (time barely moves from
  // 80x to 103x), so it gets a 20% bar.
  const DeviceModel gpu = DeviceModel::adreno640_gpu();
  const DeviceModel cpu = DeviceModel::kryo485_cpu();
  for (const auto& row : paper::table2()) {
    const Workload workload{row.gop, row.compression_rate};
    EXPECT_NEAR(gpu.time_us(workload), row.gpu_time_us,
                row.gpu_time_us * 0.10)
        << "GPU at " << row.compression_rate << "x";
    EXPECT_NEAR(cpu.time_us(workload), row.cpu_time_us,
                row.cpu_time_us * 0.20)
        << "CPU at " << row.compression_rate << "x";
  }
}

TEST(DeviceModel, CrossoverWithEseMatchesPaperClaim) {
  // Paper: "when the compression rate is higher than 245x, RTMobile can
  // outperform ... while maintaining the same inference time" — the GPU
  // crosses ESE's 82.7us between 153x and 245x.
  const DeviceModel gpu = DeviceModel::adreno640_gpu();
  const auto rows = paper::table2();
  double t_153 = 0.0;
  double t_245 = 0.0;
  for (const auto& row : rows) {
    if (row.compression_rate == 153.0) {
      t_153 = gpu.time_us({row.gop, row.compression_rate});
    }
    if (row.compression_rate == 245.0) {
      t_245 = gpu.time_us({row.gop, row.compression_rate});
    }
  }
  EXPECT_GT(t_153, paper::kEseTimeUs);
  EXPECT_LT(t_245, paper::kEseTimeUs * 1.05);
}

TEST(DeviceModel, ValidatesConstruction) {
  EXPECT_THROW(DeviceModel("x", -1.0, 0.9, 10.0, 0.0, 1.0),
               std::invalid_argument);  // dense_gops
  EXPECT_THROW(DeviceModel("x", 1.0, 1.5, 10.0, 0.0, 1.0),
               std::invalid_argument);  // exponent > 1
  EXPECT_THROW(DeviceModel("x", 2.0, 0.9, 1.0, 0.0, 1.0),
               std::invalid_argument);  // max_cr <= 1
  EXPECT_THROW(DeviceModel("x", 2.0, 0.9, 10.0, 0.0, -1.0),
               std::invalid_argument);  // power
}

// ---------------------------------------------------------- energy model
TEST(EnergyModel, EseReferenceFramesPerJoule) {
  const EseFpgaReference ese;
  // 1 / (41 W * 82.7 us) = 294.9 frames/J.
  EXPECT_NEAR(ese.frames_per_joule(), 294.9, 0.5);
}

TEST(EnergyModel, NormalizedEfficiencyMatchesTable2Endpoints) {
  const EnergyModel energy;
  const DeviceModel gpu = DeviceModel::adreno640_gpu();
  const DeviceModel cpu = DeviceModel::kryo485_cpu();
  const auto rows = paper::table2();
  // Dense endpoint: paper reports GPU 0.88x, CPU 0.25x of ESE.
  const auto& dense = rows.front();
  EXPECT_NEAR(
      energy.normalized_efficiency(gpu, {dense.gop, dense.compression_rate}),
      dense.gpu_energy_eff, dense.gpu_energy_eff * 0.05);
  EXPECT_NEAR(
      energy.normalized_efficiency(cpu, {dense.gop, dense.compression_rate}),
      dense.cpu_energy_eff, dense.cpu_energy_eff * 0.05);
  // Most-compressed endpoint: ~39.8x / ~12.3x.
  const auto& sparsest = rows.back();
  EXPECT_NEAR(energy.normalized_efficiency(
                  gpu, {sparsest.gop, sparsest.compression_rate}),
              sparsest.gpu_energy_eff, sparsest.gpu_energy_eff * 0.05);
  EXPECT_NEAR(energy.normalized_efficiency(
                  cpu, {sparsest.gop, sparsest.compression_rate}),
              sparsest.cpu_energy_eff, sparsest.cpu_energy_eff * 0.05);
}

TEST(EnergyModel, HeadlineClaim40xAt245) {
  // "about 40x energy-efficiency over ESE with the same inference time."
  const EnergyModel energy;
  const DeviceModel gpu = DeviceModel::adreno640_gpu();
  for (const auto& row : paper::table2()) {
    if (row.compression_rate != 245.0) continue;
    const double eff = energy.normalized_efficiency(
        gpu, {row.gop, row.compression_rate});
    EXPECT_GT(eff, 30.0);
    EXPECT_LT(eff, 50.0);
  }
}

TEST(EnergyModel, DirectTimePowerOverload) {
  const EnergyModel energy;
  // ESE vs itself is exactly 1.0.
  EXPECT_NEAR(energy.normalized_efficiency(paper::kEseTimeUs,
                                           paper::kEsePowerW),
              1.0, 1e-9);
  EXPECT_THROW(
      static_cast<void>(energy.normalized_efficiency(0.0, 1.0)),
      std::invalid_argument);
}

// -------------------------------------------------------- paper reference
TEST(PaperReference, TablesHaveExpectedShape) {
  EXPECT_EQ(paper::table1_bsp().size(), 10U);
  EXPECT_EQ(paper::table1_baselines().size(), 6U);
  EXPECT_EQ(paper::table2().size(), 10U);
  // GOP column is consistent with 0.58 / compression.
  for (const auto& row : paper::table2()) {
    EXPECT_NEAR(row.gop, paper::kDenseGop / row.compression_rate,
                row.gop * 0.20);
  }
  // PER degradation is monotone in compression for the BSP rows.
  double previous = -1.0;
  for (const auto& row : paper::table1_bsp()) {
    EXPECT_GE(row.per_pruned - row.per_baseline, previous - 1e-9);
    previous = row.per_pruned - row.per_baseline;
  }
}

}  // namespace
}  // namespace rtmobile
