// Chaos suite for the fault-tolerant serving stack.
//
// The FaultInjector is deterministic, so every scenario here is a
// replayable schedule, not a flake: a shard pump killed mid-utterance, a
// wedged pump aborted past the park grace, ingress rings lying "full",
// connections reset at the socket, dead clients idling past the server's
// deadline. The load-bearing guarantees under test:
//  - a stream surviving a killed shard produces logits and events
//    bit-identical to an undisturbed run (failover replay), and
//  - no stream ever hangs: it either completes or gets a terminal typed
//    kAborted event — never silence.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "fault/fault_injector.hpp"
#include "net/recognizer_server.hpp"
#include "net/wire_client.hpp"
#include "net/wire_protocol.hpp"
#include "obs/telemetry.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "serve/local_recognizer.hpp"
#include "serve/sharded_engine.hpp"
#include "serve/submission_queue.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using fault::Site;
using fault::Trigger;
using serve::ShardConfig;
using serve::ShardedEngine;
using serve::ShardHealth;
using serve::StreamConfig;
using serve::StreamHandle;
using speech::StreamEvent;
using speech::StreamEventKind;

// ------------------------------------------------------------ injector

TEST(FaultInjector, TriggersAreDeterministic) {
  FaultInjector injector;

  FaultSpec nth;
  nth.trigger = Trigger::nth_hit(3);
  injector.arm(Site::kEngineStep, nth);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(injector.should_fire(Site::kEngineStep));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(injector.hits(Site::kEngineStep), 6U);
  EXPECT_EQ(injector.fires(Site::kEngineStep), 1U);

  FaultSpec every;
  every.trigger = Trigger::every_k(2);
  injector.arm(Site::kEngineStep, every);  // re-arm resets hit state
  fired.clear();
  for (int i = 0; i < 6; ++i) {
    fired.push_back(injector.should_fire(Site::kEngineStep));
  }
  EXPECT_EQ(fired,
            (std::vector<bool>{false, true, false, true, false, true}));

  FaultSpec once;
  once.trigger = Trigger::one_shot();
  injector.arm(Site::kQueuePush, once);
  EXPECT_TRUE(injector.should_fire(Site::kQueuePush));
  EXPECT_FALSE(injector.should_fire(Site::kQueuePush));
  EXPECT_EQ(injector.total_fires(), injector.fires(Site::kEngineStep) +
                                        injector.fires(Site::kQueuePush));
}

TEST(FaultInjector, KeyFilterTargetsOneVictimDeterministically) {
  // The victim's hit ordinals must not depend on how many non-matching
  // keys interleave — a keyed nth-hit spec is exact.
  FaultInjector injector;
  FaultSpec spec;
  spec.trigger = Trigger::nth_hit(2);
  spec.key = 7;
  injector.arm(Site::kPumpFault, spec);

  EXPECT_FALSE(injector.should_fire(Site::kPumpFault, 3));  // wrong key
  EXPECT_FALSE(injector.should_fire(Site::kPumpFault, 7));  // hit 1
  EXPECT_FALSE(injector.should_fire(Site::kPumpFault, 3));
  EXPECT_FALSE(injector.should_fire(Site::kPumpFault, 3));
  EXPECT_TRUE(injector.should_fire(Site::kPumpFault, 7));  // hit 2 fires
  EXPECT_FALSE(injector.should_fire(Site::kPumpFault, 7));
}

TEST(FaultInjector, SeededRandomScheduleReplaysExactly) {
  auto schedule = [](std::uint64_t seed) {
    FaultInjector injector;
    FaultSpec spec;
    spec.trigger = Trigger::random(0.3, seed);
    injector.arm(Site::kConnRead, spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.should_fire(Site::kConnRead));
    }
    return fired;
  };
  const std::vector<bool> a = schedule(42);
  EXPECT_EQ(a, schedule(42));   // same seed: identical schedule
  EXPECT_NE(a, schedule(43));   // different seed: different schedule
  std::size_t fires = 0;
  for (const bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0U);
  EXPECT_LT(fires, 64U);
}

TEST(FaultInjector, MaxFiresBoundsTheBlastRadius) {
  FaultInjector injector;
  obs::Telemetry telemetry;
  FaultInjector counted(&telemetry);
  FaultSpec spec;
  spec.trigger = Trigger::every_k(1);  // every hit...
  spec.max_fires = 2;                  // ...but only twice
  counted.arm(Site::kConnWrite, spec);
  std::size_t fires = 0;
  for (int i = 0; i < 10; ++i) {
    fires += counted.should_fire(Site::kConnWrite) ? 1 : 0;
  }
  EXPECT_EQ(fires, 2U);
  EXPECT_EQ(telemetry.fault().injected->value(), 2U);
}

// ----------------------------------------------------- serve fixtures

std::vector<float> random_waveform(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

struct ServeFixture {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
};

ServeFixture make_fixture(std::size_t hidden, std::uint64_t seed) {
  ServeFixture f;
  Rng rng(seed);
  f.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  f.model->init(rng);
  ParamSet params;
  f.model->register_params(params);
  for (const std::string& name : f.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    f.masks.emplace(name, std::move(mask));
  }
  f.options.format = SparseFormat::kBspc;
  return f;
}

/// Undisturbed reference run (synchronous pumping): per-stream logits
/// and full event sequences for `waves`.
struct ReferenceRun {
  std::vector<Matrix> logits;
  std::vector<std::vector<StreamEvent>> events;
};

ReferenceRun reference_run(const ServeFixture& f,
                           const std::vector<std::vector<float>>& waves) {
  ShardConfig config;
  config.shards = 1;
  ShardedEngine engine(*f.model, f.masks, f.options, config);
  std::vector<StreamHandle> handles;
  for (std::size_t s = 0; s < waves.size(); ++s) {
    handles.push_back(engine.open_stream(StreamConfig{}));
  }
  for (std::size_t s = 0; s < waves.size(); ++s) {
    EXPECT_TRUE(engine.submit_audio(handles[s], waves[s]));
    EXPECT_TRUE(engine.finish_stream(handles[s]));
  }
  engine.drain();
  ReferenceRun ref;
  ref.logits.resize(waves.size());
  ref.events.resize(waves.size());
  for (std::size_t s = 0; s < waves.size(); ++s) {
    EXPECT_TRUE(engine.stream_done(handles[s]));
    ref.logits[s] = engine.stream_logits(handles[s]);
    engine.poll_events(handles[s], ref.events[s]);
  }
  return ref;
}

bool wait_for(const std::function<bool()>& predicate,
              std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// ------------------------------------------------- chaos: shard death

TEST(ShardSupervision, KilledShardFailsOverAndReplaysBitIdentical) {
  // Kill one pump mid-utterance with an injected fault. The supervisor
  // must quarantine the shard, migrate its live streams onto the healthy
  // sibling, and the re-served streams must finish with logits AND event
  // sequences bit-identical to an undisturbed run — the replay guarantee.
  constexpr std::size_t kStreams = 4;
  const ServeFixture f = make_fixture(16, 1001);
  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < kStreams; ++s) {
    waves.push_back(random_waveform(5000 + 700 * s, 500 + s));
  }
  const ReferenceRun ref = reference_run(f, waves);

  obs::Telemetry telemetry;
  FaultInjector injector(&telemetry);
  ShardConfig config;
  config.shards = 2;
  config.policy = serve::RoutePolicy::kRoundRobin;
  config.engine.fault = &injector;
  config.engine.telemetry = &telemetry;
  config.supervisor.enabled = true;
  config.supervisor.check_interval = std::chrono::milliseconds(1);
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  std::vector<StreamHandle> handles;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.open_stream(StreamConfig{}));
  }
  const std::size_t victim = engine.stream_shard(handles[0]);

  // The 6th pump round on the victim shard throws: far enough in that
  // streams have state to replay, early enough that none is done.
  FaultSpec death;
  death.trigger = Trigger::nth_hit(6);
  death.key = victim;
  injector.arm(Site::kPumpFault, death);

  engine.start();
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kStreams; ++s) {
    producers.emplace_back([&engine, &waves, &handles, s] {
      const std::vector<float>& wave = waves[s];
      for (std::size_t pos = 0; pos < wave.size(); pos += 800) {
        const std::size_t n = std::min<std::size_t>(800, wave.size() - pos);
        while (!engine.submit_audio(
            handles[s], std::span<const float>(wave).subspan(pos, n))) {
          std::this_thread::yield();  // victim dying reads as backpressure
        }
      }
      while (!engine.finish_stream(handles[s])) std::this_thread::yield();
    });
  }
  for (std::thread& t : producers) t.join();
  // Every stream must complete — zero streams hanging is the contract.
  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(wait_for([&] { return engine.stream_done(handles[s]); },
                         std::chrono::seconds(30)))
        << "stream " << s << " hung after shard failure";
  }
  engine.stop();  // must NOT rethrow: the failure was handled (failed over)

  EXPECT_EQ(engine.shard_health(victim), ShardHealth::kFailed);
  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_NE(engine.stream_shard(handles[s]), victim) << "stream " << s;
    EXPECT_EQ(engine.stream_logits(handles[s]), ref.logits[s])
        << "stream " << s;  // bitwise
    std::vector<StreamEvent> events;
    engine.poll_events(handles[s], events);
    EXPECT_EQ(events, ref.events[s]) << "stream " << s;
    ASSERT_FALSE(events.empty());
    EXPECT_TRUE(events.back().is_final);
  }

  EXPECT_EQ(telemetry.fault().injected->value(), 1U);
  EXPECT_GE(telemetry.fault().detected->value(), 1U);
  EXPECT_EQ(telemetry.fault().failovers->value(), 1U);
  EXPECT_GE(telemetry.fault().replayed_streams->value(), 1U);
  EXPECT_EQ(telemetry.fault().aborted_streams->value(), 0U);
}

TEST(ShardSupervision, FailedShardCanRejoinAfterProbe) {
  // Synchronous mode: fail a shard over directly, verify it is out of
  // rotation, then rejoin it — the health probe must pass on the intact
  // engine and new streams must land there again.
  const ServeFixture f = make_fixture(16, 1002);
  obs::Telemetry telemetry;
  ShardConfig config;
  config.shards = 2;
  config.policy = serve::RoutePolicy::kRoundRobin;
  config.engine.telemetry = &telemetry;
  config.supervisor.enabled = true;
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  const std::vector<float> wave = random_waveform(6000, 17);
  const StreamHandle h = engine.open_stream(StreamConfig{});
  const std::size_t home = engine.stream_shard(h);
  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(0, wave.size() / 2)));
  engine.drain();

  EXPECT_EQ(engine.fail_over_shard(home), 1U);
  EXPECT_EQ(engine.shard_health(home), ShardHealth::kFailed);
  const std::size_t away = engine.stream_shard(h);
  EXPECT_NE(away, home);
  // Out of rotation: new streams avoid the failed shard.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.stream_shard(engine.open_stream(StreamConfig{})), away);
  }
  // The migrated stream still finishes bit-identically.
  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(wave.size() / 2)));
  ASSERT_TRUE(engine.finish_stream(h));
  engine.drain();
  ASSERT_TRUE(engine.stream_done(h));
  EXPECT_EQ(engine.stream_logits(h),
            reference_run(f, {wave}).logits[0]);  // bitwise

  ASSERT_TRUE(engine.rejoin_shard(home));
  EXPECT_EQ(engine.shard_health(home), ShardHealth::kHealthy);
  bool home_used = false;
  for (int i = 0; i < 4; ++i) {
    home_used = home_used ||
                engine.stream_shard(engine.open_stream(StreamConfig{})) ==
                    home;
  }
  EXPECT_TRUE(home_used);
}

TEST(ShardSupervision, WedgedPumpStreamsGetTerminalAbortNotSilence) {
  // A pump that stalls past the park grace cannot be seized state-clean;
  // its streams must get a terminal typed kAborted event — the client
  // always hears *something* — and the shard is marked kLost.
  const ServeFixture f = make_fixture(16, 1003);
  obs::Telemetry telemetry;
  FaultInjector injector(&telemetry);
  ShardConfig config;
  config.shards = 2;
  config.policy = serve::RoutePolicy::kRoundRobin;
  config.engine.fault = &injector;
  config.engine.telemetry = &telemetry;
  config.supervisor.enabled = true;
  config.supervisor.check_interval = std::chrono::milliseconds(1);
  config.supervisor.stall_timeout = std::chrono::milliseconds(20);
  config.supervisor.park_grace = std::chrono::milliseconds(30);
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  const StreamHandle doomed = engine.open_stream(StreamConfig{});
  const StreamHandle healthy = engine.open_stream(StreamConfig{});
  const std::size_t victim = engine.stream_shard(doomed);
  ASSERT_NE(victim, engine.stream_shard(healthy));
  const std::vector<float> wave = random_waveform(5000, 23);

  engine.start();
  ASSERT_TRUE(wait_for(
      [&] {
        return engine.submit_audio(
            doomed, std::span<const float>(wave).subspan(0, 2000));
      },
      std::chrono::seconds(5)));

  // Wedge the victim pump for far longer than stall_timeout + park_grace.
  FaultSpec wedge;
  wedge.trigger = Trigger::one_shot();
  wedge.key = victim;
  wedge.stall = std::chrono::milliseconds(400);
  injector.arm(Site::kPumpStall, wedge);

  ASSERT_TRUE(wait_for(
      [&] { return engine.shard_health(victim) == ShardHealth::kLost; },
      std::chrono::seconds(10)));

  // The doomed stream terminated with a typed abort, never silence.
  ASSERT_TRUE(
      wait_for([&] { return engine.stream_done(doomed); },
               std::chrono::seconds(5)));
  std::vector<StreamEvent> events;
  engine.poll_events(doomed, events);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, StreamEventKind::kAborted);
  EXPECT_TRUE(events.back().is_final);

  // The sibling shard keeps serving through the whole episode.
  std::size_t pos = 0;
  while (pos < wave.size()) {
    const std::size_t n = std::min<std::size_t>(1000, wave.size() - pos);
    ASSERT_TRUE(wait_for(
        [&] {
          return engine.submit_audio(
              healthy, std::span<const float>(wave).subspan(pos, n));
        },
        std::chrono::seconds(5)));
    pos += n;
  }
  ASSERT_TRUE(wait_for([&] { return engine.finish_stream(healthy); },
                       std::chrono::seconds(5)));
  ASSERT_TRUE(wait_for([&] { return engine.stream_done(healthy); },
                       std::chrono::seconds(30)));
  engine.stop();  // wedged-pump abort was handled: no rethrow

  EXPECT_EQ(engine.stream_logits(healthy),
            reference_run(f, {wave}).logits[0]);  // bitwise
  EXPECT_GE(telemetry.fault().detected->value(), 1U);
  EXPECT_GE(telemetry.fault().aborted_streams->value(), 1U);
}

TEST(ShardSupervision, InjectedRingFullSurfacesAsBackpressure) {
  // kQueuePush makes the ingress ring lie "full" deterministically: the
  // producer sees ordinary backpressure, never an error.
  const ServeFixture f = make_fixture(16, 1004);
  FaultInjector injector;
  ShardConfig config;
  config.shards = 1;
  config.engine.fault = &injector;
  ShardedEngine engine(*f.model, f.masks, f.options, config);
  const StreamHandle h = engine.open_stream(StreamConfig{});
  const std::vector<float> wave = random_waveform(3000, 31);

  FaultSpec full;
  full.trigger = Trigger::one_shot();
  injector.arm(Site::kQueuePush, full);
  EXPECT_FALSE(engine.submit_audio(h, wave));  // injected "ring full"
  EXPECT_TRUE(engine.submit_audio(h, wave));   // retry lands
  EXPECT_TRUE(engine.finish_stream(h));
  engine.drain();
  EXPECT_TRUE(engine.stream_done(h));
  EXPECT_EQ(injector.fires(Site::kQueuePush), 1U);
}

// ----------------------------------- drain_shard vs. live submitters

TEST(ShardMigration, DrainRacingLiveSubmittersLosesNothing) {
  // drain_shard runs while producer threads keep submitting to the very
  // streams being migrated. The route latch must keep every stream's
  // command order exact across the re-route: final logits and event
  // sequences bit-identical to an undisturbed run, no lost or duplicated
  // command.
  constexpr std::size_t kStreams = 4;
  const ServeFixture f = make_fixture(16, 1005);
  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < kStreams; ++s) {
    waves.push_back(random_waveform(6000 + 500 * s, 600 + s));
  }
  const ReferenceRun ref = reference_run(f, waves);

  ShardConfig config;
  config.shards = 2;
  config.policy = serve::RoutePolicy::kRoundRobin;
  config.queue_capacity = 16;  // small ring: drains interleave with pushes
  ShardedEngine engine(*f.model, f.masks, f.options, config);

  std::vector<StreamHandle> handles;
  for (std::size_t s = 0; s < kStreams; ++s) {
    handles.push_back(engine.open_stream(StreamConfig{}));
  }

  // Producers push audio continuously — racing the pumps AND the drain —
  // but hold their finish until the drain has happened, so every stream
  // is guaranteed live (and therefore migrated) when drain_shard runs,
  // regardless of how fast this machine serves.
  std::atomic<bool> done{false};
  std::atomic<std::size_t> pushed{0};
  std::atomic<bool> drained{false};
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kStreams; ++s) {
    producers.emplace_back([&engine, &waves, &handles, &pushed, &drained,
                            s] {
      const std::vector<float>& wave = waves[s];
      for (std::size_t pos = 0; pos < wave.size(); pos += 400) {
        const std::size_t n = std::min<std::size_t>(400, wave.size() - pos);
        while (!engine.submit_audio(
            handles[s], std::span<const float>(wave).subspan(pos, n))) {
          std::this_thread::yield();
        }
        pushed.fetch_add(1, std::memory_order_release);
      }
      while (!drained.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!engine.finish_stream(handles[s])) std::this_thread::yield();
    });
  }
  // The pumper drains shard 0 once every stream has audio in flight but
  // none can possibly be finished, then keeps pumping to the end.
  std::thread pumper([&engine, &done, &pushed, &drained] {
    while (!done.load(std::memory_order_acquire)) {
      for (std::size_t shard = 0; shard < 2; ++shard) {
        engine.pump_shard(shard);
      }
      if (!drained.load(std::memory_order_relaxed) &&
          pushed.load(std::memory_order_acquire) >= 2 * kStreams) {
        engine.drain_shard(0);
        drained.store(true, std::memory_order_release);
      }
    }
  });
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  pumper.join();
  engine.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(engine.stream_done(handles[s])) << "stream " << s;
    EXPECT_EQ(engine.stream_shard(handles[s]), 1U) << "stream " << s;
    EXPECT_EQ(engine.stream_logits(handles[s]), ref.logits[s])
        << "stream " << s;  // bitwise
    std::vector<StreamEvent> events;
    engine.poll_events(handles[s], events);
    EXPECT_EQ(events, ref.events[s]) << "stream " << s;
  }
}

// --------------------------------------------- net front self-defense

/// Raw HTTP/1.0 GET against the metrics port; returns the whole response.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(NetFault, IdleConnectionsAreReapedWithTypedTimeout) {
  // A client that connects and then goes silent is reaped at the idle
  // deadline with a typed kTimeout error, the reap is counted into
  // rt_fault_reaped_connections_total, and the count is scrapeable over
  // the live /metrics endpoint — the whole loop, end to end over TCP.
  const ServeFixture f = make_fixture(16, 1006);
  CompiledSpeechModel model(*f.model, f.masks, f.options, nullptr);
  serve::LocalRecognizer recognizer(model);
  obs::Telemetry telemetry;
  net::ServerConfig server_config;
  server_config.telemetry = &telemetry;
  server_config.idle_timeout = std::chrono::milliseconds(60);
  net::RecognizerServer server(recognizer, server_config);
  server.start();

  net::WireClient idle_client;
  idle_client.connect("127.0.0.1", server.port());
  // Send nothing. The server must push a typed timeout and close.
  const std::optional<net::ServerMessage> reply = idle_client.read_message();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, net::FrameType::kError);
  EXPECT_EQ(reply->error, net::WireError::kTimeout);
  EXPECT_EQ(idle_client.read_message(), std::nullopt);  // closed

  ASSERT_TRUE(wait_for([&] { return server.connection_count() == 0; },
                       std::chrono::seconds(5)));
  EXPECT_EQ(telemetry.fault().reaped_connections->value(), 1U);
  const std::string scrape = http_get(server.metrics_port(), "/metrics");
  EXPECT_NE(scrape.find("rt_fault_reaped_connections_total 1"),
            std::string::npos)
      << scrape;

  // An active client on the same server is NOT reaped: activity renews
  // the deadline for as long as the stream makes progress.
  net::WireClient active;
  active.connect("127.0.0.1", server.port());
  ASSERT_TRUE(active.open(net::OpenRequest{}).has_value());
  active.send_audio(random_waveform(8000, 9));
  active.send_finish();
  std::vector<StreamEvent> events;
  EXPECT_EQ(active.collect_until_final(events), std::nullopt);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(events.back().is_final);
  server.stop();
}

TEST(NetFault, InjectedPeerResetDropsOnlyTheVictimConnection) {
  const ServeFixture f = make_fixture(16, 1007);
  CompiledSpeechModel model(*f.model, f.masks, f.options, nullptr);
  serve::LocalRecognizer recognizer(model);
  obs::Telemetry telemetry;
  FaultInjector injector(&telemetry);
  net::ServerConfig server_config;
  server_config.telemetry = &telemetry;
  server_config.fault = &injector;
  net::RecognizerServer server(recognizer, server_config);
  server.start();

  // Every read on any connection acts as a peer reset while armed.
  FaultSpec reset;
  reset.trigger = Trigger::every_k(1);
  injector.arm(Site::kConnRead, reset);
  net::WireClient victim;
  victim.connect("127.0.0.1", server.port());
  victim.send_open(net::OpenRequest{});
  // The server never reads the open; it reaps the "reset" connection.
  // Unread bytes in the server's receive buffer make the close an RST,
  // so the client may see either an orderly close or a socket error.
  bool dropped = false;
  try {
    dropped = !victim.read_message().has_value();
  } catch (const std::exception&) {
    dropped = true;
  }
  EXPECT_TRUE(dropped);
  injector.disarm(Site::kConnRead);
  EXPECT_GE(injector.fires(Site::kConnRead), 1U);

  // With the site disarmed, service is completely normal again.
  net::WireClient survivor;
  survivor.connect("127.0.0.1", server.port());
  ASSERT_TRUE(survivor.open(net::OpenRequest{}).has_value());
  survivor.send_audio(random_waveform(4000, 12));
  survivor.send_finish();
  std::vector<StreamEvent> events;
  EXPECT_EQ(survivor.collect_until_final(events), std::nullopt);
  server.stop();
}

TEST(NetFault, WritingToPeerClosedSocketDoesNotKillTheServer) {
  // SIGPIPE regression: a client that submits a whole utterance and
  // vanishes before reading forces the server to write into a socket the
  // peer already closed. The process must survive (MSG_NOSIGNAL +
  // SIG_IGN) and keep serving its other clients.
  const ServeFixture f = make_fixture(16, 1008);
  CompiledSpeechModel model(*f.model, f.masks, f.options, nullptr);
  serve::LocalRecognizer recognizer(model);
  net::RecognizerServer server(recognizer, net::ServerConfig{});
  server.start();

  {
    net::WireClient ghost;
    ghost.connect("127.0.0.1", server.port());
    ASSERT_TRUE(ghost.open(net::OpenRequest{}).has_value());
    ghost.send_audio(random_waveform(8000, 5));
    ghost.send_finish();
    ghost.disconnect();  // gone before a single event is read
  }
  // The server computes the ghost's events and tries to deliver them
  // into the closed socket; the connection must simply be reaped.
  ASSERT_TRUE(wait_for([&] { return server.connection_count() == 0; },
                       std::chrono::seconds(10)));

  net::WireClient alive;
  alive.connect("127.0.0.1", server.port());
  ASSERT_TRUE(alive.open(net::OpenRequest{}).has_value());
  alive.send_audio(random_waveform(4000, 6));
  alive.send_finish();
  std::vector<StreamEvent> events;
  EXPECT_EQ(alive.collect_until_final(events), std::nullopt);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(events.back().is_final);
  server.stop();
}

TEST(NetFault, AbsurdDeclaredFrameLengthGetsTypedRefusal) {
  // A 0xFFFFFFFF length header must poison the decoder with the typed
  // kFrameTooLarge failure locally, and over the wire the server must
  // answer with the same typed error instead of buffering 4 GiB.
  net::FrameDecoder decoder;
  decoder.set_max_frame_bytes(1024);
  EXPECT_EQ(decoder.max_frame_bytes(), 1024U);
  const std::array<std::uint8_t, 8> absurd = {0xFF, 0xFF, 0xFF, 0xFF,
                                              0x01, 0x02, 0x03, 0x04};
  decoder.feed(absurd);
  net::Frame frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_TRUE(decoder.failed());
  EXPECT_EQ(decoder.failure(), net::WireError::kFrameTooLarge);

  // Just over the configured cap is refused the same way…
  net::FrameDecoder capped;
  capped.set_max_frame_bytes(1024);
  const std::uint32_t over = 1025;
  std::vector<std::uint8_t> header(4);
  for (int i = 0; i < 4; ++i) {
    header[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(over >> (8 * i));
  }
  capped.feed(header);
  EXPECT_FALSE(capped.next(frame));
  EXPECT_EQ(capped.failure(), net::WireError::kFrameTooLarge);
  // …while a zero length is a framing (protocol) failure, not a size one.
  net::FrameDecoder zeroed;
  zeroed.feed(std::vector<std::uint8_t>(4, 0));
  EXPECT_FALSE(zeroed.next(frame));
  EXPECT_TRUE(zeroed.failed());
  EXPECT_EQ(zeroed.failure(), net::WireError::kProtocol);

  const ServeFixture f = make_fixture(16, 1009);
  CompiledSpeechModel model(*f.model, f.masks, f.options, nullptr);
  serve::LocalRecognizer recognizer(model);
  net::RecognizerServer server(recognizer, net::ServerConfig{});
  server.start();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, absurd.data(), absurd.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(absurd.size()));
  // Deframe the server's reply off the raw socket.
  net::FrameDecoder reply_decoder;
  net::Frame reply;
  char chunk[4096];
  bool got_reply = false;
  for (int i = 0; i < 100 && !got_reply; ++i) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    reply_decoder.feed(
        {reinterpret_cast<const std::uint8_t*>(chunk),
         static_cast<std::size_t>(n)});
    got_reply = reply_decoder.next(reply);
  }
  ::close(fd);
  ASSERT_TRUE(got_reply);
  ASSERT_EQ(reply.type, net::FrameType::kError);
  net::WireError error{};
  std::string message;
  ASSERT_TRUE(net::decode_error(reply.payload, error, message));
  EXPECT_EQ(error, net::WireError::kFrameTooLarge);
  server.stop();
}

TEST(NetFault, OpenWithRetryRidesOutTransientRefusals) {
  // open_with_retry must reconnect-and-retry through kBackpressureOverflow
  // refusals (injected at the victim shard's ingress ring) and land the
  // stream once the congestion clears — and must NOT retry a
  // non-transient over-budget refusal.
  const ServeFixture f = make_fixture(16, 1010);
  FaultInjector injector;
  serve::ShardConfig shard_config;
  shard_config.shards = 1;
  shard_config.engine.fault = &injector;
  ShardedEngine engine(*f.model, f.masks, f.options, shard_config);
  engine.start();
  net::ServerConfig server_config;
  server_config.drive_recognizer = false;
  net::RecognizerServer server(engine, server_config);
  server.start();

  // The first two open pushes report "ring full": the server refuses
  // each with kBackpressureOverflow and closes; the third lands.
  FaultSpec congested;
  congested.trigger = Trigger::every_k(1);
  congested.max_fires = 2;
  injector.arm(Site::kQueuePush, congested);

  net::WireClient client;
  client.connect("127.0.0.1", server.port());
  net::OpenRetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(2);
  net::WireError error = net::WireError::kProtocol;
  const std::optional<std::uint64_t> handle =
      client.open_with_retry(net::OpenRequest{}, policy, &error);
  ASSERT_TRUE(handle.has_value()) << "error=" << static_cast<int>(error);
  EXPECT_EQ(injector.fires(Site::kQueuePush), 2U);

  client.send_audio(random_waveform(4000, 14));
  client.send_finish();
  std::vector<StreamEvent> events;
  EXPECT_EQ(client.collect_until_final(events), std::nullopt);
  client.send_close();
  server.stop();
  engine.stop();
}

}  // namespace
}  // namespace rtmobile
