// Unit tests for src/util: checks, rng, strings, table, report, cli.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace rtmobile {
namespace {

// ---------------------------------------------------------------- checks
TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(RT_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(RT_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsRuntimeError) {
  EXPECT_THROW(RT_CHECK(false, "boom"), std::runtime_error);
}

TEST(Check, AssertThrowsInternalError) {
  EXPECT_THROW(RT_ASSERT(false, "boom"), InternalError);
}

TEST(Check, MessageCarriesContext) {
  try {
    RT_REQUIRE(1 == 2, "my context message");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my context message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

// ------------------------------------------------------------------- rng
TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17U);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, FloatsInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0F);
    EXPECT_LT(f, 1.0F);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.75, 0.02);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child stream should differ from the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.next_u64() != child.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// --------------------------------------------------------------- strings
TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4U);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtil, TrimRemovesEdgesOnly) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_THROW(format_double(1.0, -1), std::invalid_argument);
}

TEST(StringUtil, FormatSi) {
  EXPECT_EQ(format_si(9600000.0, 1), "9.6M");
  EXPECT_EQ(format_si(0.0012, 2), "1.20m");
  EXPECT_EQ(format_si(0.0, 2), "0.00");
}

TEST(StringUtil, FormatPercent) {
  EXPECT_EQ(format_percent(0.1234, 1), "12.3%");
}

// ----------------------------------------------------------------- table
TEST(Table, RendersAlignedColumns) {
  Table table({"method", "rate"});
  table.add_row({"BSP", "10x"});
  table.add_separator();
  table.add_row({"ESE", "8x"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| method | rate |"), std::string::npos);
  EXPECT_NE(text.find("| BSP    | 10x  |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2U);
}

TEST(Table, RejectsWrongCellCount) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

// ---------------------------------------------------------------- report
TEST(Report, RecordSerializesAllTypes) {
  JsonRecord record;
  record.set("name", "bsp");
  record.set("rate", 10.5);
  record.set("count", static_cast<std::int64_t>(42));
  record.set("ok", true);
  const std::string json = record.to_json();
  EXPECT_NE(json.find("\"name\": \"bsp\""), std::string::npos);
  EXPECT_NE(json.find("\"rate\": 10.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(Report, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Report, ArrayHoldsRecords) {
  JsonReport report;
  JsonRecord r1;
  r1.set("i", static_cast<std::int64_t>(1));
  report.add(r1);
  JsonRecord r2;
  r2.set("i", static_cast<std::int64_t>(2));
  report.add(r2);
  const std::string json = report.to_json_array();
  EXPECT_NE(json.find("{\"i\": 1},"), std::string::npos);
  EXPECT_EQ(report.size(), 2U);
}

// ------------------------------------------------------------------- cli
TEST(Cli, ParsesFlagsAndSwitches) {
  CliParser cli;
  cli.add_flag("rate", "10", "compression rate");
  cli.add_flag("name", "bsp", "method");
  cli.add_switch("verbose", "log more");
  const char* argv[] = {"prog", "--rate", "29", "--verbose",
                        "--name=ese", "positional"};
  cli.parse(6, argv);
  EXPECT_EQ(cli.get_int("rate"), 29);
  EXPECT_EQ(cli.get_string("name"), "ese");
  EXPECT_TRUE(cli.get_switch("verbose"));
  ASSERT_EQ(cli.positional().size(), 1U);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, RejectsUnknownAndMalformed) {
  CliParser cli;
  cli.add_flag("rate", "1", "");
  const char* unknown[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, unknown), std::invalid_argument);

  CliParser cli2;
  cli2.add_flag("rate", "1", "");
  const char* missing[] = {"prog", "--rate"};
  EXPECT_THROW(cli2.parse(2, missing), std::invalid_argument);

  CliParser cli3;
  cli3.add_flag("rate", "1", "");
  const char* bad_int[] = {"prog", "--rate", "abc"};
  cli3.parse(3, bad_int);
  EXPECT_THROW(static_cast<void>(cli3.get_int("rate")),
               std::invalid_argument);
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli;
  cli.add_flag("rate", "10", "");
  cli.add_switch("verbose", "");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("rate"), 10);
  EXPECT_FALSE(cli.get_switch("verbose"));
  EXPECT_NE(cli.help("prog").find("--rate"), std::string::npos);
}

}  // namespace
}  // namespace rtmobile
