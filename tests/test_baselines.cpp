// Unit tests for the Table I comparison methods: structural invariants of
// each scheme and achieved compression rates.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bbs.hpp"
#include "baselines/clstm.hpp"
#include "baselines/ernn.hpp"
#include "baselines/ese.hpp"
#include "baselines/wang.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace rtmobile::baselines {
namespace {

SpeechModel small_model(std::uint64_t seed) {
  Rng rng(seed);
  ModelConfig config;
  config.input_dim = 16;
  config.hidden_dim = 32;
  config.num_layers = 2;
  config.num_classes = 8;
  SpeechModel model(config);
  model.init(rng);
  return model;
}

std::vector<LabeledSequence> tiny_dataset(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledSequence> data(4);
  for (auto& utt : data) {
    utt.features = Matrix(5, 16);
    fill_normal(utt.features.span(), rng, 1.0F);
    utt.labels.resize(5);
    for (auto& l : utt.labels) {
      l = static_cast<std::uint16_t>(rng.next_below(8));
    }
  }
  return data;
}

// ------------------------------------------------------------------- ESE
TEST(Ese, LoadBalancedProjectionBalancesGroups) {
  Rng rng(1);
  Matrix w(16, 32);
  fill_normal(w.span(), rng, 1.0F);
  const Matrix pruned = project_load_balanced_magnitude(w, 4, 0.25);
  // Every 4-row PE group keeps exactly 25% of its slots.
  for (std::size_t g = 0; g < 4; ++g) {
    std::size_t kept = 0;
    for (std::size_t r = g * 4; r < (g + 1) * 4; ++r) {
      for (std::size_t c = 0; c < 32; ++c) {
        if (pruned(r, c) != 0.0F) ++kept;
      }
    }
    EXPECT_EQ(kept, 32U);  // 4 rows * 32 cols * 0.25
  }
}

TEST(Ese, OneShotHitsCompressionTarget) {
  SpeechModel model = small_model(2);
  EseConfig config;
  config.keep_fraction = 0.125;
  EsePruner pruner(config);
  MaskSet masks;
  const BaselineOutcome outcome = pruner.compress_one_shot(model, &masks);
  EXPECT_EQ(outcome.method, "ESE");
  EXPECT_NEAR(outcome.compression_rate(), 8.0, 0.2);
  EXPECT_EQ(masks.size(), 12U);
}

TEST(Ese, FullPipelineKeepsMaskAndImprovesOverOneShot) {
  auto data = tiny_dataset(3);
  SpeechModel trained = small_model(4);
  {
    Trainer trainer(trained);
    Adam adam(3e-3);
    TrainConfig config;
    config.epochs = 2;
    Rng rng(5);
    trainer.train(config, data, adam, rng);
  }
  SpeechModel admm_model = trained;
  SpeechModel oneshot_model = trained;

  EseConfig config;
  config.keep_fraction = 0.25;
  config.admm_rounds = 2;
  config.retrain_epochs = 2;
  EsePruner pruner(config);
  Rng rng(6);
  const BaselineOutcome admm_outcome =
      pruner.compress(admm_model, data, rng);
  pruner.compress_one_shot(oneshot_model);

  EXPECT_NEAR(admm_outcome.compression_rate(), 4.0, 0.5);
  EXPECT_LE(Trainer::evaluate(admm_model, data).loss,
            Trainer::evaluate(oneshot_model, data).loss);
}

// ---------------------------------------------------------------- C-LSTM
TEST(Clstm, OneShotProjectionIsBlockCirculant) {
  SpeechModel model = small_model(7);
  ClstmConfig config;
  config.block_size = 8;
  ClstmCompressor compressor(config);
  const BaselineOutcome outcome = compressor.compress_one_shot(model);
  EXPECT_EQ(outcome.method, "C-LSTM");
  EXPECT_NEAR(outcome.compression_rate(), 8.0, 0.2);

  // u_z (32x32) must consist of 8x8 circulant tiles.
  const Matrix& u = model.layer(0).u_z;
  for (std::size_t br = 0; br < 4; ++br) {
    for (std::size_t bc = 0; bc < 4; ++bc) {
      for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
          EXPECT_NEAR(u(br * 8 + i, bc * 8 + j),
                      u(br * 8 + (i + 1) % 8, bc * 8 + (j + 1) % 8), 1e-5F);
        }
      }
    }
  }
}

TEST(Clstm, ProjectedTrainingEndsOnSubspace) {
  SpeechModel model = small_model(8);
  auto data = tiny_dataset(9);
  ClstmConfig config;
  config.block_size = 4;
  config.projected_epochs = 1;
  config.final_epochs = 1;
  ClstmCompressor compressor(config);
  Rng rng(10);
  const BaselineOutcome outcome = compressor.compress(model, data, rng);
  EXPECT_NEAR(outcome.compression_rate(), 4.0, 0.2);
  // Projection idempotence on the returned model == already circulant.
  SpeechModel copy = model;
  ClstmCompressor(config).compress_one_shot(copy);
  const Matrix& a = model.layer(1).u_h;
  const Matrix& b = copy.layer(1).u_h;
  EXPECT_LT(max_abs_diff(a.span(), b.span()), 1e-5F);
}

TEST(Clstm, RejectsNonPowerOfTwoBlock) {
  ClstmConfig config;
  config.block_size = 6;
  EXPECT_THROW(ClstmCompressor{config}, std::invalid_argument);
}

// ----------------------------------------------------------------- E-RNN
TEST(Ernn, AdmmPipelineEndsOnCirculantSubspace) {
  SpeechModel model = small_model(11);
  auto data = tiny_dataset(12);
  ErnnConfig config;
  config.block_size = 8;
  config.admm_rounds = 1;
  config.finetune_epochs = 1;
  ErnnCompressor compressor(config);
  Rng rng(13);
  const BaselineOutcome outcome = compressor.compress(model, data, rng);
  EXPECT_EQ(outcome.method, "E-RNN");
  EXPECT_NEAR(outcome.compression_rate(), 8.0, 0.2);

  // Model weights are exactly circulant after the pipeline.
  SpeechModel copy = model;
  ErnnCompressor(config).compress_one_shot(copy);
  EXPECT_LT(max_abs_diff(model.layer(0).w_h.span(),
                         copy.layer(0).w_h.span()),
            1e-5F);
}

// ------------------------------------------------------------------- BBS
TEST(Bbs, OneShotBanksAreBalanced) {
  SpeechModel model = small_model(14);
  BbsConfig config;
  config.bank_size = 16;
  config.keep_per_bank = 2;  // 8x
  BbsPruner pruner(config);
  MaskSet masks;
  const BaselineOutcome outcome = pruner.compress_one_shot(model, &masks);
  EXPECT_NEAR(outcome.compression_rate(), 8.0, 0.2);

  // Every bank of every row of u_z keeps exactly 2 entries.
  const Matrix& u = model.layer(0).u_z;  // 32x32, banks of 16
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t bank = 0; bank < 2; ++bank) {
      std::size_t kept = 0;
      for (std::size_t k = 0; k < 16; ++k) {
        if (u(r, bank * 16 + k) != 0.0F) ++kept;
      }
      EXPECT_EQ(kept, 2U);
    }
  }
}

TEST(Bbs, AdmmPipelineRespectsMask) {
  SpeechModel model = small_model(15);
  auto data = tiny_dataset(16);
  BbsConfig config;
  config.bank_size = 8;
  config.keep_per_bank = 2;
  config.admm_rounds = 1;
  config.retrain_epochs = 1;
  BbsPruner pruner(config);
  Rng rng(17);
  MaskSet masks;
  const BaselineOutcome outcome = pruner.compress(model, data, rng, &masks);
  EXPECT_NEAR(outcome.compression_rate(), 4.0, 0.3);
  // Pruned slots stayed zero through retraining.
  ParamSet params;
  model.register_params(params);
  const Matrix& mask = masks.mask("gru0.u_h");
  const Matrix& w = params.matrix("gru0.u_h");
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (mask.span()[i] == 0.0F) {
      EXPECT_FLOAT_EQ(w.span()[i], 0.0F);
    }
  }
}

// ------------------------------------------------------------------ Wang
TEST(Wang, OneShotRemovesWholeRowsAndColumns) {
  SpeechModel model = small_model(18);
  WangConfig config;
  config.col_keep_fraction = 0.5;
  config.row_keep_fraction = 0.5;
  WangPruner pruner(config);
  const BaselineOutcome outcome = pruner.compress_one_shot(model);
  EXPECT_EQ(outcome.method, "Wang");
  EXPECT_NEAR(outcome.compression_rate(), 4.0, 0.4);

  // u_r: rows are either all-zero or match the surviving column pattern.
  const Matrix& u = model.layer(1).u_r;
  std::vector<bool> col_live(u.cols(), false);
  for (std::size_t c = 0; c < u.cols(); ++c) {
    for (std::size_t r = 0; r < u.rows(); ++r) {
      if (u(r, c) != 0.0F) col_live[c] = true;
    }
  }
  for (std::size_t r = 0; r < u.rows(); ++r) {
    bool row_live = false;
    for (std::size_t c = 0; c < u.cols(); ++c) {
      if (u(r, c) != 0.0F) row_live = true;
    }
    if (!row_live) continue;
    for (std::size_t c = 0; c < u.cols(); ++c) {
      // A live row must occupy exactly the live columns' support, since
      // energy-ranked column selection is shared across rows.
      if (col_live[c]) {
        // entry may still be zero only if the original weight was zero;
        // with Gaussian init that has probability ~0.
        EXPECT_NE(u(r, c), 0.0F);
      } else {
        EXPECT_EQ(u(r, c), 0.0F);
      }
    }
  }
}

TEST(Wang, RetrainingKeepsStructure) {
  SpeechModel model = small_model(19);
  auto data = tiny_dataset(20);
  WangConfig config;
  config.retrain_epochs = 1;
  WangPruner pruner(config);
  Rng rng(21);
  MaskSet masks;
  const BaselineOutcome outcome = pruner.compress(model, data, rng, &masks);
  EXPECT_NEAR(outcome.compression_rate(), 4.0, 0.4);
  EXPECT_EQ(masks.size(), 12U);
}

// ---------------------------------------------------------------- common
TEST(BaselineCommon, OutcomeArithmetic) {
  BaselineOutcome outcome;
  outcome.total_weights = 1000;
  outcome.stored_params = 125;
  EXPECT_DOUBLE_EQ(outcome.compression_rate(), 8.0);
  EXPECT_DOUBLE_EQ(outcome.params_millions(), 125e-6);
  outcome.stored_params = 0;
  EXPECT_DOUBLE_EQ(outcome.compression_rate(), 0.0);
}

TEST(BaselineCommon, CompressibleWeightsMatchModel) {
  const SpeechModel model = small_model(22);
  const auto names = compressible_weights(model);
  EXPECT_EQ(names.size(), 12U);
  // Layer 0: 3 x (32x16) inputs + 3 x (32x32) recurrent;
  // layer 1: 3 x (32x32) + 3 x (32x32).
  EXPECT_EQ(total_weight_slots(model, names),
            3U * (32 * 16 + 32 * 32) + 3U * (32 * 32 + 32 * 32));
}

}  // namespace
}  // namespace rtmobile::baselines
