// Parity tests for the packed int8/fp16 compute path.
//
// Contract under test: CompilerOptions::precision selects packed weight
// storage (PackedQuantizedBspc / PackedDenseMatrix) whose kernels match
// the dequantize-then-fp32 storage simulation in core/quantize — bit for
// bit on fp16 (conversion is exact and the accumulation order matches),
// and within the int8 grid's rounding slack on int8 — while the default
// fp32 mode stays bit-identical to the unquantized kernels.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/execution_plan.hpp"
#include "compiler/gru_executor.hpp"
#include "core/quantize.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "sparse/bspc.hpp"
#include "sparse/bspc_quant.hpp"
#include "speech/mfcc.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/packed_dense.hpp"
#include "tensor/precision.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  fill_normal(m.span(), rng, 1.0F);
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  fill_normal(v.span(), rng, 1.0F);
  return v;
}

/// Applies the storage simulation core/quantize implements to a matrix.
Matrix simulate(const Matrix& weights, WeightPrecision precision) {
  Matrix out = weights;
  switch (precision) {
    case WeightPrecision::kFp32: break;
    case WeightPrecision::kFp16: quantize_fp16(out); break;
    case WeightPrecision::kInt8PerTensor:
      quantize_int8(out, /*per_row=*/false);
      break;
    case WeightPrecision::kInt8PerRow:
      quantize_int8(out, /*per_row=*/true);
      break;
  }
  return out;
}

struct BspcCase {
  Matrix masked;     // weights with the mask applied
  BlockMask mask;
  BspcMatrix bspc;   // fp32 packing of `masked`
};

BspcCase make_bspc_case(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  Matrix w = random_matrix(rows, cols, seed);
  BlockMask mask = block_column_mask(w, 6, 4, 0.4);
  apply_row_pruning(w, 0.8, mask);
  mask.apply(w);
  BspcMatrix bspc = BspcMatrix::from_dense(w, mask);
  return {std::move(w), std::move(mask), std::move(bspc)};
}

// ------------------------------------------------- packed BSPC kernels
TEST(PackedBspc, DequantizationMatchesSimulationExactly) {
  const BspcCase c = make_bspc_case(48, 56, 21);
  for (const WeightPrecision precision :
       {WeightPrecision::kFp16, WeightPrecision::kInt8PerTensor,
        WeightPrecision::kInt8PerRow}) {
    const PackedQuantizedBspc packed =
        PackedQuantizedBspc::pack(c.bspc, precision);
    // Same scales, same rounding: the packed format's effective weights
    // must equal the simulation's dequantized matrix bit for bit.
    EXPECT_EQ(packed.to_dense(), simulate(c.masked, precision))
        << to_string(precision);
    EXPECT_EQ(packed.nnz(), c.bspc.nnz());
  }
}

TEST(PackedBspc, Fp16SpmvBitIdenticalToSimulatedFp32Kernel) {
  const BspcCase c = make_bspc_case(48, 56, 22);
  const Matrix simulated = simulate(c.masked, WeightPrecision::kFp16);
  const BspcMatrix simulated_bspc =
      BspcMatrix::from_dense(simulated, c.mask);
  const PackedQuantizedBspc packed =
      PackedQuantizedBspc::pack(c.bspc, WeightPrecision::kFp16);

  const Vector x = random_vector(56, 23);
  Vector expected(48);
  Vector actual(48);
  simulated_bspc.spmv(x.span(), expected.span());
  packed.spmv(x.span(), actual.span());
  EXPECT_EQ(expected, actual);  // bitwise
}

TEST(PackedBspc, Int8SpmvWithinGridRoundingSlack) {
  const BspcCase c = make_bspc_case(48, 56, 24);
  const Vector x = random_vector(56, 25);
  for (const WeightPrecision precision :
       {WeightPrecision::kInt8PerTensor, WeightPrecision::kInt8PerRow}) {
    const PackedQuantizedBspc packed =
        PackedQuantizedBspc::pack(c.bspc, precision);
    // vs the simulation: same effective weights, so only accumulation
    // reassociation (the scale factors out of the block partial sums)
    // separates the two.
    const BspcMatrix simulated_bspc =
        BspcMatrix::from_dense(simulate(c.masked, precision), c.mask);
    Vector simulated_y(48);
    Vector packed_y(48);
    simulated_bspc.spmv(x.span(), simulated_y.span());
    packed.spmv(x.span(), packed_y.span());
    EXPECT_LT(max_abs_diff(simulated_y.span(), packed_y.span()), 1e-4F)
        << to_string(precision);

    // vs the unquantized fp32 kernel: bounded by the grid's worst-case
    // per-weight error (int8_step) times the L1 mass of x.
    Vector exact_y(48);
    c.bspc.spmv(x.span(), exact_y.span());
    float l1 = 0.0F;
    for (const float v : x.span()) l1 += std::fabs(v);
    const float bound = int8_step(c.masked) * 0.5F * l1 + 1e-4F;
    EXPECT_LT(max_abs_diff(exact_y.span(), packed_y.span()), bound)
        << to_string(precision);
  }
}

TEST(PackedBspc, NoLreAndStripeListMatchLre) {
  const BspcCase c = make_bspc_case(36, 40, 26);
  const PackedQuantizedBspc packed =
      PackedQuantizedBspc::pack(c.bspc, WeightPrecision::kInt8PerRow);
  const Vector x = random_vector(40, 27);
  Vector with_lre(36);
  packed.spmv(x.span(), with_lre.span());

  std::vector<std::uint32_t> stripes(packed.num_stripes());
  for (std::size_t s = 0; s < stripes.size(); ++s) {
    stripes[s] = static_cast<std::uint32_t>(s);
  }
  Vector no_lre(36, 0.0F);
  packed.spmv_stripe_list(x.span(), no_lre.span(), stripes,
                          /*use_lre=*/false);
  EXPECT_EQ(with_lre, no_lre);  // same values, same order -> bitwise
}

TEST(PackedBspc, SpmmBitIdenticalToPerVectorSpmv) {
  const BspcCase c = make_bspc_case(32, 44, 28);
  for (const WeightPrecision precision :
       {WeightPrecision::kFp16, WeightPrecision::kInt8PerRow}) {
    const PackedQuantizedBspc packed =
        PackedQuantizedBspc::pack(c.bspc, precision);
    constexpr std::size_t kBatch = 3;
    Matrix x(kBatch + 1, 44);  // extra trailing row: grow-only buffers
    Rng rng(29);
    fill_normal(x.span(), rng, 1.0F);
    Matrix y(kBatch + 1, 32);
    packed.spmm(x, y, kBatch);
    for (std::size_t b = 0; b < kBatch; ++b) {
      Vector expected(32);
      packed.spmv(x.row(b), expected.span());
      EXPECT_EQ(std::vector<float>(expected.begin(), expected.end()),
                std::vector<float>(y.row(b).begin(), y.row(b).end()))
          << to_string(precision) << " rhs " << b;
    }
  }
}

// ------------------------------------------------- packed dense kernels
TEST(PackedDense, DequantizationAndGemvMatchSimulation) {
  const Matrix w = random_matrix(40, 52, 30);
  const Vector x = random_vector(52, 31);
  for (const WeightPrecision precision :
       {WeightPrecision::kFp16, WeightPrecision::kInt8PerTensor,
        WeightPrecision::kInt8PerRow}) {
    const PackedDenseMatrix packed = PackedDenseMatrix::pack(w, precision);
    const Matrix simulated = simulate(w, precision);
    EXPECT_EQ(packed.to_dense(), simulated) << to_string(precision);

    Vector expected(40);
    Vector actual(40);
    gemv(simulated, x.span(), expected.span());
    packed.gemv(x.span(), actual.span());
    if (precision == WeightPrecision::kFp16) {
      EXPECT_EQ(expected, actual);  // conversion exact, same order
    } else {
      EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F)
          << to_string(precision);
    }
  }
}

// ------------------------------------------------- fp16 conversion
TEST(Fp16Conversion, FastPathMatchesReferenceForAllPatterns) {
  // fp16_bits_to_float (the kernels' conversion) must agree with the
  // reference fp16_to_float on every one of the 65536 bit patterns —
  // that exactness is what makes the packed fp16 kernels bit-identical
  // to the storage simulation.
  for (std::uint32_t bits = 0; bits <= 0xFFFFU; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float fast = fp16_bits_to_float(h);
    const float reference = fp16_to_float(h);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(fast),
              std::bit_cast<std::uint32_t>(reference))
        << "half bits 0x" << std::hex << bits;
  }
}

// --------------------------------------- int8 symmetric-grid regression
TEST(Int8Grid, NegativeMaxTensorRoundTripsWithoutOverflow) {
  // A tensor whose extreme value is negative: the extreme code must land
  // on -127, never the unrepresentable -128, and no round-tripped value
  // may exceed the original magnitude.
  Matrix w(2, 3, std::vector<float>{-5.0F, -4.99F, -0.3F,
                                    -2.5F, -1.0F, -4.999F});
  const Matrix original = w;
  quantize_int8(w, /*per_row=*/false);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w.span()[i]), 5.0F + 1e-6F);
    EXPECT_LE(std::fabs(w.span()[i] - original.span()[i]),
              int8_step(original) * 0.5F + 1e-6F);
  }
  EXPECT_FLOAT_EQ(w(0, 0), -5.0F);  // the extreme hits code -127 exactly

  // Same grid through the packed representation.
  const PackedDenseMatrix packed =
      PackedDenseMatrix::pack(original, WeightPrecision::kInt8PerTensor);
  EXPECT_EQ(packed.to_dense(), w);
}

TEST(Int8Grid, AllZeroRowPacksToZero) {
  Matrix w(3, 4, 0.0F);
  w(0, 1) = 2.0F;  // rows 1, 2 stay all-zero (scale 0 must not divide)
  const PackedDenseMatrix packed =
      PackedDenseMatrix::pack(w, WeightPrecision::kInt8PerRow);
  EXPECT_EQ(packed.to_dense(), w);
}

// ------------------------------------------------- layer plan dispatch
TEST(LayerPlanPrecision, DefaultIsFp32AndBitIdenticalToRawKernels) {
  EXPECT_EQ(CompilerOptions{}.precision, WeightPrecision::kFp32);
  const BspcCase c = make_bspc_case(48, 56, 32);
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.reorder = false;  // stripe order 0..n-1, same as raw spmv
  const LayerPlan plan = LayerPlan::compile(c.masked, &c.mask, options);
  const Vector x = random_vector(56, 33);
  Vector from_plan(48);
  Vector from_bspc(48);
  plan.execute(x.span(), from_plan.span());
  c.bspc.spmv(x.span(), from_bspc.span());
  EXPECT_EQ(from_plan, from_bspc);  // bitwise: fp32 path untouched
}

TEST(LayerPlanPrecision, PackedPlansMatchOracleAcrossThreads) {
  const BspcCase c = make_bspc_case(48, 56, 34);
  const Vector x = random_vector(56, 35);
  for (const WeightPrecision precision :
       {WeightPrecision::kFp16, WeightPrecision::kInt8PerTensor,
        WeightPrecision::kInt8PerRow}) {
    for (const std::size_t threads : {1U, 4U}) {
      CompilerOptions options;
      options.format = SparseFormat::kBspc;
      options.threads = threads;
      options.precision = precision;
      options.min_nnz_for_threading = 0;  // force the threaded path
      const LayerPlan plan = LayerPlan::compile(c.masked, &c.mask, options);
      EXPECT_EQ(plan.to_dense(), simulate(c.masked, precision));

      Vector expected(48);
      gemv_naive(plan.to_dense(), x.span(), expected.span());
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
      Vector actual(48);
      plan.execute(x.span(), actual.span(), pool.get());
      EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F)
          << to_string(precision) << " threads=" << threads;
    }
  }
}

TEST(LayerPlanPrecision, PackedStorageShrinksAndCsrRejectsPacked) {
  const BspcCase c = make_bspc_case(64, 64, 36);
  CompilerOptions fp32;
  fp32.format = SparseFormat::kBspc;
  CompilerOptions fp16 = fp32;
  fp16.precision = WeightPrecision::kFp16;
  CompilerOptions int8 = fp32;
  int8.precision = WeightPrecision::kInt8PerRow;
  const auto fp32_plan = LayerPlan::compile(c.masked, &c.mask, fp32);
  const auto fp16_plan = LayerPlan::compile(c.masked, &c.mask, fp16);
  const auto int8_plan = LayerPlan::compile(c.masked, &c.mask, int8);
  EXPECT_GT(fp32_plan.memory_bytes(), fp16_plan.memory_bytes());
  EXPECT_GT(fp16_plan.memory_bytes(), int8_plan.memory_bytes());

  CompilerOptions csr;
  csr.format = SparseFormat::kCsr;
  csr.precision = WeightPrecision::kInt8PerTensor;
  EXPECT_THROW(LayerPlan::compile(c.masked, &c.mask, csr),
               std::invalid_argument);
}

// ------------------------------------------------ compiled model parity
struct QuantModelFixture {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
};

QuantModelFixture make_model_fixture(std::size_t hidden,
                                     std::uint64_t seed) {
  QuantModelFixture f;
  Rng rng(seed);
  f.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  f.model->init(rng);
  ParamSet params;
  f.model->register_params(params);
  for (const std::string& name : f.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.4);
    apply_row_pruning(w, 0.8, mask);
    mask.apply(w);
    f.masks.emplace(name, std::move(mask));
  }
  return f;
}

TEST(CompiledModelPrecision, PackedInferMatchesSimulatedModel) {
  const QuantModelFixture f = make_model_fixture(32, 40);
  Rng rng(41);
  Matrix features(6, 39);
  fill_normal(features.span(), rng, 1.0F);

  CompilerOptions base;
  base.format = SparseFormat::kBspc;
  for (const WeightPrecision precision :
       {WeightPrecision::kFp16, WeightPrecision::kInt8PerTensor,
        WeightPrecision::kInt8PerRow}) {
    // Path A: round every weight through the grid, run the fp32 kernels.
    SpeechModel simulated = *f.model;
    quantize_model(simulated, precision);
    const CompiledSpeechModel compiled_sim(simulated, f.masks, base);
    // Path B: compile the unquantized model with packed storage.
    CompilerOptions packed_options = base;
    packed_options.precision = precision;
    const CompiledSpeechModel compiled_packed(*f.model, f.masks,
                                              packed_options);
    EXPECT_LT(compiled_packed.total_memory_bytes(),
              compiled_sim.total_memory_bytes());

    const Matrix sim_logits = compiled_sim.infer(features);
    const Matrix packed_logits = compiled_packed.infer(features);
    if (precision == WeightPrecision::kFp16) {
      EXPECT_EQ(sim_logits, packed_logits);  // bitwise
    } else {
      EXPECT_LT(max_abs_diff(sim_logits.span(), packed_logits.span()),
                1e-3F)
          << to_string(precision);
    }
  }
}

TEST(CompiledModelPrecision, StepBatchBitIdenticalToInferOnPackedModel) {
  const QuantModelFixture f = make_model_fixture(24, 42);
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.precision = WeightPrecision::kInt8PerRow;
  ThreadPool pool(2);
  const CompiledSpeechModel compiled(*f.model, f.masks, options, &pool);

  constexpr std::size_t kStreams = 3;
  constexpr std::size_t kFrames = 5;
  Rng rng(43);
  std::vector<Matrix> utterances;
  for (std::size_t s = 0; s < kStreams; ++s) {
    Matrix u(kFrames, 39);
    fill_normal(u.span(), rng, 1.0F);
    utterances.push_back(std::move(u));
  }

  std::vector<StreamState> states(kStreams, compiled.make_state());
  std::vector<StreamState*> state_ptrs;
  for (StreamState& s : states) state_ptrs.push_back(&s);
  Matrix step_features(kStreams, 39);
  Matrix step_logits(kStreams, compiled.config().num_classes);
  std::vector<Matrix> streamed(
      kStreams, Matrix(kFrames, compiled.config().num_classes));
  for (std::size_t t = 0; t < kFrames; ++t) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      std::copy(utterances[s].row(t).begin(), utterances[s].row(t).end(),
                step_features.row(s).begin());
    }
    compiled.step_batch(step_features, state_ptrs, step_logits);
    for (std::size_t s = 0; s < kStreams; ++s) {
      std::copy(step_logits.row(s).begin(), step_logits.row(s).end(),
                streamed[s].row(t).begin());
    }
  }
  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(streamed[s], compiled.infer(utterances[s])) << "stream " << s;
  }
}

// ------------------------------------------------------- sharded serving
TEST(ShardedPrecision, Int8ShardsServeBitIdenticalLogitsAndShrinkWeights) {
  const QuantModelFixture f = make_model_fixture(24, 44);
  speech::MfccConfig mfcc;
  mfcc.cepstral_mean_norm = false;

  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.precision = WeightPrecision::kInt8PerRow;
  const CompiledSpeechModel reference(*f.model, f.masks, options);

  serve::ShardConfig config;
  config.shards = 2;
  config.policy = serve::RoutePolicy::kRoundRobin;
  config.engine.mfcc = mfcc;
  serve::ShardedEngine engine(*f.model, f.masks, options, config);

  Rng rng(45);
  std::vector<float> wave(16000);
  for (float& s : wave) s = 0.1F * rng.normal();
  const Matrix expected =
      reference.infer(speech::MfccExtractor(mfcc).extract(wave));

  const serve::StreamHandle on_shard0 = engine.open_stream();
  const serve::StreamHandle on_shard1 = engine.open_stream();
  EXPECT_NE(engine.stream_shard(on_shard0), engine.stream_shard(on_shard1));
  for (const serve::StreamHandle h : {on_shard0, on_shard1}) {
    ASSERT_TRUE(engine.submit_audio(h, wave));
    ASSERT_TRUE(engine.finish_stream(h));
  }
  engine.drain();
  EXPECT_EQ(engine.stream_logits(on_shard0), expected);  // bitwise
  EXPECT_EQ(engine.stream_logits(on_shard1), expected);  // bitwise

  // The fleet view must report the quantized replicas' true (smaller)
  // weight footprint.
  serve::ShardedEngine fp32_engine(
      *f.model, f.masks,
      [&] {
        CompilerOptions o = options;
        o.precision = WeightPrecision::kFp32;
        return o;
      }(),
      config);
  // At this toy size the 4-byte index metadata dominates, so assert the
  // direction, not the asymptotic 4x ratio (bench_quantization reports
  // the full-size ratio).
  EXPECT_GT(engine.stats().weight_bytes, 0U);
  EXPECT_LT(engine.stats().weight_bytes, fp32_engine.stats().weight_bytes);
}

}  // namespace
}  // namespace rtmobile
