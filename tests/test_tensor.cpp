// Unit tests for src/tensor: containers, elementwise ops, GEMM/GEMV, I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>

#include "tensor/gemm.hpp"
#include "tensor/io.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  fill_normal(m.span(), rng, 1.0F);
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  fill_normal(v.span(), rng, 1.0F);
  return v;
}

// ------------------------------------------------------------ containers
TEST(Matrix, ShapeAndAccess) {
  Matrix m(3, 4, 1.5F);
  EXPECT_EQ(m.rows(), 3U);
  EXPECT_EQ(m.cols(), 4U);
  EXPECT_EQ(m.size(), 12U);
  m(1, 2) = 7.0F;
  EXPECT_FLOAT_EQ(m.at(1, 2), 7.0F);
  EXPECT_THROW(static_cast<void>(m.at(3, 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.at(0, 4)), std::invalid_argument);
}

TEST(Matrix, RowViewAliasesStorage) {
  Matrix m(2, 3, 0.0F);
  auto row = m.row(1);
  row[2] = 9.0F;
  EXPECT_FLOAT_EQ(m(1, 2), 9.0F);
  EXPECT_THROW(static_cast<void>(m.row(2)), std::invalid_argument);
}

TEST(Matrix, InitializerSizeChecked) {
  EXPECT_NO_THROW(Matrix(2, 2, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix m = random_matrix(5, 7, 1);
  const Matrix tt = m.transposed().transposed();
  EXPECT_EQ(m, tt);
  EXPECT_FLOAT_EQ(m(2, 6), m.transposed()(6, 2));
}

TEST(Matrix, CountNonzero) {
  Matrix m(2, 2, 0.0F);
  m(0, 0) = 0.5F;
  m(1, 1) = -0.001F;
  EXPECT_EQ(m.count_nonzero(), 2U);
  EXPECT_EQ(m.count_nonzero(0.01F), 1U);
}

TEST(Matrix, BufferIsCacheLineAligned) {
  const Matrix m(17, 13);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % kCacheLineBytes, 0U);
  const Vector v(33);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0U);
}

// ------------------------------------------------------------------- ops
TEST(Ops, SigmoidMatchesClosedForm) {
  EXPECT_NEAR(sigmoid(0.0F), 0.5F, 1e-6F);
  EXPECT_NEAR(sigmoid(2.0F), 1.0F / (1.0F + std::exp(-2.0F)), 1e-6F);
  // Extremes must not overflow.
  EXPECT_NEAR(sigmoid(100.0F), 1.0F, 1e-6F);
  EXPECT_NEAR(sigmoid(-100.0F), 0.0F, 1e-6F);
}

TEST(Ops, ActivationGradsFromOutputs) {
  const float y = sigmoid(0.7F);
  EXPECT_NEAR(sigmoid_grad_from_output(y), y * (1 - y), 1e-7F);
  const float t = std::tanh(0.7F);
  EXPECT_NEAR(tanh_grad_from_output(t), 1 - t * t, 1e-7F);
}

TEST(Ops, ElementwiseAndAxpy) {
  Vector a(std::vector<float>{1, 2, 3});
  const Vector b(std::vector<float>{4, 5, 6});
  Vector out(3);
  add(a.span(), b.span(), out.span());
  EXPECT_FLOAT_EQ(out[2], 9.0F);
  sub(a.span(), b.span(), out.span());
  EXPECT_FLOAT_EQ(out[0], -3.0F);
  mul(a.span(), b.span(), out.span());
  EXPECT_FLOAT_EQ(out[1], 10.0F);
  axpy(2.0F, b.span(), a.span());
  EXPECT_FLOAT_EQ(a[0], 9.0F);
  Vector c(std::vector<float>{1, 2});
  EXPECT_THROW(add(a.span(), c.span(), out.span()), std::invalid_argument);
}

TEST(Ops, DotNormSumArgmax) {
  const Vector a(std::vector<float>{3, 4});
  EXPECT_DOUBLE_EQ(norm2(a.span()), 5.0);
  EXPECT_DOUBLE_EQ(dot(a.span(), a.span()), 25.0);
  EXPECT_DOUBLE_EQ(sum(a.span()), 7.0);
  const Vector b(std::vector<float>{1, 9, 2});
  EXPECT_EQ(argmax(b.span()), 1U);
  EXPECT_THROW(static_cast<void>(argmax(std::span<const float>{})),
               std::invalid_argument);
}

TEST(Ops, SoftmaxIsNormalizedAndStable) {
  Vector v(std::vector<float>{1000.0F, 1000.0F, 1000.0F});
  softmax_inplace(v.span());
  EXPECT_NEAR(v[0], 1.0F / 3.0F, 1e-5F);
  EXPECT_NEAR(static_cast<float>(sum(v.span())), 1.0F, 1e-5F);
}

TEST(Ops, LogSoftmaxMatchesSoftmax) {
  Vector v(std::vector<float>{0.3F, -1.2F, 2.0F});
  Vector ls(3);
  log_softmax(v.span(), ls.span());
  Vector sm = v;
  softmax_inplace(sm.span());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::exp(ls[i]), sm[i], 1e-5F);
  }
}

TEST(Ops, XavierInitWithinBound) {
  Rng rng(5);
  Matrix w(64, 32);
  xavier_init(w, rng);
  const float bound = std::sqrt(6.0F / (64 + 32));
  for (const float x : w.span()) {
    EXPECT_LE(std::fabs(x), bound);
  }
}

TEST(Ops, RecurrentInitRowsNearUnitNorm) {
  Rng rng(6);
  Matrix u(32, 32);
  recurrent_init(u, rng);
  for (std::size_t r = 0; r < u.rows(); ++r) {
    EXPECT_NEAR(norm2(u.row(r)), 0.9, 1e-4);
  }
}

TEST(Ops, MaxAbsDiff) {
  const Vector a(std::vector<float>{1, 2, 3});
  const Vector b(std::vector<float>{1, 2.5F, 2});
  EXPECT_FLOAT_EQ(max_abs_diff(a.span(), b.span()), 1.0F);
}

// ------------------------------------------------------------------ gemm
TEST(Gemm, GemvMatchesNaive) {
  const Matrix w = random_matrix(37, 53, 2);
  const Vector x = random_vector(53, 3);
  Vector expected(37);
  Vector actual(37);
  gemv_naive(w, x.span(), expected.span());
  gemv(w, x.span(), actual.span());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F);
}

TEST(Gemm, GemvAccumulateAddsOnTop) {
  const Matrix w = random_matrix(8, 8, 4);
  const Vector x = random_vector(8, 5);
  Vector y(8, 1.0F);
  Vector base(8);
  gemv(w, x.span(), base.span());
  gemv_accumulate(w, x.span(), y.span());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(y[i], base[i] + 1.0F, 1e-5F);
  }
}

TEST(Gemm, TransposedMatchesExplicitTranspose) {
  const Matrix w = random_matrix(19, 11, 6);
  const Vector x = random_vector(19, 7);
  Vector expected(11);
  Vector actual(11);
  gemv_naive(w.transposed(), x.span(), expected.span());
  gemv_transposed(w, x.span(), actual.span());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F);
}

TEST(Gemm, ShapeValidation) {
  const Matrix w(3, 4);
  Vector x(5);
  Vector y(3);
  EXPECT_THROW(gemv(w, x.span(), y.span()), std::invalid_argument);
  Vector x2(4);
  Vector y2(2);
  EXPECT_THROW(gemv(w, x2.span(), y2.span()), std::invalid_argument);
}

TEST(Gemm, BlockedGemmMatchesNaive) {
  const Matrix a = random_matrix(33, 65, 8);
  const Matrix b = random_matrix(65, 41, 9);
  Matrix expected(33, 41);
  Matrix actual(33, 41);
  gemm_naive(a, b, expected);
  gemm(a, b, actual);
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-3F);
}

TEST(Gemm, OuterAccumulate) {
  Matrix w(2, 3, 0.0F);
  const Vector u(std::vector<float>{1, 2});
  const Vector v(std::vector<float>{3, 4, 5});
  outer_accumulate(2.0F, u.span(), v.span(), w);
  EXPECT_FLOAT_EQ(w(1, 2), 20.0F);
  EXPECT_FLOAT_EQ(w(0, 0), 6.0F);
}

// -------------------------------------------------------------------- io
TEST(Io, MatrixRoundTrip) {
  const Matrix m = random_matrix(13, 7, 10);
  std::stringstream stream;
  write_matrix(stream, m);
  const Matrix back = read_matrix(stream);
  EXPECT_EQ(m, back);
}

TEST(Io, VectorRoundTrip) {
  const Vector v = random_vector(29, 11);
  std::stringstream stream;
  write_vector(stream, v);
  const Vector back = read_vector(stream);
  EXPECT_EQ(v, back);
}

TEST(Io, RejectsBadMagicAndTruncation) {
  std::stringstream bad("XXXXgarbage");
  EXPECT_THROW(read_matrix(bad), std::runtime_error);

  const Matrix m = random_matrix(4, 4, 12);
  std::stringstream stream;
  write_matrix(stream, m);
  std::string payload = stream.str();
  payload.resize(payload.size() / 2);
  std::stringstream truncated(payload);
  EXPECT_THROW(read_matrix(truncated), std::runtime_error);
}

}  // namespace
}  // namespace rtmobile
