// Tests for the batched streaming runtime: incremental MFCC equality with
// the batch extractor, chunked streaming inference equality with
// whole-utterance CompiledSpeechModel::infer, batched multi-session
// equality with independent single-session runs, and the stats collector.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "core/bsp.hpp"
#include "hw/thread_pool.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/stats.hpp"
#include "runtime/streaming_session.hpp"
#include "speech/mfcc.hpp"
#include "speech/streaming_mfcc.hpp"
#include "sparse/block_mask.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using runtime::EngineConfig;
using runtime::InferenceEngine;
using runtime::StreamingSession;
using speech::MfccConfig;
using speech::MfccExtractor;
using speech::StreamingMfcc;

std::vector<float> random_waveform(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

MfccConfig streaming_mfcc_config(bool deltas = true) {
  MfccConfig config;
  config.cepstral_mean_norm = false;  // whole-utterance; cannot stream
  config.add_deltas = deltas;
  return config;
}

/// Pushes `wave` into `mfcc` in chunks of `chunk` samples.
void push_chunked(StreamingMfcc& mfcc, std::span<const float> wave,
                  std::size_t chunk) {
  for (std::size_t pos = 0; pos < wave.size(); pos += chunk) {
    mfcc.push(wave.subspan(pos, std::min(chunk, wave.size() - pos)));
  }
  mfcc.finish();
}

/// A small BSP-pruned compiled model plus its pool, for streaming tests.
struct TestDeployment {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<SpeechModel> model;
  std::unique_ptr<CompiledSpeechModel> compiled;
};

TestDeployment make_deployment(std::size_t hidden, std::size_t threads,
                               std::uint64_t seed) {
  TestDeployment d;
  Rng rng(seed);
  ModelConfig config = ModelConfig::scaled(hidden);
  d.model = std::make_unique<SpeechModel>(config);
  d.model->init(rng);

  std::map<std::string, BlockMask> masks;
  ParamSet params;
  d.model->register_params(params);
  for (const std::string& name : d.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }

  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.threads = threads;
  if (threads > 1) d.pool = std::make_unique<ThreadPool>(threads);
  d.compiled = std::make_unique<CompiledSpeechModel>(*d.model, masks,
                                                     options, d.pool.get());
  return d;
}

// ------------------------------------------------------- streaming MFCC
TEST(StreamingMfcc, MatchesBatchExtractionAcrossChunkSizes) {
  const MfccConfig config = streaming_mfcc_config();
  const MfccExtractor extractor(config);
  const std::vector<float> wave = random_waveform(8000 + 123, 42);
  const Matrix batch = extractor.extract(wave);

  for (const std::size_t chunk : {1UL, 160UL, 400UL, 1601UL, 8123UL}) {
    StreamingMfcc streaming(config);
    push_chunked(streaming, wave, chunk);
    const Matrix streamed = streaming.pop_ready();
    ASSERT_EQ(streamed.rows(), batch.rows()) << "chunk=" << chunk;
    ASSERT_EQ(streamed.cols(), batch.cols()) << "chunk=" << chunk;
    EXPECT_EQ(streamed, batch) << "chunk=" << chunk;  // bitwise
  }
}

TEST(StreamingMfcc, MidStreamFramesAreFinal) {
  const MfccConfig config = streaming_mfcc_config();
  const MfccExtractor extractor(config);
  const std::vector<float> wave = random_waveform(6400, 7);
  const Matrix batch = extractor.extract(wave);

  // Pop eagerly after every chunk; concatenation must equal the batch
  // result (no mid-stream row may change once emitted).
  StreamingMfcc streaming(config);
  std::vector<Matrix> pieces;
  for (std::size_t pos = 0; pos < wave.size(); pos += 555) {
    streaming.push(std::span<const float>(wave).subspan(
        pos, std::min<std::size_t>(555, wave.size() - pos)));
    pieces.push_back(streaming.pop_ready());
  }
  streaming.finish();
  pieces.push_back(streaming.pop_ready());

  std::size_t row = 0;
  for (const Matrix& piece : pieces) {
    for (std::size_t t = 0; t < piece.rows(); ++t, ++row) {
      ASSERT_LT(row, batch.rows());
      EXPECT_EQ(0.0F, max_abs_diff(piece.row(t), batch.row(row)))
          << "row " << row;
    }
  }
  EXPECT_EQ(row, batch.rows());
}

TEST(StreamingMfcc, WithoutDeltasEmitsImmediately) {
  const MfccConfig config = streaming_mfcc_config(/*deltas=*/false);
  StreamingMfcc streaming(config);
  const std::vector<float> wave = random_waveform(1200, 3);
  streaming.push(wave);
  // 1200 samples = 25 ms + 5 hops -> 6 complete frames, all final.
  EXPECT_EQ(streaming.ready_frames(), 6U);
  const Matrix rows = streaming.pop_ready();
  EXPECT_EQ(rows.rows(), 6U);
  EXPECT_EQ(rows.cols(), config.num_cepstra);
}

TEST(StreamingMfcc, DeltaLookaheadHoldsBackTail) {
  const MfccConfig config = streaming_mfcc_config();
  StreamingMfcc streaming(config);
  streaming.push(random_waveform(1200, 4));  // 6 frames
  EXPECT_EQ(streaming.total_frames(), 6U);
  EXPECT_EQ(streaming.ready_frames(), 2U);  // 4 held for dd lookahead
  streaming.finish();
  EXPECT_EQ(streaming.ready_frames(), 6U);
}

TEST(StreamingMfcc, HandlesShiftLargerThanFrameLength) {
  // Sparse framing (gaps between windows) stressed the buffer-compaction
  // path: the next window starts beyond the samples received so far.
  MfccConfig config = streaming_mfcc_config();
  config.frame_length = 256;
  config.frame_shift = 700;
  config.fft_size = 256;
  const MfccExtractor extractor(config);
  const std::vector<float> wave = random_waveform(5000, 21);
  const Matrix batch = extractor.extract(wave);

  for (const std::size_t chunk : {37UL, 700UL, 5000UL}) {
    StreamingMfcc streaming(config);
    push_chunked(streaming, wave, chunk);
    const Matrix streamed = streaming.pop_ready();
    EXPECT_EQ(streamed, batch) << "chunk=" << chunk;
  }
}

TEST(StreamingMfcc, RejectsCepstralMeanNorm) {
  MfccConfig config;
  config.cepstral_mean_norm = true;
  EXPECT_THROW(StreamingMfcc{config}, std::invalid_argument);
}

// ------------------------------------------------- session vs utterance
TEST(StreamingSession, ChunkedLogitsMatchWholeUtteranceInfer) {
  const MfccConfig mfcc = streaming_mfcc_config();
  const std::vector<float> wave = random_waveform(16000, 11);  // 1 s
  const Matrix features = MfccExtractor(mfcc).extract(wave);

  for (const std::size_t threads : {1UL, 4UL}) {
    TestDeployment d = make_deployment(32, threads, 100 + threads);
    const Matrix reference = d.compiled->infer(features);

    InferenceEngine engine(*d.compiled);
    StreamingSession& session = engine.create_session(mfcc);
    for (std::size_t pos = 0; pos < wave.size(); pos += 1600) {  // 100 ms
      session.push_audio(std::span<const float>(wave).subspan(
          pos, std::min<std::size_t>(1600, wave.size() - pos)));
      engine.drain();  // interleave compute with arrival
    }
    session.finish();
    engine.drain();

    ASSERT_TRUE(session.done());
    const Matrix streamed = session.logits();
    ASSERT_EQ(streamed.rows(), reference.rows());
    EXPECT_EQ(streamed, reference) << "threads=" << threads;  // bitwise
  }
}

// ------------------------------------------------- batched multi-stream
TEST(InferenceEngine, BatchedSessionsMatchIndependentRuns) {
  constexpr std::size_t kStreams = 5;
  const MfccConfig mfcc = streaming_mfcc_config();
  TestDeployment d = make_deployment(24, 4, 55);

  std::vector<std::vector<float>> waves;
  std::vector<Matrix> references;
  for (std::size_t s = 0; s < kStreams; ++s) {
    // Different lengths so streams finish at different times.
    waves.push_back(random_waveform(8000 + 1234 * s, 200 + s));
    references.push_back(
        d.compiled->infer(MfccExtractor(mfcc).extract(waves.back())));
  }

  InferenceEngine engine(*d.compiled);
  for (std::size_t s = 0; s < kStreams; ++s) engine.create_session(mfcc);

  // Feed streams unevenly (different chunk sizes), pumping as we go.
  std::vector<std::size_t> positions(kStreams, 0);
  bool any_pending = true;
  while (any_pending) {
    any_pending = false;
    for (std::size_t s = 0; s < kStreams; ++s) {
      const std::size_t chunk = 800 + 160 * s;
      if (positions[s] < waves[s].size()) {
        const std::size_t n =
            std::min(chunk, waves[s].size() - positions[s]);
        engine.session(s).push_audio(
            std::span<const float>(waves[s]).subspan(positions[s], n));
        positions[s] += n;
        if (positions[s] == waves[s].size()) engine.session(s).finish();
        any_pending = any_pending || positions[s] < waves[s].size();
      }
    }
    engine.step();  // partial progress between arrivals
  }
  engine.drain();

  for (std::size_t s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(engine.session(s).done()) << "stream " << s;
    const Matrix streamed = engine.session(s).logits();
    ASSERT_EQ(streamed.rows(), references[s].rows()) << "stream " << s;
    EXPECT_EQ(streamed, references[s]) << "stream " << s;  // bitwise
  }

  const runtime::RuntimeStats& stats = engine.stats();
  std::size_t total_frames = 0;
  for (const Matrix& ref : references) total_frames += ref.rows();
  EXPECT_EQ(stats.frames_processed, total_frames);
  EXPECT_GT(stats.mean_batch(), 1.0);  // batching actually happened
  EXPECT_EQ(engine.remove_done(), kStreams);
  EXPECT_EQ(engine.session_count(), 0U);
}

TEST(InferenceEngine, MaxBatchBoundsStepSize) {
  TestDeployment d = make_deployment(16, 1, 77);
  EngineConfig config;
  config.max_batch = 2;
  InferenceEngine engine(*d.compiled, config);
  const std::vector<float> wave = random_waveform(4000, 5);
  for (int s = 0; s < 4; ++s) {
    StreamingSession& session = engine.create_session();
    session.push_audio(wave);
    session.finish();
  }
  std::size_t max_step = 0;
  while (true) {
    const std::size_t advanced = engine.step();
    if (advanced == 0) break;
    max_step = std::max(max_step, advanced);
  }
  EXPECT_EQ(max_step, 2U);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_TRUE(engine.session(s).done());
}

// -------------------------------------------------------- batched kernel
TEST(CompiledModel, StepBatchMatchesPerStreamInfer) {
  TestDeployment d = make_deployment(24, 4, 91);
  const std::size_t input_dim = d.compiled->config().input_dim;
  const std::size_t classes = d.compiled->config().num_classes;
  constexpr std::size_t kBatch = 3;
  constexpr std::size_t kFrames = 7;

  Rng rng(17);
  std::vector<Matrix> utterances;
  for (std::size_t b = 0; b < kBatch; ++b) {
    Matrix features(kFrames, input_dim);
    fill_normal(features.span(), rng, 1.0F);
    utterances.push_back(std::move(features));
  }

  std::vector<StreamState> states(kBatch, d.compiled->make_state());
  std::vector<StreamState*> state_ptrs;
  for (StreamState& s : states) state_ptrs.push_back(&s);
  Matrix frame(kBatch, input_dim);
  Matrix logits(kBatch, classes);
  std::vector<Matrix> batched(kBatch, Matrix(kFrames, classes));
  for (std::size_t t = 0; t < kFrames; ++t) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      std::copy(utterances[b].row(t).begin(), utterances[b].row(t).end(),
                frame.row(b).begin());
    }
    d.compiled->step_batch(frame, state_ptrs, logits);
    for (std::size_t b = 0; b < kBatch; ++b) {
      std::copy(logits.row(b).begin(), logits.row(b).end(),
                batched[b].row(t).begin());
    }
  }

  for (std::size_t b = 0; b < kBatch; ++b) {
    EXPECT_EQ(batched[b], d.compiled->infer(utterances[b])) << "b=" << b;
  }
}

TEST(CompiledModel, BatchedRunRecurrenceExecutes) {
  TestDeployment d = make_deployment(16, 2, 31);
  EXPECT_NO_THROW(d.compiled->run_recurrence(5, 4));
  EXPECT_THROW(d.compiled->run_recurrence(5, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- stats
TEST(RuntimeStats, QuantilesAndRates) {
  runtime::LatencyRecorder recorder;
  EXPECT_EQ(recorder.quantile_us(0.5), 0.0);
  for (int i = 1; i <= 100; ++i) recorder.record(static_cast<double>(i));
  EXPECT_EQ(recorder.count(), 100U);
  EXPECT_DOUBLE_EQ(recorder.mean_us(), 50.5);
  EXPECT_DOUBLE_EQ(recorder.p50_us(), 50.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(recorder.p95_us(), 95.0);
  EXPECT_EQ(recorder.quantile_us(0.0), 1.0);
  EXPECT_EQ(recorder.quantile_us(1.0), 100.0);
  EXPECT_THROW((void)recorder.quantile_us(1.5), std::invalid_argument);

  runtime::LatencyRecorder two;
  two.record(2.0);
  two.record(1.0);
  EXPECT_DOUBLE_EQ(two.quantile_us(0.5), 1.0);  // ceil(0.5*2) = 1st

  runtime::RuntimeStats stats;
  stats.frames_processed = 200;
  stats.steps = 50;
  stats.busy_us = 2e6;  // 2 s of compute
  stats.audio_seconds = 4.0;
  EXPECT_DOUBLE_EQ(stats.frames_per_second(), 100.0);
  EXPECT_DOUBLE_EQ(stats.real_time_factor(), 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_batch(), 4.0);
  stats.reset();
  EXPECT_EQ(stats.frames_processed, 0U);
}

TEST(RuntimeStats, PercentileEdgeCases) {
  // Empty window: every statistic degrades to 0 rather than dividing by
  // zero or indexing an empty sample set.
  runtime::LatencyRecorder empty;
  EXPECT_EQ(empty.count(), 0U);
  EXPECT_DOUBLE_EQ(empty.mean_us(), 0.0);
  EXPECT_DOUBLE_EQ(empty.p50_us(), 0.0);
  EXPECT_DOUBLE_EQ(empty.p95_us(), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile_us(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile_us(1.0), 0.0);

  // Single sample: every quantile is that sample.
  runtime::LatencyRecorder one;
  one.record(42.0);
  for (const double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(one.quantile_us(q), 42.0) << "q=" << q;
  }

  // Exact nearest-rank boundary: with 20 samples 1..20, p95 ranks at
  // ceil(0.95 * 20) = 19 exactly — no off-by-one to 20 (and p50 at
  // ceil(10) = 10).
  runtime::LatencyRecorder twenty;
  for (int i = 20; i >= 1; --i) twenty.record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(twenty.p95_us(), 19.0);
  EXPECT_DOUBLE_EQ(twenty.p50_us(), 10.0);
  EXPECT_DOUBLE_EQ(twenty.quantile_us(1.0), 20.0);

  // A quantile that lands between ranks rounds up (nearest rank), never
  // interpolates: ceil(0.9 * 3) = 3rd smallest.
  runtime::LatencyRecorder three;
  three.record(1.0);
  three.record(2.0);
  three.record(3.0);
  EXPECT_DOUBLE_EQ(three.quantile_us(0.9), 3.0);
}

TEST(LatencyRecorder, CappedModeIsExactBelowCapAndBoundedAbove) {
  // Below the cap a capped recorder is bit-identical to the exact one.
  runtime::LatencyRecorder exact;
  runtime::LatencyRecorder capped(64);
  for (int i = 1; i <= 50; ++i) {
    exact.record(static_cast<double>(i));
    capped.record(static_cast<double>(i));
  }
  EXPECT_EQ(capped.count(), 50U);
  EXPECT_EQ(capped.retained(), 50U);
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(capped.quantile_us(q), exact.quantile_us(q)) << q;
  }
  EXPECT_DOUBLE_EQ(capped.mean_us(), exact.mean_us());

  // Past the cap, retention stays bounded while count() keeps the true
  // total; quantile estimates stay near the exact values of a uniform
  // ramp (systematic 1-in-stride subsample).
  runtime::LatencyRecorder soak(64);
  for (int i = 1; i <= 100'000; ++i) soak.record(static_cast<double>(i));
  EXPECT_EQ(soak.count(), 100'000U);
  EXPECT_LE(soak.retained(), 64U);
  EXPECT_GE(soak.retained(), 32U);
  EXPECT_NEAR(soak.p50_us(), 50'000.0, 100'000.0 / 32.0);
  EXPECT_NEAR(soak.quantile_us(1.0), 100'000.0, 100'000.0 / 32.0);
  EXPECT_DOUBLE_EQ(soak.quantile_us(0.0), 1.0);  // first sample is kept

  // Decimation is deterministic: an identical run retains identically.
  runtime::LatencyRecorder repeat(64);
  for (int i = 1; i <= 100'000; ++i) repeat.record(static_cast<double>(i));
  EXPECT_EQ(repeat.retained(), soak.retained());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(repeat.quantile_us(q), soak.quantile_us(q)) << q;
  }

  // Cap validation: 1 would thin forever.
  runtime::LatencyRecorder invalid;
  EXPECT_THROW(invalid.set_cap(1), std::invalid_argument);
}

TEST(LatencyRecorder, CapAppliedAfterRecordingKeepsAcceptingSamples) {
  // Capping a recorder that already holds samples must resync its
  // sampling grid — a stale grid silently dropped every later sample.
  runtime::LatencyRecorder recorder;
  for (int i = 1; i <= 10; ++i) recorder.record(static_cast<double>(i));
  recorder.set_cap(256);
  for (int i = 11; i <= 100; ++i) recorder.record(static_cast<double>(i));
  EXPECT_EQ(recorder.count(), 100U);
  EXPECT_EQ(recorder.retained(), 100U);  // still below the cap: exact
  EXPECT_DOUBLE_EQ(recorder.quantile_us(1.0), 100.0);
  EXPECT_DOUBLE_EQ(recorder.p50_us(), 50.0);

  // And the same resync when the cap immediately forces decimation.
  runtime::LatencyRecorder tight;
  for (int i = 1; i <= 100; ++i) tight.record(static_cast<double>(i));
  tight.set_cap(64);  // thins to 50 retained, stride 2
  for (int i = 101; i <= 110; ++i) tight.record(static_cast<double>(i));
  EXPECT_EQ(tight.count(), 110U);
  EXPECT_GT(tight.quantile_us(1.0), 100.0);  // new samples land
}

TEST(LatencyRecorder, CappedRecorderKeepsSamplingAfterMergesAndThins) {
  // A capped recorder that absorbed merges must keep accepting samples
  // through later record()-triggered thins — the retained set no longer
  // sits on any from-observation-1 grid, so the resync must anchor on
  // what was actually observed.
  runtime::LatencyRecorder sink(64);
  for (int m = 0; m < 8; ++m) {
    runtime::LatencyRecorder shard(64);
    for (int i = 1; i <= 1000; ++i) {
      shard.record(static_cast<double>(i));
    }
    sink.merge_from(shard);
  }
  const std::size_t observed_so_far = sink.count();
  EXPECT_EQ(observed_so_far, 8000U);
  for (int i = 1; i <= 4000; ++i) {
    sink.record(5000.0 + static_cast<double>(i));
  }
  EXPECT_EQ(sink.count(), observed_so_far + 4000U);
  EXPECT_LE(sink.retained(), 64U);
  // The post-merge stream is represented: its samples (all > 5000)
  // appear at the top of the distribution instead of being dropped.
  EXPECT_GT(sink.quantile_us(1.0), 5000.0);
}

TEST(LatencyRecorder, CappedMergeIsExactBelowCap) {
  runtime::LatencyRecorder whole;
  runtime::LatencyRecorder left(64);
  runtime::LatencyRecorder right(64);
  for (int i = 1; i <= 40; ++i) {
    whole.record(static_cast<double>(i));
    (i <= 15 ? left : right).record(static_cast<double>(i));
  }
  runtime::LatencyRecorder merged(64);
  merged.merge_from(left);
  merged.merge_from(right);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.retained(), 40U);
  for (const double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.quantile_us(q), whole.quantile_us(q)) << q;
  }
  // Merging keeps accepting samples afterwards (still exact below cap).
  merged.record(41.0);
  whole.record(41.0);
  EXPECT_DOUBLE_EQ(merged.quantile_us(1.0), whole.quantile_us(1.0));
}

TEST(RuntimeStats, DeadlineCountersMergeAndReset) {
  runtime::RuntimeStats a;
  a.lag.record(10.0);
  a.deadline_misses = 3;
  a.shed_frames = 7;
  a.rejected_streams = 1;
  a.frames_processed = 10;
  runtime::RuntimeStats b;
  b.lag.record(30.0);
  b.deadline_misses = 2;
  b.shed_frames = 5;
  b.rejected_streams = 0;
  b.frames_processed = 10;
  runtime::RuntimeStats merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.deadline_misses, 5U);
  EXPECT_EQ(merged.shed_frames, 12U);
  EXPECT_EQ(merged.rejected_streams, 1U);
  EXPECT_EQ(merged.lag.count(), 2U);
  EXPECT_DOUBLE_EQ(merged.lag.quantile_us(1.0), 30.0);
  EXPECT_DOUBLE_EQ(merged.miss_rate(), 0.25);
  merged.reset();
  EXPECT_EQ(merged.deadline_misses, 0U);
  EXPECT_EQ(merged.shed_frames, 0U);
  EXPECT_EQ(merged.rejected_streams, 0U);
  EXPECT_EQ(merged.lag.count(), 0U);
}

TEST(RuntimeStats, MergeFromIsExactOverSplits) {
  // merge(empty, x) == x, and splitting a sample set in any proportion
  // then merging reproduces the whole — the identity the cross-shard
  // aggregator depends on.
  runtime::LatencyRecorder whole;
  runtime::LatencyRecorder left;
  runtime::LatencyRecorder right;
  for (int i = 1; i <= 25; ++i) {
    whole.record(static_cast<double>(i));
    (i <= 7 ? left : right).record(static_cast<double>(i));
  }
  runtime::LatencyRecorder merged;
  merged.merge_from(left);
  merged.merge_from(right);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.mean_us(), whole.mean_us());
  EXPECT_DOUBLE_EQ(merged.p50_us(), whole.p50_us());
  EXPECT_DOUBLE_EQ(merged.p95_us(), whole.p95_us());

  runtime::LatencyRecorder untouched;
  untouched.merge_from(runtime::LatencyRecorder{});
  EXPECT_EQ(untouched.count(), 0U);
}

}  // namespace
}  // namespace rtmobile
