// Unit tests for the compiler: reorder pass, execution plans across
// formats/threads, the compiled GRU executor, and the auto-tuner.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "compiler/auto_tuner.hpp"
#include "compiler/execution_plan.hpp"
#include "compiler/gru_executor.hpp"
#include "compiler/reorder.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  fill_normal(m.span(), rng, 1.0F);
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  fill_normal(v.span(), rng, 1.0F);
  return v;
}

// --------------------------------------------------------------- reorder
TEST(Reorder, StripeOrderIsAPermutation) {
  const Matrix w = random_matrix(32, 32, 1);
  BlockMask mask = block_column_mask(w, 8, 4, 0.25);
  const ReorderPlan plan = reorder_block_mask(mask, 3);
  std::vector<std::uint32_t> sorted = plan.stripe_order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0U);
  EXPECT_EQ(sorted, expected);
}

TEST(Reorder, GroupsMergeIdenticalPatterns) {
  // Hand-build a mask where stripes 0 and 2 share a pattern.
  BlockMask mask(8, 8, 4, 2);
  mask.set_block_cols(0, 0, {0, 1});
  mask.set_block_cols(0, 1, {4});
  mask.set_block_cols(2, 0, {0, 1});
  mask.set_block_cols(2, 1, {4});
  mask.set_block_cols(1, 0, {2});
  mask.set_block_cols(1, 1, {});
  mask.set_block_cols(3, 0, {});
  mask.set_block_cols(3, 1, {5, 6, 7});
  const ReorderPlan plan = reorder_block_mask(mask, 2);
  // Stripes {0,2} must land in one group.
  bool found_merged = false;
  for (const ReorderGroup& group : plan.groups) {
    const std::set<std::uint32_t> members(group.stripes.begin(),
                                          group.stripes.end());
    if (members == std::set<std::uint32_t>{0, 2}) found_merged = true;
  }
  EXPECT_TRUE(found_merged);
  // Heavy groups (3 nnz/row) must come before light ones (1 nnz/row).
  EXPECT_GE(plan.groups.front().nnz_per_row, plan.groups.back().nnz_per_row);
}

TEST(Reorder, ThreadRangesCoverOrderContiguously) {
  const Matrix w = random_matrix(64, 32, 2);
  const BlockMask mask = block_column_mask(w, 16, 4, 0.3);
  for (const std::size_t threads : {1U, 2U, 5U, 16U}) {
    const ReorderPlan plan = reorder_block_mask(mask, threads);
    ASSERT_EQ(plan.thread_ranges.size(), threads);
    std::uint32_t cursor = 0;
    for (const auto& [begin, end] : plan.thread_ranges) {
      EXPECT_EQ(begin, cursor);
      EXPECT_LE(begin, end);
      cursor = end;
    }
    EXPECT_EQ(cursor, plan.stripe_order.size());
  }
}

TEST(Reorder, BalancesBetterThanIdentityOnSkewedMasks) {
  // Skewed structure: stripe 0 is dense-ish, the rest nearly empty. A
  // naive equal-stripe split puts all heavy work on thread 0.
  Matrix w = random_matrix(64, 64, 3);
  BlockMask mask(64, 64, 8, 4);
  for (std::size_t s = 0; s < 8; ++s) {
    for (std::size_t b = 0; b < 4; ++b) {
      std::vector<std::uint32_t> kept;
      const std::size_t stride = (s < 2) ? 1 : 8;  // stripes 0,1 heavy
      for (std::size_t c = mask.col_begin(b); c < mask.col_end(b);
           c += stride) {
        kept.push_back(static_cast<std::uint32_t>(c));
      }
      mask.set_block_cols(s, b, kept);
    }
  }
  const ReorderPlan reordered = reorder_block_mask(mask, 4);
  const ReorderPlan naive = identity_plan(mask, 4);
  EXPECT_LE(reordered.imbalance(), naive.imbalance());
  EXPECT_LT(reordered.imbalance(), 1.8);
}

TEST(Reorder, CsrRowOrderSortsByNnz) {
  Matrix dense(4, 8, 0.0F);
  dense(0, 0) = 1.0F;                       // 1 nnz
  for (int c = 0; c < 5; ++c) dense(1, c) = 1.0F;  // 5 nnz
  for (int c = 0; c < 3; ++c) dense(2, c) = 1.0F;  // 3 nnz
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  const auto order = reorder_csr_rows(csr);
  EXPECT_EQ(order[0], 1U);
  EXPECT_EQ(order[1], 2U);
  EXPECT_EQ(order[2], 0U);
  EXPECT_EQ(order[3], 3U);
}

// --------------------------------------------------------- layer plans
class LayerPlanFormatTest
    : public ::testing::TestWithParam<std::tuple<SparseFormat, bool, bool,
                                                 std::size_t>> {};

TEST_P(LayerPlanFormatTest, ExecuteMatchesDenseOracle) {
  const auto [format, reorder, lre, threads] = GetParam();
  const Matrix w = random_matrix(48, 56, 4);
  BlockMask mask = block_column_mask(w, 6, 7, 0.3);
  apply_row_pruning(w, 0.75, mask);
  Matrix masked = w;
  mask.apply(masked);

  CompilerOptions options;
  options.format = format;
  options.reorder = reorder;
  options.lre = lre;
  options.threads = threads;
  const LayerPlan plan = LayerPlan::compile(
      w, format == SparseFormat::kDense ? nullptr : &mask, options);

  const Vector x = random_vector(56, 5);
  Vector expected(48);
  gemv_naive(format == SparseFormat::kDense ? w : masked, x.span(),
             expected.span());

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  Vector actual(48);
  plan.execute(x.span(), actual.span(), pool.get());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F);
  EXPECT_EQ(plan.to_dense(), format == SparseFormat::kDense ? w : masked);
}

INSTANTIATE_TEST_SUITE_P(
    Formats, LayerPlanFormatTest,
    ::testing::Values(
        std::make_tuple(SparseFormat::kDense, false, false, 1U),
        std::make_tuple(SparseFormat::kDense, false, false, 4U),
        std::make_tuple(SparseFormat::kCsr, false, false, 1U),
        std::make_tuple(SparseFormat::kCsr, false, false, 4U),
        std::make_tuple(SparseFormat::kBspc, true, true, 1U),
        std::make_tuple(SparseFormat::kBspc, true, true, 4U),
        std::make_tuple(SparseFormat::kBspc, false, true, 2U),
        std::make_tuple(SparseFormat::kBspc, true, false, 2U),
        std::make_tuple(SparseFormat::kBspc, false, false, 1U)));

TEST(LayerPlan, BspcRequiresMask) {
  const Matrix w = random_matrix(8, 8, 6);
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  EXPECT_THROW(LayerPlan::compile(w, nullptr, options),
               std::invalid_argument);
}

TEST(LayerPlan, MemoryFootprintOrdering) {
  // dense > csr > bspc for a BSP-structured sparse matrix.
  const Matrix w = random_matrix(128, 128, 7);
  BlockMask mask = block_column_mask(w, 8, 8, 0.1);
  CompilerOptions dense_options;
  dense_options.format = SparseFormat::kDense;
  CompilerOptions csr_options;
  csr_options.format = SparseFormat::kCsr;
  CompilerOptions bspc_options;
  bspc_options.format = SparseFormat::kBspc;
  const auto dense_plan = LayerPlan::compile(w, &mask, dense_options);
  const auto csr_plan = LayerPlan::compile(w, &mask, csr_options);
  const auto bspc_plan = LayerPlan::compile(w, &mask, bspc_options);
  EXPECT_EQ(csr_plan.nnz(), bspc_plan.nnz());
  EXPECT_GT(dense_plan.memory_bytes(), csr_plan.memory_bytes());
  EXPECT_GT(csr_plan.memory_bytes(), bspc_plan.memory_bytes());
}

// ------------------------------------------------------ compiled model
TEST(CompiledModel, MatchesReferenceForwardDense) {
  Rng rng(8);
  SpeechModel model(ModelConfig::scaled(24));
  model.init(rng);
  CompilerOptions options;
  options.format = SparseFormat::kDense;
  const CompiledSpeechModel compiled(model, {}, options);
  Matrix features(6, 39);
  fill_normal(features.span(), rng, 1.0F);
  const Matrix reference = model.forward(features);
  const Matrix fast = compiled.infer(features);
  EXPECT_LT(max_abs_diff(reference.span(), fast.span()), 1e-3F);
}

TEST(CompiledModel, MatchesReferenceForwardBspc) {
  Rng rng(9);
  SpeechModel model(ModelConfig::scaled(32));
  model.init(rng);

  // Prune every GRU weight with a BSP structure, then compare compiled
  // inference against the reference forward on the pruned weights.
  std::map<std::string, BlockMask> masks;
  ParamSet params;
  model.register_params(params);
  for (const std::string& name : model.weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.4);
    apply_row_pruning(w, 0.8, mask);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }

  Matrix features(5, 39);
  fill_normal(features.span(), rng, 1.0F);
  const Matrix reference = model.forward(features);

  for (const std::size_t threads : {1U, 4U}) {
    CompilerOptions options;
    options.format = SparseFormat::kBspc;
    options.threads = threads;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    const CompiledSpeechModel compiled(model, masks, options, pool.get());
    const Matrix fast = compiled.infer(features);
    EXPECT_LT(max_abs_diff(reference.span(), fast.span()), 1e-3F)
        << "threads=" << threads;
    EXPECT_EQ(compiled.total_nnz(),
              model.nonzero_param_count() -
                  model.fc_bias().size() -
                  2 * 3 * model.config().hidden_dim);
  }
}

TEST(CompiledModel, RunRecurrenceExecutes) {
  Rng rng(10);
  SpeechModel model(ModelConfig::scaled(16));
  model.init(rng);
  CompilerOptions options;
  options.format = SparseFormat::kDense;
  const CompiledSpeechModel compiled(model, {}, options);
  EXPECT_NO_THROW(compiled.run_recurrence(10));
  EXPECT_THROW(compiled.run_recurrence(0), std::invalid_argument);
}

// ------------------------------------------------------------ auto-tuner
TEST(AutoTuner, ReturnsFeasibleBestCandidate) {
  const Matrix w = random_matrix(64, 64, 11);
  TunerConfig config;
  config.num_c_candidates = {2, 4, 8};
  config.thread_candidates = {1};
  config.num_r = 8;
  config.col_keep_fraction = 0.25;
  config.timing_iters = 3;
  config.timing_repeats = 1;
  const TunerResult result = tune_layer(w, config);
  EXPECT_EQ(result.all.size(), 3U);
  EXPECT_GT(result.best.time_us, 0.0);
  // Best must be the fastest among feasible candidates.
  for (const TunerCandidate& candidate : result.all) {
    EXPECT_GE(candidate.time_us, result.best.time_us * 0.999);
  }
}

TEST(AutoTuner, AccuracyFloorFiltersCandidates) {
  const Matrix w = random_matrix(32, 32, 12);
  TunerConfig config;
  config.num_c_candidates = {4};
  config.thread_candidates = {1};
  config.num_r = 4;
  config.col_keep_fraction = 0.25;
  config.timing_iters = 2;
  config.timing_repeats = 1;
  // Impossible floor: falls back to the highest-energy candidate.
  config.min_energy_retained = 0.9999;
  const TunerResult result = tune_layer(w, config);
  double best_energy = 0.0;
  for (const TunerCandidate& candidate : result.all) {
    best_energy = std::max(best_energy, candidate.energy_retained);
  }
  EXPECT_DOUBLE_EQ(result.best.energy_retained, best_energy);
}

TEST(AutoTuner, ValidatesConfig) {
  const Matrix w = random_matrix(8, 8, 13);
  TunerConfig config;
  config.num_c_candidates = {};
  EXPECT_THROW(tune_layer(w, config), std::invalid_argument);
}

}  // namespace
}  // namespace rtmobile
