// Unit tests for sparse storage formats: CSR, CSC, BSPC, bank-balanced,
// block-circulant — round trips, SpMV agreement with the dense oracle,
// and the memory-footprint claims BSPC makes against CSR.
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/bank_balanced.hpp"
#include "sparse/block_circulant.hpp"
#include "sparse/bspc.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

Matrix random_sparse(std::size_t rows, std::size_t cols, double density,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols, 0.0F);
  for (float& w : m.span()) {
    if (rng.bernoulli(density)) w = rng.normal();
  }
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vector v(n);
  fill_normal(v.span(), rng, 1.0F);
  return v;
}

/// Random BSP-structured mask + weights pair.
struct BspFixture {
  Matrix weights;
  BlockMask mask;
};

BspFixture random_bsp(std::size_t rows, std::size_t cols, std::size_t num_r,
                      std::size_t num_c, double col_keep, double row_keep,
                      std::uint64_t seed) {
  Rng rng(seed);
  BspFixture fx{Matrix(rows, cols), BlockMask(rows, cols, num_r, num_c)};
  fill_normal(fx.weights.span(), rng, 1.0F);
  for (std::size_t s = 0; s < num_r; ++s) {
    for (std::size_t b = 0; b < num_c; ++b) {
      std::vector<std::uint32_t> kept;
      for (std::size_t c = fx.mask.col_begin(b); c < fx.mask.col_end(b);
           ++c) {
        if (rng.bernoulli(col_keep)) {
          kept.push_back(static_cast<std::uint32_t>(c));
        }
      }
      fx.mask.set_block_cols(s, b, kept);
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    fx.mask.set_row_kept(r, rng.bernoulli(row_keep));
  }
  return fx;
}

// ------------------------------------------------------------------- CSR
TEST(Csr, RoundTripAndNnz) {
  const Matrix dense = random_sparse(17, 23, 0.2, 1);
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.nnz(), dense.count_nonzero());
  EXPECT_EQ(csr.to_dense(), dense);
}

TEST(Csr, SpmvMatchesDense) {
  const Matrix dense = random_sparse(31, 19, 0.3, 2);
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  const Vector x = random_vector(19, 3);
  Vector expected(31);
  Vector actual(31);
  gemv_naive(dense, x.span(), expected.span());
  csr.spmv(x.span(), actual.span());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F);

  Vector acc(31, 1.0F);
  csr.spmv_accumulate(x.span(), acc.span());
  for (std::size_t i = 0; i < 31; ++i) {
    EXPECT_NEAR(acc[i], actual[i] + 1.0F, 1e-5F);
  }
}

TEST(Csr, ThresholdDropsSmallEntries) {
  Matrix dense(2, 2, 0.0F);
  dense(0, 0) = 0.05F;
  dense(1, 1) = 0.5F;
  const CsrMatrix csr = CsrMatrix::from_dense(dense, 0.1F);
  EXPECT_EQ(csr.nnz(), 1U);
  EXPECT_THROW(CsrMatrix::from_dense(dense, -1.0F), std::invalid_argument);
}

TEST(Csr, MemoryAccounting) {
  const Matrix dense = random_sparse(16, 16, 0.25, 4);
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  const std::size_t nnz = csr.nnz();
  EXPECT_EQ(csr.memory_bytes(4, 4), nnz * 4 + nnz * 4 + 17 * 4);
  // fp16 values halve the value payload only.
  EXPECT_EQ(csr.memory_bytes(2, 4), nnz * 2 + nnz * 4 + 17 * 4);
}

TEST(Csr, RowNnz) {
  Matrix dense(2, 3, 0.0F);
  dense(0, 1) = 1.0F;
  dense(1, 0) = 1.0F;
  dense(1, 2) = 1.0F;
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.row_nnz(0), 1U);
  EXPECT_EQ(csr.row_nnz(1), 2U);
  EXPECT_THROW(static_cast<void>(csr.row_nnz(2)), std::invalid_argument);
}

// ------------------------------------------------------------------- CSC
TEST(Csc, RoundTripAndSpmv) {
  const Matrix dense = random_sparse(21, 13, 0.3, 5);
  const CscMatrix csc = CscMatrix::from_dense(dense);
  EXPECT_EQ(csc.nnz(), dense.count_nonzero());
  EXPECT_EQ(csc.to_dense(), dense);

  const Vector x = random_vector(13, 6);
  Vector expected(21);
  Vector actual(21);
  gemv_naive(dense, x.span(), expected.span());
  csc.spmv(x.span(), actual.span());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F);
}

// ------------------------------------------------------------------ BSPC
class BspcParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 double, double>> {};

TEST_P(BspcParamTest, RoundTripAndSpmvAgainstDenseOracle) {
  const auto [num_r, num_c, col_keep, row_keep] = GetParam();
  const BspFixture fx =
      random_bsp(24, 36, num_r, num_c, col_keep, row_keep, 7);
  Matrix masked = fx.weights;
  fx.mask.apply(masked);

  const BspcMatrix bspc = BspcMatrix::from_dense(fx.weights, fx.mask);
  EXPECT_EQ(bspc.nnz(), fx.mask.nnz());
  EXPECT_EQ(bspc.to_dense(), masked);

  const Vector x = random_vector(36, 8);
  Vector expected(24);
  Vector with_lre(24);
  Vector without_lre(24);
  gemv_naive(masked, x.span(), expected.span());
  bspc.spmv(x.span(), with_lre.span());
  bspc.spmv_no_lre(x.span(), without_lre.span());
  EXPECT_LT(max_abs_diff(expected.span(), with_lre.span()), 1e-4F);
  // LRE is an execution schedule, not a numeric change.
  EXPECT_LT(max_abs_diff(with_lre.span(), without_lre.span()), 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(
    Structures, BspcParamTest,
    ::testing::Values(std::make_tuple(1, 1, 0.5, 1.0),
                      std::make_tuple(4, 6, 0.3, 1.0),
                      std::make_tuple(6, 4, 0.2, 0.6),
                      std::make_tuple(8, 9, 0.1, 0.4),
                      std::make_tuple(24, 36, 0.3, 0.8),
                      std::make_tuple(3, 5, 1.0, 1.0)));

TEST(Bspc, StripeListExecutionMatchesFullSpmv) {
  const BspFixture fx = random_bsp(30, 40, 6, 5, 0.3, 0.7, 9);
  const BspcMatrix bspc = BspcMatrix::from_dense(fx.weights, fx.mask);
  const Vector x = random_vector(40, 10);
  Vector expected(30);
  bspc.spmv(x.span(), expected.span());

  // Arbitrary stripe order must produce the same result.
  Vector actual(30, 0.0F);
  const std::vector<std::uint32_t> order = {5, 0, 3, 1, 4, 2};
  bspc.spmv_stripe_list(x.span(), actual.span(), order);
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-5F);

  // Split ranges accumulate to the same result.
  Vector split(30, 0.0F);
  bspc.spmv_stripes(x.span(), split.span(), 0, 3);
  bspc.spmv_stripes(x.span(), split.span(), 3, 6);
  EXPECT_LT(max_abs_diff(expected.span(), split.span()), 1e-5F);
}

TEST(Bspc, IndexOverheadBeatsCsr) {
  // The format's reason to exist: same nnz, far fewer index bytes. Use a
  // BSP-structured matrix (columns shared within stripes).
  const BspFixture fx = random_bsp(128, 256, 8, 8, 0.15, 1.0, 11);
  Matrix masked = fx.weights;
  fx.mask.apply(masked);
  const BspcMatrix bspc = BspcMatrix::from_dense(fx.weights, fx.mask);
  const CsrMatrix csr = CsrMatrix::from_dense(masked);
  ASSERT_EQ(bspc.nnz(), csr.nnz());
  // Compare index-only overhead (value payloads are identical).
  const std::size_t value_bytes = bspc.nnz() * 4;
  const std::size_t bspc_index = bspc.memory_bytes(4, 4) - value_bytes;
  const std::size_t csr_index = csr.memory_bytes(4, 4) - value_bytes;
  EXPECT_LT(bspc_index * 5, csr_index)
      << "BSPC index overhead should be >5x smaller than CSR's";
}

TEST(Bspc, PrunedRowsProduceZeroOutput) {
  BspFixture fx = random_bsp(12, 12, 3, 3, 0.5, 1.0, 12);
  fx.mask.set_row_kept(4, false);
  const BspcMatrix bspc = BspcMatrix::from_dense(fx.weights, fx.mask);
  const Vector x = random_vector(12, 13);
  Vector y(12);
  bspc.spmv(x.span(), y.span());
  EXPECT_FLOAT_EQ(y[4], 0.0F);
}

TEST(Bspc, ShapeValidation) {
  const BspFixture fx = random_bsp(8, 8, 2, 2, 0.5, 1.0, 14);
  const BspcMatrix bspc = BspcMatrix::from_dense(fx.weights, fx.mask);
  Vector bad_x(7);
  Vector y(8);
  EXPECT_THROW(bspc.spmv(bad_x.span(), y.span()), std::invalid_argument);
  const Matrix wrong(7, 8);
  EXPECT_THROW(BspcMatrix::from_dense(wrong, fx.mask),
               std::invalid_argument);
}

// --------------------------------------------------------- bank-balanced
TEST(BankBalanced, EveryBankKeepsExactBudget) {
  const Matrix dense = random_sparse(16, 64, 1.0, 15);
  const auto bbs = BankBalancedMatrix::from_dense(dense, 16, 3);
  EXPECT_EQ(bbs.nnz(), 16U * 4 * 3);
  const Matrix mask = bbs.keep_mask();
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t bank = 0; bank < 4; ++bank) {
      std::size_t kept = 0;
      for (std::size_t k = 0; k < 16; ++k) {
        if (mask(r, bank * 16 + k) != 0.0F) ++kept;
      }
      EXPECT_EQ(kept, 3U);
    }
  }
}

TEST(BankBalanced, KeepsLargestMagnitudes) {
  Matrix dense(1, 8, 0.0F);
  const float values[8] = {0.1F, -3.0F, 0.2F, 2.0F, -0.3F, 0.05F, 1.0F, 0.0F};
  for (std::size_t c = 0; c < 8; ++c) dense(0, c) = values[c];
  const auto bbs = BankBalancedMatrix::from_dense(dense, 8, 2);
  const Matrix back = bbs.to_dense();
  EXPECT_FLOAT_EQ(back(0, 1), -3.0F);
  EXPECT_FLOAT_EQ(back(0, 3), 2.0F);
  EXPECT_EQ(back.count_nonzero(), 2U);
}

TEST(BankBalanced, SpmvMatchesDenseOracle) {
  const Matrix dense = random_sparse(24, 48, 1.0, 16);
  const auto bbs = BankBalancedMatrix::from_dense(dense, 12, 4);
  const Matrix effective = bbs.to_dense();
  const Vector x = random_vector(48, 17);
  Vector expected(24);
  Vector actual(24);
  gemv_naive(effective, x.span(), expected.span());
  bbs.spmv(x.span(), actual.span());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F);
}

TEST(BankBalanced, Validation) {
  const Matrix dense(4, 10);
  EXPECT_THROW(BankBalancedMatrix::from_dense(dense, 3, 1),
               std::invalid_argument);  // 3 does not divide 10
  EXPECT_THROW(BankBalancedMatrix::from_dense(dense, 5, 6),
               std::invalid_argument);  // keep > bank
}

// -------------------------------------------------------- block-circulant
TEST(BlockCirculant, ProjectionIsIdempotent) {
  const Matrix dense = random_sparse(16, 16, 1.0, 18);
  const auto bc = BlockCirculantMatrix::from_dense(dense, 4);
  const Matrix once = bc.to_dense();
  const Matrix twice = BlockCirculantMatrix::from_dense(once, 4).to_dense();
  EXPECT_LT(max_abs_diff(once.span(), twice.span()), 1e-5F);
}

TEST(BlockCirculant, BlocksAreCirculant) {
  const Matrix dense = random_sparse(8, 8, 1.0, 19);
  const Matrix projected = BlockCirculantMatrix::from_dense(dense, 4).to_dense();
  // Within each 4x4 block, entries on the same wrapped diagonal are equal.
  for (std::size_t br = 0; br < 2; ++br) {
    for (std::size_t bc = 0; bc < 2; ++bc) {
      for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
          const float a = projected(br * 4 + i, bc * 4 + j);
          const float b = projected(br * 4 + (i + 1) % 4,
                                    bc * 4 + (j + 1) % 4);
          EXPECT_NEAR(a, b, 1e-6F);
        }
      }
    }
  }
}

TEST(BlockCirculant, FftMatvecMatchesNaive) {
  const Matrix dense = random_sparse(24, 40, 1.0, 20);
  const auto bc = BlockCirculantMatrix::from_dense(dense, 8);  // pads cols
  const Vector x = random_vector(40, 21);
  Vector fft_out(24);
  Vector naive_out(24);
  bc.matvec(x.span(), fft_out.span());
  bc.matvec_naive(x.span(), naive_out.span());
  EXPECT_LT(max_abs_diff(fft_out.span(), naive_out.span()), 1e-3F);
}

TEST(BlockCirculant, MatvecMatchesDenseExpansion) {
  const Matrix dense = random_sparse(16, 24, 1.0, 22);
  const auto bc = BlockCirculantMatrix::from_dense(dense, 8);
  const Matrix expanded = bc.to_dense();
  const Vector x = random_vector(24, 23);
  Vector expected(16);
  Vector actual(16);
  gemv_naive(expanded, x.span(), expected.span());
  bc.matvec(x.span(), actual.span());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-3F);
}

TEST(BlockCirculant, CompressionFactorIsBlockSize) {
  const Matrix dense = random_sparse(32, 64, 1.0, 24);
  const auto bc = BlockCirculantMatrix::from_dense(dense, 8);
  EXPECT_EQ(bc.param_count(), 32U * 64 / 8);
  EXPECT_THROW(BlockCirculantMatrix::from_dense(dense, 6),
               std::invalid_argument);
}

TEST(BlockCirculant, ProjectionMinimizesFrobenius) {
  // The diagonal-mean projection must beat any perturbed circulant.
  const Matrix dense = random_sparse(8, 8, 1.0, 25);
  const auto bc = BlockCirculantMatrix::from_dense(dense, 8);
  const Matrix projected = bc.to_dense();
  double base_err = 0.0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    const double d = static_cast<double>(dense.span()[i]) -
                     static_cast<double>(projected.span()[i]);
    base_err += d * d;
  }
  Rng rng(26);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix perturbed = projected;
    // Perturb along the circulant subspace: shift every wrapped diagonal
    // by a constant (stays circulant).
    const float eps = 0.05F * (rng.next_float() - 0.5F);
    const std::size_t d = rng.next_below(8);
    for (std::size_t i = 0; i < 8; ++i) {
      perturbed(i, (i + 8 - d) % 8) += eps;
    }
    double err = 0.0;
    for (std::size_t i = 0; i < dense.size(); ++i) {
      const double diff = static_cast<double>(dense.span()[i]) -
                          static_cast<double>(perturbed.span()[i]);
      err += diff * diff;
    }
    EXPECT_GE(err, base_err - 1e-9);
  }
}

}  // namespace
}  // namespace rtmobile
