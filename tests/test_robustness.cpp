// Robustness and property tests: randomized fuzzing of the sparse
// execution stack against the dense oracle, thread-pool stress, WAV
// round trips, and cross-cutting invariants that the focused unit tests
// do not sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>

#include "compiler/execution_plan.hpp"
#include "sparse/bspc.hpp"
#include "hw/thread_pool.hpp"
#include "speech/wav.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

// ---------------------------------------------------- sparse-stack fuzzing
// Property: for ANY random shape, block grid, keep fractions, format, and
// thread count, executing the compiled plan equals the dense oracle on
// the masked weights.
class SparseStackFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseStackFuzz, CompiledPlanMatchesDenseOracle) {
  Rng rng(GetParam() * 7919 + 13);
  const std::size_t rows = 8 + rng.next_below(120);
  const std::size_t cols = 8 + rng.next_below(120);
  const std::size_t num_r =
      1 + rng.next_below(std::min<std::size_t>(rows, 12));
  const std::size_t num_c =
      1 + rng.next_below(std::min<std::size_t>(cols, 12));
  const double col_keep = 0.05 + 0.9 * rng.next_double();
  const double row_keep = 0.2 + 0.8 * rng.next_double();

  Matrix weights(rows, cols);
  fill_normal(weights.span(), rng, 1.0F);
  BlockMask mask = block_column_mask(weights, num_r, num_c, col_keep);
  if (rng.bernoulli(0.5)) apply_row_pruning(weights, row_keep, mask);
  Matrix masked = weights;
  mask.apply(masked);

  Vector x(cols);
  fill_normal(x.span(), rng, 1.0F);
  Vector expected(rows);
  gemv_naive(masked, x.span(), expected.span());

  const SparseFormat format = rng.bernoulli(0.5) ? SparseFormat::kBspc
                                                 : SparseFormat::kCsr;
  CompilerOptions options;
  options.format = format;
  options.reorder = rng.bernoulli(0.5);
  options.lre = rng.bernoulli(0.5);
  options.threads = 1 + rng.next_below(4);
  options.min_nnz_for_threading = rng.bernoulli(0.5) ? 0 : 1 << 20;
  const LayerPlan plan = LayerPlan::compile(weights, &mask, options);

  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
  }
  Vector actual(rows);
  plan.execute(x.span(), actual.span(), pool.get());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F)
      << "rows=" << rows << " cols=" << cols << " grid=" << num_r << 'x'
      << num_c << " format=" << to_string(format)
      << " threads=" << options.threads;
  EXPECT_EQ(plan.nnz(), mask.nnz());
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SparseStackFuzz,
                         ::testing::Range<std::uint64_t>(0, 24));

// ----------------------------------------------------- thread-pool stress
TEST(ThreadPoolStress, ManyConsecutiveJobsStayCorrect) {
  ThreadPool pool(4);
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.next_below(50);
    std::atomic<std::size_t> total{0};
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin);
    });
    ASSERT_EQ(total.load(), n) << "round " << round;
  }
}

TEST(ThreadPoolStress, AlternatingSizesAndExceptions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::function<void()>> tasks;
    const bool poison = round % 7 == 0;
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
      if (poison && i == 4) {
        tasks.emplace_back([] { throw std::runtime_error("boom"); });
      } else {
        tasks.emplace_back([&done] { done.fetch_add(1); });
      }
    }
    if (poison) {
      EXPECT_THROW(pool.run_all(tasks), std::runtime_error);
    } else {
      pool.run_all(tasks);
      EXPECT_EQ(done.load(), 8);
    }
  }
}

TEST(ThreadPoolStress, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::size_t counter = 0;  // no atomics: everything runs on the caller
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    counter += end - begin;
  });
  EXPECT_EQ(counter, 100U);
}

TEST(ThreadPoolStress, HeavyAndLightTasksInterleaved) {
  ThreadPool pool(4);
  std::atomic<double> sink{0.0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    const int reps = (i % 4 == 0) ? 20000 : 10;
    tasks.emplace_back([&sink, reps] {
      double acc = 0.0;
      for (int k = 0; k < reps; ++k) acc += std::sqrt(static_cast<double>(k));
      double expected = sink.load();
      while (!sink.compare_exchange_weak(expected, expected + acc)) {
      }
    });
  }
  pool.run_all(tasks);
  EXPECT_GT(sink.load(), 0.0);
}

// --------------------------------------------------------------- WAV I/O
TEST(Wav, RoundTripPreservesSamples) {
  Rng rng(5);
  std::vector<float> samples(1600);
  for (auto& s : samples) s = 0.8F * rng.normal() * 0.3F;
  std::stringstream stream;
  speech::write_wav(stream, samples, 16000);
  const speech::WavData wav = speech::read_wav(stream);
  EXPECT_EQ(wav.sample_rate_hz, 16000U);
  ASSERT_EQ(wav.samples.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_NEAR(wav.samples[i], std::clamp(samples[i], -1.0F, 1.0F),
                1.0F / 32767.0F + 1e-6F);
  }
}

TEST(Wav, ClampsOutOfRangeSamples) {
  const std::vector<float> samples = {2.0F, -3.0F, 0.0F};
  std::stringstream stream;
  speech::write_wav(stream, samples, 8000);
  const speech::WavData wav = speech::read_wav(stream);
  EXPECT_NEAR(wav.samples[0], 1.0F, 1e-4F);
  EXPECT_NEAR(wav.samples[1], -1.0F, 1e-4F);
}

TEST(Wav, RejectsGarbage) {
  std::stringstream stream("not a wav file at all............");
  EXPECT_THROW(speech::read_wav(stream), std::runtime_error);
}

TEST(Wav, RejectsUnsupportedFormats) {
  // Hand-build a stereo header.
  std::stringstream stream;
  stream.write("RIFF", 4);
  const std::uint32_t riff_size = 36;
  stream.write(reinterpret_cast<const char*>(&riff_size), 4);
  stream.write("WAVE", 4);
  stream.write("fmt ", 4);
  const std::uint32_t fmt_size = 16;
  stream.write(reinterpret_cast<const char*>(&fmt_size), 4);
  const std::uint16_t pcm = 1;
  const std::uint16_t stereo = 2;  // unsupported
  stream.write(reinterpret_cast<const char*>(&pcm), 2);
  stream.write(reinterpret_cast<const char*>(&stereo), 2);
  const std::uint32_t rate = 16000;
  stream.write(reinterpret_cast<const char*>(&rate), 4);
  const std::uint32_t byte_rate = 64000;
  stream.write(reinterpret_cast<const char*>(&byte_rate), 4);
  const std::uint16_t align = 4;
  stream.write(reinterpret_cast<const char*>(&align), 2);
  const std::uint16_t bits = 16;
  stream.write(reinterpret_cast<const char*>(&bits), 2);
  EXPECT_THROW(speech::read_wav(stream), std::runtime_error);
}

// ------------------------------------------------- cross-cutting invariants
TEST(Invariants, MaskNnzConservedThroughCompilationChain) {
  // BlockMask -> BSPC -> LayerPlan -> to_dense keeps the same support.
  Rng rng(31);
  Matrix weights(40, 60);
  fill_normal(weights.span(), rng, 1.0F);
  BlockMask mask = block_column_mask(weights, 5, 6, 0.3);
  apply_row_pruning(weights, 0.6, mask);

  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  const LayerPlan plan = LayerPlan::compile(weights, &mask, options);
  const Matrix dense = plan.to_dense();
  EXPECT_EQ(dense.count_nonzero(), mask.nnz());
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 60; ++c) {
      if (!mask.is_kept(r, c)) {
        EXPECT_EQ(dense(r, c), 0.0F);
      }
    }
  }
}

TEST(Invariants, ReorderNeverChangesResults) {
  // Same plan with and without reorder must agree exactly (it only
  // permutes the execution schedule).
  Rng rng(32);
  Matrix weights(64, 64);
  fill_normal(weights.span(), rng, 1.0F);
  const BlockMask mask = block_column_mask(weights, 16, 8, 0.2);
  Vector x(64);
  fill_normal(x.span(), rng, 1.0F);

  CompilerOptions with_reorder;
  with_reorder.format = SparseFormat::kBspc;
  with_reorder.reorder = true;
  CompilerOptions without_reorder = with_reorder;
  without_reorder.reorder = false;

  Vector y1(64);
  Vector y2(64);
  LayerPlan::compile(weights, &mask, with_reorder)
      .execute(x.span(), y1.span());
  LayerPlan::compile(weights, &mask, without_reorder)
      .execute(x.span(), y2.span());
  EXPECT_LT(max_abs_diff(y1.span(), y2.span()), 1e-6F);
}

// ----------------------------------------------------- BSPC serialization
TEST(BspcSerialization, RoundTripPreservesStructureAndResults) {
  Rng rng(41);
  Matrix weights(48, 64);
  fill_normal(weights.span(), rng, 1.0F);
  BlockMask mask = block_column_mask(weights, 6, 8, 0.25);
  apply_row_pruning(weights, 0.75, mask);
  const BspcMatrix original = BspcMatrix::from_dense(weights, mask);

  std::stringstream stream;
  original.write(stream);
  const BspcMatrix restored = BspcMatrix::read(stream);
  EXPECT_TRUE(original == restored);
  EXPECT_EQ(restored.nnz(), original.nnz());

  Vector x(64);
  fill_normal(x.span(), rng, 1.0F);
  Vector y1(48);
  Vector y2(48);
  original.spmv(x.span(), y1.span());
  restored.spmv(x.span(), y2.span());
  EXPECT_LT(max_abs_diff(y1.span(), y2.span()), 1e-7F);
}

TEST(BspcSerialization, RejectsCorruptStreams) {
  Rng rng(42);
  Matrix weights(16, 16);
  fill_normal(weights.span(), rng, 1.0F);
  const BlockMask mask = block_column_mask(weights, 4, 4, 0.5);
  const BspcMatrix original = BspcMatrix::from_dense(weights, mask);

  std::stringstream good;
  original.write(good);
  const std::string payload = good.str();

  // Bad magic.
  std::stringstream bad_magic("XXXX" + payload.substr(4));
  EXPECT_THROW(BspcMatrix::read(bad_magic), std::runtime_error);
  // Truncation at every eighth byte boundary.
  for (std::size_t cut = 8; cut < payload.size(); cut += payload.size() / 7) {
    std::stringstream truncated(payload.substr(0, cut));
    EXPECT_THROW(BspcMatrix::read(truncated), std::runtime_error)
        << "cut at " << cut;
  }
  // Flipping a column index beyond cols must be caught by validation.
  std::string corrupt = payload;
  // Column pool sits near the end; stomp a late 4-byte field with 0xFF.
  for (std::size_t i = corrupt.size() - 40; i < corrupt.size() - 36; ++i) {
    corrupt[i] = static_cast<char>(0xFF);
  }
  std::stringstream corrupted(corrupt);
  try {
    const BspcMatrix read_back = BspcMatrix::read(corrupted);
    // If validation passed, the payload stomp hit float values, which is
    // acceptable — structure must still be intact.
    EXPECT_EQ(read_back.rows(), original.rows());
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace rtmobile

