// Tests for the unified recognizer surface and the incremental decoder
// behind it.
//
// Two load-bearing guarantees:
//  1. Streaming-vs-batch decode parity: StreamingDecoder's finalized
//     hypothesis is bit-identical to whole-utterance greedy_decode /
//     viterbi_decode on the same logits, however the rows are chunked.
//  2. Recognizer conformance: LocalRecognizer and ShardedEngine pass the
//     same client-side suite, and a stream's event sequence (stable
//     deltas + partial tails) is identical across implementations, audio
//     chunk sizes, shard placements, and drain_shard migration.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "serve/local_recognizer.hpp"
#include "serve/sharded_engine.hpp"
#include "speech/decoder.hpp"
#include "speech/mfcc.hpp"
#include "speech/streaming_decoder.hpp"
#include "sparse/block_mask.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using serve::LocalRecognizer;
using serve::Recognizer;
using serve::RecognizerEvent;
using serve::ShardConfig;
using serve::ShardedEngine;
using serve::StreamConfig;
using serve::StreamHandle;
using speech::DecodeMode;
using speech::DecoderConfig;
using speech::StreamEvent;
using speech::StreamingDecoder;
using speech::StreamingDecoderConfig;

Matrix random_logits(std::size_t frames, std::size_t classes,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix logits(frames, classes);
  fill_normal(logits.span(), rng, 2.0F);
  return logits;
}

/// Feeds all rows one at a time and finishes; returns every event.
std::vector<StreamEvent> run_decoder(const Matrix& logits,
                                     const StreamingDecoderConfig& config,
                                     StreamingDecoder* out = nullptr) {
  StreamingDecoder decoder(logits.cols(), config);
  std::vector<StreamEvent> events;
  for (std::size_t t = 0; t < logits.rows(); ++t) {
    decoder.push_row(logits.row(t));
    decoder.poll_events(events);
  }
  decoder.finish();
  decoder.poll_events(events);
  if (out != nullptr) *out = std::move(decoder);
  return events;
}

/// Reassembles the hypothesis a client would hold: concatenated stable
/// deltas (the final event's partial is empty).
std::vector<std::uint16_t> assemble(const std::vector<StreamEvent>& events) {
  std::vector<std::uint16_t> hypothesis;
  for (const StreamEvent& event : events) {
    hypothesis.insert(hypothesis.end(), event.stable.begin(),
                      event.stable.end());
  }
  return hypothesis;
}

// ------------------------------------------------ streaming decode parity
TEST(StreamingDecoder, GreedyFinalMatchesBatchAcrossConfigs) {
  for (const std::size_t frames : {1UL, 2UL, 3UL, 7UL, 41UL}) {
    const Matrix logits = random_logits(frames, 12, 100 + frames);
    for (const std::size_t window : {1UL, 3UL, 5UL}) {
      for (const std::size_t min_run : {1UL, 2UL, 3UL}) {
        StreamingDecoderConfig config;
        config.mode = DecodeMode::kGreedy;
        config.greedy = DecoderConfig{window, min_run};
        StreamingDecoder decoder(12, config);
        const std::vector<StreamEvent> events =
            run_decoder(logits, config, &decoder);

        const std::vector<std::uint16_t> batch =
            speech::greedy_decode(logits, config.greedy);
        EXPECT_EQ(std::vector<std::uint16_t>(decoder.stable().begin(),
                                             decoder.stable().end()),
                  batch)
            << "frames=" << frames << " window=" << window
            << " min_run=" << min_run;
        EXPECT_TRUE(decoder.partial().empty());
        EXPECT_EQ(assemble(events), batch);
        ASSERT_FALSE(events.empty());
        EXPECT_TRUE(events.back().is_final);
        EXPECT_TRUE(events.back().partial.empty());
      }
    }
  }
}

TEST(StreamingDecoder, GreedyDegenerateShortRunsFallBack) {
  // Alternating labels: every run has length 1 < min_run, so the batch
  // decoder falls back to a plain collapse — the stream must too.
  constexpr std::size_t kFrames = 6;
  Matrix logits(kFrames, 4, -10.0F);
  for (std::size_t t = 0; t < kFrames; ++t) {
    logits(t, t % 2) = 10.0F;  // argmax alternates 0, 1, 0, 1, ...
  }
  StreamingDecoderConfig config;
  config.greedy = DecoderConfig{1, 4};  // no smoothing, long min_run
  StreamingDecoder decoder(4, config);
  const std::vector<StreamEvent> events =
      run_decoder(logits, config, &decoder);
  const std::vector<std::uint16_t> batch =
      speech::greedy_decode(logits, config.greedy);
  EXPECT_EQ(assemble(events), batch);
  EXPECT_EQ(batch, (std::vector<std::uint16_t>{0, 1, 0, 1, 0, 1}));
}

TEST(StreamingDecoder, ViterbiFinalMatchesBatchAcrossPenalties) {
  for (const std::size_t frames : {1UL, 2UL, 3UL, 9UL, 40UL}) {
    for (const std::size_t classes : {1UL, 3UL, 12UL}) {
      const Matrix logits =
          random_logits(frames, classes, 7000 + frames * 100 + classes);
      for (const double penalty : {0.0, 4.0, 1e6}) {
        StreamingDecoderConfig config;
        config.mode = DecodeMode::kViterbi;
        config.switch_penalty = penalty;
        StreamingDecoder decoder(classes, config);
        const std::vector<StreamEvent> events =
            run_decoder(logits, config, &decoder);

        const std::vector<std::uint16_t> batch =
            speech::viterbi_decode(logits, penalty);
        EXPECT_EQ(assemble(events), batch)
            << "frames=" << frames << " classes=" << classes
            << " penalty=" << penalty;
        EXPECT_TRUE(decoder.partial().empty());
        ASSERT_FALSE(events.empty());
        EXPECT_TRUE(events.back().is_final);
      }
    }
  }
}

TEST(StreamingDecoder, StablePrefixNeverRetracts) {
  const Matrix logits = random_logits(60, 8, 42);
  for (const DecodeMode mode : {DecodeMode::kGreedy, DecodeMode::kViterbi}) {
    StreamingDecoderConfig config;
    config.mode = mode;
    StreamingDecoder decoder(8, config);
    std::vector<std::uint16_t> previous;
    for (std::size_t t = 0; t < logits.rows(); ++t) {
      decoder.push_row(logits.row(t));
      const std::vector<std::uint16_t> stable(decoder.stable().begin(),
                                              decoder.stable().end());
      ASSERT_GE(stable.size(), previous.size());
      ASSERT_TRUE(std::equal(previous.begin(), previous.end(),
                             stable.begin()))
          << "stable prefix retracted at frame " << t;
      previous = stable;
    }
    decoder.finish();
    const std::vector<std::uint16_t> final_stable(decoder.stable().begin(),
                                                  decoder.stable().end());
    ASSERT_GE(final_stable.size(), previous.size());
    EXPECT_TRUE(std::equal(previous.begin(), previous.end(),
                           final_stable.begin()));
  }
}

TEST(StreamingDecoder, HypothesisCombinesStableAndPartial) {
  const Matrix logits = random_logits(30, 6, 5);
  StreamingDecoderConfig config;
  StreamingDecoder decoder(6, config);
  for (std::size_t t = 0; t < logits.rows(); ++t) {
    decoder.push_row(logits.row(t));
    std::vector<std::uint16_t> expected(decoder.stable().begin(),
                                        decoder.stable().end());
    expected.insert(expected.end(), decoder.partial().begin(),
                    decoder.partial().end());
    EXPECT_EQ(decoder.hypothesis(), expected);
  }
}

// ------------------------------------------------- config validation
TEST(DecoderConfigValidation, RejectsEvenWindowAndZeroMinRunAtUse) {
  const Matrix logits = random_logits(5, 4, 9);
  EXPECT_THROW((void)speech::greedy_decode(logits, DecoderConfig{4, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)speech::greedy_decode(logits, DecoderConfig{3, 0}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)speech::greedy_decode(logits, DecoderConfig{1, 1}));

  StreamingDecoderConfig even;
  even.greedy = DecoderConfig{2, 2};
  EXPECT_THROW(StreamingDecoder(4, even), std::invalid_argument);
  StreamingDecoderConfig zero_run;
  zero_run.greedy = DecoderConfig{3, 0};
  EXPECT_THROW(StreamingDecoder(4, zero_run), std::invalid_argument);
  StreamingDecoderConfig negative;
  negative.mode = DecodeMode::kViterbi;
  negative.switch_penalty = -1.0;
  EXPECT_THROW(StreamingDecoder(4, negative), std::invalid_argument);
  StreamingDecoderConfig none;
  none.mode = DecodeMode::kNone;
  EXPECT_THROW(StreamingDecoder(4, none), std::invalid_argument);

  // The message names the offending field, not just the expression.
  try {
    (void)speech::greedy_decode(logits, DecoderConfig{4, 2});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("smooth_window"),
              std::string::npos);
  }
}

// --------------------------------------------- recognizer conformance
std::vector<float> random_waveform(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

struct ServeFixture {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
};

ServeFixture make_fixture(std::size_t hidden, std::uint64_t seed) {
  ServeFixture f;
  Rng rng(seed);
  f.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  f.model->init(rng);
  ParamSet params;
  f.model->register_params(params);
  for (const std::string& name : f.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    f.masks.emplace(name, std::move(mask));
  }
  f.options.format = SparseFormat::kBspc;
  return f;
}

/// One recognizer under test plus whatever owns its model.
struct Deployment {
  std::unique_ptr<CompiledSpeechModel> compiled;  // LocalRecognizer only
  std::unique_ptr<Recognizer> recognizer;
};

Deployment make_local(const ServeFixture& f) {
  Deployment d;
  d.compiled = std::make_unique<CompiledSpeechModel>(*f.model, f.masks,
                                                     f.options, nullptr);
  d.recognizer = std::make_unique<LocalRecognizer>(*d.compiled);
  return d;
}

Deployment make_sharded(const ServeFixture& f, std::size_t shards) {
  Deployment d;
  ShardConfig config;
  config.shards = shards;
  config.policy = serve::RoutePolicy::kRoundRobin;
  d.recognizer =
      std::make_unique<ShardedEngine>(*f.model, f.masks, f.options, config);
  return d;
}

struct ClientResult {
  std::vector<std::vector<StreamEvent>> events;  // per stream
  std::vector<Matrix> logits;                    // per stream
};

/// The one client loop every implementation must serve identically:
/// open, interleaved chunked submit with caller-driven drains and eager
/// polling, finish, final drain, read results.
ClientResult run_client(Recognizer& recognizer,
                        const std::vector<std::vector<float>>& waves,
                        const StreamConfig& config, std::size_t chunk,
                        bool close_when_done = true) {
  ClientResult result;
  std::vector<StreamHandle> handles;
  for (std::size_t s = 0; s < waves.size(); ++s) {
    handles.push_back(recognizer.open_stream(config));
  }
  result.events.resize(waves.size());

  std::vector<std::size_t> positions(waves.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t s = 0; s < waves.size(); ++s) {
      if (positions[s] >= waves[s].size()) continue;
      const std::size_t n =
          std::min(chunk, waves[s].size() - positions[s]);
      EXPECT_TRUE(recognizer.submit_audio(
          handles[s],
          std::span<const float>(waves[s]).subspan(positions[s], n)));
      positions[s] += n;
      if (positions[s] >= waves[s].size()) {
        EXPECT_TRUE(recognizer.finish_stream(handles[s]));
      }
      any = any || positions[s] < waves[s].size();
    }
    recognizer.drain();  // recognition overlaps with arrival
    for (std::size_t s = 0; s < waves.size(); ++s) {
      recognizer.poll_events(handles[s], result.events[s]);
    }
  }
  recognizer.drain();
  for (std::size_t s = 0; s < waves.size(); ++s) {
    recognizer.poll_events(handles[s], result.events[s]);
    EXPECT_TRUE(recognizer.stream_done(handles[s])) << "stream " << s;
    result.logits.push_back(recognizer.stream_logits(handles[s]));
    if (close_when_done) {
      EXPECT_TRUE(recognizer.close_stream(handles[s]));
    }
  }
  return result;
}

/// Decodes a stream's collected logits with the batch decoder matching
/// the stream's decode config.
std::vector<std::uint16_t> batch_decode(const Matrix& logits,
                                        const StreamConfig& config) {
  if (config.decode.mode == DecodeMode::kViterbi) {
    return speech::viterbi_decode(logits, config.decode.switch_penalty);
  }
  return speech::greedy_decode(logits, config.decode.greedy);
}

class RecognizerConformance
    : public ::testing::TestWithParam<std::size_t> {};  // 0 = local

Deployment make_param_deployment(const ServeFixture& f, std::size_t shards) {
  return shards == 0 ? make_local(f) : make_sharded(f, shards);
}

TEST_P(RecognizerConformance, FinalsMatchBatchDecodeAndEventsAreWellFormed) {
  const ServeFixture f = make_fixture(20, 301);
  Deployment d = make_param_deployment(f, GetParam());

  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < 4; ++s) {
    waves.push_back(random_waveform(5000 + 900 * s, 60 + s));
  }
  for (const DecodeMode mode : {DecodeMode::kGreedy, DecodeMode::kViterbi}) {
    StreamConfig config;
    config.decode.mode = mode;
    const ClientResult result = run_client(*d.recognizer, waves, config,
                                           /*chunk=*/1600);
    for (std::size_t s = 0; s < waves.size(); ++s) {
      ASSERT_FALSE(result.events[s].empty()) << "stream " << s;
      const StreamEvent& last = result.events[s].back();
      EXPECT_TRUE(last.is_final);
      EXPECT_TRUE(last.partial.empty());
      EXPECT_EQ(last.frames, result.logits[s].rows());
      // The acceptance criterion: streamed finals are bit-identical to
      // the whole-utterance batch decode of the same logits.
      EXPECT_EQ(assemble(result.events[s]),
                batch_decode(result.logits[s], config))
          << "stream " << s << " mode " << to_string(mode);
    }
  }
}

TEST_P(RecognizerConformance, EventStreamIndependentOfAudioChunking) {
  const ServeFixture f = make_fixture(16, 500);
  const std::vector<std::vector<float>> waves{random_waveform(6000, 9)};
  StreamConfig config;

  // 160 samples = exactly one 10 ms feature hop: the 1-frame-chunk case.
  std::vector<ClientResult> results;
  for (const std::size_t chunk : {160UL, 1600UL, 6000UL}) {
    Deployment d = make_param_deployment(f, GetParam());
    results.push_back(run_client(*d.recognizer, waves, config, chunk));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].events[0], results[0].events[0])
        << "chunk size changed the event stream";
  }
}

TEST_P(RecognizerConformance, DrainAllPollMatchesPerHandlePoll) {
  const ServeFixture f = make_fixture(16, 77);
  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < 3; ++s) {
    waves.push_back(random_waveform(4000 + 700 * s, 30 + s));
  }
  const StreamConfig config;

  // Reference: per-handle polling.
  Deployment per_handle = make_param_deployment(f, GetParam());
  const ClientResult reference =
      run_client(*per_handle.recognizer, waves, config, 1600);

  // Same workload, drained through the all-streams poll.
  Deployment drain_all = make_param_deployment(f, GetParam());
  Recognizer& recognizer = *drain_all.recognizer;
  std::vector<StreamHandle> handles;
  for (std::size_t s = 0; s < waves.size(); ++s) {
    handles.push_back(recognizer.open_stream(config));
  }
  for (std::size_t s = 0; s < waves.size(); ++s) {
    EXPECT_TRUE(recognizer.submit_audio(handles[s], waves[s]));
    EXPECT_TRUE(recognizer.finish_stream(handles[s]));
  }
  recognizer.drain();
  std::vector<RecognizerEvent> tagged;
  recognizer.poll_events(tagged);
  // The drain-all contract: streams emit in ascending handle-id order,
  // each stream's own events contiguous and in order.
  for (std::size_t i = 1; i < tagged.size(); ++i) {
    EXPECT_LE(tagged[i - 1].stream.id, tagged[i].stream.id)
        << "drain-all poll out of handle order at event " << i;
  }
  std::map<std::uint64_t, std::vector<StreamEvent>> by_stream;
  for (RecognizerEvent& event : tagged) {
    by_stream[event.stream.id].push_back(std::move(event.event));
  }
  ASSERT_EQ(by_stream.size(), waves.size());
  for (std::size_t s = 0; s < waves.size(); ++s) {
    EXPECT_EQ(by_stream.at(handles[s].id), reference.events[s])
        << "stream " << s;
  }
}

TEST_P(RecognizerConformance, RepeatedDrainAllPollsNeverDuplicateEvents) {
  // The drain-all poll reuses internal scratch between calls; events
  // polled once must never reappear, and an empty poll appends nothing.
  const ServeFixture f = make_fixture(16, 92);
  Deployment d = make_param_deployment(f, GetParam());
  Recognizer& recognizer = *d.recognizer;
  const StreamConfig config;
  const StreamHandle h = recognizer.open_stream(config);
  const std::vector<float> wave = random_waveform(6000, 5);

  ASSERT_TRUE(recognizer.submit_audio(
      h, std::span<const float>(wave).subspan(0, 3000)));
  recognizer.drain();
  std::vector<RecognizerEvent> tagged;
  const std::size_t first = recognizer.poll_events(tagged);
  EXPECT_EQ(tagged.size(), first);
  EXPECT_EQ(recognizer.poll_events(tagged), 0U);  // drained: no repeats
  EXPECT_EQ(tagged.size(), first);

  ASSERT_TRUE(recognizer.submit_audio(
      h, std::span<const float>(wave).subspan(3000, 3000)));
  ASSERT_TRUE(recognizer.finish_stream(h));
  recognizer.drain();
  std::vector<RecognizerEvent> second;
  ASSERT_GT(recognizer.poll_events(second), 0U);

  // First-phase events + second-phase events == one uninterrupted run.
  Deployment reference = make_param_deployment(f, GetParam());
  const ClientResult whole =
      run_client(*reference.recognizer, {wave}, config, 6000);
  std::vector<StreamEvent> combined;
  for (RecognizerEvent& event : tagged) {
    combined.push_back(std::move(event.event));
  }
  for (RecognizerEvent& event : second) {
    combined.push_back(std::move(event.event));
  }
  EXPECT_EQ(combined, whole.events[0]);
}

TEST_P(RecognizerConformance, DrainAllPollOrderedByHandleAfterSlotReuse) {
  // Closing a stream and opening another reuses internal slots in the
  // sharded implementation; the drain-all poll must still emit streams
  // in ascending handle-id order (not storage order), identically to
  // LocalRecognizer.
  const ServeFixture f = make_fixture(16, 91);
  Deployment d = make_param_deployment(f, GetParam());
  Recognizer& recognizer = *d.recognizer;
  const StreamConfig config;

  const StreamHandle first = recognizer.open_stream(config);
  const StreamHandle second = recognizer.open_stream(config);
  EXPECT_TRUE(recognizer.submit_audio(first, random_waveform(2000, 1)));
  EXPECT_TRUE(recognizer.finish_stream(first));
  recognizer.drain();
  std::vector<StreamEvent> sink;
  recognizer.poll_events(first, sink);
  EXPECT_TRUE(recognizer.close_stream(first));

  // `reused` takes the closed stream's slot in the sharded table, with a
  // handle id above `second`'s.
  const StreamHandle reused = recognizer.open_stream(config);
  EXPECT_GT(reused.id, second.id);
  for (const StreamHandle h : {second, reused}) {
    EXPECT_TRUE(recognizer.submit_audio(h, random_waveform(3000, 2)));
    EXPECT_TRUE(recognizer.finish_stream(h));
  }
  recognizer.drain();

  std::vector<RecognizerEvent> tagged;
  ASSERT_GT(recognizer.poll_events(tagged), 0U);
  ASSERT_FALSE(tagged.empty());
  for (std::size_t i = 1; i < tagged.size(); ++i) {
    EXPECT_LE(tagged[i - 1].stream.id, tagged[i].stream.id)
        << "drain-all poll out of handle order at event " << i;
  }
  // Both live streams are present, `second` first.
  EXPECT_EQ(tagged.front().stream.id, second.id);
  EXPECT_EQ(tagged.back().stream.id, reused.id);
}

TEST_P(RecognizerConformance, TryOpenStreamAgreesWithOpenStreamWrapper) {
  // The typed open and the throwing wrapper must admit the same streams
  // and serve them identically: open one stream each way, run the same
  // audio through both, compare event sequences.
  const ServeFixture f = make_fixture(16, 88);
  Deployment d = make_param_deployment(f, GetParam());
  Recognizer& recognizer = *d.recognizer;
  const StreamConfig config;
  const std::vector<float> wave = random_waveform(4000, 21);

  const serve::OpenResult typed = recognizer.try_open_stream(config);
  ASSERT_TRUE(typed.ok());
  ASSERT_EQ(typed.status, serve::OpenStatus::kOk);
  // Note: 0 is a valid handle id (ShardedEngine's first slot), so the
  // only validity signal is the status.
  const StreamHandle wrapped = recognizer.open_stream(config);
  ASSERT_NE(wrapped.id, typed.handle.id);

  std::vector<StreamEvent> typed_events;
  std::vector<StreamEvent> wrapped_events;
  for (const StreamHandle h : {typed.handle, wrapped}) {
    EXPECT_TRUE(recognizer.submit_audio(h, wave));
    EXPECT_TRUE(recognizer.finish_stream(h));
  }
  recognizer.drain();
  recognizer.poll_events(typed.handle, typed_events);
  recognizer.poll_events(wrapped, wrapped_events);
  EXPECT_EQ(typed_events, wrapped_events);
  EXPECT_TRUE(recognizer.close_stream(typed.handle));
  EXPECT_TRUE(recognizer.close_stream(wrapped));
}

TEST_P(RecognizerConformance, WaitForEventsReflectsPendingEvents) {
  const ServeFixture f = make_fixture(16, 89);
  Deployment d = make_param_deployment(f, GetParam());
  Recognizer& recognizer = *d.recognizer;
  const StreamHandle h = recognizer.open_stream(StreamConfig{});

  // Nothing pending: a bounded wait must time out (false).
  EXPECT_FALSE(recognizer.wait_for_events(std::chrono::microseconds(1000)));

  ASSERT_TRUE(recognizer.submit_audio(h, random_waveform(4000, 31)));
  ASSERT_TRUE(recognizer.finish_stream(h));
  recognizer.drain();
  // Events pending: the fast path returns true without blocking.
  EXPECT_TRUE(recognizer.wait_for_events(std::chrono::microseconds(0)));

  std::vector<StreamEvent> events;
  ASSERT_GT(recognizer.poll_events(h, events), 0U);
  // Drained again: back to timing out.
  EXPECT_FALSE(recognizer.wait_for_events(std::chrono::microseconds(1000)));
  EXPECT_TRUE(recognizer.close_stream(h));
}

INSTANTIATE_TEST_SUITE_P(LocalAndSharded, RecognizerConformance,
                         ::testing::Values(0U, 1U, 3U),
                         [](const auto& info) {
                           return info.param == 0
                                      ? std::string("Local")
                                      : "Sharded" +
                                            std::to_string(info.param);
                         });

TEST(RecognizerWaitForEvents, WakesWhenPumpThreadsPublish) {
  // The event-loop hook across threads: with a started ShardedEngine the
  // pumps publish on their own threads, and a waiter parked in
  // wait_for_events must wake without anyone calling drain().
  const ServeFixture f = make_fixture(16, 93);
  ShardConfig config;
  config.shards = 2;
  ShardedEngine engine(*f.model, f.masks, f.options, config);
  engine.start();
  const StreamHandle h = engine.open_stream(StreamConfig{});
  ASSERT_TRUE(engine.submit_audio(h, random_waveform(4000, 41)));
  ASSERT_TRUE(engine.finish_stream(h));
  // Generous bound; the pumps publish within microseconds of serving.
  EXPECT_TRUE(engine.wait_for_events(std::chrono::microseconds(2000000)));
  std::vector<StreamEvent> events;
  // The wakeup does not reserve events, but no one else polls here.
  while (events.empty() || !events.back().is_final) {
    engine.poll_events(h, events);
  }
  EXPECT_TRUE(engine.close_stream(h));
  engine.stop();
}

TEST(RecognizerConformance, EventStreamIndependentOfShardPlacement) {
  // The same audio served by shard 0, by shard 1, or by a lone local
  // engine must produce identical event sequences (round-robin forces
  // the placements).
  const ServeFixture f = make_fixture(20, 88);
  const std::vector<std::vector<float>> wave{random_waveform(7000, 4)};
  const StreamConfig config;

  Deployment local = make_local(f);
  const ClientResult reference =
      run_client(*local.recognizer, wave, config, 1600);

  Deployment sharded = make_sharded(f, 2);
  auto& engine = static_cast<ShardedEngine&>(*sharded.recognizer);
  const StreamHandle on_shard0 = engine.open_stream(config);
  const StreamHandle on_shard1 = engine.open_stream(config);
  ASSERT_EQ(engine.stream_shard(on_shard0), 0U);
  ASSERT_EQ(engine.stream_shard(on_shard1), 1U);
  for (const StreamHandle h : {on_shard0, on_shard1}) {
    ASSERT_TRUE(engine.submit_audio(h, wave[0]));
    ASSERT_TRUE(engine.finish_stream(h));
  }
  engine.drain();
  for (const StreamHandle h : {on_shard0, on_shard1}) {
    std::vector<StreamEvent> events;
    engine.poll_events(h, events);
    EXPECT_EQ(events, reference.events[0])
        << "placement changed the event stream";
  }
}

TEST(RecognizerConformance, MigrationPreservesEventStreamAndFinal) {
  // Serve half the utterance on the home shard, migrate via
  // drain_shard(), finish on the sibling: the event sequence and final
  // hypothesis must equal an unmigrated run frame for frame.
  const ServeFixture f = make_fixture(20, 88);
  const std::vector<float> wave = random_waveform(12000, 13);
  StreamConfig config;
  config.decode.mode = DecodeMode::kViterbi;  // DP state must migrate too

  Deployment local = make_local(f);
  const ClientResult reference = run_client(
      *local.recognizer, {wave}, config, 1600, /*close_when_done=*/false);

  Deployment sharded = make_sharded(f, 2);
  auto& engine = static_cast<ShardedEngine&>(*sharded.recognizer);
  const StreamHandle h = engine.open_stream(config);
  const std::size_t home = engine.stream_shard(h);
  const std::size_t half = wave.size() / 2;
  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(0, half)));
  engine.drain();
  std::vector<StreamEvent> events;
  engine.poll_events(h, events);
  ASSERT_FALSE(engine.stream_done(h));

  ASSERT_EQ(engine.drain_shard(home), 1U);
  ASSERT_NE(engine.stream_shard(h), home);

  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(half, wave.size() - half)));
  ASSERT_TRUE(engine.finish_stream(h));
  engine.drain();
  engine.poll_events(h, events);

  ASSERT_TRUE(engine.stream_done(h));
  EXPECT_EQ(events, reference.events[0])
      << "migration changed the event stream";
  EXPECT_EQ(assemble(events),
            speech::viterbi_decode(engine.stream_logits(h),
                                   config.decode.switch_penalty));
}

TEST(LocalRecognizer, CloseReleasesAndStatsReport) {
  const ServeFixture f = make_fixture(16, 21);
  Deployment d = make_local(f);
  Recognizer& recognizer = *d.recognizer;

  const StreamHandle h = recognizer.open_stream();
  EXPECT_TRUE(recognizer.submit_audio(h, random_waveform(4000, 3)));
  EXPECT_TRUE(recognizer.finish_stream(h));
  recognizer.drain();
  ASSERT_TRUE(recognizer.stream_done(h));
  const Matrix logits = recognizer.stream_logits(h);
  EXPECT_GT(logits.rows(), 0U);

  const serve::GlobalStats stats = recognizer.stats();
  EXPECT_EQ(stats.shards, 1U);
  EXPECT_EQ(stats.merged.frames_processed, logits.rows());
  EXPECT_GT(stats.weight_bytes, 0U);
  EXPECT_GT(stats.wall_us, 0.0);

  EXPECT_TRUE(recognizer.close_stream(h));
  EXPECT_THROW((void)recognizer.stream_logits(h), std::invalid_argument);
  EXPECT_THROW((void)recognizer.stream_done(h), std::invalid_argument);
  const auto& local = static_cast<LocalRecognizer&>(recognizer);
  EXPECT_EQ(local.engine().session_count(), 0U);
}

TEST(LocalRecognizer, DecodeModeNoneCollectsLogitsOnly) {
  const ServeFixture f = make_fixture(16, 55);
  Deployment d = make_local(f);
  StreamConfig config;
  config.decode.mode = DecodeMode::kNone;
  const StreamHandle h = d.recognizer->open_stream(config);
  EXPECT_TRUE(d.recognizer->submit_audio(h, random_waveform(4000, 1)));
  EXPECT_TRUE(d.recognizer->finish_stream(h));
  d.recognizer->drain();
  std::vector<StreamEvent> events;
  EXPECT_EQ(d.recognizer->poll_events(h, events), 0U);
  EXPECT_TRUE(events.empty());
  EXPECT_GT(d.recognizer->stream_logits(h).rows(), 0U);
}

}  // namespace
}  // namespace rtmobile
