// Unit tests for the core BSP pipeline, compression statistics, and the
// RtMobile facade.
#include <gtest/gtest.h>

#include "core/bsp.hpp"
#include "core/pruning_stats.hpp"
#include "core/rtmobile.hpp"
#include "speech/corpus.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

SpeechModel small_model(std::uint64_t seed, std::size_t hidden = 24) {
  Rng rng(seed);
  ModelConfig config;
  config.input_dim = 12;
  config.hidden_dim = hidden;
  config.num_layers = 2;
  config.num_classes = 8;
  SpeechModel model(config);
  model.init(rng);
  return model;
}

std::vector<LabeledSequence> small_dataset(std::size_t utterances,
                                           std::uint64_t seed) {
  // Argmax-of-first-8-dims toy task on 12-dim features.
  Rng rng(seed);
  std::vector<LabeledSequence> data(utterances);
  for (auto& utt : data) {
    utt.features = Matrix(6, 12);
    fill_normal(utt.features.span(), rng, 1.0F);
    utt.labels.resize(6);
    for (std::size_t t = 0; t < 6; ++t) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < 8; ++c) {
        if (utt.features(t, c) > utt.features(t, best)) best = c;
      }
      utt.labels[t] = static_cast<std::uint16_t>(best);
    }
  }
  return data;
}

// ---------------------------------------------------------- config checks
TEST(BspConfig, Validation) {
  BspConfig config;
  config.col_keep_fraction = 0.0;
  EXPECT_THROW(BspPruner{config}, std::invalid_argument);
  config = BspConfig{};
  config.num_r = 0;
  EXPECT_THROW(BspPruner{config}, std::invalid_argument);
  config = BspConfig{};
  config.rho = -1.0;
  EXPECT_THROW(BspPruner{config}, std::invalid_argument);
}

// ------------------------------------------------------------- one-shot
TEST(BspOneShot, ProducesStructuredMasksForEveryWeight) {
  SpeechModel model = small_model(1);
  BspConfig config;
  config.num_r = 4;
  config.num_c = 4;
  config.col_keep_fraction = 0.25;
  config.row_keep_fraction = 0.5;
  BspPruner pruner(config);
  const BspResult result = pruner.prune_one_shot(model);

  // 12 GRU matrices + fc.
  EXPECT_EQ(result.block_masks.size(), 13U);
  EXPECT_EQ(result.masks.size(), 13U);
  // Weights were actually pruned in place to the masks' support.
  ParamSet params;
  model.register_params(params);
  for (const auto& [name, mask] : result.block_masks) {
    const Matrix& w = params.matrix(name);
    EXPECT_EQ(w.count_nonzero(), mask.nnz()) << name;
  }
}

TEST(BspOneShot, AchievedRatesMatchTargets) {
  SpeechModel model = small_model(2, 32);
  BspConfig config;
  config.num_r = 4;
  config.num_c = 4;
  config.col_keep_fraction = 0.25;
  config.row_keep_fraction = 0.5;
  config.prune_fc = false;
  BspPruner pruner(config);
  const BspResult result = pruner.prune_one_shot(model);
  // Column rate 4x, row rate 2x, overall ~8x on the GRU weights.
  EXPECT_NEAR(result.stats.column_rate(), 4.0, 0.6);
  EXPECT_NEAR(result.stats.row_rate(), 2.0, 0.3);
  EXPECT_NEAR(result.stats.overall_rate(), 8.0, 1.5);
}

TEST(BspOneShot, FcPruningToggle) {
  SpeechModel with_fc = small_model(3);
  SpeechModel without_fc = small_model(3);
  BspConfig config;
  config.num_r = 2;
  config.num_c = 2;
  config.col_keep_fraction = 0.5;
  config.prune_fc = true;
  EXPECT_EQ(BspPruner(config).prune_one_shot(with_fc).block_masks.count(
                "fc.w"),
            1U);
  config.prune_fc = false;
  EXPECT_EQ(BspPruner(config).prune_one_shot(without_fc).block_masks.count(
                "fc.w"),
            0U);
}

// ---------------------------------------------------------------- stats
TEST(CompressionStats, RatesAndParams) {
  CompressionStats stats;
  stats.total_weights = 1000;
  stats.kept_weights = 100;
  stats.column_keep_fraction = 0.1;
  stats.row_keep_fraction = 0.5;
  EXPECT_DOUBLE_EQ(stats.overall_rate(), 10.0);
  EXPECT_DOUBLE_EQ(stats.column_rate(), 10.0);
  EXPECT_DOUBLE_EQ(stats.row_rate(), 2.0);
  EXPECT_DOUBLE_EQ(stats.params_millions(), 1e-4);
}

TEST(CompressionStats, UnmaskedWeightsCountFullyKept) {
  const SpeechModel model = small_model(4);
  const CompressionStats stats = compute_compression_stats(model, {});
  EXPECT_EQ(stats.total_weights, stats.kept_weights);
  EXPECT_DOUBLE_EQ(stats.overall_rate(), 1.0);
}

// --------------------------------------------------------- ADMM pipeline
TEST(BspAdmm, FullPipelineRunsAndCompresses) {
  SpeechModel model = small_model(5);
  auto data = small_dataset(6, 6);

  // Light pre-training so pruning operates on a non-random model.
  {
    Trainer trainer(model);
    Adam adam(3e-3);
    TrainConfig config;
    config.epochs = 2;
    Rng rng(7);
    trainer.train(config, data, adam, rng);
  }

  BspConfig config;
  config.num_r = 4;
  config.num_c = 4;
  config.col_keep_fraction = 0.25;
  config.row_keep_fraction = 0.5;
  config.rho = 5e-2;
  config.admm_rounds_step1 = 3;
  config.admm_rounds_step2 = 1;
  config.epochs_per_round = 1;
  config.retrain_epochs = 1;
  BspPruner pruner(config);
  Rng rng(8);
  const BspResult result = pruner.prune(model, data, rng);

  // Compression achieved near the 8x target.
  EXPECT_GT(result.stats.overall_rate(), 5.0);
  // Weights obey the masks after retraining (mask respected).
  ParamSet params;
  model.register_params(params);
  for (const auto& [name, mask] : result.block_masks) {
    const Matrix& w = params.matrix(name);
    const Matrix dense_mask = mask.to_dense();
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (dense_mask.span()[i] == 0.0F) {
        EXPECT_FLOAT_EQ(w.span()[i], 0.0F) << name << " slot " << i;
      }
    }
  }
  // Residual sanity: ||W - Z||/||W|| is bounded. (On a run this short the
  // dual variables can transiently exceed 1; true convergence behaviour is
  // covered by Admm.GradientFlowDrivesWeightsTowardConstraint and the
  // accuracy comparison test below.)
  EXPECT_LT(result.step1_residual, 1.5);
}

TEST(BspAdmm, AccuracyDegradesGracefullyVsOneShot) {
  // The pipeline's value: ADMM+retrain beats naive one-shot pruning at the
  // same compression.
  auto data = small_dataset(10, 9);
  SpeechModel admm_model = small_model(10);
  SpeechModel oneshot_model = small_model(10);
  {
    // Identical pre-training.
    for (SpeechModel* m : {&admm_model, &oneshot_model}) {
      Trainer trainer(*m);
      Adam adam(3e-3);
      TrainConfig config;
      config.epochs = 3;
      Rng rng(11);
      trainer.train(config, data, adam, rng);
    }
  }
  BspConfig config;
  config.num_r = 4;
  config.num_c = 4;
  config.col_keep_fraction = 0.25;
  config.admm_rounds_step1 = 2;
  config.retrain_epochs = 2;
  BspPruner pruner(config);
  Rng rng(12);
  pruner.prune(admm_model, data, rng);
  pruner.prune_one_shot(oneshot_model);

  const double admm_loss = Trainer::evaluate(admm_model, data).loss;
  const double oneshot_loss = Trainer::evaluate(oneshot_model, data).loss;
  EXPECT_LT(admm_loss, oneshot_loss);
}

// ----------------------------------------------------------- the facade
TEST(RtMobileFacade, OneShotDeployProducesWorkingExecutor) {
  SpeechModel model = small_model(13);
  RtMobileConfig config;
  config.bsp.num_r = 4;
  config.bsp.num_c = 4;
  config.bsp.col_keep_fraction = 0.25;
  config.compiler.threads = 2;
  const RtMobile framework(config);
  const Deployment deployment = framework.deploy_one_shot(model);
  ASSERT_NE(deployment.compiled, nullptr);

  Rng rng(14);
  Matrix features(4, 12);
  fill_normal(features.span(), rng, 1.0F);
  const Matrix reference = model.forward(features);
  const Matrix fast = deployment.compiled->infer(features);
  EXPECT_LT(max_abs_diff(reference.span(), fast.span()), 1e-3F);
  EXPECT_GT(deployment.pruning.stats.overall_rate(), 2.0);
}

TEST(RtMobileFacade, DeployWithTrainingAndAutoTune) {
  SpeechModel model = small_model(15);
  auto data = small_dataset(4, 16);
  RtMobileConfig config;
  config.bsp.num_r = 2;
  config.bsp.num_c = 2;
  config.bsp.col_keep_fraction = 0.5;
  config.bsp.admm_rounds_step1 = 1;
  config.bsp.admm_rounds_step2 = 0;
  config.bsp.retrain_epochs = 1;
  config.auto_tune_block_size = true;
  config.tuner.num_c_candidates = {2, 4};
  config.tuner.thread_candidates = {1};
  config.tuner.timing_iters = 2;
  config.tuner.timing_repeats = 1;
  const RtMobile framework(config);
  Rng rng(17);
  const Deployment deployment = framework.deploy(model, data, rng);
  ASSERT_TRUE(deployment.tuning.has_value());
  EXPECT_NE(deployment.compiled, nullptr);
  // The tuner's choice was adopted by the pruner.
  EXPECT_TRUE(deployment.tuning->best.num_c == 2 ||
              deployment.tuning->best.num_c == 4);
}

}  // namespace
}  // namespace rtmobile
