// Parity grid for the fused batched step (the batched-matmat spine).
//
// Contract under test: when CompilerOptions::fused admits a batch,
// step_batch gathers the streams' hidden states into contiguous panels
// and drives every weight matrix once per layer per step over the whole
// batch — and that refactor is invisible in the numbers. fp32 and fp16
// fused output is bit-identical to the per-stream path (and to
// whole-utterance infer) for every batch width, sparsity pattern, and
// batch composition; int8 weights stay bitwise because both paths share
// the same dot kernels; int8 *activations* (the one mode that changes
// arithmetic) stay within a small quantization bound. The panel's
// stream order is pinned to the caller's states order, so permuting a
// batch never changes any individual stream's logits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/execution_plan.hpp"
#include "compiler/gru_executor.hpp"
#include "hw/thread_pool.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/stats.hpp"
#include "runtime/streaming_session.hpp"
#include "sparse/block_mask.hpp"
#include "speech/mfcc.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/precision.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using runtime::EngineConfig;
using runtime::InferenceEngine;
using runtime::StreamingSession;

struct ModelFixture {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
};

ModelFixture make_fixture(std::size_t hidden, std::uint64_t seed,
                          double keep = 0.4) {
  ModelFixture f;
  Rng rng(seed);
  f.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  f.model->init(rng);
  ParamSet params;
  f.model->register_params(params);
  for (const std::string& name : f.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, keep);
    apply_row_pruning(w, 0.8, mask);
    mask.apply(w);
    f.masks.emplace(name, std::move(mask));
  }
  return f;
}

std::unique_ptr<CompiledSpeechModel> compile(
    const ModelFixture& f, FusedMode mode, ThreadPool* pool,
    WeightPrecision precision = WeightPrecision::kFp32,
    ActivationPrecision activation = ActivationPrecision::kFp32) {
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.precision = precision;
  options.activation = activation;
  options.fused = mode;
  if (pool != nullptr) options.threads = pool->thread_count();
  return std::make_unique<CompiledSpeechModel>(*f.model, f.masks, options,
                                               pool);
}

std::vector<Matrix> random_utterances(std::size_t count,
                                      const std::vector<std::size_t>& frames,
                                      std::size_t input_dim,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Matrix> utts;
  for (std::size_t s = 0; s < count; ++s) {
    Matrix u(frames[s % frames.size()], input_dim);
    fill_normal(u.span(), rng, 1.0F);
    utts.push_back(std::move(u));
  }
  return utts;
}

/// Streams `utts` through step_batch one frame per round, the way the
/// engine does: each round's batch holds exactly the streams that still
/// have frames, in stream order — so mixed-length batches shrink the
/// compute panel mid-flight. Returns each stream's stacked logits.
std::vector<Matrix> run_streamed(const CompiledSpeechModel& m,
                                 const std::vector<Matrix>& utts) {
  const std::size_t classes = m.config().num_classes;
  const std::size_t input_dim = m.config().input_dim;
  std::vector<StreamState> states(utts.size(), m.make_state());
  std::vector<Matrix> out;
  std::size_t max_frames = 0;
  for (const Matrix& u : utts) {
    out.emplace_back(u.rows(), classes);
    max_frames = std::max(max_frames, u.rows());
  }
  Matrix features(utts.size(), input_dim);
  Matrix logits(utts.size(), classes);
  std::vector<StreamState*> ptrs;
  std::vector<std::size_t> ids;
  for (std::size_t t = 0; t < max_frames; ++t) {
    ptrs.clear();
    ids.clear();
    for (std::size_t s = 0; s < utts.size(); ++s) {
      if (t >= utts[s].rows()) continue;
      std::copy(utts[s].row(t).begin(), utts[s].row(t).end(),
                features.row(ptrs.size()).begin());
      ptrs.push_back(&states[s]);
      ids.push_back(s);
    }
    if (ptrs.empty()) break;
    m.step_batch(features, ptrs, logits);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      std::copy(logits.row(i).begin(), logits.row(i).end(),
                out[ids[i]].row(t).begin());
    }
  }
  return out;
}

// --------------------------------------------------- fp32 parity grid
TEST(FusedStep, Fp32BitIdenticalAcrossBatchWidths) {
  const ModelFixture f = make_fixture(24, 60);
  ThreadPool pool(2);
  const auto fused = compile(f, FusedMode::kAlways, &pool);
  // Widths: degenerate 1, == pool threads, odd, > pool threads.
  for (const std::size_t width : {1UL, 2UL, 3UL, 5UL}) {
    const std::vector<Matrix> utts =
        random_utterances(width, {6}, f.model->config().input_dim, 61);
    const std::vector<Matrix> streamed = run_streamed(*fused, utts);
    for (std::size_t s = 0; s < width; ++s) {
      EXPECT_EQ(streamed[s], fused->infer(utts[s]))
          << "width " << width << " stream " << s;  // bitwise
    }
  }
}

TEST(FusedStep, PackedWeightsBitIdenticalThroughFusedPath) {
  // fp16 and int8 *weights* share the per-vector dot kernels between the
  // fused and per-stream paths, so they too are bitwise — activation
  // quantization (below) is the only mode allowed to move a bit.
  const ModelFixture f = make_fixture(24, 62);
  ThreadPool pool(2);
  for (const WeightPrecision precision :
       {WeightPrecision::kFp16, WeightPrecision::kInt8PerRow}) {
    const auto fused = compile(f, FusedMode::kAlways, &pool, precision);
    const std::vector<Matrix> utts =
        random_utterances(4, {5}, f.model->config().input_dim, 63);
    const std::vector<Matrix> streamed = run_streamed(*fused, utts);
    for (std::size_t s = 0; s < utts.size(); ++s) {
      EXPECT_EQ(streamed[s], fused->infer(utts[s]))
          << to_string(precision) << " stream " << s;
    }
  }
}

TEST(FusedStep, SparsityPatternsStayBitIdentical) {
  ThreadPool pool(2);
  for (const double keep : {0.15, 0.4, 0.8}) {
    const ModelFixture f = make_fixture(24, 64, keep);
    const auto fused = compile(f, FusedMode::kAlways, &pool);
    const std::vector<Matrix> utts =
        random_utterances(3, {5}, f.model->config().input_dim, 65);
    const std::vector<Matrix> streamed = run_streamed(*fused, utts);
    for (std::size_t s = 0; s < utts.size(); ++s) {
      EXPECT_EQ(streamed[s], fused->infer(utts[s]))
          << "keep " << keep << " stream " << s;
    }
  }
}

// ------------------------------------------------ int8 activations
TEST(FusedStep, Int8ActivationsWithinQuantizationBound) {
  const ModelFixture f = make_fixture(24, 66);
  ThreadPool pool(2);
  const auto q8 = compile(f, FusedMode::kAlways, &pool,
                          WeightPrecision::kInt8PerRow,
                          ActivationPrecision::kInt8);
  const auto reference = compile(f, FusedMode::kNever, &pool,
                                 WeightPrecision::kInt8PerRow);
  const std::vector<Matrix> utts =
      random_utterances(4, {6}, f.model->config().input_dim, 67);
  const std::vector<Matrix> actual = run_streamed(*q8, utts);
  const std::vector<Matrix> expected = run_streamed(*reference, utts);
  for (std::size_t s = 0; s < utts.size(); ++s) {
    const float diff =
        max_abs_diff(actual[s].span(), expected[s].span());
    // The activation grid rounds each panel entry to 1/254 of its
    // stream's max magnitude; GRU activations are tanh/sigmoid-bounded,
    // so the per-logit drift stays far below this.
    EXPECT_LT(diff, 0.05F) << "stream " << s;
    // And the path must actually have engaged: identical bits would
    // mean the quantizer was silently bypassed.
    EXPECT_GT(diff, 0.0F) << "stream " << s;
  }
}

// ------------------------------------------------- panel order pinning
TEST(FusedStep, PanelRowOrderIsPinnedToStatesOrder) {
  // The fused panel's row order is the caller's states order. Two
  // consequences, both bitwise in fp32: repeating the same batch gives
  // the same logits, and permuting the batch leaves every individual
  // stream's logits untouched (its per-vector accumulation order never
  // depends on which panel row it occupies).
  const ModelFixture f = make_fixture(24, 68);
  ThreadPool pool(2);
  const auto fused = compile(f, FusedMode::kAlways, &pool);
  constexpr std::size_t kStreams = 4;
  constexpr std::size_t kFrames = 5;
  const std::vector<Matrix> utts =
      random_utterances(kStreams, {kFrames}, f.model->config().input_dim, 69);

  const std::vector<Matrix> first = run_streamed(*fused, utts);
  const std::vector<Matrix> again = run_streamed(*fused, utts);
  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(first[s], again[s]) << "rerun, stream " << s;
  }

  // Same streams, permuted panel order every round.
  const std::size_t order[kStreams] = {2, 0, 3, 1};
  std::vector<StreamState> states(kStreams, fused->make_state());
  Matrix features(kStreams, f.model->config().input_dim);
  Matrix logits(kStreams, fused->config().num_classes);
  std::vector<Matrix> permuted(
      kStreams, Matrix(kFrames, fused->config().num_classes));
  for (std::size_t t = 0; t < kFrames; ++t) {
    std::vector<StreamState*> ptrs;
    for (std::size_t i = 0; i < kStreams; ++i) {
      const std::size_t s = order[i];
      std::copy(utts[s].row(t).begin(), utts[s].row(t).end(),
                features.row(i).begin());
      ptrs.push_back(&states[s]);
    }
    fused->step_batch(features, ptrs, logits);
    for (std::size_t i = 0; i < kStreams; ++i) {
      std::copy(logits.row(i).begin(), logits.row(i).end(),
                permuted[order[i]].row(t).begin());
    }
  }
  for (std::size_t s = 0; s < kStreams; ++s) {
    EXPECT_EQ(first[s], permuted[s]) << "permuted, stream " << s;
  }
}

// ------------------------------------------- mid-batch width shrinkage
TEST(FusedStep, MidBatchStreamFinishKeepsParity) {
  // Mixed-length batch: streams drop out as their utterances end, so the
  // fused panel narrows round by round (5 -> 1). Every surviving stream
  // must keep bit-identity with its whole-utterance infer.
  const ModelFixture f = make_fixture(24, 70);
  ThreadPool pool(2);
  const auto fused = compile(f, FusedMode::kAlways, &pool);
  const std::vector<Matrix> utts = random_utterances(
      5, {6, 3, 1, 5, 2}, f.model->config().input_dim, 71);
  const std::vector<Matrix> streamed = run_streamed(*fused, utts);
  for (std::size_t s = 0; s < utts.size(); ++s) {
    EXPECT_EQ(streamed[s], fused->infer(utts[s])) << "stream " << s;
  }
}

// --------------------------------------------------- dispatch boundaries
TEST(FusedStep, DispatchRespectsModeAndWidthBounds) {
  const ModelFixture f = make_fixture(16, 72);
  CompilerOptions options;
  options.format = SparseFormat::kBspc;
  options.fused = FusedMode::kAuto;
  options.min_fused_batch = 2;
  options.max_fused_batch = 3;
  const CompiledSpeechModel autod(*f.model, f.masks, options);
  options.fused = FusedMode::kNever;
  const CompiledSpeechModel never(*f.model, f.masks, options);
  options.fused = FusedMode::kAlways;
  const CompiledSpeechModel always(*f.model, f.masks, options);

  const std::size_t input_dim = f.model->config().input_dim;
  Matrix features(4, input_dim, 0.1F);
  Matrix logits(4, autod.config().num_classes);
  const auto dispatch = [&](const CompiledSpeechModel& m,
                            std::size_t width) {
    std::vector<StreamState> states(width, m.make_state());
    std::vector<StreamState*> ptrs;
    for (StreamState& s : states) ptrs.push_back(&s);
    return m.step_batch(features, ptrs, logits);
  };

  // kAuto: below min -> fallback, inside [min, max] -> fused, above
  // max (panel capacity) -> fallback.
  EXPECT_FALSE(dispatch(autod, 1).fused);
  EXPECT_TRUE(dispatch(autod, 2).fused);
  EXPECT_TRUE(dispatch(autod, 3).fused);
  EXPECT_FALSE(dispatch(autod, 4).fused);
  EXPECT_EQ(dispatch(autod, 3).width, 3U);
  // kNever compiles no panels at all; kAlways fuses even width 1.
  EXPECT_FALSE(dispatch(never, 2).fused);
  EXPECT_TRUE(dispatch(always, 1).fused);
  EXPECT_FALSE(dispatch(always, 4).fused);  // beyond panel capacity
}

// ------------------------------------------------------- engine level
std::vector<float> random_waveform(std::size_t samples,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

TEST(FusedEngine, MixedLengthStreamsMatchInferAndAccountDispatch) {
  // Four streams of different lengths on one engine: rounds start at
  // width 4 (fused) and end at width 1 (fallback under kAuto's
  // min_fused_batch). Logits stay bit-identical to whole-utterance
  // infer, and the stats ledger accounts every dispatched round as
  // exactly one of fused/fallback, with the width histogram counting
  // one sample per fused round.
  const ModelFixture f = make_fixture(24, 73);
  ThreadPool pool(2);
  const auto compiled = compile(f, FusedMode::kAuto, &pool);
  InferenceEngine engine(*compiled);
  const std::vector<std::size_t> samples = {7000, 9000, 12000, 16000};
  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < samples.size(); ++s) {
    waves.push_back(random_waveform(samples[s], 74 + s));
  }
  for (const std::vector<float>& wave : waves) {
    StreamingSession& session = engine.create_session();
    session.push_audio(wave);
    session.finish();
  }
  engine.drain();

  const speech::MfccExtractor extractor(engine.config().mfcc);
  for (std::size_t s = 0; s < waves.size(); ++s) {
    EXPECT_EQ(engine.session(s).logits(),
              compiled->infer(extractor.extract(waves[s])))
        << "stream " << s;  // bitwise
  }
  const runtime::RuntimeStats& stats = engine.stats();
  EXPECT_GT(stats.fused_steps, 0U);
  EXPECT_GT(stats.fallback_steps, 0U);  // the width-1 tail rounds
  // Cache off: every counted round dispatched exactly one step_batch.
  EXPECT_EQ(stats.fused_steps + stats.fallback_steps, stats.steps);
  EXPECT_EQ(stats.fused_width.count(), stats.fused_steps);
}

TEST(FusedEngine, CacheHitBurstShrinksPanelAndKeepsParity) {
  // A repeated utterance is served from the prefix cache, so its frames
  // never enter the fused panel — the panel shrinks to the cold streams
  // — and cache-only rounds dispatch no batch at all. Results stay
  // bit-identical to compute throughout.
  const ModelFixture f = make_fixture(24, 75);
  ThreadPool pool(2);
  const auto compiled = compile(f, FusedMode::kAuto, &pool);
  EngineConfig config;
  config.cache.enabled = true;
  InferenceEngine engine(*compiled, config);

  const std::vector<float> repeat_wave = random_waveform(9000, 76);
  const std::vector<float> cold_wave = random_waveform(9000, 77);
  StreamingSession& warmup = engine.create_session();
  warmup.push_audio(repeat_wave);
  warmup.finish();
  engine.drain();
  engine.remove_done();

  StreamingSession& hit = engine.create_session();
  StreamingSession& cold = engine.create_session();
  hit.push_audio(repeat_wave);
  cold.push_audio(cold_wave);
  hit.finish();
  cold.finish();
  engine.drain();

  const speech::MfccExtractor extractor(engine.config().mfcc);
  EXPECT_EQ(hit.logits(),
            compiled->infer(extractor.extract(repeat_wave)));
  EXPECT_EQ(cold.logits(),
            compiled->infer(extractor.extract(cold_wave)));
  const runtime::RuntimeStats& stats = engine.stats();
  EXPECT_GT(stats.cache_hits, 0U);
  // Rounds fully served from cache dispatch no batch, so the dispatch
  // ledger undercounts rounds — never overcounts.
  EXPECT_LE(stats.fused_steps + stats.fallback_steps, stats.steps);
  EXPECT_EQ(stats.fused_width.count(), stats.fused_steps);
}

}  // namespace
}  // namespace rtmobile
