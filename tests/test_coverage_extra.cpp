// Additional coverage: edge-shape sweeps, composition properties across
// modules (pruning x quantization, progressive nesting), optimizer
// behaviour, decoder properties, and corpus statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/bsp.hpp"
#include "core/quantize.hpp"
#include "sparse/fft.hpp"
#include "speech/corpus.hpp"
#include "speech/decoder.hpp"
#include "speech/mfcc.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "train/optimizer.hpp"
#include "train/projection.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

// ------------------------------------------------------- GEMV edge shapes
class GemvShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(GemvShapeSweep, BlockedMatchesNaive) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 131 + cols);
  Matrix w(rows, cols);
  fill_normal(w.span(), rng, 1.0F);
  Vector x(cols);
  fill_normal(x.span(), rng, 1.0F);
  Vector expected(rows);
  Vector actual(rows);
  gemv_naive(w, x.span(), expected.span());
  gemv(w, x.span(), actual.span());
  EXPECT_LT(max_abs_diff(expected.span(), actual.span()), 1e-4F);

  // Transposed path on the same shapes.
  Vector xt(rows);
  fill_normal(xt.span(), rng, 1.0F);
  Vector et(cols);
  Vector at(cols);
  gemv_naive(w.transposed(), xt.span(), et.span());
  gemv_transposed(w, xt.span(), at.span());
  EXPECT_LT(max_abs_diff(et.span(), at.span()), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvShapeSweep,
    ::testing::Values(std::make_pair(1U, 1U), std::make_pair(1U, 64U),
                      std::make_pair(64U, 1U), std::make_pair(3U, 5U),
                      std::make_pair(4U, 4U), std::make_pair(5U, 3U),
                      std::make_pair(127U, 33U), std::make_pair(33U, 127U)));

// ------------------------------------------ pruning x quantization compose
TEST(Composition, QuantizationPreservesPrunedZeros) {
  Rng rng(1);
  SpeechModel model(ModelConfig::scaled(24));
  model.init(rng);
  BspConfig config;
  config.num_r = 4;
  config.num_c = 4;
  config.col_keep_fraction = 0.25;
  const BspResult result = BspPruner(config).prune_one_shot(model);

  for (const WeightPrecision precision :
       {WeightPrecision::kFp16, WeightPrecision::kInt8PerTensor,
        WeightPrecision::kInt8PerRow}) {
    SpeechModel quantized = model;
    quantize_model(quantized, precision);
    // Exact zeros quantize to exact zeros in every grid, so nothing may
    // appear OUTSIDE the mask. (Int8 may round tiny kept weights down to
    // zero, so the count inside the mask can only shrink.)
    ParamSet params;
    quantized.register_params(params);
    for (const auto& [name, mask] : result.block_masks) {
      const Matrix& w = params.matrix(name);
      EXPECT_LE(w.count_nonzero(), mask.nnz())
          << name << " under " << to_string(precision);
      for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
          if (!mask.is_kept(r, c)) {
            ASSERT_EQ(w(r, c), 0.0F)
                << name << " grew a weight outside the mask at (" << r
                << ',' << c << ") under " << to_string(precision);
          }
        }
      }
    }
  }
}

TEST(Composition, ProgressiveStagesNestSupports) {
  Rng rng(2);
  ModelConfig config;
  config.input_dim = 12;
  config.hidden_dim = 24;
  config.num_layers = 1;
  config.num_classes = 6;
  SpeechModel model(config);
  model.init(rng);
  // No training needed to check the nesting property: run one-shot masks
  // at increasing rates on progressively pruned weights.
  BspConfig bsp;
  bsp.num_r = 4;
  bsp.num_c = 4;
  bsp.prune_fc = false;

  bsp.col_keep_fraction = 0.5;
  const BspResult stage1 = BspPruner(bsp).prune_one_shot(model);
  bsp.col_keep_fraction = 0.25;
  const BspResult stage2 = BspPruner(bsp).prune_one_shot(model);

  // Every weight kept by stage 2 was kept by stage 1.
  for (const auto& [name, mask2] : stage2.block_masks) {
    const BlockMask& mask1 = stage1.block_masks.at(name);
    for (std::size_t r = 0; r < mask2.rows(); ++r) {
      for (std::size_t c = 0; c < mask2.cols(); ++c) {
        if (mask2.is_kept(r, c)) {
          EXPECT_TRUE(mask1.is_kept(r, c))
              << name << " (" << r << ',' << c << ')';
        }
      }
    }
  }
}

// ------------------------------------------------------------- optimizers
TEST(OptimizerBehaviour, AdamBeatsPlainSgdOnIllConditionedQuadratic) {
  // f(w) = 0.5 (100 w0^2 + 0.01 w1^2): Adam's per-coordinate scaling
  // handles the 1e4 condition number; fixed-lr SGD cannot use a stable lr
  // that also moves w1.
  const auto run = [](Optimizer& opt, int steps) {
    Matrix w(1, 2, std::vector<float>{1.0F, 1.0F});
    Matrix g(1, 2, 0.0F);
    ParamSet params;
    params.add("w", &w);
    ParamSet grads;
    grads.add("w", &g);
    for (int s = 0; s < steps; ++s) {
      g(0, 0) = 100.0F * w(0, 0);
      g(0, 1) = 0.01F * w(0, 1);
      opt.step(params, grads);
    }
    const double w0 = w(0, 0);
    const double w1 = w(0, 1);
    return 0.5 * (100.0 * w0 * w0 + 0.01 * w1 * w1);
  };
  Adam adam(0.05);
  Sgd sgd(0.015, 0.0);  // near the stability limit 2/100
  EXPECT_LT(run(adam, 400), run(sgd, 400));
}

TEST(OptimizerBehaviour, LrDecayAppliedPerEpoch) {
  Rng rng(3);
  SpeechModel model(ModelConfig::scaled(8));
  model.init(rng);
  std::vector<LabeledSequence> data(2);
  for (auto& utt : data) {
    utt.features = Matrix(3, 39);
    fill_normal(utt.features.span(), rng, 1.0F);
    utt.labels = {0, 1, 2};
  }
  Trainer trainer(model);
  Adam adam(1e-3);
  TrainConfig config;
  config.epochs = 3;
  config.lr_decay = 0.5;
  trainer.train(config, data, adam, rng);
  EXPECT_NEAR(adam.learning_rate(), 1e-3 * 0.125, 1e-9);
}

TEST(OptimizerBehaviour, MixedLayoutRejected) {
  Matrix w(2, 2);
  Matrix g_wrong(3, 2);
  ParamSet params;
  params.add("w", &w);
  ParamSet grads;
  grads.add("w", &g_wrong);
  Adam adam(1e-3);
  EXPECT_THROW(adam.step(params, grads), std::invalid_argument);
}

// ---------------------------------------------------------- ADMM details
TEST(AdmmDetails, MasksMatchHardPruneSupport) {
  Rng rng(4);
  Matrix w(6, 6);
  fill_normal(w.span(), rng, 1.0F);
  AdmmState admm;
  admm.attach("w", &w,
              [](const Matrix& m) { return project_magnitude(m, 0.25); },
              1.0);
  admm.initialize();
  const MaskSet pre_masks = admm.masks();
  const MaskSet post_masks = admm.hard_prune();
  // Without intermediate training, Z's support equals the hard-prune
  // support.
  EXPECT_EQ(pre_masks.total_kept(), post_masks.total_kept());
  EXPECT_EQ(w.count_nonzero(), post_masks.total_kept());
}

// ------------------------------------------------------ decoder properties
TEST(DecoderProperties, SmoothingNeverIncreasesTransitions) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint16_t> frames(40);
    for (auto& f : frames) {
      f = static_cast<std::uint16_t>(rng.next_below(4));
    }
    const auto count_transitions = [](const std::vector<std::uint16_t>& s) {
      std::size_t t = 0;
      for (std::size_t i = 1; i < s.size(); ++i) {
        if (s[i] != s[i - 1]) ++t;
      }
      return t;
    };
    const auto smoothed = speech::majority_smooth(frames, 5);
    EXPECT_LE(count_transitions(smoothed) , count_transitions(frames) + 2)
        << "smoothing should not create many new transitions";
  }
}

TEST(DecoderProperties, ViterbiPenaltyMonotonicallyReducesSegments) {
  Rng rng(6);
  Matrix logits(50, 8);
  fill_normal(logits.span(), rng, 1.5F);
  std::size_t previous = std::numeric_limits<std::size_t>::max();
  for (const double penalty : {0.0, 1.0, 3.0, 8.0, 50.0}) {
    const auto decoded = speech::viterbi_decode(logits, penalty);
    EXPECT_LE(decoded.size(), previous)
        << "penalty " << penalty << " should not add segments";
    previous = decoded.size();
  }
}

// -------------------------------------------------------- corpus statistics
TEST(CorpusStatistics, AllFoldedClassesAppearAcrossManyUtterances) {
  speech::CorpusConfig config;
  config.num_train_utterances = 200;
  config.num_test_utterances = 1;
  config.min_phones = 10;
  config.max_phones = 20;
  const speech::Corpus corpus = speech::SyntheticTimit(config).generate();
  std::set<std::uint16_t> seen;
  for (const auto& utt : corpus.train) {
    for (const std::uint16_t label : utt.labels) seen.insert(label);
  }
  // The bigram LM must not starve any folded class.
  EXPECT_EQ(seen.size(), speech::kNumFoldedPhones);
}

TEST(CorpusStatistics, ClosuresPrecedeStopsMoreOftenThanChance) {
  const speech::SyntheticTimit generator;
  Rng rng(7);
  const auto& phones = speech::surface_phones();
  std::size_t closure_then_stop = 0;
  std::size_t closure_total = 0;
  for (int i = 0; i < 100; ++i) {
    const auto seq = generator.sample_surface_sequence(rng);
    for (std::size_t p = 0; p + 1 < seq.size(); ++p) {
      if (phones[seq[p]].phone_class == speech::PhoneClass::kClosure) {
        ++closure_total;
        if (phones[seq[p + 1]].phone_class == speech::PhoneClass::kStop) {
          ++closure_then_stop;
        }
      }
    }
  }
  ASSERT_GT(closure_total, 20U);
  // Chance would be ~7/61; the phonotactic affinity makes it dominant.
  EXPECT_GT(static_cast<double>(closure_then_stop) /
                static_cast<double>(closure_total),
            0.4);
}

TEST(CorpusStatistics, FeatureVarianceMatchesNoiseConfig) {
  // With coarticulation off, frames are prototype + stationary AR(1)
  // noise of configured stddev.
  speech::CorpusConfig config;
  config.num_train_utterances = 10;
  config.num_test_utterances = 1;
  config.coarticulation = 0.0;
  config.feature_noise = 0.3;
  const speech::SyntheticTimit generator(config);
  const speech::Corpus corpus = generator.generate();
  const Matrix& prototypes = generator.phone_prototypes();

  double total_sq = 0.0;
  std::size_t count = 0;
  for (const auto& utt : corpus.train) {
    for (std::size_t t = 0; t < utt.features.rows(); ++t) {
      // Find the surface prototype nearest this frame's folded label is
      // unknown; instead use the residual to the closest prototype as an
      // upper bound on the noise.
      double best = 1e30;
      for (std::size_t p = 0; p < prototypes.rows(); ++p) {
        double d = 0.0;
        for (std::size_t k = 0; k < prototypes.cols(); ++k) {
          const double diff = static_cast<double>(utt.features(t, k)) -
                              static_cast<double>(prototypes(p, k));
          d += diff * diff;
        }
        best = std::min(best, d);
      }
      total_sq += best / static_cast<double>(prototypes.cols());
      ++count;
    }
  }
  const double rms = std::sqrt(total_sq / static_cast<double>(count));
  EXPECT_LT(rms, 0.32);   // <= configured stddev (nearest-prototype bound)
  EXPECT_GT(rms, 0.15);   // but genuinely noisy
}

// ----------------------------------------------------------- MFCC sweeps
class MfccGeometrySweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(MfccGeometrySweep, FrameCountAndDimsConsistent) {
  const auto [length_ms, shift_ms] = GetParam();
  speech::MfccConfig config;
  config.frame_length = length_ms * 16;
  config.frame_shift = shift_ms * 16;
  config.fft_size = next_power_of_two(config.frame_length);
  const speech::MfccExtractor mfcc(config);
  Rng rng(8);
  std::vector<float> wave(8000);
  for (auto& s : wave) s = 0.1F * rng.normal();
  const Matrix features = mfcc.extract(wave);
  EXPECT_EQ(features.rows(), mfcc.frame_count(wave.size()));
  EXPECT_EQ(features.cols(), mfcc.feature_dim());
}

INSTANTIATE_TEST_SUITE_P(Geometries, MfccGeometrySweep,
                         ::testing::Values(std::make_pair(25U, 10U),
                                           std::make_pair(20U, 10U),
                                           std::make_pair(32U, 16U),
                                           std::make_pair(10U, 5U)));

}  // namespace
}  // namespace rtmobile
