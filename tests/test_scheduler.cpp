// Tests for deadline-aware scheduling: the session real-time clock model
// (deterministic lag accounting under a ManualClock), EDF / lag-aware
// stream ordering, shed and reject overload thresholds with their
// kDegraded / kRejected events, sharded-vs-local parity of the deadline
// stats, and the round-robin cursor regressions (release/remove below
// the cursor must not skip streams).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/clock.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/streaming_session.hpp"
#include "serve/local_recognizer.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "speech/mfcc.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using runtime::EngineConfig;
using runtime::InferenceEngine;
using runtime::ManualClock;
using runtime::OverloadPolicy;
using runtime::SchedulerPolicy;
using runtime::StreamDeadline;
using runtime::StreamingSession;
using speech::StreamEvent;
using speech::StreamEventKind;

std::vector<float> random_waveform(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

speech::MfccConfig streaming_mfcc_config() {
  speech::MfccConfig config;
  config.cepstral_mean_norm = false;  // whole-utterance; cannot stream
  return config;
}

struct TestDeployment {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
  std::unique_ptr<CompiledSpeechModel> compiled;
};

TestDeployment make_deployment(std::size_t hidden, std::uint64_t seed) {
  TestDeployment d;
  Rng rng(seed);
  d.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  d.model->init(rng);
  ParamSet params;
  d.model->register_params(params);
  for (const std::string& name : d.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    d.masks.emplace(name, std::move(mask));
  }
  d.options.format = SparseFormat::kBspc;
  d.compiled = std::make_unique<CompiledSpeechModel>(*d.model, d.masks,
                                                     d.options, nullptr);
  return d;
}

EngineConfig engine_config(ManualClock& clock, SchedulerPolicy scheduler,
                           OverloadPolicy overload,
                           std::size_t max_batch = 32) {
  EngineConfig config;
  config.max_batch = max_batch;
  config.scheduler = scheduler;
  config.overload = overload;
  config.clock = &clock;
  config.mfcc = streaming_mfcc_config();
  return config;
}

/// Pushes `samples` of audio and finishes, so every produced frame is
/// queued (stamped with the clock's current time).
StreamingSession& add_stream(InferenceEngine& engine, std::size_t samples,
                             std::uint64_t seed, double budget_seconds) {
  StreamingSession& session =
      engine.create_session(streaming_mfcc_config());
  session.set_deadline(StreamDeadline{budget_seconds});
  session.push_audio(random_waveform(samples, seed));
  session.finish();
  return session;
}

// ------------------------------------------------ lag accounting (clock)
TEST(DeadlineClock, LagTracksOldestQueuedFrameDeterministically) {
  TestDeployment d = make_deployment(16, 11);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kRoundRobin,
                                       OverloadPolicy::kNone));
  StreamingSession& session = add_stream(engine, 1600, 5, /*budget=*/0.03);
  const std::size_t frames = session.pending_frames();
  ASSERT_GT(frames, 0U);

  EXPECT_DOUBLE_EQ(session.lag_seconds(), 0.0);  // just arrived
  clock.advance_us(50'000.0);
  EXPECT_DOUBLE_EQ(session.lag_seconds(), 0.05);
  EXPECT_DOUBLE_EQ(session.frame_wait_us(clock.now_us()), 50'000.0);
  EXPECT_DOUBLE_EQ(engine.max_lag_seconds(), 0.05);

  // Every frame was stamped at t=0 and the clock is frozen at 50 ms, so
  // each served frame waits 50 ms > the 30 ms budget: a miss per frame,
  // and each scheduling round records a 50 ms worst-stream lag sample.
  std::size_t steps = 0;
  while (engine.step() > 0) ++steps;
  EXPECT_EQ(steps, frames);
  const runtime::RuntimeStats& stats = engine.stats();
  EXPECT_EQ(stats.lag.count(), frames);
  EXPECT_DOUBLE_EQ(stats.lag.p50_us(), 50'000.0);
  EXPECT_DOUBLE_EQ(stats.lag.p99_us(), 50'000.0);
  EXPECT_EQ(stats.deadline_misses, frames);
  EXPECT_EQ(session.deadline_misses(), frames);
  EXPECT_DOUBLE_EQ(stats.miss_rate(), 1.0);
  EXPECT_TRUE(session.done());
  EXPECT_DOUBLE_EQ(session.lag_seconds(), 0.0);  // caught up
  EXPECT_DOUBLE_EQ(engine.max_lag_seconds(), 0.0);
}

TEST(DeadlineClock, NoBudgetMeansNoMisses) {
  TestDeployment d = make_deployment(16, 12);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kRoundRobin,
                                       OverloadPolicy::kNone));
  StreamingSession& session = add_stream(engine, 1600, 6, /*budget=*/0.0);
  clock.advance_us(500'000.0);
  while (engine.step() > 0) {
  }
  EXPECT_EQ(engine.stats().deadline_misses, 0U);
  EXPECT_EQ(session.deadline_misses(), 0U);
  EXPECT_GT(engine.stats().lag.count(), 0U);  // lag is still recorded
}

// --------------------------------------------------- policy ordering
TEST(SchedulerPolicyOrdering, EdfServesTightestBudgetFirst) {
  TestDeployment d = make_deployment(16, 21);
  ManualClock clock;
  InferenceEngine engine(
      *d.compiled,
      engine_config(clock, SchedulerPolicy::kEarliestDeadlineFirst,
                    OverloadPolicy::kNone, /*max_batch=*/1));
  // Same arrival time for everyone: deadline = arrival + budget, so the
  // serving order is the budget order, with the budgetless stream last.
  StreamingSession& loose = add_stream(engine, 1600, 1, 0.5);
  StreamingSession& tight = add_stream(engine, 1600, 2, 0.1);
  StreamingSession& middle = add_stream(engine, 1600, 3, 0.3);
  StreamingSession& none = add_stream(engine, 1600, 4, 0.0);
  const std::size_t per_stream = tight.pending_frames();

  // Each stream's frames all share one arrival stamp, so EDF drains the
  // tightest stream completely before touching the next.
  for (std::size_t i = 0; i < per_stream; ++i) ASSERT_EQ(engine.step(), 1U);
  EXPECT_EQ(tight.frames_processed(), per_stream);
  EXPECT_EQ(middle.frames_processed(), 0U);
  for (std::size_t i = 0; i < per_stream; ++i) ASSERT_EQ(engine.step(), 1U);
  EXPECT_EQ(middle.frames_processed(), per_stream);
  EXPECT_EQ(loose.frames_processed(), 0U);
  for (std::size_t i = 0; i < per_stream; ++i) ASSERT_EQ(engine.step(), 1U);
  EXPECT_EQ(loose.frames_processed(), per_stream);
  EXPECT_EQ(none.frames_processed(), 0U);  // budgetless runs last
  while (engine.step() > 0) {
  }
  EXPECT_EQ(none.frames_processed(), per_stream);
}

TEST(SchedulerPolicyOrdering, LagAwareServesMostBehindFirst) {
  TestDeployment d = make_deployment(16, 22);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kLagAware,
                                       OverloadPolicy::kNone,
                                       /*max_batch=*/1));
  // Staggered arrivals; no budgets at all — lag-aware only needs the
  // arrival clock.
  StreamingSession& oldest = add_stream(engine, 1600, 1, 0.0);
  clock.advance_us(10'000.0);
  StreamingSession& middle = add_stream(engine, 1600, 2, 0.0);
  clock.advance_us(10'000.0);
  StreamingSession& newest = add_stream(engine, 1600, 3, 0.0);
  clock.advance_us(10'000.0);
  const std::size_t per_stream = oldest.pending_frames();

  for (std::size_t i = 0; i < per_stream; ++i) ASSERT_EQ(engine.step(), 1U);
  EXPECT_EQ(oldest.frames_processed(), per_stream);
  EXPECT_EQ(middle.frames_processed(), 0U);
  for (std::size_t i = 0; i < per_stream; ++i) ASSERT_EQ(engine.step(), 1U);
  EXPECT_EQ(middle.frames_processed(), per_stream);
  EXPECT_EQ(newest.frames_processed(), 0U);
  while (engine.step() > 0) {
  }
  EXPECT_EQ(newest.frames_processed(), per_stream);
}

// ------------------------------------------------- overload thresholds
TEST(OverloadPolicyActions, ShedDropsOnlyOverdueFramesAndEmitsDegraded) {
  TestDeployment d = make_deployment(16, 31);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kLagAware,
                                       OverloadPolicy::kShed,
                                       /*max_batch=*/1));
  StreamingSession& session =
      engine.create_session(streaming_mfcc_config());
  session.set_deadline(StreamDeadline{0.1});

  // First cohort at t=0, second at t=150ms (the first is then 50 ms past
  // the 100 ms budget, the second well inside it).
  session.push_audio(random_waveform(1600, 7));
  const std::size_t overdue = session.pending_frames();
  ASSERT_GT(overdue, 0U);
  clock.advance_us(150'000.0);
  session.push_audio(random_waveform(1600, 8));
  session.finish();
  const std::size_t queued = session.pending_frames();
  ASSERT_GT(queued, overdue);

  ASSERT_EQ(engine.step(), 1U);  // shed happens before the gather
  EXPECT_EQ(session.shed_frames(), overdue);
  EXPECT_EQ(engine.stats().shed_frames, overdue);
  EXPECT_EQ(session.pending_frames(), queued - overdue - 1);
  // The served frame arrived at t=150ms and waited 0: no miss.
  EXPECT_EQ(engine.stats().deadline_misses, 0U);

  std::vector<StreamEvent> events;
  ASSERT_EQ(session.poll_events(events), 1U);
  EXPECT_EQ(events[0].kind, StreamEventKind::kDegraded);
  EXPECT_EQ(events[0].dropped_frames, overdue);
  EXPECT_EQ(events[0].frames, 0U);  // nothing had been served yet
  EXPECT_FALSE(events[0].is_final);

  while (engine.step() > 0) {
  }
  EXPECT_TRUE(session.done());
  EXPECT_EQ(session.frames_processed(), queued - overdue);
}

TEST(OverloadPolicyActions, ShedActsUnderRoundRobinToo) {
  // scheduler and overload are independent knobs: round-robin ordering
  // with shedding must still drop overdue frames.
  TestDeployment d = make_deployment(16, 33);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kRoundRobin,
                                       OverloadPolicy::kShed));
  StreamingSession& session = add_stream(engine, 1600, 7, /*budget=*/0.1);
  const std::size_t queued = session.pending_frames();
  ASSERT_GT(queued, 0U);
  clock.advance_us(200'000.0);  // everything queued is now overdue
  EXPECT_EQ(engine.step(), 0U);
  EXPECT_EQ(session.shed_frames(), queued);
  EXPECT_EQ(engine.stats().shed_frames, queued);
  EXPECT_TRUE(session.done());  // finished + everything shed
}

TEST(OverloadPolicyActions, EventsInterleaveInEmissionOrder) {
  // A kDegraded emitted before later hypothesis events must precede
  // them in the poll: per-stream `frames` stamps never go backwards.
  TestDeployment d = make_deployment(16, 34);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kLagAware,
                                       OverloadPolicy::kShed,
                                       /*max_batch=*/1));
  speech::StreamingDecoderConfig decode;
  decode.greedy = speech::DecoderConfig{1, 1};  // eager hypothesis events
  StreamingSession& session =
      engine.create_session(streaming_mfcc_config(), decode);
  session.set_deadline(StreamDeadline{0.1});

  session.push_audio(random_waveform(1600, 3));  // cohort 1 at t=0
  clock.advance_us(150'000.0);                   // cohort 1 overdue
  session.push_audio(random_waveform(1600, 4));  // cohort 2 at t=150ms
  session.finish();
  while (engine.step() > 0) {  // shed cohort 1, then serve cohort 2
  }
  ASSERT_GT(session.shed_frames(), 0U);
  ASSERT_GT(session.frames_processed(), 0U);

  std::vector<StreamEvent> events;
  session.poll_events(events);
  bool saw_degraded = false;
  std::size_t last_frames = 0;
  for (const StreamEvent& event : events) {
    EXPECT_GE(event.frames, last_frames) << "frames stamp went backwards";
    last_frames = event.frames;
    if (event.kind == StreamEventKind::kDegraded) {
      saw_degraded = true;
      EXPECT_EQ(event.frames, 0U);  // shed before anything was served
    }
  }
  EXPECT_TRUE(saw_degraded);
  // The shed precedes every hypothesis the decoder emitted afterwards.
  EXPECT_EQ(events.front().kind, StreamEventKind::kDegraded);
  EXPECT_TRUE(events.back().is_final);
}

TEST(OverloadPolicyActions, RejectTerminatesStreamAndEmitsRejected) {
  TestDeployment d = make_deployment(16, 32);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kLagAware,
                                       OverloadPolicy::kReject));
  // A decoding session: the decoder must finalize (its final hypothesis
  // event) before the terminal kRejected control event.
  speech::StreamingDecoderConfig decode;  // greedy default
  StreamingSession& session =
      engine.create_session(streaming_mfcc_config(), decode);
  session.set_deadline(StreamDeadline{0.1});
  session.push_audio(random_waveform(3200, 9));

  // Serve a couple of frames inside the budget first.
  ASSERT_GT(engine.step(), 0U);
  ASSERT_GT(engine.step(), 0U);
  const std::size_t served = session.frames_processed();
  const std::size_t queued = session.pending_frames();
  ASSERT_GT(queued, 0U);

  clock.advance_us(200'000.0);  // everything queued is now overdue
  EXPECT_EQ(engine.step(), 0U);  // reject leaves nothing to serve
  EXPECT_TRUE(session.rejected());
  EXPECT_TRUE(session.finished());
  EXPECT_TRUE(session.done());
  EXPECT_EQ(session.pending_frames(), 0U);
  EXPECT_EQ(session.shed_frames(), queued);
  EXPECT_EQ(engine.stats().shed_frames, queued);
  EXPECT_EQ(engine.stats().rejected_streams, 1U);

  std::vector<StreamEvent> events;
  session.poll_events(events);
  ASSERT_GE(events.size(), 2U);
  const StreamEvent& final_hypothesis = events[events.size() - 2];
  EXPECT_EQ(final_hypothesis.kind, StreamEventKind::kHypothesis);
  EXPECT_TRUE(final_hypothesis.is_final);
  EXPECT_EQ(final_hypothesis.frames, served);
  const StreamEvent& rejected = events.back();
  EXPECT_EQ(rejected.kind, StreamEventKind::kRejected);
  EXPECT_TRUE(rejected.is_final);
  EXPECT_EQ(rejected.dropped_frames, queued);
  EXPECT_EQ(rejected.frames, served);

  // Audio after the reject is dropped, and the stream stays done.
  session.push_audio(random_waveform(1600, 10));
  EXPECT_EQ(session.pending_frames(), 0U);
  EXPECT_TRUE(session.done());
  // The logits served before the reject remain readable.
  EXPECT_EQ(session.logits().rows(), served);
}

// ------------------------------------- serve-layer deadline stats parity
TEST(DeadlineStatsParity, ShardedMatchesLocalUnderSharedManualClock) {
  const std::size_t kHidden = 16;
  TestDeployment d = make_deployment(kHidden, 41);
  ManualClock clock;
  EngineConfig engine_cfg =
      engine_config(clock, SchedulerPolicy::kLagAware,
                    OverloadPolicy::kShed, /*max_batch=*/1);

  serve::LocalRecognizer local(*d.compiled, engine_cfg);
  serve::ShardConfig shard_config;
  shard_config.shards = 1;
  shard_config.policy = serve::RoutePolicy::kLeastLag;
  shard_config.engine = engine_cfg;
  serve::ShardedEngine sharded(*d.model, d.masks, d.options, shard_config);

  serve::StreamConfig stream_config;
  stream_config.decode.mode = speech::DecodeMode::kNone;
  stream_config.deadline.budget_seconds = 0.05;

  const serve::StreamHandle lh = local.open_stream(stream_config);
  const serve::StreamHandle sh = sharded.open_stream(stream_config);
  const std::vector<float> wave = random_waveform(3200, 77);
  ASSERT_TRUE(local.submit_audio(lh, wave));
  ASSERT_TRUE(local.finish_stream(lh));
  ASSERT_TRUE(sharded.submit_audio(sh, wave));
  ASSERT_TRUE(sharded.finish_stream(sh));
  // Apply the sharded commands at the same virtual time the local
  // recognizer ingested its audio (pump_shard applies, then steps once;
  // mirror with one local step).
  ASSERT_GT(sharded.pump_shard(0), 0U);
  ASSERT_GT(local.step(), 0U);

  // Let both fall 80 ms behind (past the 50 ms budget), then serve a
  // round: the overdue head frames shed identically.
  clock.advance_us(80'000.0);
  local.step();
  sharded.pump_shard(0);
  while (local.step() > 0) {
  }
  while (sharded.pump_shard(0) > 0) {
  }

  const serve::StreamDeadlineStats ls = local.stream_deadline_stats(lh);
  const serve::StreamDeadlineStats ss = sharded.stream_deadline_stats(sh);
  EXPECT_GT(ls.shed_frames, 0U);
  EXPECT_EQ(ls.shed_frames, ss.shed_frames);
  EXPECT_EQ(ls.deadline_misses, ss.deadline_misses);
  EXPECT_EQ(ls.rejected, ss.rejected);
  EXPECT_DOUBLE_EQ(ls.lag_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ss.lag_seconds, 0.0);

  const runtime::RuntimeStats& lstats = local.engine().stats();
  const runtime::RuntimeStats& sstats = sharded.shard_stats(0);
  EXPECT_EQ(lstats.frames_processed, sstats.frames_processed);
  EXPECT_EQ(lstats.shed_frames, sstats.shed_frames);
  EXPECT_EQ(lstats.deadline_misses, sstats.deadline_misses);
  EXPECT_EQ(lstats.lag.count(), sstats.lag.count());
  EXPECT_DOUBLE_EQ(lstats.lag.p99_us(), sstats.lag.p99_us());
  // The merged fleet view carries the same counters.
  EXPECT_EQ(sharded.stats().merged.shed_frames, lstats.shed_frames);
}

// ------------------------------------------- round-robin cursor regressions
TEST(RoundRobinCursor, ReleaseBelowCursorDoesNotSkipNextStream) {
  TestDeployment d = make_deployment(16, 51);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kRoundRobin,
                                       OverloadPolicy::kNone,
                                       /*max_batch=*/1));
  for (std::size_t s = 0; s < 4; ++s) {
    add_stream(engine, 3200, 100 + s, 0.0);
  }
  // Step 1 serves stream 0 and moves the cursor to index 1 (stream 1).
  ASSERT_EQ(engine.step(), 1U);
  EXPECT_EQ(engine.session(0).frames_processed(), 1U);

  // Releasing index 0 shifts streams 1..3 down one slot; the cursor must
  // follow so stream 1 (now index 0) keeps its turn.
  (void)engine.release_session(std::size_t{0});
  const std::size_t frames_before[3] = {
      engine.session(0).frames_processed(),
      engine.session(1).frames_processed(),
      engine.session(2).frames_processed()};
  for (std::size_t expect = 0; expect < 3; ++expect) {
    ASSERT_EQ(engine.step(), 1U);
    EXPECT_EQ(engine.session(expect).frames_processed(),
              frames_before[expect] + 1)
        << "stream at index " << expect
        << " was skipped after release_session";
  }
}

TEST(RoundRobinCursor, RemoveDoneBelowCursorDoesNotSkipNextStream) {
  TestDeployment d = make_deployment(16, 52);
  ManualClock clock;
  InferenceEngine engine(*d.compiled,
                         engine_config(clock, SchedulerPolicy::kRoundRobin,
                                       OverloadPolicy::kNone,
                                       /*max_batch=*/1));
  // Stream 0 has exactly one frame (400 samples = one 25 ms window);
  // streams 1..3 have plenty.
  add_stream(engine, 400, 99, 0.0);
  for (std::size_t s = 1; s < 4; ++s) {
    add_stream(engine, 3200, 100 + s, 0.0);
  }
  ASSERT_EQ(engine.session(0).pending_frames(), 1U);
  ASSERT_EQ(engine.step(), 1U);  // serves stream 0; it is now done
  ASSERT_TRUE(engine.session(0).done());

  // remove_done erases index 0 (below the cursor, which points at the
  // old stream 1); every remaining stream must be served exactly once
  // over the next full round, starting with old stream 1.
  EXPECT_EQ(engine.remove_done(), 1U);
  ASSERT_EQ(engine.session_count(), 3U);
  for (std::size_t expect = 0; expect < 3; ++expect) {
    ASSERT_EQ(engine.step(), 1U);
    EXPECT_EQ(engine.session(expect).frames_processed(), 1U)
        << "stream at index " << expect << " was skipped after remove_done";
  }
}

// ------------------------------------------------- least-lag routing
TEST(LeastLagRouting, PrefersShardWithLowestWorstStreamLag) {
  serve::ShardRouter router(3, serve::RoutePolicy::kLeastLag);
  const std::vector<std::size_t> loads{5, 1, 9};
  const std::vector<double> lags{20'000.0, 90'000.0, 5'000.0};
  EXPECT_EQ(router.pick(loads, lags, 0), 2U);  // lowest lag wins
  // Lag ties break to the lower load.
  const std::vector<double> tied{10'000.0, 10'000.0, 10'000.0};
  EXPECT_EQ(router.pick(loads, tied, 0), 1U);
  // Without a lag signal the policy degrades to least-loaded.
  EXPECT_EQ(router.pick(loads, 0), 1U);
  // Inadmissible shards are skipped even at the lowest lag.
  router.set_admissible(2, false);
  EXPECT_EQ(router.pick(loads, lags, 0), 0U);
}

}  // namespace
}  // namespace rtmobile
