// Tests for the TCP serving front: the wire codec (round trips, garbled
// input, fragmentation), and the epoll server end-to-end over loopback.
//
// The load-bearing guarantee: events read off the wire are bit-identical
// to the events a direct Recognizer::poll_events client sees for the
// same audio — the transport adds delivery, never interpretation.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "net/recognizer_server.hpp"
#include "net/wire_client.hpp"
#include "net/wire_protocol.hpp"
#include "obs/telemetry.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/clock.hpp"
#include "serve/local_recognizer.hpp"
#include "serve/sharded_engine.hpp"
#include "sparse/block_mask.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::OpenRequest;
using net::RecognizerServer;
using net::ServerConfig;
using net::ServerMessage;
using net::WireClient;
using net::WireError;
using serve::LocalRecognizer;
using serve::Recognizer;
using serve::StreamConfig;
using serve::StreamHandle;
using speech::StreamEvent;
using speech::StreamEventKind;

// ---------------------------------------------------------- wire codec

TEST(WireProtocol, OpenRoundTrip) {
  OpenRequest request;
  request.decode_mode = static_cast<std::uint8_t>(speech::DecodeMode::kViterbi);
  request.smooth_window = 5;
  request.min_run = 3;
  request.switch_penalty = 2.5;
  request.deadline_budget_seconds = 0.25;
  request.session_key = 0xDEADBEEFCAFEF00DULL;

  std::vector<std::uint8_t> bytes;
  net::append_open(bytes, request);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, FrameType::kOpen);
  OpenRequest decoded;
  ASSERT_TRUE(net::decode_open(frame.payload, decoded));
  EXPECT_EQ(decoded.decode_mode, request.decode_mode);
  EXPECT_EQ(decoded.smooth_window, request.smooth_window);
  EXPECT_EQ(decoded.min_run, request.min_run);
  EXPECT_EQ(decoded.switch_penalty, request.switch_penalty);
  EXPECT_EQ(decoded.deadline_budget_seconds,
            request.deadline_budget_seconds);
  EXPECT_EQ(decoded.session_key, request.session_key);
  EXPECT_FALSE(decoder.next(frame));  // exactly one frame
}

TEST(WireProtocol, AudioRoundTripPreservesBits) {
  std::vector<float> samples{0.0F, -1.5F, 3.25e-7F, 1e30F, -0.0F};
  std::vector<std::uint8_t> bytes;
  net::append_audio(bytes, samples);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, FrameType::kAudio);
  std::vector<float> decoded;
  ASSERT_TRUE(net::decode_audio(frame.payload, decoded));
  ASSERT_EQ(decoded.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Bit comparison, not value: -0.0 and NaN payloads must survive.
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::memcpy(&a, &samples[i], 4);
    std::memcpy(&b, &decoded[i], 4);
    EXPECT_EQ(a, b) << "sample " << i;
  }
}

TEST(WireProtocol, EventRoundTripBitIdentical) {
  StreamEvent event;
  event.kind = StreamEventKind::kDegraded;
  event.frames = 12345678901ULL;
  event.dropped_frames = 17;
  event.stable = {1, 2, 65535, 0};
  event.partial = {9, 9, 9};
  event.is_final = false;

  std::vector<std::uint8_t> bytes;
  net::append_event(bytes, event);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, FrameType::kDegraded);
  StreamEvent decoded;
  ASSERT_TRUE(net::decode_event(frame.payload, decoded));
  EXPECT_EQ(decoded, event);

  // Frame type tracks the event: final hypotheses and rejections map to
  // their own types so thin clients dispatch without payload parsing.
  event.kind = StreamEventKind::kHypothesis;
  event.is_final = true;
  bytes.clear();
  net::append_event(bytes, event);
  decoder.feed(bytes);
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, FrameType::kFinal);
  ASSERT_TRUE(net::decode_event(frame.payload, decoded));
  EXPECT_EQ(decoded, event);
}

TEST(WireProtocol, ErrorRoundTrip) {
  std::vector<std::uint8_t> bytes;
  net::append_error(bytes, WireError::kRejectedOverBudget, "too slow");
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  WireError error{};
  std::string message;
  ASSERT_TRUE(net::decode_error(frame.payload, error, message));
  EXPECT_EQ(error, WireError::kRejectedOverBudget);
  EXPECT_EQ(message, "too slow");
}

TEST(WireProtocol, DecoderHandlesArbitraryFragmentation) {
  // Several frames of different types, delivered one byte at a time —
  // the worst fragmentation TCP can produce.
  std::vector<std::uint8_t> bytes;
  net::append_open(bytes, OpenRequest{});
  net::append_audio(bytes, std::vector<float>{1.0F, 2.0F});
  net::append_finish(bytes);
  net::append_opened(bytes, 42);
  net::append_close(bytes);

  FrameDecoder decoder;
  std::vector<FrameType> seen;
  Frame frame;
  for (const std::uint8_t byte : bytes) {
    decoder.feed({&byte, 1});
    while (decoder.next(frame)) seen.push_back(frame.type);
  }
  EXPECT_EQ(seen,
            (std::vector<FrameType>{FrameType::kOpen, FrameType::kAudio,
                                    FrameType::kFinish, FrameType::kOpened,
                                    FrameType::kClose}));
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.buffered_bytes(), 0U);
}

TEST(WireProtocol, TruncatedFrameIsNotDelivered) {
  std::vector<std::uint8_t> bytes;
  net::append_audio(bytes, std::vector<float>{1.0F, 2.0F, 3.0F});
  // Feed everything but the last byte: the frame must stay unavailable
  // (and the decoder healthy), then complete with the final byte.
  FrameDecoder decoder;
  decoder.feed({bytes.data(), bytes.size() - 1});
  Frame frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_FALSE(decoder.failed());
  decoder.feed({bytes.data() + bytes.size() - 1, 1});
  EXPECT_TRUE(decoder.next(frame));
}

TEST(WireProtocol, OversizedAndZeroLengthsPoisonTheDecoder) {
  for (const std::uint32_t bad_len : {0U, net::kMaxFrameBytes + 1U}) {
    FrameDecoder decoder;
    std::vector<std::uint8_t> header(4);
    for (int i = 0; i < 4; ++i) {
      header[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(bad_len >> (8 * i));
    }
    decoder.feed(header);
    Frame frame;
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_TRUE(decoder.failed());
    // Poisoned for good: valid bytes afterwards must not resync.
    std::vector<std::uint8_t> valid;
    net::append_finish(valid);
    decoder.feed(valid);
    EXPECT_FALSE(decoder.next(frame));
  }
}

TEST(WireProtocol, GarbledPayloadsRejectedByEveryParser) {
  // Truncating any valid payload by one byte must fail its parser
  // (never read out of bounds — ASan enforces the "never" part).
  OpenRequest request;
  std::vector<std::uint8_t> bytes;
  net::append_open(bytes, request);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  ASSERT_TRUE(decoder.next(frame));
  for (std::size_t cut = 0; cut < frame.payload.size(); ++cut) {
    OpenRequest out;
    EXPECT_FALSE(net::decode_open(
        {frame.payload.data(), cut}, out))
        << "cut=" << cut;
  }

  StreamEvent event;
  event.stable = {1, 2, 3};
  event.partial = {4};
  bytes.clear();
  net::append_event(bytes, event);
  decoder.feed(bytes);
  ASSERT_TRUE(decoder.next(frame));
  for (std::size_t cut = 0; cut < frame.payload.size(); ++cut) {
    StreamEvent out;
    EXPECT_FALSE(net::decode_event({frame.payload.data(), cut}, out))
        << "cut=" << cut;
  }

  // Trailing garbage is rejected too (a parser must consume exactly).
  std::vector<std::uint8_t> padded(frame.payload);
  padded.push_back(0);
  StreamEvent out;
  EXPECT_FALSE(net::decode_event(padded, out));

  // Audio payloads must be whole f32s.
  std::vector<std::uint8_t> three_bytes{1, 2, 3};
  std::vector<float> audio;
  EXPECT_FALSE(net::decode_audio(three_bytes, audio));

  // A u16-array count that promises more entries than the payload holds.
  StreamEvent huge;
  bytes.clear();
  net::append_event(bytes, huge);
  decoder.feed(bytes);
  ASSERT_TRUE(decoder.next(frame));
  // stable count lives after kind(1) + final(1) + frames(8) + dropped(8).
  frame.payload[18] = 0xFF;
  frame.payload[19] = 0xFF;
  EXPECT_FALSE(net::decode_event(frame.payload, out));
}

TEST(WireProtocol, RandomBytesNeverCrashTheDecoder) {
  // Deframe random noise: every outcome (frame, starvation, poison) is
  // acceptable; crashing or over-reading is not.
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder decoder;
    std::vector<std::uint8_t> noise(512);
    for (auto& b : noise) {
      b = static_cast<std::uint8_t>(rng.next_float() * 256.0F);
    }
    // Keep lengths plausible so some frames complete: clamp the first
    // length prefix into range now and then.
    if (trial % 2 == 0) {
      noise[1] = 0;
      noise[2] = 0;
      noise[3] = 0;
    }
    decoder.feed(noise);
    Frame frame;
    while (decoder.next(frame)) {
      OpenRequest open_out;
      std::vector<float> audio_out;
      StreamEvent event_out;
      WireError error_out{};
      std::string message_out;
      std::uint64_t id_out = 0;
      (void)net::decode_open(frame.payload, open_out);
      (void)net::decode_audio(frame.payload, audio_out);
      (void)net::decode_event(frame.payload, event_out);
      (void)net::decode_error(frame.payload, error_out, message_out);
      (void)net::decode_opened(frame.payload, id_out);
    }
  }
}

// ------------------------------------------------------- loopback E2E

std::vector<float> random_waveform(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

struct ServeFixture {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
};

ServeFixture make_fixture(std::size_t hidden, std::uint64_t seed) {
  ServeFixture f;
  Rng rng(seed);
  f.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  f.model->init(rng);
  ParamSet params;
  f.model->register_params(params);
  for (const std::string& name : f.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    f.masks.emplace(name, std::move(mask));
  }
  f.options.format = SparseFormat::kBspc;
  return f;
}

/// Direct (no-socket) reference: the event sequences a caller-driven
/// client collects for `waves`.
std::vector<std::vector<StreamEvent>> direct_events(
    Recognizer& recognizer, const std::vector<std::vector<float>>& waves,
    const StreamConfig& config, std::size_t chunk) {
  std::vector<StreamHandle> handles;
  std::vector<std::vector<StreamEvent>> events(waves.size());
  for (std::size_t s = 0; s < waves.size(); ++s) {
    handles.push_back(recognizer.open_stream(config));
  }
  std::vector<std::size_t> positions(waves.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t s = 0; s < waves.size(); ++s) {
      if (positions[s] >= waves[s].size()) continue;
      const std::size_t n = std::min(chunk, waves[s].size() - positions[s]);
      EXPECT_TRUE(recognizer.submit_audio(
          handles[s],
          std::span<const float>(waves[s]).subspan(positions[s], n)));
      positions[s] += n;
      if (positions[s] >= waves[s].size()) {
        EXPECT_TRUE(recognizer.finish_stream(handles[s]));
      }
      any = any || positions[s] < waves[s].size();
    }
    recognizer.drain();
    for (std::size_t s = 0; s < waves.size(); ++s) {
      recognizer.poll_events(handles[s], events[s]);
    }
  }
  recognizer.drain();
  for (std::size_t s = 0; s < waves.size(); ++s) {
    recognizer.poll_events(handles[s], events[s]);
    EXPECT_TRUE(recognizer.close_stream(handles[s]));
  }
  return events;
}

/// Interleaved wire clients: all open, chunks round-robin, all finish,
/// then each collects to its final event.
std::vector<std::vector<StreamEvent>> wire_events(
    std::uint16_t port, const std::vector<std::vector<float>>& waves,
    const StreamConfig& config, std::size_t chunk) {
  const OpenRequest request = OpenRequest::from_stream_config(config);
  std::vector<WireClient> clients(waves.size());
  for (auto& client : clients) client.connect("127.0.0.1", port);
  for (auto& client : clients) {
    const std::optional<std::uint64_t> handle = client.open(request);
    EXPECT_TRUE(handle.has_value());
  }
  std::vector<std::size_t> positions(waves.size(), 0);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t s = 0; s < waves.size(); ++s) {
      if (positions[s] >= waves[s].size()) continue;
      const std::size_t n = std::min(chunk, waves[s].size() - positions[s]);
      clients[s].send_audio(
          std::span<const float>(waves[s]).subspan(positions[s], n));
      positions[s] += n;
      if (positions[s] >= waves[s].size()) clients[s].send_finish();
      any = any || positions[s] < waves[s].size();
    }
  }
  std::vector<std::vector<StreamEvent>> events(waves.size());
  for (std::size_t s = 0; s < waves.size(); ++s) {
    EXPECT_EQ(clients[s].collect_until_final(events[s]), std::nullopt)
        << "stream " << s;
    clients[s].send_close();
  }
  return events;
}

TEST(NetServer, LoopbackEventsBitIdenticalToDirectPoll_Local) {
  const ServeFixture f = make_fixture(16, 900);
  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < 3; ++s) {
    waves.push_back(random_waveform(4000 + 800 * s, 40 + s));
  }
  for (const speech::DecodeMode mode :
       {speech::DecodeMode::kGreedy, speech::DecodeMode::kViterbi}) {
    StreamConfig config;
    config.decode.mode = mode;

    CompiledSpeechModel direct_model(*f.model, f.masks, f.options, nullptr);
    LocalRecognizer direct(direct_model);
    const auto reference = direct_events(direct, waves, config, 1600);

    CompiledSpeechModel served_model(*f.model, f.masks, f.options, nullptr);
    LocalRecognizer served(served_model);
    RecognizerServer server(served, ServerConfig{});
    server.start();
    const auto wired = wire_events(server.port(), waves, config, 1600);
    server.stop();

    ASSERT_EQ(wired.size(), reference.size());
    for (std::size_t s = 0; s < waves.size(); ++s) {
      EXPECT_EQ(wired[s], reference[s])
          << "stream " << s << " mode " << to_string(mode);
    }
  }
}

TEST(NetServer, LoopbackEventsBitIdenticalToDirectPoll_Sharded) {
  const ServeFixture f = make_fixture(16, 901);
  std::vector<std::vector<float>> waves;
  for (std::size_t s = 0; s < 4; ++s) {
    waves.push_back(random_waveform(3500 + 600 * s, 70 + s));
  }
  const StreamConfig config;

  serve::ShardConfig direct_config;
  direct_config.shards = 2;
  direct_config.policy = serve::RoutePolicy::kRoundRobin;
  serve::ShardedEngine direct(*f.model, f.masks, f.options, direct_config);
  const auto reference = direct_events(direct, waves, config, 1600);

  // Served: pumps run (started engine), the server loop never drains —
  // the notifier thread wakes it when pump rounds publish events.
  serve::ShardedEngine served(*f.model, f.masks, f.options, direct_config);
  served.start();
  ServerConfig server_config;
  server_config.drive_recognizer = false;
  RecognizerServer server(served, server_config);
  server.start();
  const auto wired = wire_events(server.port(), waves, config, 1600);
  server.stop();
  served.stop();

  ASSERT_EQ(wired.size(), reference.size());
  for (std::size_t s = 0; s < waves.size(); ++s) {
    EXPECT_EQ(wired[s], reference[s]) << "stream " << s;
  }
}

TEST(NetServer, OpenRejectedOverBudgetOnTheWire) {
  // Deterministic overload: a manual clock lets us lag the engine by
  // exactly 1 s, then a deadline-carrying open must be refused with the
  // typed wire error (no handle, no compute).
  const ServeFixture f = make_fixture(16, 902);
  CompiledSpeechModel model(*f.model, f.masks, f.options, nullptr);
  runtime::ManualClock clock;
  runtime::EngineConfig engine_config;
  engine_config.clock = &clock;
  LocalRecognizer recognizer(model, engine_config);

  // A direct stream with queued-but-unserved audio is what lags.
  const StreamHandle background = recognizer.open_stream();
  ASSERT_TRUE(recognizer.submit_audio(background, random_waveform(4000, 1)));
  clock.advance_us(1e6);

  // drive_recognizer = false so hand-driven loop iterations never call
  // drain() — the 1 s lag must persist across the admission check.
  ServerConfig server_config;
  server_config.drive_recognizer = false;
  RecognizerServer server(recognizer, server_config);
  WireClient client;
  client.connect("127.0.0.1", server.port());
  OpenRequest request;
  request.deadline_budget_seconds = 0.5;  // < the 1 s the engine lags
  client.send_open(request);
  // Drive the loop by hand: accept, read, reply. No background thread,
  // so the admission decision happens at a fully determined lag.
  for (int i = 0; i < 50; ++i) {
    server.run_once(std::chrono::milliseconds(1));
  }
  const std::optional<ServerMessage> reply = client.read_message();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->error, WireError::kRejectedOverBudget);

  // A budget above the lag is admitted on the same server.
  WireClient ok_client;
  ok_client.connect("127.0.0.1", server.port());
  OpenRequest ok_request;
  ok_request.deadline_budget_seconds = 5.0;
  ok_client.send_open(ok_request);
  for (int i = 0; i < 50; ++i) {
    server.run_once(std::chrono::milliseconds(1));
  }
  const std::optional<ServerMessage> ok_reply = ok_client.read_message();
  ASSERT_TRUE(ok_reply.has_value());
  EXPECT_EQ(ok_reply->type, FrameType::kOpened);
}

TEST(NetServer, ProtocolViolationsGetTypedErrors) {
  const ServeFixture f = make_fixture(16, 903);
  CompiledSpeechModel model(*f.model, f.masks, f.options, nullptr);
  LocalRecognizer recognizer(model);
  obs::Telemetry telemetry;
  ServerConfig server_config;
  server_config.telemetry = &telemetry;
  RecognizerServer server(recognizer, server_config);
  server.start();

  {  // audio before open
    WireClient client;
    client.connect("127.0.0.1", server.port());
    client.send_audio(std::vector<float>{0.0F});
    const std::optional<ServerMessage> reply = client.read_message();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
    EXPECT_EQ(reply->error, WireError::kProtocol);
    EXPECT_EQ(client.read_message(), std::nullopt);  // server closed
  }
  {  // duplicate open
    WireClient client;
    client.connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.open(OpenRequest{}).has_value());
    client.send_open(OpenRequest{});
    const std::optional<ServerMessage> reply = client.read_message();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
    EXPECT_EQ(reply->error, WireError::kProtocol);
  }
  {  // finish before open
    WireClient client;
    client.connect("127.0.0.1", server.port());
    client.send_finish();
    const std::optional<ServerMessage> reply = client.read_message();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, FrameType::kError);
    EXPECT_EQ(reply->error, WireError::kProtocol);
  }
  {  // a misbehaving connection doesn't poison its neighbors
    WireClient good;
    good.connect("127.0.0.1", server.port());
    ASSERT_TRUE(good.open(OpenRequest{}).has_value());
    WireClient bad;
    bad.connect("127.0.0.1", server.port());
    bad.send_audio(std::vector<float>{0.0F});  // audio before open
    good.send_audio(random_waveform(3000, 8));
    good.send_finish();
    std::vector<StreamEvent> events;
    EXPECT_EQ(good.collect_until_final(events), std::nullopt);
    ASSERT_FALSE(events.empty());
    EXPECT_TRUE(events.back().is_final);
    // Read the bad client's typed error too — this also synchronizes:
    // the server has definitely processed (and counted) the violation.
    const std::optional<ServerMessage> bad_reply = bad.read_message();
    ASSERT_TRUE(bad_reply.has_value());
    EXPECT_EQ(bad_reply->error, WireError::kProtocol);
  }
  server.stop();
  // Every violation above is visible as a typed-protocol-error count,
  // and every client (five connects) as an accept.
  EXPECT_EQ(telemetry.net().protocol_errors->value(), 4U);
  EXPECT_EQ(telemetry.net().accepted->value(), 5U);
}

TEST(NetServer, IngressBackpressurePausesReadsAndLosesNothing) {
  // A sharded engine with a tiny ingress ring backpressures almost
  // immediately under a flood. The server must park the rejected chunk,
  // pause the connection (TCP pushes back), retry until the pumps catch
  // up — and the stream must still decode exactly right (no loss, no
  // reorder, no duplicate).
  const ServeFixture f = make_fixture(16, 904);
  serve::ShardConfig shard_config;
  shard_config.shards = 1;
  shard_config.queue_capacity = 4;  // rounded to a tiny ring
  serve::ShardedEngine reference(*f.model, f.masks, f.options, shard_config);
  const std::vector<std::vector<float>> waves{random_waveform(8000, 11)};
  const StreamConfig config;
  const auto expected = direct_events(reference, waves, config, 400);

  serve::ShardedEngine served(*f.model, f.masks, f.options, shard_config);
  served.start();
  obs::Telemetry telemetry;
  ServerConfig server_config;
  server_config.drive_recognizer = false;
  server_config.telemetry = &telemetry;
  RecognizerServer server(served, server_config);
  server.start();

  WireClient client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.open(OpenRequest::from_stream_config(config))
                  .has_value());
  // Flood: small chunks maximize ring-full hits.
  std::size_t position = 0;
  while (position < waves[0].size()) {
    const std::size_t n = std::min<std::size_t>(400,
                                                waves[0].size() - position);
    client.send_audio(
        std::span<const float>(waves[0]).subspan(position, n));
    position += n;
  }
  client.send_finish();
  std::vector<StreamEvent> events;
  EXPECT_EQ(client.collect_until_final(events), std::nullopt);
  EXPECT_EQ(events, expected[0]);
  client.send_close();
  server.stop();
  served.stop();
  // The tiny ring must have forced at least one read-pause episode —
  // the previously invisible backpressure event is now countable.
  EXPECT_GE(telemetry.net().ingress_pauses->value(), 1U);
  EXPECT_EQ(telemetry.net().slow_consumer_drops->value(), 0U);
}

TEST(NetServer, SlowConsumerIsDroppedNotBuffered) {
  // A client that writes audio but never reads its events would grow
  // the server's write buffer without bound; the cap drops it instead.
  const ServeFixture f = make_fixture(16, 905);
  CompiledSpeechModel model(*f.model, f.masks, f.options, nullptr);
  LocalRecognizer recognizer(model);
  obs::Telemetry telemetry;
  ServerConfig server_config;
  server_config.max_write_buffer = 64;  // smaller than any event burst
  server_config.telemetry = &telemetry;
  RecognizerServer server(recognizer, server_config);
  server.start();

  WireClient client;
  client.connect("127.0.0.1", server.port());
  client.send_open(OpenRequest{});
  client.send_audio(random_waveform(16000, 3));
  client.send_finish();
  // Never read. The server must eventually drop us; reads then see the
  // close (possibly after the frames that fit the 64-byte budget).
  std::optional<ServerMessage> message;
  for (;;) {
    try {
      message = client.read_message();
    } catch (const std::exception&) {
      break;  // connection reset also counts as dropped
    }
    if (!message.has_value()) break;  // orderly close
  }
  SUCCEED();
  server.stop();
  EXPECT_EQ(server.connection_count(), 0U);
  // The drop is attributed to the egress cap, not a protocol fault.
  EXPECT_EQ(telemetry.net().slow_consumer_drops->value(), 1U);
  EXPECT_EQ(telemetry.net().protocol_errors->value(), 0U);
  EXPECT_EQ(telemetry.net().closed->value(), 1U);
}

}  // namespace
}  // namespace rtmobile
