// Tests for the extension features: the LSTM speech model (with the
// templated trainer), weight quantization, the Viterbi decoder,
// progressive BSP pruning, and executor profiling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "compiler/gru_executor.hpp"
#include "core/bsp.hpp"
#include "core/quantize.hpp"
#include "rnn/lstm_model.hpp"
#include "speech/decoder.hpp"
#include "tensor/ops.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

// ------------------------------------------------------------- LSTM model
std::vector<LabeledSequence> toy_dataset(std::size_t utterances,
                                         std::size_t frames,
                                         std::size_t input_dim,
                                         std::size_t classes,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledSequence> data(utterances);
  for (auto& utt : data) {
    utt.features = Matrix(frames, input_dim);
    fill_normal(utt.features.span(), rng, 1.0F);
    utt.labels.resize(frames);
    for (std::size_t t = 0; t < frames; ++t) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < classes; ++c) {
        if (utt.features(t, c) > utt.features(t, best)) best = c;
      }
      utt.labels[t] = static_cast<std::uint16_t>(best);
    }
  }
  return data;
}

TEST(LstmModel, ForwardShapesAndDeterminism) {
  Rng rng(1);
  ModelConfig config;
  config.input_dim = 8;
  config.hidden_dim = 12;
  config.num_layers = 2;
  config.num_classes = 5;
  LstmModel model(config);
  model.init(rng);
  Matrix features(6, 8);
  fill_normal(features.span(), rng, 1.0F);
  const Matrix a = model.forward(features);
  EXPECT_EQ(a.rows(), 6U);
  EXPECT_EQ(a.cols(), 5U);
  EXPECT_EQ(a, model.forward(features));
}

TEST(LstmModel, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  ModelConfig config;
  config.input_dim = 3;
  config.hidden_dim = 4;
  config.num_layers = 2;
  config.num_classes = 3;
  LstmModel model(config);
  model.init(rng);
  Matrix features(3, 3);
  fill_normal(features.span(), rng, 1.0F);
  const std::vector<std::uint16_t> labels = {0, 2, 1};

  const auto objective = [&] {
    return softmax_cross_entropy(model.forward(features), labels);
  };
  LstmForwardCache cache;
  const Matrix logits = model.forward(features, &cache);
  Matrix dlogits(3, 3);
  static_cast<void>(softmax_cross_entropy(logits, labels, &dlogits));
  LstmModel grads(config);
  grads.zero();
  model.backward(cache, dlogits, grads);

  ParamSet params;
  model.register_params(params);
  ParamSet grad_set;
  grads.register_params(grad_set);
  constexpr double kEps = 1e-3;
  ParamSet::for_each_pair(
      params, grad_set,
      [&](const std::string& name, std::span<float> p, std::span<float> g) {
        for (std::size_t i = 0; i < p.size(); i += std::max<std::size_t>(
                                                  1, p.size() / 3)) {
          const float saved = p[i];
          p[i] = saved + static_cast<float>(kEps);
          const double up = objective();
          p[i] = saved - static_cast<float>(kEps);
          const double down = objective();
          p[i] = saved;
          const double numeric = (up - down) / (2 * kEps);
          const double tolerance =
              1e-4 + 0.03 * std::max(std::fabs(double{g[i]}),
                                     std::fabs(numeric));
          EXPECT_LT(std::fabs(static_cast<double>(g[i]) - numeric),
                    tolerance)
              << name << '[' << i << ']';
        }
      });
}

TEST(LstmModel, TemplatedTrainerLearnsToyTask) {
  Rng rng(3);
  ModelConfig config;
  config.input_dim = 8;
  config.hidden_dim = 16;
  config.num_layers = 1;
  config.num_classes = 4;
  LstmModel model(config);
  model.init(rng);
  const auto data = toy_dataset(10, 6, 8, 4, 4);

  BasicTrainer<LstmModel> trainer(model);
  Adam adam(5e-3);
  const double initial = BasicTrainer<LstmModel>::evaluate(model, data).loss;
  TrainConfig train_config;
  train_config.epochs = 8;
  trainer.train(train_config, data, adam, rng);
  const EvalResult result = BasicTrainer<LstmModel>::evaluate(model, data);
  EXPECT_LT(result.loss, initial * 0.7);
  EXPECT_GT(result.frame_accuracy, 0.5);
}

TEST(LstmModel, ParamCountExceedsGruAtSameWidth) {
  // The paper's motivation for GRU: 3 gate matrices vs LSTM's 4.
  ModelConfig config;
  config.input_dim = 39;
  config.hidden_dim = 64;
  config.num_layers = 2;
  config.num_classes = 39;
  const SpeechModel gru(config);
  const LstmModel lstm(config);
  EXPECT_GT(lstm.param_count(), gru.param_count());
  const double ratio = static_cast<double>(lstm.param_count() -
                                           lstm.fc_weight().size() -
                                           lstm.fc_bias().size()) /
                       static_cast<double>(gru.param_count() -
                                           gru.fc_weight().size() -
                                           gru.fc_bias().size());
  EXPECT_NEAR(ratio, 4.0 / 3.0, 0.01);
}

TEST(LstmModel, WeightNamesAndSaveLoad) {
  Rng rng(5);
  ModelConfig config;
  config.input_dim = 6;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.num_classes = 4;
  LstmModel model(config);
  model.init(rng);
  EXPECT_EQ(model.weight_names().size(), 16U);  // 2 layers x 8 matrices

  std::stringstream stream;
  model.save(stream);
  LstmModel restored(config);
  restored.load(stream);
  Matrix features(4, 6);
  fill_normal(features.span(), rng, 1.0F);
  EXPECT_EQ(model.forward(features), restored.forward(features));
}

// ------------------------------------------------------------ quantization
TEST(Quantize, Fp16ExactValuesSurvive) {
  // Values exactly representable in binary16 round-trip unchanged.
  for (const float v : {0.0F, 1.0F, -1.0F, 0.5F, 1024.0F, -0.09375F}) {
    EXPECT_EQ(fp16_round_trip(v), v);
  }
}

TEST(Quantize, Fp16RelativeErrorBounded) {
  // binary16 has 11 significand bits: relative error <= 2^-11.
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.uniform(-100.0F, 100.0F);
    const float q = fp16_round_trip(v);
    EXPECT_LE(std::fabs(q - v), std::fabs(v) * (1.0F / 2048.0F) + 1e-7F);
  }
}

TEST(Quantize, Fp16SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(fp16_round_trip(inf), inf);
  EXPECT_EQ(fp16_round_trip(-inf), -inf);
  EXPECT_TRUE(std::isnan(
      fp16_round_trip(std::numeric_limits<float>::quiet_NaN())));
  // Overflow beyond half's max (65504) saturates to infinity.
  EXPECT_EQ(fp16_round_trip(1e6F), inf);
  // Subnormal half range (below 2^-14) is still representable coarsely.
  const float tiny = 3.0e-6F;
  const float q = fp16_round_trip(tiny);
  EXPECT_GT(q, 0.0F);
  EXPECT_NEAR(q, tiny, 6e-8F);
  // Underflow to zero below half the smallest subnormal (2^-25).
  EXPECT_EQ(fp16_round_trip(1e-9F), 0.0F);
}

TEST(Quantize, Fp16RoundToNearestEven) {
  // 2049 is exactly between 2048 and 2050 in half precision (step 2);
  // round-to-nearest-even picks 2048.
  EXPECT_EQ(fp16_round_trip(2049.0F), 2048.0F);
  EXPECT_EQ(fp16_round_trip(2051.0F), 2052.0F);
}

TEST(Quantize, Int8GridAndClamp) {
  Matrix w(1, 4, std::vector<float>{-1.27F, 0.635F, 0.01F, 1.27F});
  quantize_int8(w, /*per_row=*/false);
  // scale = 1.27/127 = 0.01; every value lands exactly on the grid.
  EXPECT_NEAR(w(0, 0), -1.27F, 1e-6F);
  EXPECT_NEAR(w(0, 1), 0.64F, 1e-6F);
  EXPECT_NEAR(w(0, 2), 0.01F, 1e-6F);
  EXPECT_NEAR(w(0, 3), 1.27F, 1e-6F);
}

TEST(Quantize, Int8PerRowAdaptsScales) {
  // Row 1 has tiny values; per-row scaling preserves them, per-tensor
  // scaling crushes them to zero.
  Matrix big_scale(2, 2, std::vector<float>{100.0F, -50.0F, 0.1F, -0.2F});
  Matrix per_row = big_scale;
  quantize_int8(per_row, /*per_row=*/true);
  EXPECT_NEAR(per_row(1, 0), 0.1F, 0.002F);
  Matrix per_tensor = big_scale;
  quantize_int8(per_tensor, /*per_row=*/false);
  EXPECT_GT(std::fabs(per_tensor(1, 0) - 0.1F), 0.05F);
}

TEST(Quantize, ModelReportAccounting) {
  Rng rng(7);
  SpeechModel model(ModelConfig::scaled(16));
  model.init(rng);
  const SpeechModel original = model;
  const QuantizationReport report =
      quantize_model(model, WeightPrecision::kFp16);
  EXPECT_EQ(report.precision, WeightPrecision::kFp16);
  EXPECT_GT(report.quantized_weights, 0U);
  EXPECT_EQ(report.stored_bytes, report.quantized_weights * 2);
  EXPECT_GT(report.max_abs_error, 0.0);
  // fp16 error on Xavier-scale weights is tiny.
  EXPECT_LT(report.max_abs_error, 1e-3);
  // Logits barely move.
  Matrix features(4, 39);
  fill_normal(features.span(), rng, 1.0F);
  EXPECT_LT(max_abs_diff(original.forward(features).span(),
                         model.forward(features).span()),
            0.05F);
}

TEST(Quantize, PrecisionMetadata) {
  EXPECT_EQ(bytes_per_weight(WeightPrecision::kFp32), 4U);
  EXPECT_EQ(bytes_per_weight(WeightPrecision::kFp16), 2U);
  EXPECT_EQ(bytes_per_weight(WeightPrecision::kInt8PerRow), 1U);
  EXPECT_STREQ(to_string(WeightPrecision::kInt8PerTensor), "int8");
}

// ----------------------------------------------------------------- Viterbi
TEST(Viterbi, ZeroPenaltyMatchesArgmaxPath) {
  Rng rng(8);
  Matrix logits(20, 6);
  fill_normal(logits.span(), rng, 2.0F);
  const auto path = speech::viterbi_path(logits, 0.0);
  const auto argmax_path = speech::frame_argmax(logits);
  EXPECT_EQ(path, argmax_path);
}

TEST(Viterbi, LargePenaltyYieldsConstantPath) {
  Rng rng(9);
  Matrix logits(15, 4);
  fill_normal(logits.span(), rng, 1.0F);
  const auto decoded = speech::viterbi_decode(logits, 1e6);
  EXPECT_EQ(decoded.size(), 1U);
}

TEST(Viterbi, SuppressesSingleFrameSpikes) {
  // Class 0 everywhere except one spiky frame of class 1; a moderate
  // penalty removes the spike, which the raw argmax keeps.
  Matrix logits(9, 2, 0.0F);
  for (std::size_t t = 0; t < 9; ++t) logits(t, 0) = 2.0F;
  logits(4, 0) = 0.0F;
  logits(4, 1) = 2.5F;
  const auto greedy = speech::greedy_decode(logits, {1, 1});
  EXPECT_EQ(greedy.size(), 3U);  // 0 1 0
  const auto viterbi = speech::viterbi_decode(logits, 4.0);
  EXPECT_EQ(viterbi, (std::vector<std::uint16_t>{0}));
}

TEST(Viterbi, KeepsGenuineTransitions) {
  // Two long segments with a strong boundary survive a moderate penalty.
  Matrix logits(12, 2, 0.0F);
  for (std::size_t t = 0; t < 6; ++t) logits(t, 0) = 3.0F;
  for (std::size_t t = 6; t < 12; ++t) logits(t, 1) = 3.0F;
  const auto decoded = speech::viterbi_decode(logits, 2.0);
  EXPECT_EQ(decoded, (std::vector<std::uint16_t>{0, 1}));
}

TEST(Viterbi, ValidatesInput) {
  Matrix logits(3, 2);
  EXPECT_THROW(speech::viterbi_path(logits, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------- progressive BSP
TEST(ProgressiveBsp, ReachesFinalTargetWithNestedSupports) {
  Rng rng(10);
  ModelConfig config;
  config.input_dim = 12;
  config.hidden_dim = 24;
  config.num_layers = 2;
  config.num_classes = 8;
  SpeechModel model(config);
  model.init(rng);
  const auto data = toy_dataset(6, 5, 12, 8, 11);

  BspConfig bsp;
  bsp.num_r = 4;
  bsp.num_c = 4;
  bsp.rho = 5e-2;
  bsp.admm_rounds_step1 = 1;
  bsp.epochs_per_round = 1;
  bsp.retrain_epochs = 1;
  bsp.row_keep_fraction = 0.5;
  BspPruner pruner(bsp);
  const std::vector<double> schedule = {2.0, 4.0};
  const BspResult result =
      pruner.prune_progressive(model, data, rng, schedule);
  // Final structure: 4x columns, 2x rows => ~8x overall.
  EXPECT_GT(result.stats.overall_rate(), 5.0);
  EXPECT_NEAR(result.stats.column_rate(), 4.0, 1.0);
}

TEST(ProgressiveBsp, ValidatesSchedule) {
  Rng rng(12);
  SpeechModel model(ModelConfig::scaled(8));
  model.init(rng);
  const auto data = toy_dataset(2, 4, 39, 8, 13);
  BspPruner pruner(BspConfig{});
  const std::vector<double> empty;
  EXPECT_THROW(pruner.prune_progressive(model, data, rng, empty),
               std::invalid_argument);
  const std::vector<double> non_increasing = {4.0, 2.0};
  EXPECT_THROW(pruner.prune_progressive(model, data, rng, non_increasing),
               std::invalid_argument);
}

// ------------------------------------------------------------- profiling
TEST(Profile, BreakdownCoversEveryPlanAndSumsToOne) {
  Rng rng(13);
  SpeechModel model(ModelConfig::scaled(24));
  model.init(rng);
  CompilerOptions options;
  options.format = SparseFormat::kDense;
  const CompiledSpeechModel compiled(model, {}, options);
  const auto profiles = compiled.profile(3);
  EXPECT_EQ(profiles.size(), 13U);  // 12 GRU plans + fc
  double total_share = 0.0;
  for (std::size_t i = 0; i + 1 < profiles.size(); ++i) {
    EXPECT_GE(profiles[i].time_us, profiles[i + 1].time_us);  // sorted
  }
  for (const auto& entry : profiles) {
    EXPECT_GT(entry.nnz, 0U);
    total_share += entry.share;
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

}  // namespace
}  // namespace rtmobile
