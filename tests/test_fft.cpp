// Unit tests for the FFT substrate: agreement with the naive DFT,
// inverse round trips, circular convolution, power spectra.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sparse/fft.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> data(n);
  for (auto& c : data) {
    c = Complex(rng.normal(), rng.normal());
  }
  return data;
}

double max_error(const std::vector<Complex>& a,
                 const std::vector<Complex>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(next_power_of_two(1), 1U);
  EXPECT_EQ(next_power_of_two(5), 8U);
  EXPECT_EQ(next_power_of_two(64), 64U);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(6);
  EXPECT_THROW(fft_inplace(data, false), std::invalid_argument);
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto data = random_signal(n, 100 + n);
  const auto expected = dft_naive(data, false);
  fft_inplace(data, false);
  EXPECT_LT(max_error(data, expected), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizeTest, InverseRoundTrip) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 200 + n);
  auto data = original;
  fft_inplace(data, false);
  fft_inplace(data, true);
  EXPECT_LT(max_error(data, original), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Fft, SinglePureToneLandsInOneBin) {
  constexpr std::size_t kN = 256;
  std::vector<float> signal(kN);
  constexpr std::size_t kBin = 17;
  for (std::size_t i = 0; i < kN; ++i) {
    signal[i] = static_cast<float>(
        std::cos(2.0 * std::numbers::pi * kBin * i / kN));
  }
  const auto spectrum = fft_real(signal, kN);
  // Energy concentrated at +/- kBin.
  EXPECT_NEAR(std::abs(spectrum[kBin]), kN / 2.0, 1e-6 * kN);
  for (std::size_t k = 0; k < kN / 2; ++k) {
    if (k == kBin) continue;
    EXPECT_LT(std::abs(spectrum[k]), 1e-6 * kN);
  }
}

TEST(Fft, CircularConvolutionMatchesNaive) {
  constexpr std::size_t kN = 64;
  Rng rng(7);
  std::vector<float> a(kN);
  std::vector<float> b(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  std::vector<float> fast(kN);
  std::vector<float> slow(kN);
  circular_convolve(a, b, fast);
  circular_convolve_naive(a, b, slow);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-3F);
  }
}

TEST(Fft, ConvolutionWithDeltaIsIdentity) {
  constexpr std::size_t kN = 32;
  Rng rng(8);
  std::vector<float> a(kN);
  for (auto& v : a) v = rng.normal();
  std::vector<float> delta(kN, 0.0F);
  delta[0] = 1.0F;
  std::vector<float> out(kN);
  circular_convolve(a, delta, out);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(out[i], a[i], 1e-5F);
  }
}

TEST(Fft, ConvolutionWithShiftedDeltaRotates) {
  constexpr std::size_t kN = 16;
  std::vector<float> a(kN);
  for (std::size_t i = 0; i < kN; ++i) a[i] = static_cast<float>(i);
  std::vector<float> delta(kN, 0.0F);
  delta[3] = 1.0F;  // circular shift by 3
  std::vector<float> out(kN);
  // out[i] = sum_j a[j] delta[(i-j) mod n] = a[(i-3) mod n]
  circular_convolve(a, delta, out);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(out[i], a[(i + kN - 3) % kN], 1e-5F);
  }
}

TEST(Fft, PowerSpectrumParseval) {
  constexpr std::size_t kN = 128;
  Rng rng(9);
  std::vector<float> signal(kN);
  double time_energy = 0.0;
  for (auto& v : signal) {
    v = rng.normal();
    time_energy += static_cast<double>(v) * static_cast<double>(v);
  }
  std::vector<float> power(kN / 2 + 1);
  std::vector<Complex> fft_scratch(kN);
  power_spectrum(signal, kN, power, fft_scratch);
  // Parseval: sum |X_k|^2 = N * sum x_n^2; reconstruct the full-spectrum
  // sum from the half spectrum (bins 1..N/2-1 appear twice).
  double freq_energy = static_cast<double>(power.front()) +
                       static_cast<double>(power.back());
  for (std::size_t k = 1; k + 1 < power.size(); ++k) {
    freq_energy += 2.0 * static_cast<double>(power[k]);
  }
  EXPECT_NEAR(freq_energy / kN, time_energy, time_energy * 1e-5);
}

TEST(Fft, RealFftRejectsOversizedSignal) {
  std::vector<float> signal(100);
  EXPECT_THROW(fft_real(signal, 64), std::invalid_argument);
}

}  // namespace
}  // namespace rtmobile
