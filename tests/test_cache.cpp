// Tests for the shard-local prefix result cache. The load-bearing
// invariant everywhere: the cache only ever *skips* compute — a stream
// resumed from cache produces logits and StreamEvents bitwise identical
// to an uncached run, across chunkings, divergence points, evictions,
// injected lookup faults, and shard migration.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "compiler/gru_executor.hpp"
#include "core/bsp.hpp"
#include "fault/fault_injector.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/stats.hpp"
#include "serve/sharded_engine.hpp"
#include "speech/mfcc.hpp"
#include "speech/streaming_decoder.hpp"
#include "sparse/block_mask.hpp"
#include "train/projection.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

using cache::CacheConfig;
using cache::PrefixCache;
using cache::PrefixCursor;
using runtime::EngineConfig;
using runtime::InferenceEngine;
using runtime::StreamingSession;

std::vector<float> random_waveform(std::size_t samples, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> wave(samples);
  for (float& s : wave) s = 0.1F * rng.normal();
  return wave;
}

speech::MfccConfig streaming_mfcc_config() {
  speech::MfccConfig config;
  config.cepstral_mean_norm = false;  // whole-utterance; cannot stream
  return config;
}

/// A small BSP-pruned compiled model for engine-level cache tests.
struct TestDeployment {
  std::unique_ptr<SpeechModel> model;
  std::map<std::string, BlockMask> masks;
  CompilerOptions options;
  std::unique_ptr<CompiledSpeechModel> compiled;
};

TestDeployment make_deployment(std::size_t hidden, std::uint64_t seed) {
  TestDeployment d;
  Rng rng(seed);
  d.model = std::make_unique<SpeechModel>(ModelConfig::scaled(hidden));
  d.model->init(rng);

  ParamSet params;
  d.model->register_params(params);
  for (const std::string& name : d.model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    d.masks.emplace(name, std::move(mask));
  }
  d.options.format = SparseFormat::kBspc;
  d.compiled = std::make_unique<CompiledSpeechModel>(*d.model, d.masks,
                                                     d.options, nullptr);
  return d;
}

/// One stream served end to end on `engine`: audio pushed in `chunk`-
/// sample pieces with a drain after each push (frames are served as they
/// arrive, like live traffic), then finish + final drain. Returns the
/// stream's logits; appends its events to `events` when decoding.
Matrix serve_stream(InferenceEngine& engine, std::span<const float> wave,
                    std::size_t chunk,
                    const speech::StreamingDecoderConfig& decode,
                    std::vector<speech::StreamEvent>* events = nullptr) {
  StreamingSession& session =
      engine.create_session(engine.config().mfcc, decode);
  for (std::size_t pos = 0; pos < wave.size(); pos += chunk) {
    session.push_audio(wave.subspan(pos, std::min(chunk, wave.size() - pos)));
    engine.drain();
  }
  session.finish();
  engine.drain();
  EXPECT_TRUE(session.done());
  if (events != nullptr) session.poll_events(*events);
  return session.logits();
}

EngineConfig cached_engine_config(std::size_t byte_budget = 64U << 20) {
  EngineConfig config;
  config.cache.enabled = true;
  config.cache.byte_budget = byte_budget;
  return config;
}

// ----------------------------------------------------- cursor & hashing

TEST(PrefixCursor, IdenticalChainsAgreeDifferentChainsDiverge) {
  const std::vector<float> state(16, 0.0F);
  const std::vector<float> frame_a = random_waveform(39, 1);
  const std::vector<float> frame_b = random_waveform(39, 2);

  PrefixCursor x = PrefixCursor::from_state(state);
  PrefixCursor y = PrefixCursor::from_state(state);
  EXPECT_EQ(x.bucket, y.bucket);
  EXPECT_EQ(x.sig_lo, y.sig_lo);
  EXPECT_EQ(x.sig_hi, y.sig_hi);

  x.advance(frame_a, 1024.0F);
  y.advance(frame_a, 1024.0F);
  EXPECT_EQ(x.bucket, y.bucket);
  EXPECT_EQ(x.sig_lo, y.sig_lo);
  EXPECT_EQ(x.sig_hi, y.sig_hi);
  EXPECT_EQ(x.depth, 1U);

  PrefixCursor z = PrefixCursor::from_state(state);
  z.advance(frame_b, 1024.0F);
  EXPECT_NE(x.bucket, z.bucket);
  EXPECT_TRUE(x.sig_lo != z.sig_lo || x.sig_hi != z.sig_hi);
}

TEST(PrefixCursor, InitialStateIsPartOfTheChain) {
  std::vector<float> zero(8, 0.0F);
  std::vector<float> other(8, 0.0F);
  other[3] = 1e-3F;
  const PrefixCursor a = PrefixCursor::from_state(zero);
  const PrefixCursor b = PrefixCursor::from_state(other);
  EXPECT_NE(a.bucket, b.bucket);
  EXPECT_TRUE(a.sig_lo != b.sig_lo || a.sig_hi != b.sig_hi);
}

TEST(PrefixCache, QuantBucketCollisionMissesOnSignature) {
  // Two frames that quantize identically (same bucket) but differ in
  // exact bits must never serve each other's results: the lookup is a
  // miss, not a wrong hit.
  const float quant = 8.0F;  // coarse: 1/8 quantization step
  std::vector<float> frame_a(4, 0.5F);
  std::vector<float> frame_b(4, 0.5F);
  frame_b[0] = 0.5F + 1e-4F;  // same quantized value, different bits

  const std::vector<float> state(4, 0.0F);
  PrefixCursor a = PrefixCursor::from_state(state);
  PrefixCursor b = PrefixCursor::from_state(state);
  a.advance(frame_a, quant);
  b.advance(frame_b, quant);
  ASSERT_EQ(a.bucket, b.bucket);  // the collision under test
  ASSERT_TRUE(a.sig_lo != b.sig_lo || a.sig_hi != b.sig_hi);

  CacheConfig config;
  config.enabled = true;
  PrefixCache cache(config);
  const std::vector<float> logits = {1.0F, 2.0F};
  cache.insert(a, logits, state);
  EXPECT_NE(cache.lookup(a), nullptr);
  EXPECT_EQ(cache.lookup(b), nullptr);  // collision degrades to a miss
}

// ------------------------------------------------------- cache mechanics

TEST(PrefixCache, InsertLookupRoundTrip) {
  CacheConfig config;
  config.enabled = true;
  PrefixCache cache(config);
  const std::vector<float> state = {0.25F, -0.5F};
  const std::vector<float> logits = {3.0F, 1.0F, 2.0F};
  PrefixCursor key = PrefixCursor::from_state(state);
  key.advance(logits, config.quant_scale);

  const PrefixCache::InsertResult inserted =
      cache.insert(key, logits, state);
  EXPECT_EQ(inserted.evicted, 0U);
  EXPECT_EQ(inserted.bytes_added, PrefixCache::entry_bytes(3, 2));
  EXPECT_EQ(cache.entries(), 1U);
  EXPECT_EQ(cache.bytes(), PrefixCache::entry_bytes(3, 2));

  const PrefixCache::Entry* entry = cache.lookup(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->logits, logits);
  EXPECT_EQ(entry->state, state);

  // Same-prefix reinsert refreshes recency only: no bytes, no eviction.
  const PrefixCache::InsertResult again = cache.insert(key, logits, state);
  EXPECT_EQ(again.evicted, 0U);
  EXPECT_EQ(again.bytes_added, 0U);
  EXPECT_EQ(cache.entries(), 1U);
}

TEST(PrefixCache, ByteBudgetEvictsLeastRecentlyUsed) {
  const std::vector<float> state = {0.0F};
  const std::vector<float> row = {1.0F};
  const std::size_t per_entry = PrefixCache::entry_bytes(1, 1);
  CacheConfig config;
  config.enabled = true;
  config.byte_budget = 3 * per_entry;
  PrefixCache cache(config);

  std::vector<PrefixCursor> keys;
  for (float v = 1.0F; v <= 4.0F; v += 1.0F) {
    PrefixCursor key = PrefixCursor::from_state(state);
    const std::vector<float> frame = {v};
    key.advance(frame, config.quant_scale);
    keys.push_back(key);
  }
  cache.insert(keys[0], row, state);
  cache.insert(keys[1], row, state);
  cache.insert(keys[2], row, state);
  EXPECT_EQ(cache.entries(), 3U);
  // Touch key0 so key1 is now the LRU victim.
  EXPECT_NE(cache.lookup(keys[0]), nullptr);
  cache.insert(keys[3], row, state);
  EXPECT_EQ(cache.entries(), 3U);
  EXPECT_EQ(cache.evictions(), 1U);
  EXPECT_EQ(cache.lookup(keys[1]), nullptr);   // evicted
  EXPECT_NE(cache.lookup(keys[0]), nullptr);   // survived (recently used)
  EXPECT_NE(cache.lookup(keys[3]), nullptr);   // the newcomer
  EXPECT_LE(cache.bytes(), config.byte_budget);
}

TEST(PrefixCache, BudgetBelowOneEntryDegradesToOneEntry) {
  const std::vector<float> state = {0.0F};
  const std::vector<float> row = {1.0F};
  CacheConfig config;
  config.enabled = true;
  config.byte_budget = 1;  // smaller than any entry
  PrefixCache cache(config);

  PrefixCursor a = PrefixCursor::from_state(state);
  const std::vector<float> fa = {1.0F};
  a.advance(fa, config.quant_scale);
  PrefixCursor b = PrefixCursor::from_state(state);
  const std::vector<float> fb = {2.0F};
  b.advance(fb, config.quant_scale);

  cache.insert(a, row, state);
  EXPECT_EQ(cache.entries(), 1U);  // never evicts the just-inserted entry
  EXPECT_NE(cache.lookup(a), nullptr);
  cache.insert(b, row, state);
  EXPECT_EQ(cache.entries(), 1U);
  EXPECT_EQ(cache.lookup(a), nullptr);
  EXPECT_NE(cache.lookup(b), nullptr);
}

// ------------------------------------------- engine parity (the tentpole)

TEST(CacheEngine, ReplayIsBitwiseIdenticalAndSkipsAllCompute) {
  const TestDeployment d = make_deployment(16, 7);
  const std::vector<float> wave = random_waveform(8000, 11);
  const speech::StreamingDecoderConfig decode;  // greedy events

  // Uncached reference run.
  InferenceEngine cold(*d.compiled);
  std::vector<speech::StreamEvent> cold_events;
  const Matrix reference = serve_stream(cold, wave, 1024, decode,
                                        &cold_events);

  InferenceEngine engine(*d.compiled, cached_engine_config());
  ASSERT_NE(engine.cache(), nullptr);

  // First pass populates the cache (all compute)...
  std::vector<speech::StreamEvent> first_events;
  const Matrix first = serve_stream(engine, wave, 1024, decode,
                                    &first_events);
  EXPECT_EQ(first, reference);
  EXPECT_EQ(engine.stats().cache_hits, 0U);
  const std::size_t frames = engine.stats().frames_processed;
  EXPECT_EQ(engine.stats().cache_misses, frames);
  EXPECT_GT(engine.cache()->entries(), 0U);

  // ...a replay under a different chunking serves entirely from cache.
  std::vector<speech::StreamEvent> replay_events;
  const Matrix replay = serve_stream(engine, wave, 333, decode,
                                     &replay_events);
  EXPECT_EQ(replay, reference);                      // logits bitwise
  EXPECT_EQ(replay_events, cold_events);             // events bitwise
  EXPECT_EQ(first_events, cold_events);
  EXPECT_EQ(engine.stats().cache_hits, frames);      // every frame hit
  EXPECT_EQ(engine.stats().cache_misses, frames);    // unchanged
  EXPECT_EQ(engine.stats().cache_skipped_steps, frames);
  // The accounting identity a cache-enabled engine maintains.
  EXPECT_EQ(engine.stats().cache_hits + engine.stats().cache_misses,
            engine.stats().frames_processed);
  EXPECT_EQ(engine.stats().cache_bytes, engine.cache()->bytes());
}

TEST(CacheEngine, DivergenceAtEveryPrefixLengthStaysBitwise) {
  const TestDeployment d = make_deployment(12, 3);
  const std::vector<float> hot = random_waveform(6400, 21);
  const std::vector<float> tail = random_waveform(6400, 22);
  const speech::StreamingDecoderConfig decode;

  InferenceEngine engine(*d.compiled, cached_engine_config());
  // Prime the cache with the hot utterance.
  (void)serve_stream(engine, hot, 800, decode);

  // Streams sharing p samples of the hot prefix then diverging: at every
  // hop-aligned divergence point the cached run must equal an uncached
  // run of the same audio, bit for bit — hits up to the shared prefix,
  // plain compute after.
  std::size_t total_hits_before = engine.stats().cache_hits;
  for (std::size_t p = 0; p <= hot.size(); p += 1600) {
    std::vector<float> wave(hot.begin(),
                            hot.begin() + static_cast<std::ptrdiff_t>(p));
    wave.insert(wave.end(), tail.begin(),
                tail.end() - static_cast<std::ptrdiff_t>(p));

    InferenceEngine cold(*d.compiled);
    std::vector<speech::StreamEvent> cold_events;
    const Matrix reference = serve_stream(cold, wave, 1024, decode,
                                          &cold_events);
    std::vector<speech::StreamEvent> events;
    const Matrix cached = serve_stream(engine, wave, 1024, decode, &events);
    EXPECT_EQ(cached, reference) << "divergence at sample " << p;
    EXPECT_EQ(events, cold_events) << "divergence at sample " << p;
  }
  // Long shared prefixes actually exercised the hit path.
  EXPECT_GT(engine.stats().cache_hits, total_hits_before);
  EXPECT_EQ(engine.stats().cache_hits + engine.stats().cache_misses,
            engine.stats().frames_processed);
}

TEST(CacheEngine, OneEntryBudgetStillBitwise) {
  const TestDeployment d = make_deployment(12, 5);
  const std::vector<float> wave = random_waveform(6400, 31);
  const speech::StreamingDecoderConfig decode;

  InferenceEngine cold(*d.compiled);
  std::vector<speech::StreamEvent> cold_events;
  const Matrix reference = serve_stream(cold, wave, 1024, decode,
                                        &cold_events);

  // A 1-byte budget degrades to a single resident entry: the replayed
  // stream finds only the deepest prefix cached, never its first frame,
  // so it recomputes everything — and must still be bitwise identical.
  InferenceEngine engine(*d.compiled, cached_engine_config(1));
  (void)serve_stream(engine, wave, 1024, decode);
  ASSERT_EQ(engine.cache()->entries(), 1U);
  EXPECT_GT(engine.stats().cache_evictions, 0U);

  std::vector<speech::StreamEvent> events;
  const Matrix replay = serve_stream(engine, wave, 1024, decode, &events);
  EXPECT_EQ(replay, reference);
  EXPECT_EQ(events, cold_events);
  EXPECT_EQ(engine.stats().cache_hits, 0U);  // nothing to resume from
  EXPECT_EQ(engine.stats().cache_hits + engine.stats().cache_misses,
            engine.stats().frames_processed);
}

// ------------------------------------------------------- fault injection

TEST(CacheEngine, LookupFaultDegradesToPlainCompute) {
  const TestDeployment d = make_deployment(12, 9);
  const std::vector<float> wave = random_waveform(6400, 41);
  const speech::StreamingDecoderConfig decode;

  InferenceEngine cold(*d.compiled);
  std::vector<speech::StreamEvent> cold_events;
  const Matrix reference = serve_stream(cold, wave, 1024, decode,
                                        &cold_events);

  fault::FaultInjector injector;
  EngineConfig config = cached_engine_config();
  config.fault = &injector;
  InferenceEngine engine(*d.compiled, config);
  (void)serve_stream(engine, wave, 1024, decode);

  // Every lookup poisoned: the replay takes the compute path throughout,
  // output untouched.
  injector.arm(fault::Site::kCacheLookup,
               {.trigger = fault::Trigger::every_k(1)});
  std::vector<speech::StreamEvent> events;
  const Matrix replay = serve_stream(engine, wave, 1024, decode, &events);
  EXPECT_EQ(replay, reference);
  EXPECT_EQ(events, cold_events);
  EXPECT_EQ(engine.stats().cache_hits, 0U);
  EXPECT_GT(injector.fires(fault::Site::kCacheLookup), 0U);

  // A single poisoned lookup only delays the resume: the round after it
  // hits again, and the output is still bitwise identical.
  injector.reset();
  injector.arm(fault::Site::kCacheLookup,
               {.trigger = fault::Trigger::one_shot()});
  std::vector<speech::StreamEvent> events2;
  const Matrix replay2 = serve_stream(engine, wave, 1024, decode, &events2);
  EXPECT_EQ(replay2, reference);
  EXPECT_EQ(events2, cold_events);
  EXPECT_GT(engine.stats().cache_hits, 0U);
  EXPECT_EQ(injector.fires(fault::Site::kCacheLookup), 1U);
}

// ------------------------------------------------------- stats plumbing

TEST(RuntimeStats, CacheCountersMergeAcrossShards) {
  runtime::RuntimeStats a;
  a.cache_hits = 10;
  a.cache_misses = 30;
  a.cache_skipped_steps = 10;
  a.cache_evictions = 2;
  a.cache_bytes = 1000;
  runtime::RuntimeStats b;
  b.cache_hits = 5;
  b.cache_misses = 5;
  b.cache_skipped_steps = 5;
  b.cache_evictions = 1;
  b.cache_bytes = 500;

  runtime::RuntimeStats merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.cache_hits, 15U);
  EXPECT_EQ(merged.cache_misses, 35U);
  EXPECT_EQ(merged.cache_skipped_steps, 15U);
  EXPECT_EQ(merged.cache_evictions, 3U);
  EXPECT_EQ(merged.cache_bytes, 1500U);  // residency sums across shards
  EXPECT_NEAR(merged.cache_hit_rate(), 0.3, 1e-12);

  merged.reset();
  EXPECT_EQ(merged.cache_hits, 0U);
  EXPECT_EQ(merged.cache_bytes, 0U);
  EXPECT_EQ(merged.cache_hit_rate(), 0.0);
}

// ---------------------------------------------------- shard migration

TEST(CacheSharded, MigratedCacheResumedStreamStaysBitwise) {
  // A stream resumed *from cache* on its home shard, then migrated
  // mid-utterance via drain_shard, must finish bitwise identical — the
  // PrefixCursor rides the session, and the sibling shard's (cold,
  // shard-local) cache simply misses into plain compute.
  Rng rng(88);
  auto model = std::make_unique<SpeechModel>(ModelConfig::scaled(20));
  model->init(rng);
  std::map<std::string, BlockMask> masks;
  ParamSet params;
  model->register_params(params);
  for (const std::string& name : model->weight_names()) {
    Matrix& w = params.matrix(name);
    BlockMask mask = block_column_mask(w, 4, 4, 0.5);
    mask.apply(w);
    masks.emplace(name, std::move(mask));
  }
  CompilerOptions options;
  options.format = SparseFormat::kBspc;

  const std::vector<float> wave = random_waveform(12000, 13);
  const CompiledSpeechModel reference_model(*model, masks, options, nullptr);
  const Matrix reference = reference_model.infer(
      speech::MfccExtractor(streaming_mfcc_config()).extract(wave));

  serve::ShardConfig config;
  config.shards = 2;
  config.policy = serve::RoutePolicy::kRoundRobin;
  config.engine.cache.enabled = true;
  serve::ShardedEngine engine(*model, masks, options, config);

  // Prime the home shard's cache with the full utterance.
  const serve::StreamHandle warm = engine.open_stream();
  const std::size_t home = engine.stream_shard(warm);
  ASSERT_TRUE(engine.submit_audio(warm, wave));
  ASSERT_TRUE(engine.finish_stream(warm));
  engine.drain();
  ASSERT_TRUE(engine.stream_done(warm));
  EXPECT_EQ(engine.stream_logits(warm), reference);
  const std::size_t primed_misses = engine.shard_stats(home).cache_misses;
  EXPECT_GT(primed_misses, 0U);
  ASSERT_NE(engine.shard_cache(home), nullptr);
  EXPECT_GT(engine.shard_cache(home)->entries(), 0U);

  // Route the victim stream to the same shard (round-robin alternates,
  // so open until it lands home), serve half its audio from cache...
  serve::StreamHandle h = engine.open_stream();
  while (engine.stream_shard(h) != home) h = engine.open_stream();
  const std::size_t half = wave.size() / 2;
  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(0, half)));
  engine.drain();
  ASSERT_FALSE(engine.stream_done(h));
  EXPECT_GT(engine.shard_stats(home).cache_hits, 0U);  // resumed from cache
  EXPECT_EQ(engine.shard_stats(home).cache_misses, primed_misses);

  // ...then migrate it mid-utterance and finish on the sibling.
  EXPECT_GE(engine.drain_shard(home), 1U);
  const std::size_t away = engine.stream_shard(h);
  EXPECT_NE(away, home);
  ASSERT_TRUE(engine.submit_audio(
      h, std::span<const float>(wave).subspan(half, wave.size() - half)));
  ASSERT_TRUE(engine.finish_stream(h));
  engine.drain();

  ASSERT_TRUE(engine.stream_done(h));
  EXPECT_EQ(engine.stream_logits(h), reference);  // bitwise
  // Shard-local caches: the sibling computed its share (misses), and the
  // fleet view merges both shards' counters.
  EXPECT_GT(engine.shard_stats(away).cache_misses, 0U);
  const runtime::RuntimeStats& merged = engine.stats().merged;
  EXPECT_EQ(merged.cache_hits,
            engine.shard_stats(0).cache_hits +
                engine.shard_stats(1).cache_hits);
  EXPECT_EQ(merged.cache_misses,
            engine.shard_stats(0).cache_misses +
                engine.shard_stats(1).cache_misses);
  EXPECT_EQ(merged.cache_hits + merged.cache_misses,
            merged.frames_processed);
}

}  // namespace
}  // namespace rtmobile
