// Unit tests for the RNN substrate: GRU/LSTM forward behaviour, exact
// gradient checks against central finite differences, parameter registry,
// and model serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rnn/gru_cell.hpp"
#include "rnn/lstm_cell.hpp"
#include "rnn/model.hpp"
#include "rnn/param_set.hpp"
#include "tensor/ops.hpp"
#include "train/loss.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

constexpr double kFdEpsilon = 1e-3;

/// Mixed absolute/relative criterion for float32 finite differences: the
/// forward pass is float, so FD estimates carry ~1e-4 absolute noise
/// (cancellation of ~1e-7 rounding over a 2e-3 step). A gradient matches
/// when |a - n| < abs_floor + rel * max(|a|, |n|).
::testing::AssertionResult gradients_match(double analytic, double numeric) {
  const double tolerance =
      1e-4 + 0.03 * std::max(std::fabs(analytic), std::fabs(numeric));
  if (std::fabs(analytic - numeric) < tolerance) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "analytic " << analytic << " vs numeric " << numeric
         << " (tolerance " << tolerance << ")";
}

// ------------------------------------------------------------ GRU params
TEST(GruParams, ShapesAndCount) {
  const GruParams params(5, 7);
  EXPECT_EQ(params.input_dim(), 5U);
  EXPECT_EQ(params.hidden_dim(), 7U);
  // 3 input mats (7x5) + 3 recurrent (7x7) + 3 biases (7).
  EXPECT_EQ(params.param_count(), 3U * 35 + 3U * 49 + 3U * 7);
}

TEST(GruParams, RegistryNamesAllTensors) {
  GruParams params(4, 4);
  ParamSet set;
  params.register_params("gru0.", set);
  EXPECT_EQ(set.entry_count(), 9U);
  EXPECT_EQ(set.total_size(), params.param_count());
  EXPECT_NO_THROW(static_cast<void>(set.matrix("gru0.u_h")));
  EXPECT_THROW(static_cast<void>(set.matrix("gru0.nope")),
               std::invalid_argument);
}

// ----------------------------------------------------------- GRU forward
TEST(GruForward, GatesBoundOutput) {
  Rng rng(1);
  GruParams params(6, 8);
  params.init(rng);
  Vector x(6);
  fill_normal(x.span(), rng, 2.0F);
  Vector h_prev(8);
  fill_normal(h_prev.span(), rng, 0.5F);
  Vector h(8);
  gru_forward_step(params, x.span(), h_prev.span(), h.span(), nullptr);
  // h is a convex combination of h_prev and tanh(.) in (-1,1), so it is
  // bounded by max(|h_prev|, 1).
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_LE(std::fabs(h[i]),
              std::max(std::fabs(h_prev[i]), 1.0F) + 1e-6F);
  }
}

TEST(GruForward, ZeroUpdateGateKeepsState) {
  Rng rng(2);
  GruParams params(4, 4);
  params.init(rng);
  // Force z ~ 0 via a strongly negative update bias: h_t ~ h_{t-1}.
  params.b_z.fill(-50.0F);
  Vector x(4);
  fill_normal(x.span(), rng, 1.0F);
  Vector h_prev(4);
  fill_normal(h_prev.span(), rng, 1.0F);
  Vector h(4);
  gru_forward_step(params, x.span(), h_prev.span(), h.span(), nullptr);
  EXPECT_LT(max_abs_diff(h.span(), h_prev.span()), 1e-5F);
}

TEST(GruForward, CacheRecordsStep) {
  Rng rng(3);
  GruParams params(3, 5);
  params.init(rng);
  Vector x(3);
  fill_normal(x.span(), rng, 1.0F);
  Vector h_prev(5, 0.25F);
  Vector h(5);
  GruStepCache cache;
  gru_forward_step(params, x.span(), h_prev.span(), h.span(), &cache);
  EXPECT_EQ(cache.x.size(), 3U);
  EXPECT_EQ(cache.h.size(), 5U);
  EXPECT_LT(max_abs_diff(cache.h.span(), h.span()), 1e-7F);
  // rh must be r . h_prev.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(cache.rh[i], cache.r[i] * h_prev[i], 1e-6F);
  }
}

TEST(GruForward, OutputAliasingHPrevIsSafe) {
  Rng rng(4);
  GruParams params(3, 4);
  params.init(rng);
  Vector x(3);
  fill_normal(x.span(), rng, 1.0F);
  Vector h(4, 0.1F);
  Vector expected(4);
  gru_forward_step(params, x.span(), h.span(), expected.span(), nullptr);
  gru_forward_step(params, x.span(), h.span(), h.span(), nullptr);
  EXPECT_LT(max_abs_diff(h.span(), expected.span()), 1e-7F);
}

// ------------------------------------------------- GRU cell gradient check
// Scalar objective: L = sum(h_t . coeffs). Checks every parameter tensor
// plus dx and dh_prev against central differences.
class GruGradCheck : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    params = GruParams(3, 4);
    params.init(rng);
    x = Vector(3);
    fill_normal(x.span(), rng, 1.0F);
    h_prev = Vector(4);
    fill_normal(h_prev.span(), rng, 0.7F);
    coeffs = Vector(4);
    fill_normal(coeffs.span(), rng, 1.0F);
  }

  double objective() {
    Vector h(4);
    gru_forward_step(params, x.span(), h_prev.span(), h.span(), nullptr);
    return dot(h.span(), coeffs.span());
  }

  GruParams params;
  Vector x, h_prev, coeffs;
};

TEST_F(GruGradCheck, AllParameterGradientsMatchFiniteDifferences) {
  GruStepCache cache;
  Vector h(4);
  gru_forward_step(params, x.span(), h_prev.span(), h.span(), &cache);

  GruParams grads(3, 4);
  grads.zero();
  Vector dx(3);
  Vector dh_prev(4);
  gru_backward_step(params, cache, coeffs.span(), grads, dx.span(),
                    dh_prev.span());

  ParamSet param_set;
  params.register_params("p.", param_set);
  ParamSet grad_set;
  grads.register_params("p.", grad_set);

  ParamSet::for_each_pair(
      param_set, grad_set,
      [&](const std::string& name, std::span<float> p, std::span<float> g) {
        // Probe a handful of coordinates per tensor (cheap but thorough).
        for (std::size_t i = 0; i < p.size(); i += std::max<std::size_t>(
                                                  1, p.size() / 7)) {
          const float saved = p[i];
          p[i] = saved + static_cast<float>(kFdEpsilon);
          const double up = objective();
          p[i] = saved - static_cast<float>(kFdEpsilon);
          const double down = objective();
          p[i] = saved;
          const double numeric = (up - down) / (2.0 * kFdEpsilon);
          EXPECT_TRUE(gradients_match(g[i], numeric))
              << name << '[' << i << ']';
        }
      });
}

TEST_F(GruGradCheck, InputAndStateGradientsMatchFiniteDifferences) {
  GruStepCache cache;
  Vector h(4);
  gru_forward_step(params, x.span(), h_prev.span(), h.span(), &cache);
  GruParams grads(3, 4);
  grads.zero();
  Vector dx(3);
  Vector dh_prev(4);
  gru_backward_step(params, cache, coeffs.span(), grads, dx.span(),
                    dh_prev.span());

  for (std::size_t i = 0; i < x.size(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(kFdEpsilon);
    const double up = objective();
    x[i] = saved - static_cast<float>(kFdEpsilon);
    const double down = objective();
    x[i] = saved;
    EXPECT_TRUE(gradients_match(dx[i], (up - down) / (2 * kFdEpsilon)));
  }
  for (std::size_t i = 0; i < h_prev.size(); ++i) {
    const float saved = h_prev[i];
    h_prev[i] = saved + static_cast<float>(kFdEpsilon);
    const double up = objective();
    h_prev[i] = saved - static_cast<float>(kFdEpsilon);
    const double down = objective();
    h_prev[i] = saved;
    EXPECT_TRUE(
        gradients_match(dh_prev[i], (up - down) / (2 * kFdEpsilon)));
  }
}

// ------------------------------------------------ LSTM cell gradient check
TEST(LstmGradCheck, ParameterGradientsMatchFiniteDifferences) {
  Rng rng(43);
  LstmParams params(3, 4);
  params.init(rng);
  Vector x(3);
  fill_normal(x.span(), rng, 1.0F);
  Vector h_prev(4);
  fill_normal(h_prev.span(), rng, 0.5F);
  Vector c_prev(4);
  fill_normal(c_prev.span(), rng, 0.5F);
  Vector coeffs(4);
  fill_normal(coeffs.span(), rng, 1.0F);

  const auto objective = [&] {
    Vector h(4);
    Vector c(4);
    lstm_forward_step(params, x.span(), h_prev.span(), c_prev.span(),
                      h.span(), c.span(), nullptr);
    return dot(h.span(), coeffs.span());
  };

  LstmStepCache cache;
  Vector h(4);
  Vector c(4);
  lstm_forward_step(params, x.span(), h_prev.span(), c_prev.span(), h.span(),
                    c.span(), &cache);
  LstmParams grads(3, 4);
  grads.zero();
  Vector dx(3);
  Vector dh_prev(4);
  Vector dc_prev(4);
  Vector dc(4, 0.0F);
  lstm_backward_step(params, cache, coeffs.span(), dc.span(), grads,
                     dx.span(), dh_prev.span(), dc_prev.span());

  ParamSet param_set;
  params.register_params("p.", param_set);
  ParamSet grad_set;
  grads.register_params("p.", grad_set);
  ParamSet::for_each_pair(
      param_set, grad_set,
      [&](const std::string& name, std::span<float> p, std::span<float> g) {
        for (std::size_t i = 0; i < p.size(); i += std::max<std::size_t>(
                                                  1, p.size() / 5)) {
          const float saved = p[i];
          p[i] = saved + static_cast<float>(kFdEpsilon);
          const double up = objective();
          p[i] = saved - static_cast<float>(kFdEpsilon);
          const double down = objective();
          p[i] = saved;
          EXPECT_TRUE(
              gradients_match(g[i], (up - down) / (2 * kFdEpsilon)))
              << name << '[' << i << ']';
        }
      });
}

// ------------------------------------------------- full model gradcheck
TEST(ModelGradCheck, SequenceLossGradientsMatchFiniteDifferences) {
  Rng rng(44);
  ModelConfig config;
  config.input_dim = 3;
  config.hidden_dim = 5;
  config.num_layers = 2;
  config.num_classes = 4;
  SpeechModel model(config);
  model.init(rng);

  constexpr std::size_t kFrames = 4;
  Matrix features(kFrames, 3);
  fill_normal(features.span(), rng, 1.0F);
  std::vector<std::uint16_t> labels = {0, 2, 1, 3};

  const auto objective = [&] {
    const Matrix logits = model.forward(features);
    return softmax_cross_entropy(logits, labels);
  };

  ModelForwardCache cache;
  const Matrix logits = model.forward(features, &cache);
  Matrix dlogits(kFrames, 4);
  static_cast<void>(softmax_cross_entropy(logits, labels, &dlogits));
  SpeechModel grads(config);
  grads.zero();
  model.backward(cache, dlogits, grads);

  ParamSet param_set;
  model.register_params(param_set);
  ParamSet grad_set;
  grads.register_params(grad_set);
  ParamSet::for_each_pair(
      param_set, grad_set,
      [&](const std::string& name, std::span<float> p, std::span<float> g) {
        for (std::size_t i = 0; i < p.size(); i += std::max<std::size_t>(
                                                  1, p.size() / 4)) {
          const float saved = p[i];
          p[i] = saved + static_cast<float>(kFdEpsilon);
          const double up = objective();
          p[i] = saved - static_cast<float>(kFdEpsilon);
          const double down = objective();
          p[i] = saved;
          EXPECT_TRUE(
              gradients_match(g[i], (up - down) / (2 * kFdEpsilon)))
              << name << '[' << i << ']';
        }
      });
}

// ------------------------------------------------------------- the model
TEST(Model, PaperFullSizeParameterCount) {
  const ModelConfig config = ModelConfig::paper_full_size();
  const SpeechModel model(config);
  // RNN weights+biases: layer1 3*(1024*(153+1024)+1024), layer2
  // 3*(1024*2048+1024) = 9,913,344 — the paper's "about 9.6M" GRU.
  std::size_t rnn_params = 0;
  for (std::size_t l = 0; l < 2; ++l) {
    rnn_params += model.layer(l).param_count();
  }
  EXPECT_EQ(rnn_params, 9913344U);
}

TEST(Model, ForwardShapesAndDeterminism) {
  Rng rng(45);
  SpeechModel model(ModelConfig::scaled(16));
  model.init(rng);
  Matrix features(7, 39);
  fill_normal(features.span(), rng, 1.0F);
  const Matrix a = model.forward(features);
  const Matrix b = model.forward(features);
  EXPECT_EQ(a.rows(), 7U);
  EXPECT_EQ(a.cols(), 39U);
  EXPECT_EQ(a, b);
}

TEST(Model, RejectsBadInput) {
  SpeechModel model(ModelConfig::scaled(8));
  Matrix wrong_dim(5, 7);
  EXPECT_THROW(model.forward(wrong_dim), std::invalid_argument);
  Matrix empty(0, 39);
  EXPECT_THROW(model.forward(empty), std::invalid_argument);
}

TEST(Model, SaveLoadRoundTrip) {
  Rng rng(46);
  SpeechModel model(ModelConfig::scaled(12));
  model.init(rng);
  std::stringstream stream;
  model.save(stream);

  SpeechModel restored(ModelConfig::scaled(12));
  restored.load(stream);
  Matrix features(5, 39);
  fill_normal(features.span(), rng, 1.0F);
  const Matrix a = model.forward(features);
  const Matrix b = restored.forward(features);
  EXPECT_EQ(a, b);
}

TEST(Model, LoadRejectsWrongShape) {
  Rng rng(47);
  SpeechModel model(ModelConfig::scaled(12));
  model.init(rng);
  std::stringstream stream;
  model.save(stream);
  SpeechModel other(ModelConfig::scaled(16));
  EXPECT_THROW(other.load(stream), std::runtime_error);
}

TEST(Model, NonzeroCountTracksPruning) {
  Rng rng(48);
  SpeechModel model(ModelConfig::scaled(16));
  model.init(rng);
  const std::size_t dense_count = model.nonzero_param_count();
  model.layer(0).w_z.fill(0.0F);
  const std::size_t pruned_count = model.nonzero_param_count();
  EXPECT_EQ(dense_count - pruned_count, model.layer(0).w_z.size());
}

TEST(Model, WeightNamesCoverAllGruMatrices) {
  const SpeechModel model(ModelConfig::scaled(8));
  const auto names = model.weight_names();
  EXPECT_EQ(names.size(), 12U);  // 2 layers x 6 matrices
  EXPECT_EQ(names.front(), "gru0.w_z");
  EXPECT_EQ(names.back(), "gru1.u_h");
}

}  // namespace
}  // namespace rtmobile
