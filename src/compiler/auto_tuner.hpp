// Offline auto-tuner (paper Sec. IV-B, final paragraph).
//
// Searches execution configurations — block count (the paper's "matrix
// tiling size"), thread count, LRE on/off — by compiling candidate plans
// and timing them on the host, and selects the block size that gives "an
// optimal combination of accuracy and performance": among candidates whose
// retained weight energy (the accuracy proxy) clears a threshold, pick the
// fastest.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "compiler/execution_plan.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

struct TunerCandidate {
  std::size_t num_c = 8;      // column blocks per stripe
  std::size_t threads = 1;
  bool lre = true;
  double time_us = 0.0;           // measured host matvec time
  double energy_retained = 0.0;   // ||W_masked||^2 / ||W||^2
  double imbalance = 1.0;
};

struct TunerConfig {
  std::vector<std::size_t> num_c_candidates = {2, 4, 8, 16};
  std::vector<std::size_t> thread_candidates = {1, 2, 4};
  std::vector<bool> lre_candidates = {true};
  std::size_t num_r = 8;              // stripes (fixed during the search)
  double col_keep_fraction = 0.125;   // step-1 budget under test
  double row_keep_fraction = 1.0;     // step-2 budget under test
  double min_energy_retained = 0.0;   // accuracy floor; 0 = pure speed
  std::size_t timing_iters = 20;
  std::size_t timing_repeats = 3;
};

struct TunerResult {
  TunerCandidate best;
  std::vector<TunerCandidate> all;  // every evaluated candidate
};

/// Tunes the execution configuration for one weight matrix.
[[nodiscard]] TunerResult tune_layer(const Matrix& weights,
                                     const TunerConfig& config);

}  // namespace rtmobile
