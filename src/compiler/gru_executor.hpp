// CompiledSpeechModel: the deployable inference artifact.
//
// This is what "RTMobile deployment" produces: every weight matrix of the
// GRU stack compiled to a LayerPlan (format + reorder + LRE + thread
// partition), executing the same recurrence as SpeechModel::forward but
// through the optimized kernels. Numerical output is bit-comparable to the
// reference forward pass up to float accumulation order.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "compiler/execution_plan.hpp"
#include "hw/thread_pool.hpp"
#include "rnn/model.hpp"
#include "sparse/block_mask.hpp"

namespace rtmobile {

class CompiledSpeechModel {
 public:
  /// Compiles `model` under `options`. `masks` maps weight names
  /// ("gru0.w_z", ...) to their BSP structure; weights without an entry are
  /// compiled dense. `pool` (optional, not owned) enables multithreaded
  /// execution; it must outlive the compiled model.
  CompiledSpeechModel(const SpeechModel& model,
                      const std::map<std::string, BlockMask>& masks,
                      const CompilerOptions& options,
                      ThreadPool* pool = nullptr);

  /// Per-frame logits for an utterance (T x input_dim) -> (T x classes).
  [[nodiscard]] Matrix infer(const Matrix& features) const;

  /// Runs only the recurrent stack for `frames` timesteps on zero input —
  /// the steady-state inference kernel that Table II times.
  void run_recurrence(std::size_t frames) const;

  /// Total surviving weights across all compiled plans.
  [[nodiscard]] std::size_t total_nnz() const;

  /// Total compiled storage (values + indices) in bytes.
  [[nodiscard]] std::size_t total_memory_bytes() const;

  /// Worst load-imbalance factor across plans.
  [[nodiscard]] double worst_imbalance() const;

  /// Per-plan timing breakdown measured on synthetic inputs.
  struct PlanProfile {
    std::string name;       // e.g. "gru1.u_h"
    std::size_t nnz = 0;
    double time_us = 0.0;   // mean matvec time
    double share = 0.0;     // fraction of the summed matvec time
  };
  /// Times every compiled plan (`iters` matvecs each, best of 2 batches)
  /// and returns the breakdown, heaviest first. Identifies which matrices
  /// dominate inference — the input the auto-tuner prioritizes.
  [[nodiscard]] std::vector<PlanProfile> profile(
      std::size_t iters = 50) const;

  [[nodiscard]] const ModelConfig& config() const { return config_; }
  [[nodiscard]] const CompilerOptions& options() const { return options_; }

 private:
  struct CompiledLayer {
    LayerPlan w_z, w_r, w_h;
    LayerPlan u_z, u_r, u_h;
    Vector b_z, b_r, b_h;
  };

  void step_layer(const CompiledLayer& layer, std::span<const float> x,
                  std::span<const float> h_prev, std::span<float> h_out,
                  std::span<float> scratch_a, std::span<float> scratch_b,
                  std::span<float> scratch_c) const;

  ModelConfig config_;
  CompilerOptions options_;
  std::vector<CompiledLayer> layers_;
  LayerPlan fc_;
  Vector fc_b_;
  ThreadPool* pool_;
};

}  // namespace rtmobile
