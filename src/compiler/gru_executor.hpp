// CompiledSpeechModel: the deployable inference artifact.
//
// This is what "RTMobile deployment" produces: every weight matrix of the
// GRU stack compiled to a LayerPlan (format + reorder + LRE + thread
// partition), executing the same recurrence as SpeechModel::forward but
// through the optimized kernels. Numerical output is bit-comparable to the
// reference forward pass up to float accumulation order.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "compiler/execution_plan.hpp"
#include "hw/thread_pool.hpp"
#include "rnn/model.hpp"
#include "sparse/block_mask.hpp"

namespace rtmobile {

/// Recurrent state of one audio stream: the hidden vector of every GRU
/// layer. Obtained from CompiledSpeechModel::make_state and threaded
/// through step_batch so many concurrent streams can share one compiled
/// model.
struct StreamState {
  std::vector<Vector> h;  // [num_layers][hidden_dim]

  /// Zeroes all hidden vectors (start of a new utterance).
  void reset() {
    for (Vector& layer : h) layer.fill(0.0F);
  }
};

/// What one step_batch dispatch actually ran: the compute width (streams
/// advanced) and whether it went through the fused batched-matmat spine
/// or the per-stream matvec fallback. The engine mirrors this into
/// RuntimeStats / telemetry (rt_fused_steps_total etc.).
struct StepResult {
  std::size_t width = 0;
  bool fused = false;
};

class CompiledSpeechModel {
 public:
  /// Compiles `model` under `options`. `masks` maps weight names
  /// ("gru0.w_z", ...) to their BSP structure; weights without an entry are
  /// compiled dense. `pool` (optional, not owned) enables multithreaded
  /// execution; it must outlive the compiled model.
  CompiledSpeechModel(const SpeechModel& model,
                      const std::map<std::string, BlockMask>& masks,
                      const CompilerOptions& options,
                      ThreadPool* pool = nullptr);

  /// Per-frame logits for an utterance (T x input_dim) -> (T x classes).
  [[nodiscard]] Matrix infer(const Matrix& features) const;

  /// Fresh zero-initialized recurrent state for one stream.
  [[nodiscard]] StreamState make_state() const;

  /// Advances `states.size()` independent streams by one timestep each:
  /// row b of `features` is stream b's input frame, `states[b]` carries
  /// its recurrence (updated in place), and row b of `logits` receives its
  /// per-frame class scores. `features`/`logits` may have extra trailing
  /// rows (callers reuse grow-only buffers across fluctuating batch
  /// sizes). Streams are partitioned across the thread pool (cross-stream
  /// parallelism replaces intra-matvec threading), and each stream
  /// computes exactly the arithmetic of infer(), so chunked streaming
  /// output is bit-identical to whole-utterance inference.
  ///
  /// Chunk workers reuse per-slot StepScratch buffers cached on the model,
  /// so one engine driving step_batch is allocation-free per timestep; as
  /// a consequence step_batch must not be called concurrently on the same
  /// CompiledSpeechModel (each serving shard owns its own instance).
  ///
  /// Dispatch: when CompilerOptions::fused admits the batch width (see
  /// FusedMode), the step runs the fused spine — every layer gathers the
  /// batch's hidden states into one contiguous panel and drives each
  /// weight matrix ONCE over all streams (batched matmat) instead of
  /// once per stream. The panel's row order is the order of `states`
  /// (the caller's scheduler-gather order) and is part of the numerics
  /// contract: fp32/fp16 fused output is bit-identical to the
  /// per-stream path per stream, independent of batch composition,
  /// because every per-stream accumulation keeps its per-vector order.
  /// Returns what ran so callers can account fused vs fallback steps.
  StepResult step_batch(const Matrix& features,
                        std::span<StreamState* const> states,
                        Matrix& logits) const;

  /// Runs only the recurrent stack for `frames` timesteps on zero input —
  /// the steady-state inference kernel that Table II times. `batch` > 1
  /// measures the batched multi-stream path (one state per stream).
  void run_recurrence(std::size_t frames, std::size_t batch = 1) const;

  /// Total surviving weights across all compiled plans.
  [[nodiscard]] std::size_t total_nnz() const;

  /// Total compiled storage (values + indices) in bytes.
  [[nodiscard]] std::size_t total_memory_bytes() const;

  /// Worst load-imbalance factor across plans.
  [[nodiscard]] double worst_imbalance() const;

  /// Per-plan timing breakdown measured on synthetic inputs.
  struct PlanProfile {
    std::string name;       // e.g. "gru1.u_h"
    std::size_t nnz = 0;
    double time_us = 0.0;   // mean matvec time
    double share = 0.0;     // fraction of the summed matvec time
  };
  /// Times every compiled plan (`iters` matvecs each, best of 2 batches)
  /// and returns the breakdown, heaviest first. Identifies which matrices
  /// dominate inference — the input the auto-tuner prioritizes.
  [[nodiscard]] std::vector<PlanProfile> profile(
      std::size_t iters = 50) const;

  [[nodiscard]] const ModelConfig& config() const { return config_; }
  [[nodiscard]] const CompilerOptions& options() const { return options_; }

 private:
  struct CompiledLayer {
    LayerPlan w_z, w_r, w_h;
    LayerPlan u_z, u_r, u_h;
    Vector b_z, b_r, b_h;
  };

  /// Hidden-sized scratch buffers for one stream's step_layer calls;
  /// `h_next` is the staging vector step_stream swaps layer states
  /// through, and `lre` carries the BSPC kernels' gather buffers — both
  /// hoisted here to keep the serving hot path allocation-free (the
  /// model ctor pre-sizes `lre` to the widest plan's need).
  struct StepScratch {
    explicit StepScratch(std::size_t hidden)
        : a(hidden), b(hidden), c(hidden), d(hidden), h_next(hidden) {}
    Vector a, b, c, d, h_next;
    LreScratch lre;
  };

  /// Panels and quantized-activation buffers for the fused batched
  /// step, pre-sized at compile time to max_fused_batch so the serving
  /// step path is allocation-free. Row b of every panel belongs to
  /// stream b of the dispatched batch (states order). `h` holds the
  /// gathered previous hidden states; `out0`/`out1` alternate as each
  /// layer's output panel (the next layer's input); `a`..`d` mirror
  /// StepScratch's gate buffers, one row per stream. `xq`/`hq`/`gq`
  /// carry the int8 activation codes for the input, hidden, and (r.h)
  /// panels when the int8 activation path is on.
  struct FusedScratch {
    FusedScratch(std::size_t capacity, std::size_t hidden)
        : h(capacity, hidden), out0(capacity, hidden), out1(capacity, hidden),
          a(capacity, hidden), b(capacity, hidden), c(capacity, hidden),
          d(capacity, hidden) {}
    Matrix h, out0, out1, a, b, c, d;
    QuantizedActivations xq, hq, gq;
    LreScratch lre;
  };

  /// One GRU timestep of one stream. `pool` threads the individual
  /// matvecs (nullptr = single-threaded, the mode the batched path uses
  /// because it parallelizes across streams instead).
  void step_layer(const CompiledLayer& layer, std::span<const float> x,
                  std::span<const float> h_prev, std::span<float> h_out,
                  StepScratch& scratch, ThreadPool* pool) const;

  /// True when this batch width should take the fused spine.
  [[nodiscard]] bool use_fused(std::size_t batch) const;

  /// The fused batched step: per layer, gather hidden panels, drive each
  /// weight matrix once over the whole batch, run the gate elementwise
  /// passes per stream, scatter the new hidden states back.
  StepResult step_batch_fused(const Matrix& features,
                              std::span<StreamState* const> states,
                              Matrix& logits) const;

  /// Advances every layer of one stream and writes its logits row.
  void step_stream(std::span<const float> frame, StreamState& state,
                   std::span<float> logits, StepScratch& scratch,
                   ThreadPool* pool) const;

  ModelConfig config_;
  CompilerOptions options_;
  std::vector<CompiledLayer> layers_;
  LayerPlan fc_;
  Vector fc_b_;
  ThreadPool* pool_;
  /// One StepScratch per step_batch chunk slot (pool thread count entries,
  /// built eagerly so hot-path access never mutates the vector). Chunk w
  /// of a parallel_for_indexed job uses slot w; slots are never shared
  /// within a job, which is what makes the batched path allocation-free
  /// per timestep instead of building a scratch per chunk per step.
  std::vector<std::unique_ptr<StepScratch>> step_scratch_;
  /// Fused-step panels; null when options_.fused == kNever (the mode's
  /// promise that no fused memory exists). unique_ptr so const member
  /// functions can fill the panels (scratch, not logical state).
  std::unique_ptr<FusedScratch> fused_;
  /// Compile-time decision: int8 activations requested AND every GRU /
  /// FC plan stores int8 weights, so the whole fused step can run
  /// code-by-code.
  bool fused_q8_acts_ = false;
};

}  // namespace rtmobile
