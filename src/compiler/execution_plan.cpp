#include "compiler/execution_plan.hpp"

#include <algorithm>

#include "tensor/gemm.hpp"
#include "util/check.hpp"

namespace rtmobile {

void LreScratch::prepare(std::size_t partitions, std::size_t floats) {
  if (buffers_.size() < partitions) buffers_.resize(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    if (buffers_[p].size() < floats) buffers_[p].resize(floats);
  }
}

std::span<float> LreScratch::partition(std::size_t index) {
  RT_REQUIRE(index < buffers_.size(),
             "LreScratch: partition index not prepare()d");
  return {buffers_[index].data(), buffers_[index].size()};
}

const char* to_string(SparseFormat format) {
  switch (format) {
    case SparseFormat::kDense: return "dense";
    case SparseFormat::kCsr: return "csr";
    case SparseFormat::kBspc: return "bspc";
  }
  return "?";
}

LayerPlan LayerPlan::compile(const Matrix& weights, const BlockMask* mask,
                             const CompilerOptions& options) {
  RT_REQUIRE(options.threads >= 1, "compile: threads must be positive");
  LayerPlan plan;
  plan.options_ = options;
  plan.rows_ = weights.rows();
  plan.cols_ = weights.cols();

  switch (options.format) {
    case SparseFormat::kDense: {
      if (plan.packed()) {
        plan.packed_dense_ = PackedDenseMatrix::pack(weights,
                                                     options.precision);
      } else {
        plan.dense_ = weights;
      }
      break;
    }
    case SparseFormat::kCsr: {
      RT_REQUIRE(options.precision == WeightPrecision::kFp32,
                 "CSR plans support fp32 only; use kBspc or kDense for "
                 "packed int8/fp16 storage");
      if (mask != nullptr) {
        Matrix masked = weights;
        mask->apply(masked);
        plan.csr_ = CsrMatrix::from_dense(masked);
      } else {
        plan.csr_ = CsrMatrix::from_dense(weights);
      }
      break;
    }
    case SparseFormat::kBspc: {
      RT_REQUIRE(mask != nullptr, "BSPC compilation requires a BlockMask");
      // The fp32 BspcMatrix is built either way; packed plans quantize
      // its value payload and drop the fp32 copy.
      BspcMatrix bspc = BspcMatrix::from_dense(weights, *mask);
      if (plan.packed()) {
        plan.packed_bspc_ = PackedQuantizedBspc::pack(bspc,
                                                      options.precision);
      } else {
        plan.bspc_ = std::move(bspc);
      }
      plan.reorder_ = options.reorder
                          ? reorder_block_mask(*mask, options.threads)
                          : identity_plan(*mask, options.threads);
      break;
    }
  }
  plan.nnz_ = plan.nnz();
  return plan;
}

std::size_t LayerPlan::lre_gather_floats() const {
  if (options_.format != SparseFormat::kBspc || !options_.lre) return 0;
  return packed() ? packed_bspc_.max_block_cols() : bspc_.max_block_cols();
}

void LayerPlan::execute(std::span<const float> x, std::span<float> y,
                        ThreadPool* pool, LreScratch* scratch) const {
  RT_REQUIRE(x.size() == cols_ && y.size() == rows_,
             "execute: shape mismatch");
  // Tiny matvecs run inline: a pool dispatch costs more than the kernel.
  const bool threaded = pool != nullptr && options_.threads > 1 &&
                        nnz_ >= options_.min_nnz_for_threading;

  switch (options_.format) {
    case SparseFormat::kDense: {
      if (packed()) {
        if (!threaded) {
          packed_dense_.gemv(x, y);
          return;
        }
        pool->parallel_for(rows_, [&](std::size_t begin, std::size_t end) {
          packed_dense_.gemv_rows(x, y, begin, end);
        });
        return;
      }
      if (!threaded) {
        gemv(dense_, x, y);
        return;
      }
      pool->parallel_for(rows_, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const float* row = dense_.data() + r * cols_;
          float acc = 0.0F;
          for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
          y[r] = acc;
        }
      });
      return;
    }
    case SparseFormat::kCsr: {
      if (!threaded) {
        csr_.spmv(x, y);
        return;
      }
      const auto row_ptr = csr_.row_ptr();
      const auto col_idx = csr_.col_idx();
      const auto values = csr_.values();
      pool->parallel_for(rows_, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          float acc = 0.0F;
          for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            acc += values[k] * x[col_idx[k]];
          }
          y[r] = acc;
        }
      });
      return;
    }
    case SparseFormat::kBspc: {
      RT_ASSERT(reorder_.has_value(), "BSPC plan lacks a reorder plan");
      std::fill(y.begin(), y.end(), 0.0F);
      const ReorderPlan& ro = *reorder_;
      // Caller scratch keeps the step path allocation-free; one-shot
      // callers without scratch pay a local allocation here instead.
      LreScratch local;
      LreScratch& gather = scratch != nullptr ? *scratch : local;
      const std::size_t gather_floats = lre_gather_floats();
      // The packed and fp32 kernels share the stripe-list contract, so
      // the thread partition below dispatches either transparently.
      const auto run_stripes = [&](std::span<const std::uint32_t> stripes,
                                   std::span<float> buffer) {
        if (packed()) {
          packed_bspc_.spmv_stripe_list(x, y, stripes, options_.lre, buffer);
        } else {
          bspc_.spmv_stripe_list(x, y, stripes, options_.lre, buffer);
        }
      };
      if (!threaded) {
        gather.prepare(1, gather_floats);
        run_stripes({ro.stripe_order.data(), ro.stripe_order.size()},
                    gather.partition(0));
        return;
      }
      std::vector<std::function<void()>> tasks;
      tasks.reserve(ro.thread_ranges.size());
      // Buffers are prepared before dispatch: tasks only read the spans,
      // so concurrent partitions never touch the scratch's vectors.
      gather.prepare(ro.thread_ranges.size(), gather_floats);
      for (std::size_t r = 0; r < ro.thread_ranges.size(); ++r) {
        const auto& [begin, end] = ro.thread_ranges[r];
        if (begin == end) continue;
        tasks.emplace_back([&ro, &run_stripes, buffer = gather.partition(r),
                            begin = begin, end = end] {
          run_stripes({ro.stripe_order.data() + begin,
                       static_cast<std::size_t>(end - begin)},
                      buffer);
        });
      }
      pool->run_all(tasks);
      return;
    }
  }
}

std::size_t LayerPlan::nnz() const {
  switch (options_.format) {
    case SparseFormat::kDense:
      return packed() ? packed_dense_.count_nonzero()
                      : dense_.count_nonzero();
    case SparseFormat::kCsr: return csr_.nnz();
    case SparseFormat::kBspc:
      return packed() ? packed_bspc_.nnz() : bspc_.nnz();
  }
  return 0;
}

std::size_t LayerPlan::memory_bytes() const {
  switch (options_.format) {
    case SparseFormat::kDense:
      return packed() ? packed_dense_.memory_bytes()
                      : dense_.size() * options_.value_bytes;
    case SparseFormat::kCsr:
      return csr_.memory_bytes(options_.value_bytes);
    case SparseFormat::kBspc:
      return packed() ? packed_bspc_.memory_bytes()
                      : bspc_.memory_bytes(options_.value_bytes);
  }
  return 0;
}

double LayerPlan::imbalance() const {
  if (options_.format == SparseFormat::kBspc && reorder_.has_value()) {
    return reorder_->imbalance();
  }
  return 1.0;
}

Matrix LayerPlan::to_dense() const {
  switch (options_.format) {
    case SparseFormat::kDense:
      return packed() ? packed_dense_.to_dense() : dense_;
    case SparseFormat::kCsr: return csr_.to_dense();
    case SparseFormat::kBspc:
      return packed() ? packed_bspc_.to_dense() : bspc_.to_dense();
  }
  return Matrix();
}

}  // namespace rtmobile
