#include "compiler/execution_plan.hpp"

#include <algorithm>

#include "tensor/gemm.hpp"
#include "util/check.hpp"

namespace rtmobile {

void LreScratch::prepare(std::size_t partitions, std::size_t floats) {
  if (buffers_.size() < partitions) buffers_.resize(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    if (buffers_[p].size() < floats) buffers_[p].resize(floats);
  }
}

std::span<float> LreScratch::partition(std::size_t index) {
  RT_REQUIRE(index < buffers_.size(),
             "LreScratch: partition index not prepare()d");
  return {buffers_[index].data(), buffers_[index].size()};
}

void LreScratch::prepare_q8(std::size_t partitions, std::size_t words) {
  if (q8_buffers_.size() < partitions) q8_buffers_.resize(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    if (q8_buffers_[p].size() < words) q8_buffers_[p].resize(words);
  }
}

std::span<std::int32_t> LreScratch::partition_q8(std::size_t index) {
  RT_REQUIRE(index < q8_buffers_.size(),
             "LreScratch: q8 partition index not prepare()d");
  return {q8_buffers_[index].data(), q8_buffers_[index].size()};
}

const char* to_string(SparseFormat format) {
  switch (format) {
    case SparseFormat::kDense: return "dense";
    case SparseFormat::kCsr: return "csr";
    case SparseFormat::kBspc: return "bspc";
  }
  return "?";
}

const char* to_string(FusedMode mode) {
  switch (mode) {
    case FusedMode::kAuto: return "auto";
    case FusedMode::kAlways: return "always";
    case FusedMode::kNever: return "never";
  }
  return "?";
}

LayerPlan LayerPlan::compile(const Matrix& weights, const BlockMask* mask,
                             const CompilerOptions& options) {
  RT_REQUIRE(options.threads >= 1, "compile: threads must be positive");
  LayerPlan plan;
  plan.options_ = options;
  plan.rows_ = weights.rows();
  plan.cols_ = weights.cols();

  switch (options.format) {
    case SparseFormat::kDense: {
      if (plan.packed()) {
        plan.packed_dense_ = PackedDenseMatrix::pack(weights,
                                                     options.precision);
      } else {
        plan.dense_ = weights;
      }
      break;
    }
    case SparseFormat::kCsr: {
      RT_REQUIRE(options.precision == WeightPrecision::kFp32,
                 "CSR plans support fp32 only; use kBspc or kDense for "
                 "packed int8/fp16 storage");
      if (mask != nullptr) {
        Matrix masked = weights;
        mask->apply(masked);
        plan.csr_ = CsrMatrix::from_dense(masked);
      } else {
        plan.csr_ = CsrMatrix::from_dense(weights);
      }
      break;
    }
    case SparseFormat::kBspc: {
      RT_REQUIRE(mask != nullptr, "BSPC compilation requires a BlockMask");
      // The fp32 BspcMatrix is built either way; packed plans quantize
      // its value payload and drop the fp32 copy.
      BspcMatrix bspc = BspcMatrix::from_dense(weights, *mask);
      if (plan.packed()) {
        plan.packed_bspc_ = PackedQuantizedBspc::pack(bspc,
                                                      options.precision);
      } else {
        plan.bspc_ = std::move(bspc);
      }
      plan.reorder_ = options.reorder
                          ? reorder_block_mask(*mask, options.threads)
                          : identity_plan(*mask, options.threads);
      break;
    }
  }
  plan.nnz_ = plan.nnz();
  return plan;
}

std::size_t LayerPlan::lre_gather_floats() const {
  if (options_.format != SparseFormat::kBspc || !options_.lre) return 0;
  return packed() ? packed_bspc_.max_block_cols() : bspc_.max_block_cols();
}

std::size_t LayerPlan::batch_gather_floats() const {
  if (options_.format != SparseFormat::kBspc) return 0;
  if (packed()) return packed_bspc_.max_block_cols();
  return options_.lre ? bspc_.max_block_cols() : 0;
}

std::size_t LayerPlan::q8_scratch_words(std::size_t batch) const {
  if (options_.format != SparseFormat::kBspc || !int8_weights()) return 0;
  return packed_bspc_.q8_scratch_words(batch);
}

void LayerPlan::execute(std::span<const float> x, std::span<float> y,
                        ThreadPool* pool, LreScratch* scratch) const {
  RT_REQUIRE(x.size() == cols_ && y.size() == rows_,
             "execute: shape mismatch");
  // Tiny matvecs run inline: a pool dispatch costs more than the kernel.
  const bool threaded = pool != nullptr && options_.threads > 1 &&
                        nnz_ >= options_.min_nnz_for_threading;

  switch (options_.format) {
    case SparseFormat::kDense: {
      if (packed()) {
        if (!threaded) {
          packed_dense_.gemv(x, y);
          return;
        }
        pool->parallel_for(rows_, [&](std::size_t begin, std::size_t end) {
          packed_dense_.gemv_rows(x, y, begin, end);
        });
        return;
      }
      if (!threaded) {
        gemv(dense_, x, y);
        return;
      }
      pool->parallel_for(rows_, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const float* row = dense_.data() + r * cols_;
          float acc = 0.0F;
          for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
          y[r] = acc;
        }
      });
      return;
    }
    case SparseFormat::kCsr: {
      if (!threaded) {
        csr_.spmv(x, y);
        return;
      }
      const auto row_ptr = csr_.row_ptr();
      const auto col_idx = csr_.col_idx();
      const auto values = csr_.values();
      pool->parallel_for(rows_, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          float acc = 0.0F;
          for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            acc += values[k] * x[col_idx[k]];
          }
          y[r] = acc;
        }
      });
      return;
    }
    case SparseFormat::kBspc: {
      RT_ASSERT(reorder_.has_value(), "BSPC plan lacks a reorder plan");
      std::fill(y.begin(), y.end(), 0.0F);
      const ReorderPlan& ro = *reorder_;
      // Caller scratch keeps the step path allocation-free; one-shot
      // callers without scratch pay a local allocation here instead.
      LreScratch local;
      LreScratch& gather = scratch != nullptr ? *scratch : local;
      const std::size_t gather_floats = lre_gather_floats();
      // The packed and fp32 kernels share the stripe-list contract, so
      // the thread partition below dispatches either transparently.
      const auto run_stripes = [&](std::span<const std::uint32_t> stripes,
                                   std::span<float> buffer) {
        if (packed()) {
          packed_bspc_.spmv_stripe_list(x, y, stripes, options_.lre, buffer);
        } else {
          bspc_.spmv_stripe_list(x, y, stripes, options_.lre, buffer);
        }
      };
      if (!threaded) {
        gather.prepare(1, gather_floats);
        run_stripes({ro.stripe_order.data(), ro.stripe_order.size()},
                    gather.partition(0));
        return;
      }
      std::vector<std::function<void()>> tasks;
      tasks.reserve(ro.thread_ranges.size());
      // Buffers are prepared before dispatch: tasks only read the spans,
      // so concurrent partitions never touch the scratch's vectors.
      gather.prepare(ro.thread_ranges.size(), gather_floats);
      for (std::size_t r = 0; r < ro.thread_ranges.size(); ++r) {
        const auto& [begin, end] = ro.thread_ranges[r];
        if (begin == end) continue;
        tasks.emplace_back([&ro, &run_stripes, buffer = gather.partition(r),
                            begin = begin, end = end] {
          run_stripes({ro.stripe_order.data() + begin,
                       static_cast<std::size_t>(end - begin)},
                      buffer);
        });
      }
      pool->run_all(tasks);
      return;
    }
  }
}

void LayerPlan::execute_batch(const Matrix& x, Matrix& y, std::size_t batch,
                              ThreadPool* pool, LreScratch* scratch,
                              const QuantizedActivations* xq) const {
  RT_REQUIRE(batch > 0, "execute_batch: empty batch");
  RT_REQUIRE(x.cols() == cols_ && y.cols() == rows_,
             "execute_batch: panel shape mismatch");
  RT_REQUIRE(batch <= x.rows() && batch <= y.rows(),
             "execute_batch: batch exceeds panel");
  // The whole batch's work amortizes one dispatch, so the threading
  // heuristic scales the per-matvec floor by the batch width.
  const bool threaded = pool != nullptr && options_.threads > 1 &&
                        nnz_ * batch >= options_.min_nnz_for_threading;
  const bool q8_acts = xq != nullptr && int8_weights();
  if (q8_acts) {
    RT_REQUIRE(xq->dim == cols_ && batch <= xq->batch,
               "execute_batch: quantized panel shape mismatch");
  }

  switch (options_.format) {
    case SparseFormat::kDense: {
      if (packed()) {
        const auto run_rows = [&](std::size_t begin, std::size_t end) {
          if (q8_acts) {
            packed_dense_.gemm_rows_q8(*xq, y, batch, begin, end);
          } else {
            packed_dense_.gemm_rows(x, y, batch, begin, end);
          }
        };
        if (!threaded) {
          run_rows(0, rows_);
          return;
        }
        pool->parallel_for(rows_, run_rows);
        return;
      }
      // fp32 dense runs the exact per-vector gemv per stream (bitwise
      // identity by construction), threading across streams. Weight
      // amortization here comes only from cache reuse across the batch
      // loop; the compiled formats that matter (packed/BSPC) stream
      // weights once explicitly.
      const auto run_streams = [&](std::size_t begin, std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) {
          gemv(dense_, x.row(b), y.row(b));
        }
      };
      if (!threaded) {
        run_streams(0, batch);
        return;
      }
      pool->parallel_for(batch, run_streams);
      return;
    }
    case SparseFormat::kCsr: {
      // Same shape as fp32 dense: per-vector spmv per stream, threaded
      // across streams, so each stream stays bit-identical to execute().
      const auto run_streams = [&](std::size_t begin, std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) {
          csr_.spmv(x.row(b), y.row(b));
        }
      };
      if (!threaded) {
        run_streams(0, batch);
        return;
      }
      pool->parallel_for(batch, run_streams);
      return;
    }
    case SparseFormat::kBspc: {
      RT_ASSERT(reorder_.has_value(), "BSPC plan lacks a reorder plan");
      for (std::size_t b = 0; b < batch; ++b) {
        std::fill(y.row(b).begin(), y.row(b).end(), 0.0F);
      }
      const ReorderPlan& ro = *reorder_;
      LreScratch local;
      LreScratch& gather = scratch != nullptr ? *scratch : local;
      const std::size_t panel_floats = batch * batch_gather_floats();
      const std::size_t q8_words = q8_scratch_words(batch);
      const auto run_stripes = [&](std::span<const std::uint32_t> stripes,
                                   std::size_t partition) {
        if (packed()) {
          if (q8_acts) {
            packed_bspc_.spmm_stripe_list_q8(*xq, y, batch, stripes,
                                             gather.partition_q8(partition));
          } else {
            packed_bspc_.spmm_stripe_list(x, y, batch, stripes,
                                          gather.partition(partition));
          }
        } else {
          bspc_.spmm_stripe_list(x, y, batch, stripes, options_.lre,
                                 gather.partition(partition));
        }
      };
      if (!threaded) {
        if (q8_acts) {
          gather.prepare_q8(1, q8_words);
        } else {
          gather.prepare(1, panel_floats);
        }
        run_stripes({ro.stripe_order.data(), ro.stripe_order.size()}, 0);
        return;
      }
      // Stripe row sets are disjoint, so the thread partition never
      // changes any y element's accumulation order — per-row results
      // are bitwise independent of the partition.
      if (q8_acts) {
        gather.prepare_q8(ro.thread_ranges.size(), q8_words);
      } else {
        gather.prepare(ro.thread_ranges.size(), panel_floats);
      }
      std::vector<std::function<void()>> tasks;
      tasks.reserve(ro.thread_ranges.size());
      for (std::size_t r = 0; r < ro.thread_ranges.size(); ++r) {
        const auto& [begin, end] = ro.thread_ranges[r];
        if (begin == end) continue;
        tasks.emplace_back([&ro, &run_stripes, r, begin = begin,
                            end = end] {
          run_stripes({ro.stripe_order.data() + begin,
                       static_cast<std::size_t>(end - begin)},
                      r);
        });
      }
      pool->run_all(tasks);
      return;
    }
  }
}

std::size_t LayerPlan::nnz() const {
  switch (options_.format) {
    case SparseFormat::kDense:
      return packed() ? packed_dense_.count_nonzero()
                      : dense_.count_nonzero();
    case SparseFormat::kCsr: return csr_.nnz();
    case SparseFormat::kBspc:
      return packed() ? packed_bspc_.nnz() : bspc_.nnz();
  }
  return 0;
}

std::size_t LayerPlan::memory_bytes() const {
  switch (options_.format) {
    case SparseFormat::kDense:
      return packed() ? packed_dense_.memory_bytes()
                      : dense_.size() * options_.value_bytes;
    case SparseFormat::kCsr:
      return csr_.memory_bytes(options_.value_bytes);
    case SparseFormat::kBspc:
      return packed() ? packed_bspc_.memory_bytes()
                      : bspc_.memory_bytes(options_.value_bytes);
  }
  return 0;
}

double LayerPlan::imbalance() const {
  if (options_.format == SparseFormat::kBspc && reorder_.has_value()) {
    return reorder_->imbalance();
  }
  return 1.0;
}

Matrix LayerPlan::to_dense() const {
  switch (options_.format) {
    case SparseFormat::kDense:
      return packed() ? packed_dense_.to_dense() : dense_;
    case SparseFormat::kCsr: return csr_.to_dense();
    case SparseFormat::kBspc:
      return packed() ? packed_bspc_.to_dense() : bspc_.to_dense();
  }
  return Matrix();
}

}  // namespace rtmobile
