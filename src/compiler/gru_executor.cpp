#include "compiler/gru_executor.hpp"

#include <cmath>

#include <algorithm>

#include "hw/timer.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace rtmobile {
namespace {

/// Compiles one weight under per-name mask lookup; no mask => dense plan
/// with the same threading options.
LayerPlan compile_weight(const Matrix& weights,
                         const std::map<std::string, BlockMask>& masks,
                         const std::string& name,
                         const CompilerOptions& options) {
  const auto it = masks.find(name);
  if (it == masks.end()) {
    CompilerOptions dense_options = options;
    dense_options.format = SparseFormat::kDense;
    return LayerPlan::compile(weights, nullptr, dense_options);
  }
  return LayerPlan::compile(weights, &it->second, options);
}

}  // namespace

CompiledSpeechModel::CompiledSpeechModel(
    const SpeechModel& model, const std::map<std::string, BlockMask>& masks,
    const CompilerOptions& options, ThreadPool* pool)
    : config_(model.config()), options_(options), pool_(pool) {
  layers_.reserve(config_.num_layers);
  for (std::size_t l = 0; l < config_.num_layers; ++l) {
    const GruParams& params = model.layer(l);
    const std::string prefix = "gru" + std::to_string(l) + ".";
    CompiledLayer layer;
    layer.w_z = compile_weight(params.w_z, masks, prefix + "w_z", options);
    layer.w_r = compile_weight(params.w_r, masks, prefix + "w_r", options);
    layer.w_h = compile_weight(params.w_h, masks, prefix + "w_h", options);
    layer.u_z = compile_weight(params.u_z, masks, prefix + "u_z", options);
    layer.u_r = compile_weight(params.u_r, masks, prefix + "u_r", options);
    layer.u_h = compile_weight(params.u_h, masks, prefix + "u_h", options);
    layer.b_z = params.b_z;
    layer.b_r = params.b_r;
    layer.b_h = params.b_h;
    layers_.push_back(std::move(layer));
  }
  fc_ = compile_weight(model.fc_weight(), masks, "fc.w", options);
  fc_b_ = model.fc_bias();

  // One scratch slot per possible step_batch chunk (the pool never runs
  // more than thread_count chunks per job; slot 0 doubles as the
  // single-threaded path's scratch).
  const std::size_t slots = pool_ != nullptr ? pool_->thread_count() : 1;
  // Pre-size every slot's LRE gather scratch to the widest plan's need
  // so the first serving step never allocates, for however many thread
  // partitions a single-stream matvec might split into.
  std::size_t gather_floats = fc_.lre_gather_floats();
  for (const CompiledLayer& layer : layers_) {
    for (const LayerPlan* plan : {&layer.w_z, &layer.w_r, &layer.w_h,
                                  &layer.u_z, &layer.u_r, &layer.u_h}) {
      gather_floats = std::max(gather_floats, plan->lre_gather_floats());
    }
  }
  step_scratch_.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    step_scratch_.push_back(
        std::make_unique<StepScratch>(config_.hidden_dim));
    step_scratch_.back()->lre.prepare(options_.threads, gather_floats);
  }

  // Fused batched-step panels, sized once here so step_batch never
  // allocates: capacity rows per panel, and per-partition gather
  // scratch wide enough for the widest plan's batched kernel at full
  // capacity.
  if (options_.fused != FusedMode::kNever) {
    const std::size_t capacity = std::max<std::size_t>(
        options_.max_fused_batch, std::size_t{1});
    fused_ = std::make_unique<FusedScratch>(capacity, config_.hidden_dim);
    std::size_t panel_floats = fc_.batch_gather_floats();
    std::size_t q8_words = fc_.q8_scratch_words(capacity);
    bool all_int8 = fc_.int8_weights();
    for (const CompiledLayer& layer : layers_) {
      for (const LayerPlan* plan : {&layer.w_z, &layer.w_r, &layer.w_h,
                                    &layer.u_z, &layer.u_r, &layer.u_h}) {
        panel_floats = std::max(panel_floats, plan->batch_gather_floats());
        q8_words = std::max(q8_words, plan->q8_scratch_words(capacity));
        all_int8 = all_int8 && plan->int8_weights();
      }
    }
    fused_->lre.prepare(options_.threads, capacity * panel_floats);
    fused_q8_acts_ =
        options_.activation == ActivationPrecision::kInt8 && all_int8;
    if (fused_q8_acts_) {
      fused_->lre.prepare_q8(options_.threads, q8_words);
      fused_->xq.resize(capacity,
                        std::max(config_.input_dim, config_.hidden_dim));
      fused_->hq.resize(capacity, config_.hidden_dim);
      fused_->gq.resize(capacity, config_.hidden_dim);
    }
  }
}

bool CompiledSpeechModel::use_fused(std::size_t batch) const {
  if (fused_ == nullptr) return false;  // kNever allocates no panels
  if (batch > options_.max_fused_batch) return false;  // panel capacity
  if (options_.fused == FusedMode::kAlways) return true;
  return batch >= options_.min_fused_batch;
}

void CompiledSpeechModel::step_layer(const CompiledLayer& layer,
                                     std::span<const float> x,
                                     std::span<const float> h_prev,
                                     std::span<float> h_out,
                                     StepScratch& scratch,
                                     ThreadPool* pool) const {
  const std::size_t hidden = config_.hidden_dim;
  const std::span<float> scratch_a = scratch.a.span();
  const std::span<float> scratch_b = scratch.b.span();
  const std::span<float> scratch_c = scratch.c.span();
  const std::span<float> scratch_d = scratch.d.span();
  RT_ASSERT(scratch_a.size() == hidden, "scratch buffers must be hidden-sized");

  // z = sigmoid(W_z x + U_z h + b_z)  (scratch_a holds z)
  layer.w_z.execute(x, scratch_a, pool, &scratch.lre);
  layer.u_z.execute(h_prev, scratch_b, pool, &scratch.lre);
  for (std::size_t i = 0; i < hidden; ++i) {
    scratch_a[i] = sigmoid(scratch_a[i] + scratch_b[i] + layer.b_z[i]);
  }
  // r = sigmoid(W_r x + U_r h + b_r)  (scratch_b holds r . h_prev)
  layer.w_r.execute(x, scratch_b, pool, &scratch.lre);
  layer.u_r.execute(h_prev, scratch_c, pool, &scratch.lre);
  for (std::size_t i = 0; i < hidden; ++i) {
    const float r = sigmoid(scratch_b[i] + scratch_c[i] + layer.b_r[i]);
    scratch_b[i] = r * h_prev[i];
  }
  // h~ = tanh(W_h x + U_h (r . h) + b_h)  (scratch_c holds h~)
  layer.w_h.execute(x, scratch_c, pool, &scratch.lre);
  layer.u_h.execute(scratch_b, scratch_d, pool, &scratch.lre);
  for (std::size_t i = 0; i < hidden; ++i) {
    scratch_c[i] = std::tanh(scratch_c[i] + scratch_d[i] + layer.b_h[i]);
  }
  // h = (1 - z) h_prev + z h~
  for (std::size_t i = 0; i < hidden; ++i) {
    h_out[i] = (1.0F - scratch_a[i]) * h_prev[i] +
               scratch_a[i] * scratch_c[i];
  }
}

void CompiledSpeechModel::step_stream(std::span<const float> frame,
                                      StreamState& state,
                                      std::span<float> logits,
                                      StepScratch& scratch,
                                      ThreadPool* pool) const {
  std::span<const float> input = frame;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    step_layer(layers_[l], input, state.h[l].span(), scratch.h_next.span(),
               scratch, pool);
    std::swap(state.h[l], scratch.h_next);
    input = state.h[l].span();
  }
  fc_.execute(input, logits, pool, &scratch.lre);
  add_inplace(logits, fc_b_.span());
}

StreamState CompiledSpeechModel::make_state() const {
  StreamState state;
  state.h.assign(layers_.size(), Vector(config_.hidden_dim, 0.0F));
  return state;
}

StepResult CompiledSpeechModel::step_batch(
    const Matrix& features, std::span<StreamState* const> states,
    Matrix& logits) const {
  const std::size_t batch = states.size();
  RT_REQUIRE(batch > 0, "step_batch: empty batch");
  RT_REQUIRE(features.cols() == config_.input_dim,
             "step_batch: feature dimension mismatch");
  RT_REQUIRE(features.rows() >= batch,
             "step_batch: one feature row per state");
  RT_REQUIRE(logits.rows() >= batch && logits.cols() == config_.num_classes,
             "step_batch: logits shape mismatch");
  for (std::size_t b = 0; b < batch; ++b) {
    RT_REQUIRE(states[b] != nullptr && states[b]->h.size() == layers_.size(),
               "step_batch: state layer count mismatch");
  }

  if (use_fused(batch)) {
    return step_batch_fused(features, states, logits);
  }

  const auto run_rows = [&](std::size_t slot, std::size_t begin,
                            std::size_t end) {
    StepScratch& scratch = *step_scratch_[slot];
    for (std::size_t b = begin; b < end; ++b) {
      // Per-stream kernels run single-threaded: with many streams in
      // flight, cross-stream partitioning keeps every core busy without
      // nested pool dispatch.
      step_stream(features.row(b), *states[b], logits.row(b), scratch,
                  nullptr);
    }
  };
  if (pool_ != nullptr && batch > 1) {
    pool_->parallel_for_indexed(batch, run_rows);
  } else {
    run_rows(0, 0, batch);
  }
  return {batch, false};
}

StepResult CompiledSpeechModel::step_batch_fused(
    const Matrix& features, std::span<StreamState* const> states,
    Matrix& logits) const {
  const std::size_t batch = states.size();
  const std::size_t hidden = config_.hidden_dim;
  FusedScratch& fs = *fused_;

  // The gate elementwise passes are per-(stream, unit) independent, so
  // partitioning them across the pool cannot change any stream's
  // arithmetic; each stream's loop body is textually the per-stream
  // step_layer's, preserving bitwise identity.
  const auto for_streams = [&](auto&& fn) {
    if (pool_ != nullptr && batch > 1) {
      pool_->parallel_for(batch, [&](std::size_t begin, std::size_t end) {
        for (std::size_t b = begin; b < end; ++b) fn(b);
      });
    } else {
      for (std::size_t b = 0; b < batch; ++b) fn(b);
    }
  };

  const Matrix* x = &features;
  Matrix* out = &fs.out0;
  Matrix* out_prev = &fs.out1;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const CompiledLayer& layer = layers_[l];
    // Gather this layer's recurrent states into one contiguous panel.
    // Panel row b is stream b of `states` — the caller's scheduler-
    // gather order, pinned as part of the step_batch contract.
    for_streams([&](std::size_t b) {
      const std::span<const float> h_prev = states[b]->h[l].span();
      std::copy(h_prev.begin(), h_prev.end(), fs.h.row(b).begin());
    });
    const QuantizedActivations* xqp = nullptr;
    const QuantizedActivations* hqp = nullptr;
    if (fused_q8_acts_) {
      fs.xq.resize(batch, x->cols());
      fs.hq.resize(batch, hidden);
      for_streams([&](std::size_t b) {
        fs.xq.quantize_row(b, x->row(b));
        fs.hq.quantize_row(b, fs.h.row(b));
      });
      fs.xq.transpose(batch);
      fs.hq.transpose(batch);
      xqp = &fs.xq;
      hqp = &fs.hq;
    }

    // z = sigmoid(W_z x + U_z h + b_z)  (panel A holds z)
    layer.w_z.execute_batch(*x, fs.a, batch, pool_, &fs.lre, xqp);
    layer.u_z.execute_batch(fs.h, fs.b, batch, pool_, &fs.lre, hqp);
    for_streams([&](std::size_t b) {
      const std::span<float> scratch_a = fs.a.row(b);
      const std::span<const float> scratch_b = fs.b.row(b);
      for (std::size_t i = 0; i < hidden; ++i) {
        scratch_a[i] = sigmoid(scratch_a[i] + scratch_b[i] + layer.b_z[i]);
      }
    });
    // r = sigmoid(W_r x + U_r h + b_r)  (panel B holds r . h_prev)
    layer.w_r.execute_batch(*x, fs.b, batch, pool_, &fs.lre, xqp);
    layer.u_r.execute_batch(fs.h, fs.c, batch, pool_, &fs.lre, hqp);
    for_streams([&](std::size_t b) {
      const std::span<float> scratch_b = fs.b.row(b);
      const std::span<const float> scratch_c = fs.c.row(b);
      const std::span<const float> h_prev = fs.h.row(b);
      for (std::size_t i = 0; i < hidden; ++i) {
        const float r = sigmoid(scratch_b[i] + scratch_c[i] + layer.b_r[i]);
        scratch_b[i] = r * h_prev[i];
      }
    });
    const QuantizedActivations* gqp = nullptr;
    if (fused_q8_acts_) {
      fs.gq.resize(batch, hidden);
      for_streams(
          [&](std::size_t b) { fs.gq.quantize_row(b, fs.b.row(b)); });
      fs.gq.transpose(batch);
      gqp = &fs.gq;
    }
    // h~ = tanh(W_h x + U_h (r . h) + b_h)  (panel C holds h~)
    layer.w_h.execute_batch(*x, fs.c, batch, pool_, &fs.lre, xqp);
    layer.u_h.execute_batch(fs.b, fs.d, batch, pool_, &fs.lre, gqp);
    for_streams([&](std::size_t b) {
      const std::span<float> scratch_c = fs.c.row(b);
      const std::span<const float> scratch_d = fs.d.row(b);
      for (std::size_t i = 0; i < hidden; ++i) {
        scratch_c[i] = std::tanh(scratch_c[i] + scratch_d[i] + layer.b_h[i]);
      }
    });
    // h = (1 - z) h_prev + z h~, scattered straight back to the states.
    for_streams([&](std::size_t b) {
      const std::span<const float> scratch_a = fs.a.row(b);
      const std::span<const float> scratch_c = fs.c.row(b);
      const std::span<const float> h_prev = fs.h.row(b);
      const std::span<float> h_out = out->row(b);
      for (std::size_t i = 0; i < hidden; ++i) {
        h_out[i] = (1.0F - scratch_a[i]) * h_prev[i] +
                   scratch_a[i] * scratch_c[i];
      }
      std::copy(h_out.begin(), h_out.end(), states[b]->h[l].span().begin());
    });
    x = out;
    std::swap(out, out_prev);
  }

  const QuantizedActivations* xqp = nullptr;
  if (fused_q8_acts_) {
    fs.xq.resize(batch, x->cols());
    for_streams([&](std::size_t b) { fs.xq.quantize_row(b, x->row(b)); });
    fs.xq.transpose(batch);
    xqp = &fs.xq;
  }
  fc_.execute_batch(*x, logits, batch, pool_, &fs.lre, xqp);
  for (std::size_t b = 0; b < batch; ++b) {
    add_inplace(logits.row(b), fc_b_.span());
  }
  return {batch, true};
}

Matrix CompiledSpeechModel::infer(const Matrix& features) const {
  RT_REQUIRE(features.cols() == config_.input_dim,
             "infer: feature dimension mismatch");
  const std::size_t frames = features.rows();
  RT_REQUIRE(frames > 0, "infer: empty utterance");
  const std::size_t hidden = config_.hidden_dim;

  Matrix current = features;
  StepScratch scratch(hidden);
  for (const CompiledLayer& layer : layers_) {
    Matrix next(frames, hidden);
    Vector h(hidden, 0.0F);
    for (std::size_t t = 0; t < frames; ++t) {
      step_layer(layer, current.row(t), h.span(), next.row(t), scratch,
                 pool_);
      std::copy(next.row(t).begin(), next.row(t).end(), h.begin());
    }
    current = std::move(next);
  }

  Matrix logits(frames, config_.num_classes);
  for (std::size_t t = 0; t < frames; ++t) {
    fc_.execute(current.row(t), logits.row(t), pool_, &scratch.lre);
    add_inplace(logits.row(t), fc_b_.span());
  }
  return logits;
}

void CompiledSpeechModel::run_recurrence(std::size_t frames,
                                         std::size_t batch) const {
  RT_REQUIRE(frames > 0, "run_recurrence: frames must be positive");
  RT_REQUIRE(batch > 0, "run_recurrence: batch must be positive");
  const std::size_t hidden = config_.hidden_dim;

  if (batch == 1) {
    // Single-stream steady state: each matvec may thread internally.
    Vector x(config_.input_dim, 0.1F);
    std::vector<Vector> states(layers_.size(), Vector(hidden, 0.0F));
    Vector h_next(hidden);
    StepScratch scratch(hidden);
    for (std::size_t t = 0; t < frames; ++t) {
      // First layer consumes x, each later layer consumes the layer
      // below's fresh state; every layer keeps its own recurrent state.
      std::span<const float> input = x.span();
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        step_layer(layers_[l], input, states[l].span(), h_next.span(),
                   scratch, pool_);
        std::swap(states[l], h_next);
        input = states[l].span();
      }
    }
    return;
  }

  // Multi-stream steady state through the batched step path.
  Matrix x(batch, config_.input_dim, 0.1F);
  Matrix logits(batch, config_.num_classes);
  std::vector<StreamState> states(batch, make_state());
  std::vector<StreamState*> state_ptrs(batch);
  for (std::size_t b = 0; b < batch; ++b) state_ptrs[b] = &states[b];
  for (std::size_t t = 0; t < frames; ++t) {
    step_batch(x, state_ptrs, logits);
  }
}

std::size_t CompiledSpeechModel::total_nnz() const {
  std::size_t total = fc_.nnz();
  for (const CompiledLayer& layer : layers_) {
    total += layer.w_z.nnz() + layer.w_r.nnz() + layer.w_h.nnz() +
             layer.u_z.nnz() + layer.u_r.nnz() + layer.u_h.nnz();
  }
  return total;
}

std::size_t CompiledSpeechModel::total_memory_bytes() const {
  std::size_t total = fc_.memory_bytes();
  for (const CompiledLayer& layer : layers_) {
    total += layer.w_z.memory_bytes() + layer.w_r.memory_bytes() +
             layer.w_h.memory_bytes() + layer.u_z.memory_bytes() +
             layer.u_r.memory_bytes() + layer.u_h.memory_bytes();
  }
  return total;
}

std::vector<CompiledSpeechModel::PlanProfile> CompiledSpeechModel::profile(
    std::size_t iters) const {
  RT_REQUIRE(iters > 0, "profile: iters must be positive");
  std::vector<PlanProfile> profiles;
  Vector x_input(config_.input_dim, 0.1F);
  Vector x_hidden(config_.hidden_dim, 0.1F);
  Vector y_hidden(config_.hidden_dim);
  Vector y_classes(config_.num_classes);

  const auto measure = [&](const std::string& name, const LayerPlan& plan,
                           std::span<const float> x, std::span<float> y) {
    PlanProfile entry;
    entry.name = name;
    entry.nnz = plan.nnz();
    entry.time_us = time_best_of_us(
        [&] { plan.execute(x, y, pool_); }, iters, 2);
    profiles.push_back(std::move(entry));
  };

  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const CompiledLayer& layer = layers_[l];
    const std::string prefix = "gru" + std::to_string(l) + ".";
    const std::span<const float> x =
        l == 0 ? x_input.span() : std::span<const float>(x_hidden.span());
    measure(prefix + "w_z", layer.w_z, x, y_hidden.span());
    measure(prefix + "w_r", layer.w_r, x, y_hidden.span());
    measure(prefix + "w_h", layer.w_h, x, y_hidden.span());
    measure(prefix + "u_z", layer.u_z, x_hidden.span(), y_hidden.span());
    measure(prefix + "u_r", layer.u_r, x_hidden.span(), y_hidden.span());
    measure(prefix + "u_h", layer.u_h, x_hidden.span(), y_hidden.span());
  }
  measure("fc.w", fc_, x_hidden.span(), y_classes.span());

  double total = 0.0;
  for (const PlanProfile& entry : profiles) total += entry.time_us;
  for (PlanProfile& entry : profiles) {
    entry.share = total > 0.0 ? entry.time_us / total : 0.0;
  }
  std::sort(profiles.begin(), profiles.end(),
            [](const PlanProfile& a, const PlanProfile& b) {
              return a.time_us > b.time_us;
            });
  return profiles;
}

double CompiledSpeechModel::worst_imbalance() const {
  double worst = fc_.imbalance();
  for (const CompiledLayer& layer : layers_) {
    for (const LayerPlan* plan : {&layer.w_z, &layer.w_r, &layer.w_h,
                                  &layer.u_z, &layer.u_r, &layer.u_h}) {
      worst = std::max(worst, plan->imbalance());
    }
  }
  return worst;
}

}  // namespace rtmobile
