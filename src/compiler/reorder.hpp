// Matrix reorder pass (paper Sec. IV-B(a)).
//
// Rows with the same computation pattern are grouped so that threads
// executing in parallel get identical (or near-identical) work — removing
// the thread divergence and load imbalance the paper identifies as the
// first key challenge of pruned-RNN execution.
//
// Under BSP, every surviving row of a stripe shares its stripe's
// kept-column pattern, so the reorder operates on stripes: stripes with
// identical block-column signatures are merged into one group, groups are
// ordered by per-row work (descending), and the resulting stripe order is
// partitioned into contiguous per-thread ranges with balanced nonzeros.
//
// A second entry point reorders general unstructured (CSR) rows by
// nonzero count — the fallback a compiler can do for ESE-style pruning —
// used by the ablation benchmark to show why BSP + reorder beats
// unstructured + reorder.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/block_mask.hpp"
#include "sparse/csr.hpp"

namespace rtmobile {

/// One reorder group: stripes with an identical kept-column signature.
struct ReorderGroup {
  std::vector<std::uint32_t> stripes;  // member stripe indices
  std::size_t rows = 0;                // surviving rows across members
  std::size_t nnz_per_row = 0;         // identical within the group
};

/// Result of the reorder pass over a BlockMask.
struct ReorderPlan {
  /// Stripe processing order (concatenation of groups, heavy first).
  std::vector<std::uint32_t> stripe_order;
  /// Group table, in processing order.
  std::vector<ReorderGroup> groups;
  /// Per-thread contiguous ranges [begin, end) into stripe_order.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> thread_ranges;
  /// Total nonzeros assigned to each thread (balance diagnostic).
  std::vector<std::size_t> thread_nnz;

  /// Load-imbalance factor: max thread nnz / mean thread nnz (1.0 = ideal).
  [[nodiscard]] double imbalance() const;
};

/// Runs the reorder pass: group stripes by signature, order by descending
/// per-row work, and split across `threads` with balanced nonzeros.
[[nodiscard]] ReorderPlan reorder_block_mask(const BlockMask& mask,
                                             std::size_t threads);

/// Identity plan (no reorder): stripes in natural order, split evenly by
/// stripe count. The ablation baseline.
[[nodiscard]] ReorderPlan identity_plan(const BlockMask& mask,
                                        std::size_t threads);

/// Row order for a CSR matrix grouping rows by nonzero count (descending),
/// the unstructured analogue of the reorder pass.
[[nodiscard]] std::vector<std::uint32_t> reorder_csr_rows(
    const CsrMatrix& matrix);

}  // namespace rtmobile
