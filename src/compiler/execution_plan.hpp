// Compiled execution plans for a single weight matrix.
//
// A LayerPlan is the unit the RTMobile compiler emits per RNN weight
// matrix: a storage format (dense / CSR / BSPC), an optional reorder plan,
// the redundant-load-elimination flag, and a thread partition. Executing a
// plan computes y = W x with whatever combination of optimizations the
// CompilerOptions selected — which is exactly the knob set the ablation
// benchmark sweeps.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "compiler/reorder.hpp"
#include "hw/thread_pool.hpp"
#include "sparse/block_mask.hpp"
#include "sparse/bspc.hpp"
#include "sparse/bspc_quant.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/packed_dense.hpp"
#include "tensor/precision.hpp"

namespace rtmobile {

enum class SparseFormat : std::uint8_t {
  kDense,  // dense GEMV baseline
  kCsr,    // unstructured compressed rows (the ESE-style strawman)
  kBspc,   // the paper's compact block format
};

[[nodiscard]] const char* to_string(SparseFormat format);

struct CompilerOptions {
  SparseFormat format = SparseFormat::kBspc;
  bool reorder = true;       // matrix reorder pass (BSPC only)
  bool lre = true;           // redundant load elimination (BSPC only)
  std::size_t threads = 1;   // thread partition width
  /// Weight storage the compiled plan actually carries. kFp32 (the
  /// default) keeps today's fp32 kernels bit-identical; kFp16 / kInt8*
  /// pack BSPC and dense plans into the quantized formats and run the
  /// packed kernels (fp32 accumulation). CSR supports fp32 only.
  WeightPrecision precision = WeightPrecision::kFp32;
  /// Storage accounting for fp32 plans (2 models fp16 without packing).
  /// Ignored when `precision` != kFp32: packed plans report their real
  /// stored width including scale overhead.
  std::size_t value_bytes = 4;
  /// Below this many nonzeros a matvec runs single-threaded even when a
  /// pool is available: dispatch latency would dominate the kernel. This
  /// mirrors the auto-tuner's thread-count decision for tiny workloads.
  std::size_t min_nnz_for_threading = 16384;
  /// Optional placement hint: the core range the pool executing these
  /// plans should occupy. The compiler records it; whoever constructs the
  /// pool honors it (the sharded serving layer pins each engine replica's
  /// pool to a disjoint range so shards don't contend for cores).
  std::optional<CoreRange> core_range;
};

/// Reusable LRE gather scratch for LayerPlan::execute: one buffer per
/// thread partition, grown on demand and never shrunk. prepare() must run
/// on the dispatching thread before partitions are handed to concurrent
/// tasks; partition() is then a plain indexed read, safe from any task.
/// Owning one per serving scratch slot is what makes the step path free
/// of per-matvec heap allocation.
class LreScratch {
 public:
  /// Ensures `partitions` buffers of at least `floats` capacity exist.
  void prepare(std::size_t partitions, std::size_t floats);
  /// The gather buffer for one thread partition (prepare()d first).
  [[nodiscard]] std::span<float> partition(std::size_t index);

 private:
  std::vector<std::vector<float>> buffers_;
};

class LayerPlan {
 public:
  LayerPlan() = default;

  /// Compiles `weights` under `options`. For sparse formats, `mask`
  /// supplies the BSP structure; kDense ignores it, kCsr uses it only to
  /// zero pruned weights first (nullptr = use weights as stored).
  [[nodiscard]] static LayerPlan compile(const Matrix& weights,
                                         const BlockMask* mask,
                                         const CompilerOptions& options);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] const CompilerOptions& options() const { return options_; }

  /// y = W x. `pool` may be nullptr (or options.threads == 1) for
  /// single-threaded execution. y must not alias x. `scratch` supplies
  /// the BSPC kernels' LRE gather buffers; nullptr falls back to a local
  /// allocation (fine for one-shot callers; the serving step path passes
  /// its per-slot scratch so no matvec allocates). A scratch instance
  /// must not be shared by concurrent execute() calls.
  void execute(std::span<const float> x, std::span<float> y,
               ThreadPool* pool = nullptr,
               LreScratch* scratch = nullptr) const;

  /// Floats of LRE gather scratch one partition of this plan needs (0
  /// when the plan has no LRE gather — dense, CSR, or lre disabled).
  [[nodiscard]] std::size_t lre_gather_floats() const;

  /// Surviving nonzeros.
  [[nodiscard]] std::size_t nnz() const;

  /// Storage footprint of the compiled weights (values + indices).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Load-imbalance factor of the thread partition (1.0 = perfect).
  [[nodiscard]] double imbalance() const;

  /// Reconstructs the effective dense weights (for verification).
  [[nodiscard]] Matrix to_dense() const;

 private:
  /// True when the plan stores packed int8/fp16 weights (precision !=
  /// fp32 on a dense or BSPC plan).
  [[nodiscard]] bool packed() const {
    return options_.precision != WeightPrecision::kFp32;
  }

  CompilerOptions options_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t nnz_ = 0;  // cached at compile time for the thread heuristic
  // Exactly one storage member is populated, chosen by (format,
  // precision) at compile time.
  Matrix dense_;
  PackedDenseMatrix packed_dense_;
  CsrMatrix csr_;
  BspcMatrix bspc_;
  PackedQuantizedBspc packed_bspc_;
  std::optional<ReorderPlan> reorder_;
};

}  // namespace rtmobile
