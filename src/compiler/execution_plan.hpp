// Compiled execution plans for a single weight matrix.
//
// A LayerPlan is the unit the RTMobile compiler emits per RNN weight
// matrix: a storage format (dense / CSR / BSPC), an optional reorder plan,
// the redundant-load-elimination flag, and a thread partition. Executing a
// plan computes y = W x with whatever combination of optimizations the
// CompilerOptions selected — which is exactly the knob set the ablation
// benchmark sweeps.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "compiler/reorder.hpp"
#include "hw/thread_pool.hpp"
#include "sparse/block_mask.hpp"
#include "sparse/bspc.hpp"
#include "sparse/bspc_quant.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/packed_dense.hpp"
#include "tensor/precision.hpp"

namespace rtmobile {

enum class SparseFormat : std::uint8_t {
  kDense,  // dense GEMV baseline
  kCsr,    // unstructured compressed rows (the ESE-style strawman)
  kBspc,   // the paper's compact block format
};

[[nodiscard]] const char* to_string(SparseFormat format);

/// Whether the compiled model's step_batch drives the fused batched
/// matmat spine (one weight stream per layer per step for the whole
/// batch) or the per-stream matvec path.
enum class FusedMode : std::uint8_t {
  kAuto,    // fuse when the batch is at least min_fused_batch wide
  kAlways,  // fuse every batch that fits the panel (width 1 included)
  kNever,   // always per-stream (no fused scratch is even allocated)
};

[[nodiscard]] const char* to_string(FusedMode mode);

struct CompilerOptions {
  SparseFormat format = SparseFormat::kBspc;
  bool reorder = true;       // matrix reorder pass (BSPC only)
  bool lre = true;           // redundant load elimination (BSPC only)
  std::size_t threads = 1;   // thread partition width
  /// Weight storage the compiled plan actually carries. kFp32 (the
  /// default) keeps today's fp32 kernels bit-identical; kFp16 / kInt8*
  /// pack BSPC and dense plans into the quantized formats and run the
  /// packed kernels (fp32 accumulation). CSR supports fp32 only.
  WeightPrecision precision = WeightPrecision::kFp32;
  /// Storage accounting for fp32 plans (2 models fp16 without packing).
  /// Ignored when `precision` != kFp32: packed plans report their real
  /// stored width including scale overhead.
  std::size_t value_bytes = 4;
  /// Below this many nonzeros a matvec runs single-threaded even when a
  /// pool is available: dispatch latency would dominate the kernel. This
  /// mirrors the auto-tuner's thread-count decision for tiny workloads.
  std::size_t min_nnz_for_threading = 16384;
  /// Optional placement hint: the core range the pool executing these
  /// plans should occupy. The compiler records it; whoever constructs the
  /// pool honors it (the sharded serving layer pins each engine replica's
  /// pool to a disjoint range so shards don't contend for cores).
  std::optional<CoreRange> core_range;
  /// Fused batched step dispatch (see FusedMode). kAuto keeps width-1
  /// traffic on the per-stream path where it is strictly cheaper.
  FusedMode fused = FusedMode::kAuto;
  /// kAuto fuses batches at least this wide; narrower ones fall back to
  /// the per-stream matvec path.
  std::size_t min_fused_batch = 2;
  /// Fused panel capacity, fixed at compile time so the serving step
  /// never allocates: batches wider than this fall back to per-stream
  /// (the engine's max_batch is normally <= this).
  std::size_t max_fused_batch = 64;
  /// Activation storage inside the fused step. kInt8 only takes effect
  /// on int8 weight plans (packed dense / packed BSPC), where the
  /// matmat multiplies codes by codes with exact int32 accumulation;
  /// fp32/fp16 plans always read the fp32 panel.
  ActivationPrecision activation = ActivationPrecision::kFp32;
};

/// Reusable LRE gather scratch for LayerPlan::execute: one buffer per
/// thread partition, grown on demand and never shrunk. prepare() must run
/// on the dispatching thread before partitions are handed to concurrent
/// tasks; partition() is then a plain indexed read, safe from any task.
/// Owning one per serving scratch slot is what makes the step path free
/// of per-matvec heap allocation.
class LreScratch {
 public:
  /// Ensures `partitions` buffers of at least `floats` capacity exist.
  void prepare(std::size_t partitions, std::size_t floats);
  /// The gather buffer for one thread partition (prepare()d first).
  [[nodiscard]] std::span<float> partition(std::size_t index);

  /// Same contract for the int32 scratch the fused q8 activation kernel
  /// uses (execute_batch with quantized activations): `words` comes from
  /// LayerPlan::q8_scratch_words at the widest batch the caller serves.
  void prepare_q8(std::size_t partitions, std::size_t words);
  [[nodiscard]] std::span<std::int32_t> partition_q8(std::size_t index);

 private:
  std::vector<std::vector<float>> buffers_;
  std::vector<std::vector<std::int32_t>> q8_buffers_;
};

class LayerPlan {
 public:
  LayerPlan() = default;

  /// Compiles `weights` under `options`. For sparse formats, `mask`
  /// supplies the BSP structure; kDense ignores it, kCsr uses it only to
  /// zero pruned weights first (nullptr = use weights as stored).
  [[nodiscard]] static LayerPlan compile(const Matrix& weights,
                                         const BlockMask* mask,
                                         const CompilerOptions& options);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] const CompilerOptions& options() const { return options_; }

  /// y = W x. `pool` may be nullptr (or options.threads == 1) for
  /// single-threaded execution. y must not alias x. `scratch` supplies
  /// the BSPC kernels' LRE gather buffers; nullptr falls back to a local
  /// allocation (fine for one-shot callers; the serving step path passes
  /// its per-slot scratch so no matvec allocates). A scratch instance
  /// must not be shared by concurrent execute() calls.
  void execute(std::span<const float> x, std::span<float> y,
               ThreadPool* pool = nullptr,
               LreScratch* scratch = nullptr) const;

  /// Y[b] = W X[b] for b in [0, batch): the fused batched form. Each
  /// weight matrix is streamed from memory once for the whole batch
  /// (the per-stream path re-reads it once per vector). Per stream the
  /// fp32/fp16 result is bit-identical to execute() on that stream's
  /// row — the batched kernels keep the per-vector accumulation order
  /// and the fp32 dense/CSR paths literally run the per-vector kernel
  /// per row, threading across streams instead of rows. X/Y may have
  /// extra trailing rows. `xq`, when non-null and the plan stores int8
  /// weights, supplies the batch's activations on the int8 grid and
  /// switches the kernel to exact int32 code-by-code accumulation
  /// (within the activation grid's rounding slack of the fp32 panel);
  /// other plans ignore it and read X. A scratch instance must not be
  /// shared by concurrent calls.
  void execute_batch(const Matrix& x, Matrix& y, std::size_t batch,
                     ThreadPool* pool = nullptr,
                     LreScratch* scratch = nullptr,
                     const QuantizedActivations* xq = nullptr) const;

  /// Floats of LRE gather scratch one partition of this plan needs (0
  /// when the plan has no LRE gather — dense, CSR, or lre disabled).
  [[nodiscard]] std::size_t lre_gather_floats() const;

  /// Per-stream floats of gather scratch one partition of the *batched*
  /// kernel needs (multiply by the batch width). Unlike
  /// lre_gather_floats this is nonzero for packed BSPC even when
  /// options.lre is off: the batched gather is itself the redundant
  /// load elimination, so the packed spmm always uses it.
  [[nodiscard]] std::size_t batch_gather_floats() const;

  /// int32 scratch words one partition of the q8 activation kernel
  /// needs at `batch` streams (0 unless the plan is int8 BSPC — the one
  /// format whose batched kernel runs code-by-code on interleaved
  /// panels).
  [[nodiscard]] std::size_t q8_scratch_words(std::size_t batch) const;

  /// True when the compiled storage is int8 codes (packed dense or
  /// packed BSPC) — the plans whose execute_batch consumes quantized
  /// activations.
  [[nodiscard]] bool int8_weights() const {
    return options_.format != SparseFormat::kCsr &&
           (options_.precision == WeightPrecision::kInt8PerTensor ||
            options_.precision == WeightPrecision::kInt8PerRow);
  }

  /// Surviving nonzeros.
  [[nodiscard]] std::size_t nnz() const;

  /// Storage footprint of the compiled weights (values + indices).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Load-imbalance factor of the thread partition (1.0 = perfect).
  [[nodiscard]] double imbalance() const;

  /// Reconstructs the effective dense weights (for verification).
  [[nodiscard]] Matrix to_dense() const;

 private:
  /// True when the plan stores packed int8/fp16 weights (precision !=
  /// fp32 on a dense or BSPC plan).
  [[nodiscard]] bool packed() const {
    return options_.precision != WeightPrecision::kFp32;
  }

  CompilerOptions options_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t nnz_ = 0;  // cached at compile time for the thread heuristic
  // Exactly one storage member is populated, chosen by (format,
  // precision) at compile time.
  Matrix dense_;
  PackedDenseMatrix packed_dense_;
  CsrMatrix csr_;
  BspcMatrix bspc_;
  PackedQuantizedBspc packed_bspc_;
  std::optional<ReorderPlan> reorder_;
};

}  // namespace rtmobile
