#include "compiler/auto_tuner.hpp"

#include <algorithm>
#include <memory>

#include "hw/thread_pool.hpp"
#include "hw/timer.hpp"
#include "tensor/ops.hpp"
#include "train/projection.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace rtmobile {
namespace {

double retained_energy(const Matrix& weights, const BlockMask& mask) {
  const Matrix dense_mask = mask.to_dense();
  double kept = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = static_cast<double>(weights.span()[i]);
    total += w * w;
    if (dense_mask.span()[i] != 0.0F) kept += w * w;
  }
  return total > 0.0 ? kept / total : 1.0;
}

}  // namespace

TunerResult tune_layer(const Matrix& weights, const TunerConfig& config) {
  RT_REQUIRE(!config.num_c_candidates.empty(), "no block-count candidates");
  RT_REQUIRE(!config.thread_candidates.empty(), "no thread candidates");
  RT_REQUIRE(!config.lre_candidates.empty(), "no LRE candidates");

  Rng rng(0x7D4E5ULL);
  Vector x(weights.cols());
  fill_normal(x.span(), rng, 1.0F);
  Vector y(weights.rows());

  TunerResult result;
  for (const std::size_t num_c : config.num_c_candidates) {
    if (num_c > weights.cols()) continue;
    // The mask depends only on the block geometry, not on threads/LRE.
    BlockMask mask = block_column_mask(weights, config.num_r, num_c,
                                       config.col_keep_fraction);
    if (config.row_keep_fraction < 1.0) {
      apply_row_pruning(weights, config.row_keep_fraction, mask);
    }
    const double energy = retained_energy(weights, mask);

    for (const std::size_t threads : config.thread_candidates) {
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
      for (const bool lre : config.lre_candidates) {
        CompilerOptions options;
        options.format = SparseFormat::kBspc;
        options.reorder = true;
        options.lre = lre;
        options.threads = threads;
        const LayerPlan plan = LayerPlan::compile(weights, &mask, options);

        TunerCandidate candidate;
        candidate.num_c = num_c;
        candidate.threads = threads;
        candidate.lre = lre;
        candidate.energy_retained = energy;
        candidate.imbalance = plan.imbalance();
        candidate.time_us = time_best_of_us(
            [&] { plan.execute(x.span(), y.span(), pool.get()); },
            config.timing_iters, config.timing_repeats);
        result.all.push_back(candidate);
      }
    }
  }
  RT_REQUIRE(!result.all.empty(), "no feasible tuner candidates");

  // Among candidates clearing the accuracy floor, pick the fastest; if
  // none clears it, pick the highest-energy candidate (graceful fallback).
  const TunerCandidate* best = nullptr;
  for (const TunerCandidate& candidate : result.all) {
    if (candidate.energy_retained + 1e-12 < config.min_energy_retained) {
      continue;
    }
    if (best == nullptr || candidate.time_us < best->time_us) {
      best = &candidate;
    }
  }
  if (best == nullptr) {
    for (const TunerCandidate& candidate : result.all) {
      if (best == nullptr ||
          candidate.energy_retained > best->energy_retained) {
        best = &candidate;
      }
    }
  }
  result.best = *best;
  RT_LOG(Info, "tuner") << "best: num_c=" << result.best.num_c
                        << " threads=" << result.best.threads
                        << " lre=" << (result.best.lre ? "on" : "off")
                        << " time_us=" << result.best.time_us;
  return result;
}

}  // namespace rtmobile
