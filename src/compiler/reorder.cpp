#include "compiler/reorder.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/check.hpp"

namespace rtmobile {

double ReorderPlan::imbalance() const {
  if (thread_nnz.empty()) return 1.0;
  std::size_t total = 0;
  std::size_t worst = 0;
  for (const std::size_t n : thread_nnz) {
    total += n;
    worst = std::max(worst, n);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(thread_nnz.size());
  return static_cast<double>(worst) / mean;
}

namespace {

/// Kept-column signature of a stripe: concatenation of all kept columns.
/// Two stripes with equal signatures execute identically row-for-row.
std::vector<std::uint32_t> stripe_signature(const BlockMask& mask,
                                            std::size_t stripe) {
  std::vector<std::uint32_t> signature;
  for (std::size_t b = 0; b < mask.num_c(); ++b) {
    const auto cols = mask.block_cols(stripe, b);
    signature.insert(signature.end(), cols.begin(), cols.end());
  }
  return signature;
}

std::size_t stripe_surviving_rows(const BlockMask& mask, std::size_t stripe) {
  std::size_t rows = 0;
  for (std::size_t r = mask.row_begin(stripe); r < mask.row_end(stripe); ++r) {
    if (mask.row_kept(r)) ++rows;
  }
  return rows;
}

/// Splits the ordered stripe list into per-thread contiguous ranges with
/// (greedily) balanced nonzero totals.
void partition_threads(const BlockMask& mask, ReorderPlan& plan,
                       std::size_t threads) {
  RT_REQUIRE(threads >= 1, "thread count must be positive");
  std::vector<std::size_t> stripe_nnz(plan.stripe_order.size());
  std::size_t total_nnz = 0;
  for (std::size_t i = 0; i < plan.stripe_order.size(); ++i) {
    const std::size_t s = plan.stripe_order[i];
    const std::size_t rows = stripe_surviving_rows(mask, s);
    std::size_t cols = 0;
    for (std::size_t b = 0; b < mask.num_c(); ++b) {
      cols += mask.block_cols(s, b).size();
    }
    stripe_nnz[i] = rows * cols;
    total_nnz += stripe_nnz[i];
  }

  plan.thread_ranges.clear();
  plan.thread_nnz.clear();
  const double target = static_cast<double>(total_nnz) /
                        static_cast<double>(threads);
  std::size_t begin = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    std::size_t end = begin;
    std::size_t acc = 0;
    const std::size_t remaining_threads = threads - t - 1;
    while (end < plan.stripe_order.size()) {
      // Leave at least one stripe per remaining thread when possible.
      const std::size_t remaining_stripes = plan.stripe_order.size() - end;
      if (remaining_stripes <= remaining_threads) break;
      // Greedy: stop once this thread reaches its fair share, unless it is
      // the last thread (which takes everything left).
      if (remaining_threads > 0 && acc >= target && end > begin) break;
      acc += stripe_nnz[end];
      ++end;
    }
    if (remaining_threads == 0) {
      while (end < plan.stripe_order.size()) {
        acc += stripe_nnz[end];
        ++end;
      }
    }
    plan.thread_ranges.emplace_back(static_cast<std::uint32_t>(begin),
                                    static_cast<std::uint32_t>(end));
    plan.thread_nnz.push_back(acc);
    begin = end;
  }
  RT_ASSERT(begin == plan.stripe_order.size(),
            "thread partition must cover every stripe");
}

}  // namespace

ReorderPlan reorder_block_mask(const BlockMask& mask, std::size_t threads) {
  // Group stripes by signature.
  std::map<std::vector<std::uint32_t>, ReorderGroup> by_signature;
  for (std::size_t s = 0; s < mask.num_r(); ++s) {
    auto signature = stripe_signature(mask, s);
    ReorderGroup& group = by_signature[signature];
    group.stripes.push_back(static_cast<std::uint32_t>(s));
    group.rows += stripe_surviving_rows(mask, s);
    group.nnz_per_row = signature.size();
  }

  ReorderPlan plan;
  plan.groups.reserve(by_signature.size());
  for (auto& [signature, group] : by_signature) {
    plan.groups.push_back(std::move(group));
  }
  // Heavy rows first: threads fill up on uniform heavy work, light work
  // pads the tail, minimizing the straggler effect.
  std::stable_sort(plan.groups.begin(), plan.groups.end(),
                   [](const ReorderGroup& a, const ReorderGroup& b) {
                     return a.nnz_per_row > b.nnz_per_row;
                   });
  for (const ReorderGroup& group : plan.groups) {
    plan.stripe_order.insert(plan.stripe_order.end(), group.stripes.begin(),
                             group.stripes.end());
  }
  partition_threads(mask, plan, threads);
  return plan;
}

ReorderPlan identity_plan(const BlockMask& mask, std::size_t threads) {
  ReorderPlan plan;
  plan.stripe_order.resize(mask.num_r());
  std::iota(plan.stripe_order.begin(), plan.stripe_order.end(), 0U);
  // One group per stripe, natural order (no pattern merging).
  plan.groups.reserve(mask.num_r());
  for (std::size_t s = 0; s < mask.num_r(); ++s) {
    ReorderGroup group;
    group.stripes = {static_cast<std::uint32_t>(s)};
    group.rows = stripe_surviving_rows(mask, s);
    std::size_t cols = 0;
    for (std::size_t b = 0; b < mask.num_c(); ++b) {
      cols += mask.block_cols(s, b).size();
    }
    group.nnz_per_row = cols;
    plan.groups.push_back(std::move(group));
  }
  // Naive split: equal stripe counts, ignoring nnz (the ablation shows
  // the imbalance this causes).
  RT_REQUIRE(threads >= 1, "thread count must be positive");
  plan.thread_ranges.clear();
  plan.thread_nnz.assign(threads, 0);
  const std::size_t n = plan.stripe_order.size();
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t begin = t * n / threads;
    const std::size_t end = (t + 1) * n / threads;
    plan.thread_ranges.emplace_back(static_cast<std::uint32_t>(begin),
                                    static_cast<std::uint32_t>(end));
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t s = plan.stripe_order[i];
      std::size_t cols = 0;
      for (std::size_t b = 0; b < mask.num_c(); ++b) {
        cols += mask.block_cols(s, b).size();
      }
      plan.thread_nnz[t] += stripe_surviving_rows(mask, s) * cols;
    }
  }
  return plan;
}

std::vector<std::uint32_t> reorder_csr_rows(const CsrMatrix& matrix) {
  std::vector<std::uint32_t> order(matrix.rows());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return matrix.row_nnz(a) > matrix.row_nnz(b);
                   });
  return order;
}

}  // namespace rtmobile
