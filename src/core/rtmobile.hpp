// RtMobile: the top-level framework facade.
//
// One object that strings the paper's pipeline together:
//   dense training  ->  BSP pruning (ADMM)  ->  compiler optimization
//   (reorder + LRE + BSPC + tuning)  ->  deployable CompiledSpeechModel.
// Each stage is also available separately (BspPruner, LayerPlan,
// CompiledSpeechModel) for finer control; this facade is what the
// quickstart example uses.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "compiler/auto_tuner.hpp"
#include "compiler/gru_executor.hpp"
#include "core/bsp.hpp"
#include "hw/thread_pool.hpp"
#include "rnn/model.hpp"
#include "train/trainer.hpp"
#include "train/types.hpp"
#include "util/rng.hpp"

namespace rtmobile {

struct RtMobileConfig {
  BspConfig bsp;
  CompilerOptions compiler;
  /// When true, run the auto-tuner over block counts before pruning and
  /// adopt its num_c choice.
  bool auto_tune_block_size = false;
  TunerConfig tuner;
};

/// A deployed model plus the artifacts that produced it.
struct Deployment {
  std::unique_ptr<ThreadPool> pool;  // owned; referenced by `compiled`
  std::unique_ptr<CompiledSpeechModel> compiled;
  BspResult pruning;
  std::optional<TunerResult> tuning;
};

class RtMobile {
 public:
  explicit RtMobile(const RtMobileConfig& config = RtMobileConfig{});

  [[nodiscard]] const RtMobileConfig& config() const { return config_; }

  /// Full pipeline on an already-trained dense model: (optionally tuned)
  /// BSP pruning with ADMM + retraining, then compilation.
  [[nodiscard]] Deployment deploy(
      SpeechModel& model, const std::vector<LabeledSequence>& train_data,
      Rng& rng) const;

  /// Structure-only pipeline: one-shot masks (no ADMM training), then
  /// compilation. This is what the performance benchmarks use on the
  /// full-size model, where only the sparsity structure matters.
  [[nodiscard]] Deployment deploy_one_shot(SpeechModel& model) const;

 private:
  [[nodiscard]] Deployment compile_with(SpeechModel& model, BspResult bsp,
                                        std::optional<TunerResult> tuning)
      const;

  RtMobileConfig config_;
};

}  // namespace rtmobile
