#include "core/bsp.hpp"

#include <algorithm>

#include "train/admm.hpp"
#include "train/optimizer.hpp"
#include "train/projection.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace rtmobile {

BspPruner::BspPruner(const BspConfig& config) : config_(config) {
  RT_REQUIRE(config.num_r >= 1 && config.num_c >= 1,
             "block grid must be at least 1x1");
  RT_REQUIRE(config.col_keep_fraction > 0.0 &&
                 config.col_keep_fraction <= 1.0,
             "column keep fraction must be in (0,1]");
  RT_REQUIRE(config.row_keep_fraction > 0.0 &&
                 config.row_keep_fraction <= 1.0,
             "row keep fraction must be in (0,1]");
  RT_REQUIRE(config.rho > 0.0, "rho must be positive");
}

std::vector<std::string> BspPruner::prunable_weights(
    const SpeechModel& model) const {
  std::vector<std::string> names = model.weight_names();
  if (config_.prune_fc) names.push_back("fc.w");
  return names;
}

BlockMask BspPruner::derive_mask(const Matrix& weights,
                                 bool include_rows) const {
  // Small matrices cannot be split into more stripes/blocks than they have
  // rows/columns; clamp the grid (the paper's auto-tuner makes the same
  // feasibility adjustment when picking block sizes).
  const std::size_t num_r = std::min(config_.num_r, weights.rows());
  const std::size_t num_c = std::min(config_.num_c, weights.cols());
  BlockMask mask =
      block_column_mask(weights, num_r, num_c, config_.col_keep_fraction);
  if (include_rows && config_.row_keep_fraction < 1.0) {
    apply_row_pruning(weights, config_.row_keep_fraction, mask);
  }
  return mask;
}

BspResult BspPruner::prune_one_shot(SpeechModel& model) const {
  BspResult result;
  for (const std::string& name : prunable_weights(model)) {
    ParamSet set;
    model.register_params(set);
    Matrix& weights = set.matrix(name);
    BlockMask mask = derive_mask(weights, /*include_rows=*/true);
    mask.apply(weights);
    result.masks.set(name, mask);
    result.block_masks.emplace(name, std::move(mask));
  }
  result.stats = compute_compression_stats(model, result.block_masks);
  return result;
}

BspResult BspPruner::prune_progressive(
    SpeechModel& model, const std::vector<LabeledSequence>& train_data,
    Rng& rng, std::span<const double> column_rate_schedule) {
  RT_REQUIRE(!column_rate_schedule.empty(),
             "progressive pruning needs at least one stage");
  for (std::size_t i = 1; i < column_rate_schedule.size(); ++i) {
    RT_REQUIRE(column_rate_schedule[i] > column_rate_schedule[i - 1],
               "column rate schedule must be strictly increasing");
  }
  RT_REQUIRE(column_rate_schedule.front() >= 1.0,
             "column rates must be >= 1");

  BspResult result;
  for (std::size_t stage = 0; stage < column_rate_schedule.size(); ++stage) {
    BspConfig stage_config = config_;
    stage_config.col_keep_fraction = 1.0 / column_rate_schedule[stage];
    const bool final_stage = stage + 1 == column_rate_schedule.size();
    if (!final_stage) {
      stage_config.row_keep_fraction = 1.0;  // rows go only at the end
      stage_config.admm_rounds_step2 = 0;
    }
    if (config_.verbose) {
      RT_LOG(Info, "bsp") << "progressive stage " << (stage + 1) << '/'
                          << column_rate_schedule.size() << ": column rate "
                          << column_rate_schedule[stage] << 'x';
    }
    BspPruner stage_pruner(stage_config);
    result = stage_pruner.prune(model, train_data, rng);
  }
  return result;
}

BspResult BspPruner::prune(SpeechModel& model,
                           const std::vector<LabeledSequence>& train_data,
                           Rng& rng) {
  RT_REQUIRE(!train_data.empty(), "BSP training requires data");
  BspResult result;
  ParamSet params;
  model.register_params(params);
  const std::vector<std::string> names = prunable_weights(model);

  TrainConfig round_config;
  round_config.epochs = config_.epochs_per_round;
  round_config.verbose = config_.verbose;

  // ---- Step 1: row-based column-block pruning -------------------------
  {
    AdmmState admm;
    for (const std::string& name : names) {
      Matrix& weights = params.matrix(name);
      const std::size_t num_r = std::min(config_.num_r, weights.rows());
      const std::size_t num_c = std::min(config_.num_c, weights.cols());
      const double keep = config_.col_keep_fraction;
      admm.attach(name, &weights,
                  [num_r, num_c, keep](const Matrix& w) {
                    return project_to_block_mask(
                        w, block_column_mask(w, num_r, num_c, keep));
                  },
                  config_.rho);
    }
    admm.initialize();

    Trainer trainer(model);
    Adam optimizer(config_.learning_rate);
    for (std::size_t round = 0; round < config_.admm_rounds_step1; ++round) {
      trainer.train(round_config, train_data, optimizer, rng, &admm);
      admm.dual_update();
      if (config_.verbose) {
        RT_LOG(Info, "bsp") << "step1 round " << (round + 1) << " residual "
                            << admm.max_relative_residual();
      }
    }
    result.step1_residual = admm.max_relative_residual();
  }

  // Hard prune to the step-1 structure and retrain under the mask.
  MaskSet step1_masks;
  std::map<std::string, BlockMask> step1_structure;
  for (const std::string& name : names) {
    Matrix& weights = params.matrix(name);
    BlockMask mask = derive_mask(weights, /*include_rows=*/false);
    mask.apply(weights);
    step1_masks.set(name, mask);
    step1_structure.emplace(name, std::move(mask));
  }
  {
    Trainer trainer(model);
    Adam optimizer(config_.retrain_learning_rate);
    TrainConfig retrain_config;
    retrain_config.epochs = config_.retrain_epochs;
    retrain_config.verbose = config_.verbose;
    trainer.train(retrain_config, train_data, optimizer, rng, nullptr,
                  &step1_masks);
  }

  // ---- Step 2: column-based row pruning -------------------------------
  const bool needs_row_step = config_.row_keep_fraction < 1.0;
  if (needs_row_step) {
    AdmmState admm;
    for (const std::string& name : names) {
      Matrix& weights = params.matrix(name);
      const BlockMask& structure = step1_structure.at(name);
      const double row_keep = config_.row_keep_fraction;
      admm.attach(name, &weights,
                  [structure, row_keep](const Matrix& w) {
                    // Project onto {step-1 structure} ∩ {top rows}: the
                    // column pattern is frozen, rows are re-ranked by the
                    // energy they retain inside that pattern.
                    BlockMask mask = structure;
                    apply_row_pruning(w, row_keep, mask);
                    return project_to_block_mask(w, mask);
                  },
                  config_.rho);
    }
    admm.initialize();

    Trainer trainer(model);
    Adam optimizer(config_.learning_rate);
    for (std::size_t round = 0; round < config_.admm_rounds_step2; ++round) {
      trainer.train(round_config, train_data, optimizer, rng, &admm,
                    &step1_masks);
      admm.dual_update();
      if (config_.verbose) {
        RT_LOG(Info, "bsp") << "step2 round " << (round + 1) << " residual "
                            << admm.max_relative_residual();
      }
    }
    result.step2_residual = admm.max_relative_residual();
  }

  // Final structure: step-1 columns + step-2 rows, hard-applied.
  for (const std::string& name : names) {
    Matrix& weights = params.matrix(name);
    BlockMask mask = step1_structure.at(name);
    if (needs_row_step) {
      apply_row_pruning(weights, config_.row_keep_fraction, mask);
    }
    mask.apply(weights);
    result.masks.set(name, mask);
    result.block_masks.emplace(name, std::move(mask));
  }

  // Final masked retraining recovers the accuracy the hard prune cost.
  {
    Trainer trainer(model);
    Adam optimizer(config_.retrain_learning_rate);
    TrainConfig retrain_config;
    retrain_config.epochs = config_.retrain_epochs;
    retrain_config.verbose = config_.verbose;
    trainer.train(retrain_config, train_data, optimizer, rng, nullptr,
                  &result.masks);
  }

  result.stats = compute_compression_stats(model, result.block_masks);
  return result;
}

}  // namespace rtmobile
