// Compression accounting: the quantities reported in Table I.
#pragma once

#include <map>
#include <string>

#include "rnn/model.hpp"
#include "sparse/block_mask.hpp"

namespace rtmobile {

struct CompressionStats {
  std::size_t total_weights = 0;  // slots across all prunable matrices
  std::size_t kept_weights = 0;   // surviving nonzeros
  double column_keep_fraction = 1.0;  // achieved step-1 keep (weighted)
  double row_keep_fraction = 1.0;     // achieved step-2 keep (weighted)

  /// "Overall Compress. Rate": total / kept.
  [[nodiscard]] double overall_rate() const;
  /// "Column Compress. Rate": 1 / column keep fraction.
  [[nodiscard]] double column_rate() const;
  /// "Row Compress. Rate": 1 / row keep fraction.
  [[nodiscard]] double row_rate() const;
  /// "Para. No." in millions.
  [[nodiscard]] double params_millions() const;
};

/// Computes stats over a model's prunable weights given their masks.
/// Weights without a mask count as fully kept.
[[nodiscard]] CompressionStats compute_compression_stats(
    const SpeechModel& model,
    const std::map<std::string, BlockMask>& block_masks);

}  // namespace rtmobile
