// Weight quantization (simulated storage precision).
//
// This module rounds a model's weights through the int8/fp16 grid and
// dequantizes back into the fp32 compute path, so accuracy experiments
// measure exactly the storage precision the deployed model would carry,
// and memory accounting uses the true stored width. The *packed* compute
// path — which actually stores int8/fp16 weights and runs the quantized
// kernels — lives in src/sparse/bspc_quant and src/tensor/packed_dense,
// selected through CompilerOptions::precision; its numerics match this
// simulation within the grid's rounding bound (exactly, for fp16).
//
// The precision enum and fp16 conversion primitives live in
// tensor/precision.hpp (shared with the packed formats); this header
// re-exports them for existing callers.
#pragma once

#include <cstdint>

#include "rnn/model.hpp"
#include "tensor/matrix.hpp"
#include "tensor/precision.hpp"

namespace rtmobile {

/// In-place fp16 storage simulation for a whole matrix.
void quantize_fp16(Matrix& weights);

/// In-place symmetric int8 simulation: w -> clamp(round(w/scale)) * scale
/// with scale = max|w| / 127 over the tensor (or per row). Codes are
/// clamped to [-127, 127] so a tensor whose extreme value is negative
/// cannot round to the unrepresentable -128 slot.
void quantize_int8(Matrix& weights, bool per_row);

/// Worst-case absolute rounding error the int8 grid admits for `weights`
/// (half the quantization step), per tensor.
[[nodiscard]] float int8_step(const Matrix& weights);

struct QuantizationReport {
  WeightPrecision precision = WeightPrecision::kFp32;
  std::size_t quantized_weights = 0;   // entries passed through the grid
  std::size_t stored_bytes = 0;        // total weight storage afterwards
  double max_abs_error = 0.0;          // vs the fp32 weights
  double mean_abs_error = 0.0;
};

/// Quantizes every prunable weight matrix of the model in place (biases
/// stay fp32, as deployments keep them in higher precision).
QuantizationReport quantize_model(SpeechModel& model,
                                  WeightPrecision precision);

}  // namespace rtmobile
