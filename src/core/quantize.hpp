// Weight quantization (simulated storage precision).
//
// The paper's mobile GPU kernels store weights in 16-bit floating point
// ("Our GPU implementation uses 16-bit floating point"); the CPU path is
// fp32. This module makes that precision axis explicit: weights are
// quantized (fp16 or symmetric int8) and dequantized back into the fp32
// compute path, so accuracy experiments measure exactly the storage
// precision the deployed model would carry, and memory accounting uses
// the true stored width.
#pragma once

#include <cstdint>

#include "rnn/model.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

enum class WeightPrecision : std::uint8_t {
  kFp32,          // reference, 4 bytes/weight
  kFp16,          // IEEE 754 binary16, 2 bytes/weight (the paper's GPU path)
  kInt8PerTensor, // symmetric int8, one scale per matrix
  kInt8PerRow,    // symmetric int8, one scale per output row
};

[[nodiscard]] const char* to_string(WeightPrecision precision);

/// Stored bytes per weight under the precision (scales amortize to ~0).
[[nodiscard]] std::size_t bytes_per_weight(WeightPrecision precision);

/// float -> IEEE binary16 bit pattern, round-to-nearest-even; handles
/// normals, subnormals, overflow-to-infinity, and NaN.
[[nodiscard]] std::uint16_t fp16_from_float(float value);

/// IEEE binary16 bit pattern -> float (exact).
[[nodiscard]] float fp16_to_float(std::uint16_t half_bits);

/// Rounds a float through fp16 storage (quantize + dequantize).
[[nodiscard]] float fp16_round_trip(float value);

/// In-place fp16 storage simulation for a whole matrix.
void quantize_fp16(Matrix& weights);

/// In-place symmetric int8 simulation: w -> round(w/scale) * scale with
/// scale = max|w| / 127 over the tensor (or per row).
void quantize_int8(Matrix& weights, bool per_row);

/// Worst-case absolute rounding error the int8 grid admits for `weights`
/// (half the quantization step), per tensor.
[[nodiscard]] float int8_step(const Matrix& weights);

struct QuantizationReport {
  WeightPrecision precision = WeightPrecision::kFp32;
  std::size_t quantized_weights = 0;   // entries passed through the grid
  std::size_t stored_bytes = 0;        // total weight storage afterwards
  double max_abs_error = 0.0;          // vs the fp32 weights
  double mean_abs_error = 0.0;
};

/// Quantizes every prunable weight matrix of the model in place (biases
/// stay fp32, as deployments keep them in higher precision).
QuantizationReport quantize_model(SpeechModel& model,
                                  WeightPrecision precision);

}  // namespace rtmobile
