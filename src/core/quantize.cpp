#include "core/quantize.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace rtmobile {

const char* to_string(WeightPrecision precision) {
  switch (precision) {
    case WeightPrecision::kFp32: return "fp32";
    case WeightPrecision::kFp16: return "fp16";
    case WeightPrecision::kInt8PerTensor: return "int8";
    case WeightPrecision::kInt8PerRow: return "int8/row";
  }
  return "?";
}

std::size_t bytes_per_weight(WeightPrecision precision) {
  switch (precision) {
    case WeightPrecision::kFp32: return 4;
    case WeightPrecision::kFp16: return 2;
    case WeightPrecision::kInt8PerTensor:
    case WeightPrecision::kInt8PerRow:
      return 1;
  }
  return 4;
}

std::uint16_t fp16_from_float(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000U;
  const std::uint32_t exponent = (bits >> 23) & 0xFFU;
  std::uint32_t mantissa = bits & 0x7FFFFFU;

  if (exponent == 0xFFU) {
    // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
    return static_cast<std::uint16_t>(
        sign | 0x7C00U | (mantissa != 0 ? 0x0200U : 0U));
  }

  // Unbias from float (127) and rebias for half (15).
  const int half_exponent = static_cast<int>(exponent) - 127 + 15;
  if (half_exponent >= 0x1F) {
    // Overflow: round to infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (half_exponent <= 0) {
    // Subnormal half (or underflow to zero). Shift the implicit leading 1
    // into the mantissa and denormalize.
    if (half_exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x800000U;
    const int shift = 14 - half_exponent;  // 14..24
    const std::uint32_t rounded = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1U << shift) - 1U);
    const std::uint32_t halfway = 1U << (shift - 1);
    std::uint32_t result = rounded;
    if (remainder > halfway || (remainder == halfway && (rounded & 1U))) {
      ++result;  // round to nearest even
    }
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal half: keep 10 mantissa bits with round-to-nearest-even.
  std::uint32_t result =
      sign | (static_cast<std::uint32_t>(half_exponent) << 10) |
      (mantissa >> 13);
  const std::uint32_t remainder = mantissa & 0x1FFFU;
  if (remainder > 0x1000U || (remainder == 0x1000U && (result & 1U))) {
    ++result;  // may carry into the exponent — that is correct rounding
  }
  return static_cast<std::uint16_t>(result);
}

float fp16_to_float(std::uint16_t half_bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half_bits) & 0x8000U)
                             << 16;
  const std::uint32_t exponent = (half_bits >> 10) & 0x1FU;
  const std::uint32_t mantissa = half_bits & 0x3FFU;

  std::uint32_t bits;
  if (exponent == 0x1FU) {
    bits = sign | 0x7F800000U | (mantissa << 13);  // inf / nan
  } else if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      std::uint32_t m = mantissa;
      while ((m & 0x400U) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3FFU;
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             (m << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

float fp16_round_trip(float value) {
  return fp16_to_float(fp16_from_float(value));
}

void quantize_fp16(Matrix& weights) {
  for (float& w : weights.span()) w = fp16_round_trip(w);
}

float int8_step(const Matrix& weights) {
  float max_abs = 0.0F;
  for (const float w : weights.span()) {
    max_abs = std::max(max_abs, std::fabs(w));
  }
  return max_abs / 127.0F;
}

namespace {

void quantize_span_int8(std::span<float> values) {
  float max_abs = 0.0F;
  for (const float w : values) max_abs = std::max(max_abs, std::fabs(w));
  if (max_abs == 0.0F) return;
  const float scale = max_abs / 127.0F;
  for (float& w : values) {
    const float q = std::round(w / scale);
    w = std::clamp(q, -127.0F, 127.0F) * scale;
  }
}

}  // namespace

void quantize_int8(Matrix& weights, bool per_row) {
  if (per_row) {
    for (std::size_t r = 0; r < weights.rows(); ++r) {
      quantize_span_int8(weights.row(r));
    }
  } else {
    quantize_span_int8(weights.span());
  }
}

QuantizationReport quantize_model(SpeechModel& model,
                                  WeightPrecision precision) {
  QuantizationReport report;
  report.precision = precision;

  ParamSet params;
  model.register_params(params);
  double total_error = 0.0;
  for (const auto& entry : params.matrices()) {
    if (!entry.is_weight) continue;
    Matrix& weights = *entry.tensor;
    const Matrix original = weights;
    switch (precision) {
      case WeightPrecision::kFp32: break;
      case WeightPrecision::kFp16: quantize_fp16(weights); break;
      case WeightPrecision::kInt8PerTensor:
        quantize_int8(weights, /*per_row=*/false);
        break;
      case WeightPrecision::kInt8PerRow:
        quantize_int8(weights, /*per_row=*/true);
        break;
    }
    report.quantized_weights += weights.size();
    report.stored_bytes += weights.size() * bytes_per_weight(precision);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double err = std::fabs(static_cast<double>(weights.span()[i]) -
                                   static_cast<double>(original.span()[i]));
      report.max_abs_error = std::max(report.max_abs_error, err);
      total_error += err;
    }
  }
  if (report.quantized_weights > 0) {
    report.mean_abs_error =
        total_error / static_cast<double>(report.quantized_weights);
  }
  return report;
}

}  // namespace rtmobile
