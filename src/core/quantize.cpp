#include "core/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rtmobile {

void quantize_fp16(Matrix& weights) {
  for (float& w : weights.span()) w = fp16_round_trip(w);
}

float int8_step(const Matrix& weights) {
  float max_abs = 0.0F;
  for (const float w : weights.span()) {
    max_abs = std::max(max_abs, std::fabs(w));
  }
  return max_abs / kInt8CodeLimit;
}

namespace {

void quantize_span_int8(std::span<float> values) {
  float max_abs = 0.0F;
  for (const float w : values) max_abs = std::max(max_abs, std::fabs(w));
  if (max_abs == 0.0F) return;
  const float scale = max_abs / kInt8CodeLimit;
  for (float& w : values) {
    const float q = std::round(w / scale);
    w = std::clamp(q, -kInt8CodeLimit, kInt8CodeLimit) * scale;
  }
}

}  // namespace

void quantize_int8(Matrix& weights, bool per_row) {
  if (per_row) {
    for (std::size_t r = 0; r < weights.rows(); ++r) {
      quantize_span_int8(weights.row(r));
    }
  } else {
    quantize_span_int8(weights.span());
  }
}

QuantizationReport quantize_model(SpeechModel& model,
                                  WeightPrecision precision) {
  QuantizationReport report;
  report.precision = precision;

  ParamSet params;
  model.register_params(params);
  double total_error = 0.0;
  for (const auto& entry : params.matrices()) {
    if (!entry.is_weight) continue;
    Matrix& weights = *entry.tensor;
    const Matrix original = weights;
    switch (precision) {
      case WeightPrecision::kFp32: break;
      case WeightPrecision::kFp16: quantize_fp16(weights); break;
      case WeightPrecision::kInt8PerTensor:
        quantize_int8(weights, /*per_row=*/false);
        break;
      case WeightPrecision::kInt8PerRow:
        quantize_int8(weights, /*per_row=*/true);
        break;
    }
    report.quantized_weights += weights.size();
    report.stored_bytes += weights.size() * bytes_per_weight(precision);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      const double err = std::fabs(static_cast<double>(weights.span()[i]) -
                                   static_cast<double>(original.span()[i]));
      report.max_abs_error = std::max(report.max_abs_error, err);
      total_error += err;
    }
  }
  if (report.quantized_weights > 0) {
    report.mean_abs_error =
        total_error / static_cast<double>(report.quantized_weights);
  }
  return report;
}

}  // namespace rtmobile
