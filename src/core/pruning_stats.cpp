#include "core/pruning_stats.hpp"

#include "util/check.hpp"

namespace rtmobile {

double CompressionStats::overall_rate() const {
  if (kept_weights == 0) return 0.0;
  return static_cast<double>(total_weights) /
         static_cast<double>(kept_weights);
}

double CompressionStats::column_rate() const {
  return column_keep_fraction > 0.0 ? 1.0 / column_keep_fraction : 0.0;
}

double CompressionStats::row_rate() const {
  return row_keep_fraction > 0.0 ? 1.0 / row_keep_fraction : 0.0;
}

double CompressionStats::params_millions() const {
  return static_cast<double>(kept_weights) / 1e6;
}

CompressionStats compute_compression_stats(
    const SpeechModel& model,
    const std::map<std::string, BlockMask>& block_masks) {
  ParamSet set;
  model.register_params(set);

  CompressionStats stats;
  double col_kept_slots = 0.0;
  double col_total_slots = 0.0;
  double rows_kept = 0.0;
  double rows_total = 0.0;
  for (const auto& entry : set.matrices()) {
    if (!entry.is_weight) continue;
    const std::size_t slots = entry.tensor->size();
    stats.total_weights += slots;
    const auto it = block_masks.find(entry.name);
    if (it == block_masks.end()) {
      stats.kept_weights += slots;
      col_kept_slots += static_cast<double>(slots);
      col_total_slots += static_cast<double>(slots);
      rows_kept += static_cast<double>(entry.tensor->rows());
      rows_total += static_cast<double>(entry.tensor->rows());
      continue;
    }
    const BlockMask& mask = it->second;
    RT_REQUIRE(mask.rows() == entry.tensor->rows() &&
                   mask.cols() == entry.tensor->cols(),
               "stats: mask shape mismatch at " + entry.name);
    stats.kept_weights += mask.nnz();
    // Step-1 keep fraction: kept (stripe, column) slots over all slots.
    col_kept_slots += static_cast<double>(mask.kept_block_col_count()) *
                      static_cast<double>(mask.rows()) /
                      static_cast<double>(mask.num_r());
    col_total_slots += static_cast<double>(slots);
    rows_kept += static_cast<double>(mask.kept_row_count());
    rows_total += static_cast<double>(mask.rows());
  }
  stats.column_keep_fraction =
      col_total_slots > 0.0 ? col_kept_slots / col_total_slots : 1.0;
  stats.row_keep_fraction = rows_total > 0.0 ? rows_kept / rows_total : 1.0;
  return stats;
}

}  // namespace rtmobile
