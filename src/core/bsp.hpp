// Block-based Structured Pruning (the paper's Algorithm 1 / Sec. IV-A).
//
// Training a BSP-compressed model runs two ADMM-driven steps per weight
// matrix:
//   Step 1 — row-based column-block pruning: split W into Num_r stripes x
//     Num_c blocks and constrain each (stripe, block) to keep only its top
//     columns; ADMM alternates loss+penalty training (W-update) with
//     projections (Z-update) and dual updates until the weights carry the
//     block-column structure, then the structure is hard-applied and the
//     survivors retrained under the mask.
//   Step 2 — column-based row pruning: with the step-1 structure frozen,
//     the same ADMM loop constrains whole rows, hard-prunes, and retrains.
//
// The result is a BlockMask per weight matrix: the contract consumed by
// the BSPC format and the compiler passes.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/pruning_stats.hpp"
#include "rnn/model.hpp"
#include "sparse/block_mask.hpp"
#include "train/mask_set.hpp"
#include "train/trainer.hpp"
#include "train/types.hpp"
#include "util/rng.hpp"

namespace rtmobile {

struct BspConfig {
  std::size_t num_r = 8;            // horizontal stripes per weight matrix
  std::size_t num_c = 8;            // column blocks per stripe
  double col_keep_fraction = 0.1;   // step-1 target (1 / column rate)
  double row_keep_fraction = 1.0;   // step-2 target (1 / row rate)
  double rho = 1.5e-2;              // ADMM penalty strength
  std::size_t admm_rounds_step1 = 3;
  std::size_t admm_rounds_step2 = 2;
  std::size_t epochs_per_round = 1;  // W-update epochs between dual updates
  std::size_t retrain_epochs = 3;    // masked retraining after hard prune
  double learning_rate = 2e-3;
  double retrain_learning_rate = 1e-3;
  bool prune_fc = true;   // also prune the output projection
  bool verbose = false;
};

/// Everything BSP produces for one model.
struct BspResult {
  /// Structured masks per weight name, for BSPC/compiler consumption.
  std::map<std::string, BlockMask> block_masks;
  /// Dense 0/1 masks (same support), for masked retraining.
  MaskSet masks;
  /// Compression accounting over the pruned model.
  CompressionStats stats;
  /// max relative ADMM residual after the last round of each step
  /// (convergence diagnostics).
  double step1_residual = 0.0;
  double step2_residual = 0.0;
};

class BspPruner {
 public:
  explicit BspPruner(const BspConfig& config);

  [[nodiscard]] const BspConfig& config() const { return config_; }

  /// Runs the full two-step BSP training pipeline on `model`, using
  /// `train_data` for the W-updates and retraining. The model's weights
  /// are modified in place (pruned + retrained).
  BspResult prune(SpeechModel& model,
                  const std::vector<LabeledSequence>& train_data, Rng& rng);

  /// One-shot variant: derives the masks from the current weights without
  /// any ADMM training or retraining (used for performance experiments
  /// where only the structure matters, and as the ablation baseline
  /// against the full ADMM pipeline).
  BspResult prune_one_shot(SpeechModel& model) const;

  /// Progressive schedule (the paper's "training process continues
  /// iteratively until all the blocks are pruned"): runs the pipeline at
  /// successively tighter column rates, retraining between stages. The
  /// supports nest (a pruned column has zero energy and is never
  /// re-selected), so each stage refines the previous one. Row pruning is
  /// applied only at the final stage. Returns the final stage's result.
  BspResult prune_progressive(SpeechModel& model,
                              const std::vector<LabeledSequence>& train_data,
                              Rng& rng,
                              std::span<const double> column_rate_schedule);

  /// Names of the weights this configuration prunes.
  [[nodiscard]] std::vector<std::string> prunable_weights(
      const SpeechModel& model) const;

 private:
  /// Derives the step-1 (+optional step-2) BlockMask for one matrix.
  [[nodiscard]] BlockMask derive_mask(const Matrix& weights,
                                      bool include_rows) const;

  BspConfig config_;
};

}  // namespace rtmobile
