#include "core/rtmobile.hpp"

#include "util/check.hpp"
#include "util/logging.hpp"

namespace rtmobile {

RtMobile::RtMobile(const RtMobileConfig& config) : config_(config) {}

Deployment RtMobile::compile_with(SpeechModel& model, BspResult bsp,
                                  std::optional<TunerResult> tuning) const {
  Deployment deployment;
  deployment.pruning = std::move(bsp);
  deployment.tuning = std::move(tuning);
  if (config_.compiler.threads > 1) {
    deployment.pool = std::make_unique<ThreadPool>(config_.compiler.threads);
  }
  deployment.compiled = std::make_unique<CompiledSpeechModel>(
      model, deployment.pruning.block_masks, config_.compiler,
      deployment.pool.get());
  return deployment;
}

Deployment RtMobile::deploy(SpeechModel& model,
                            const std::vector<LabeledSequence>& train_data,
                            Rng& rng) const {
  RtMobileConfig effective = config_;
  std::optional<TunerResult> tuning;
  if (config_.auto_tune_block_size) {
    // Tune on the largest recurrent matrix: it dominates inference time.
    TunerConfig tuner_config = config_.tuner;
    tuner_config.num_r = config_.bsp.num_r;
    tuner_config.col_keep_fraction = config_.bsp.col_keep_fraction;
    tuner_config.row_keep_fraction = config_.bsp.row_keep_fraction;
    tuning = tune_layer(model.layer(model.config().num_layers - 1).u_h,
                        tuner_config);
    effective.bsp.num_c = tuning->best.num_c;
    RT_LOG(Info, "rtmobile") << "auto-tuned num_c=" << effective.bsp.num_c;
  }
  BspPruner pruner(effective.bsp);
  BspResult result = pruner.prune(model, train_data, rng);
  return compile_with(model, std::move(result), std::move(tuning));
}

Deployment RtMobile::deploy_one_shot(SpeechModel& model) const {
  BspPruner pruner(config_.bsp);
  BspResult result = pruner.prune_one_shot(model);
  return compile_with(model, std::move(result), std::nullopt);
}

}  // namespace rtmobile
