#include "fault/fault_injector.hpp"

#include <utility>

#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace rtmobile::fault {

const char* to_string(Site site) {
  switch (site) {
    case Site::kEngineStep: return "engine-step";
    case Site::kPumpFault: return "pump-fault";
    case Site::kPumpStall: return "pump-stall";
    case Site::kQueuePush: return "queue-push";
    case Site::kConnRead: return "conn-read";
    case Site::kConnWrite: return "conn-write";
    case Site::kCacheLookup: return "cache-lookup";
  }
  return "unknown";
}

Trigger Trigger::one_shot() {
  Trigger t;
  t.kind = Kind::kOneShot;
  return t;
}

Trigger Trigger::nth_hit(std::uint64_t n) {
  RT_REQUIRE(n >= 1, "nth_hit trigger is 1-based");
  Trigger t;
  t.kind = Kind::kNthHit;
  t.n = n;
  return t;
}

Trigger Trigger::every_k(std::uint64_t k) {
  RT_REQUIRE(k >= 1, "every_k trigger needs k >= 1");
  Trigger t;
  t.kind = Kind::kEveryK;
  t.n = k;
  return t;
}

Trigger Trigger::random(double rate, std::uint64_t seed) {
  RT_REQUIRE(rate >= 0.0 && rate <= 1.0,
             "random trigger rate must be in [0, 1]");
  Trigger t;
  t.kind = Kind::kRandom;
  t.rate = rate;
  t.seed = seed;
  return t;
}

FaultInjector::FaultInjector(obs::Telemetry* telemetry)
    : telemetry_(telemetry) {}

void FaultInjector::arm(Site site, FaultSpec spec) {
  SiteState& state = sites_[static_cast<std::size_t>(site)];
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.spec = spec;
  state.rng = Rng(spec.trigger.seed);
  state.hit_count = 0;
  state.fire_count = 0;
  state.hits_published.store(0, std::memory_order_relaxed);
  state.fires_published.store(0, std::memory_order_relaxed);
  state.armed.store(spec.trigger.kind != Trigger::Kind::kNever,
                    std::memory_order_release);
}

void FaultInjector::disarm(Site site) {
  SiteState& state = sites_[static_cast<std::size_t>(site)];
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.armed.store(false, std::memory_order_release);
}

void FaultInjector::reset() {
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    SiteState& state = sites_[s];
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.armed.store(false, std::memory_order_release);
    state.spec = FaultSpec{};
    state.hit_count = 0;
    state.fire_count = 0;
    state.hits_published.store(0, std::memory_order_relaxed);
    state.fires_published.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::should_fire(Site site, std::uint64_t key) {
  SiteState& state = sites_[static_cast<std::size_t>(site)];
  // The no-op branch: unarmed sites answer without the lock.
  if (!state.armed.load(std::memory_order_acquire)) return false;
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.armed.load(std::memory_order_relaxed)) return false;
  if (state.spec.key != kAnyKey && state.spec.key != key) return false;
  const std::uint64_t hit = ++state.hit_count;
  state.hits_published.store(hit, std::memory_order_relaxed);
  if (state.fire_count >= state.spec.max_fires) return false;

  bool fire = false;
  switch (state.spec.trigger.kind) {
    case Trigger::Kind::kNever:
      break;
    case Trigger::Kind::kOneShot:
      fire = state.fire_count == 0;
      break;
    case Trigger::Kind::kNthHit:
      fire = hit == state.spec.trigger.n;
      break;
    case Trigger::Kind::kEveryK:
      fire = hit % state.spec.trigger.n == 0;
      break;
    case Trigger::Kind::kRandom:
      fire = state.rng.bernoulli(state.spec.trigger.rate);
      break;
  }
  if (!fire) return false;
  ++state.fire_count;
  state.fires_published.store(state.fire_count, std::memory_order_relaxed);
  if (telemetry_ != nullptr) telemetry_->fault().injected->add(1);
  return true;
}

std::chrono::milliseconds FaultInjector::stall(Site site) const {
  const SiteState& state = sites_[static_cast<std::size_t>(site)];
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.spec.stall;
}

std::uint64_t FaultInjector::hits(Site site) const {
  return sites_[static_cast<std::size_t>(site)].hits_published.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fires(Site site) const {
  return sites_[static_cast<std::size_t>(site)].fires_published.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_fires() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    total += sites_[s].fires_published.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace rtmobile::fault
