// Deterministic fault injection for the serving stack.
//
// A FaultInjector is a passive registry of named injection points
// ("sites"). Production code threads a nullable FaultInjector* through
// its existing config structs and asks `should_fire(site, key)` at each
// hot site; with no injector installed the call is never made, and with
// an injector installed but the site unarmed it is one relaxed atomic
// load — the harness costs nothing unless a test arms it.
//
// Every trigger is deterministic from its arming parameters: one-shot,
// nth-hit, every-k, or seeded-random (util::Rng, so a fixed seed replays
// the exact same fault schedule). Sites are keyed (e.g. by shard index
// or connection fd) so a spec can target one victim while its siblings
// run clean. Fired faults are counted per site and, when a Telemetry is
// attached, into the rt_fault_injected_total counter — the first link of
// the injected/detected/recovered chain the supervisor completes.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace rtmobile::obs {
class Telemetry;
}

namespace rtmobile::fault {

/// Where a fault can be injected. Each value names one call site in the
/// serving stack (see README "Fault tolerance" for the full table).
enum class Site : std::uint8_t {
  kEngineStep = 0,  // InferenceEngine::step throws (poisoned compute)
  kPumpFault,       // ShardedEngine pump round throws (pump death)
  kPumpStall,       // ShardedEngine pump round sleeps (wedged pump)
  kQueuePush,       // SubmissionQueue::try_push reports full (ingress)
  kConnRead,        // net::Connection read path acts as peer reset
  kConnWrite,       // net::Connection write path acts as peer reset
  kCacheLookup,     // prefix-cache lookup acts as a miss (plain compute)
};
inline constexpr std::size_t kSiteCount = 7;

[[nodiscard]] const char* to_string(Site site);

/// Key filter wildcard: the spec fires regardless of the caller's key.
inline constexpr std::uint64_t kAnyKey = ~std::uint64_t{0};

/// When an armed site fires.
struct Trigger {
  enum class Kind : std::uint8_t {
    kNever = 0,
    kOneShot,  // first matching hit only
    kNthHit,   // exactly the n-th matching hit (1-based)
    kEveryK,   // every k-th matching hit (hit % k == 0)
    kRandom,   // each matching hit with probability `rate` (seeded Rng)
  };
  Kind kind = Kind::kNever;
  std::uint64_t n = 1;      // kNthHit's index / kEveryK's period
  double rate = 0.0;        // kRandom's per-hit fire probability
  std::uint64_t seed = 1;   // kRandom's Rng seed

  [[nodiscard]] static Trigger one_shot();
  [[nodiscard]] static Trigger nth_hit(std::uint64_t n);
  [[nodiscard]] static Trigger every_k(std::uint64_t k);
  [[nodiscard]] static Trigger random(double rate, std::uint64_t seed);
};

/// One armed site: the trigger, an optional victim key, an optional
/// per-fire stall (kPumpStall sleeps this long), and a fire budget.
struct FaultSpec {
  Trigger trigger;
  std::uint64_t key = kAnyKey;
  std::chrono::milliseconds stall{0};
  std::uint64_t max_fires = ~std::uint64_t{0};
};

/// Thrown by throwing sites (engine step, pump round) when they fire, so
/// chaos tests can tell an injected death from a genuine bug.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what)
      : std::runtime_error(what) {}
};

class FaultInjector {
 public:
  /// `telemetry` (nullable) receives rt_fault_injected_total increments;
  /// must outlive the injector when set.
  explicit FaultInjector(obs::Telemetry* telemetry = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms, resetting hit/fire state) one site.
  void arm(Site site, FaultSpec spec);
  void disarm(Site site);
  /// Disarms every site and clears all counters.
  void reset();

  /// The hot-site question: does the fault fire on this hit? Unarmed
  /// sites answer false on one relaxed load. Hits that fail the key
  /// filter do not advance the trigger state, so a victim-keyed spec
  /// stays deterministic no matter how the other keys interleave.
  [[nodiscard]] bool should_fire(Site site, std::uint64_t key = kAnyKey);

  /// The stall to apply when a kPumpStall-style site fires (the site
  /// reads it after a true should_fire).
  [[nodiscard]] std::chrono::milliseconds stall(Site site) const;

  [[nodiscard]] std::uint64_t hits(Site site) const;
  [[nodiscard]] std::uint64_t fires(Site site) const;
  [[nodiscard]] std::uint64_t total_fires() const;

 private:
  struct SiteState {
    std::atomic<bool> armed{false};
    /// Serializes trigger evaluation so hit ordinals are exact even with
    /// concurrent callers (fault sites are not hot enough to care).
    mutable std::mutex mutex;
    FaultSpec spec;
    Rng rng{1};
    std::uint64_t hit_count = 0;
    std::uint64_t fire_count = 0;
    std::atomic<std::uint64_t> hits_published{0};
    std::atomic<std::uint64_t> fires_published{0};
  };

  std::array<SiteState, kSiteCount> sites_;
  obs::Telemetry* telemetry_;
};

}  // namespace rtmobile::fault
