// Shard-local prefix result cache for repeat-heavy traffic.
//
// Wake-word and IVR audio repeats massively at fleet scale: the same
// greeting, the same menu phrase, the same trigger word, thousands of
// times an hour. Every repeated utterance re-runs the identical GRU
// recurrence from the identical zero state — compute that produces bit-
// for-bit the same logits it produced last time. This cache memoizes
// that work per step: an entry maps a stream's *audio prefix* (every
// feature frame consumed so far, starting from the initial hidden state)
// to the logits row the model produced for the last frame of that prefix
// plus the post-step hidden-state snapshot needed to keep going. A
// stream whose prefix matches a cached trajectory skips model compute
// entirely — restore the snapshot, emit the memoized row — and falls
// through to plain compute on the first divergent frame.
//
// Keying is two-level, which is what makes skipping safe:
//  - The *bucket* is a rolling hash over quantized feature frames,
//    chained from a fingerprint of the stream's initial hidden state.
//    Quantization makes the index key cheap and tolerant of the float
//    noise that never survives quantization anyway; chaining means a
//    bucket identifies a whole prefix, not one frame.
//  - The *signature* is a 128-bit chained fingerprint over the exact bit
//    patterns of the same frames. A lookup only hits when the signature
//    matches exactly, so two prefixes that collide in the quantized
//    bucket can never serve each other's results: the cache degrades to
//    a miss (plain compute), never to a wrong output.
// Both halves live in a PrefixCursor that each StreamingSession carries
// and advances once per consumed frame, so they ride shard migration
// with the stream.
//
// The cache only ever *skips* compute. Entries are written by the
// compute path itself, every replica computes identical arithmetic, and
// hits restore the exact snapshot that compute produced — so a resumed
// stream's logits and StreamEvents are bitwise identical to an uncached
// run, the invariant tests/test_cache.cpp enforces on every hit, miss,
// eviction, and migration path.
//
// Eviction is LRU under a byte budget. One instance is owned per
// InferenceEngine (ShardedEngine replicas therefore each own a private,
// shard-local cache) and is touched only by that engine's driving thread
// (the shard pump, or the synchronous caller) — no locking.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace rtmobile::cache {

/// Mixes two words (splitmix64 over their combination); the rolling-hash
/// chain step.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) {
  std::uint64_t state = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12));
  return splitmix64(state);
}

/// Where in prefix space one stream currently is: the rolling bucket
/// hash, the exact 128-bit signature chain, and the frames folded in.
/// Sessions carry one by value (it migrates with the stream) and the
/// engine advances it once per consumed feature frame — on the compute
/// path and the cache-hit path alike, so the chain always describes the
/// frames the hidden state actually evolved through.
struct PrefixCursor {
  std::uint64_t bucket = 0;
  std::uint64_t sig_lo = 0;
  std::uint64_t sig_hi = 0;
  std::uint64_t depth = 0;  // feature frames folded into the chain

  /// Cursor for a stream about to consume its first frame: fingerprints
  /// the initial hidden state (exact bits), so models or states that
  /// differ can never share a prefix chain.
  [[nodiscard]] static PrefixCursor from_state(
      std::span<const float> state) {
    PrefixCursor c;
    c.bucket = 0x9E3779B97F4A7C15ULL;
    c.sig_lo = 0xCBF29CE484222325ULL;  // FNV-1a 64 offset basis
    c.sig_hi = 0x9E3779B185EBCA87ULL;
    for (const float v : state) {
      const auto bits = std::bit_cast<std::uint32_t>(v);
      c.bucket = mix64(c.bucket, bits);
      c.sig_lo = (c.sig_lo ^ bits) * 0x100000001B3ULL;
      c.sig_hi = (c.sig_hi ^ bits) * 0xC2B2AE3D27D4EB4FULL;
    }
    return c;
  }

  /// Folds one feature frame into the chain. `quant_scale` buckets the
  /// index hash (values within 1/quant_scale of each other quantize
  /// together); the signature always takes the exact bit pattern.
  void advance(std::span<const float> frame, float quant_scale) {
    std::uint64_t b = bucket;
    std::uint64_t lo = sig_lo;
    std::uint64_t hi = sig_hi;
    for (const float v : frame) {
      const auto q = static_cast<std::int64_t>(
          std::llround(static_cast<double>(v) * quant_scale));
      b = mix64(b, static_cast<std::uint64_t>(q));
      const auto bits = std::bit_cast<std::uint32_t>(v);
      lo = (lo ^ bits) * 0x100000001B3ULL;
      hi = (hi ^ bits) * 0xC2B2AE3D27D4EB4FULL;
    }
    ++depth;
    bucket = mix64(b, depth);
    sig_lo = lo;
    sig_hi = hi;
  }
};

struct CacheConfig {
  /// Off by default: the engine neither owns a cache nor pays any
  /// per-frame cost, and every pre-existing behavior is unchanged.
  bool enabled = false;
  /// LRU eviction threshold over the summed entry footprint. The newest
  /// entry is never evicted by its own insert, so a budget smaller than
  /// one entry behaves as a 1-entry cache rather than caching nothing.
  std::size_t byte_budget = 64U << 20;
  /// Feature quantization step reciprocal for the bucket key; larger =
  /// finer buckets (fewer bucket collisions), smaller = coarser. Purely
  /// an indexing knob — correctness rests on the exact signature.
  float quant_scale = 1024.0F;
  /// Consecutive frames one stream may serve from cache per scheduling
  /// round (0 = unlimited: a fully cached utterance completes in one
  /// round). A bound trades single-stream skip throughput for tighter
  /// round latency when many cached streams share an engine.
  std::size_t max_hit_burst = 0;
};

class PrefixCache {
 public:
  explicit PrefixCache(const CacheConfig& config);

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  struct Entry {
    std::uint64_t sig_lo = 0;
    std::uint64_t sig_hi = 0;
    std::vector<float> logits;  // the memoized per-step logits row
    std::vector<float> state;   // post-step hidden-state snapshot
    std::list<std::uint64_t>::iterator lru;
  };

  /// What an insert did, for the caller's counters.
  struct InsertResult {
    std::size_t evicted = 0;      // entries evicted (budget or collision)
    std::size_t bytes_added = 0;  // net new bytes resident (0 on refresh)
  };

  /// The entry for `key`'s prefix, or null. Null on a bucket miss *and*
  /// on a signature mismatch (a quantized-bucket collision): the caller
  /// must fall through to compute. A hit refreshes the entry's LRU
  /// position.
  [[nodiscard]] const Entry* lookup(const PrefixCursor& key);

  /// Memoizes one step: `logits` is the row the model just produced for
  /// the prefix `key` describes, `state` the flattened hidden state
  /// after that step. Re-inserting an already-cached prefix refreshes
  /// its LRU slot; a bucket collision with a different signature
  /// replaces the old occupant (counted as an eviction). Evicts LRU
  /// entries (never the one just inserted) until within budget.
  InsertResult insert(const PrefixCursor& key, std::span<const float> logits,
                      std::span<const float> state);

  /// Resident footprint a (logits_len, state_len) entry accounts for —
  /// what tests use to size exact-entry-count budgets.
  [[nodiscard]] static std::size_t entry_bytes(std::size_t logits_len,
                                               std::size_t state_len) {
    return (logits_len + state_len) * sizeof(float) + kEntryOverhead;
  }

  [[nodiscard]] std::size_t entries() const { return map_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  /// Drops every entry (counters keep their totals).
  void clear();

 private:
  /// Bookkeeping charge per entry beyond the float payloads (hash node,
  /// LRU node, vector headers) — an estimate, held constant so budget
  /// arithmetic is deterministic.
  static constexpr std::size_t kEntryOverhead = 128;

  void evict_lru();

  CacheConfig config_;
  std::unordered_map<std::uint64_t, Entry> map_;  // bucket -> entry
  std::list<std::uint64_t> lru_;  // front = most recently used bucket
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rtmobile::cache
