#include "cache/prefix_cache.hpp"

#include "util/check.hpp"

namespace rtmobile::cache {

PrefixCache::PrefixCache(const CacheConfig& config) : config_(config) {
  RT_REQUIRE(config_.quant_scale > 0.0F,
             "cache: quant_scale must be positive");
}

const PrefixCache::Entry* PrefixCache::lookup(const PrefixCursor& key) {
  const auto it = map_.find(key.bucket);
  if (it == map_.end()) return nullptr;
  Entry& entry = it->second;
  // A quantized-bucket collision: some other prefix owns this slot. The
  // signature is the exact-prefix proof; without it, miss.
  if (entry.sig_lo != key.sig_lo || entry.sig_hi != key.sig_hi) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, entry.lru);
  return &entry;
}

PrefixCache::InsertResult PrefixCache::insert(const PrefixCursor& key,
                                              std::span<const float> logits,
                                              std::span<const float> state) {
  InsertResult result;
  const auto it = map_.find(key.bucket);
  if (it != map_.end()) {
    Entry& entry = it->second;
    lru_.splice(lru_.begin(), lru_, entry.lru);
    if (entry.sig_lo == key.sig_lo && entry.sig_hi == key.sig_hi) {
      // Same prefix recomputed (its entry was inserted by a sibling
      // stream racing ahead): deterministic arithmetic means the payload
      // is already identical — refresh recency and keep it.
      return result;
    }
    // Bucket collision: the new prefix takes the slot (counted as an
    // eviction — the old occupant is gone either way).
    bytes_ -= entry_bytes(entry.logits.size(), entry.state.size());
    entry.sig_lo = key.sig_lo;
    entry.sig_hi = key.sig_hi;
    entry.logits.assign(logits.begin(), logits.end());
    entry.state.assign(state.begin(), state.end());
    const std::size_t added = entry_bytes(logits.size(), state.size());
    bytes_ += added;
    result.bytes_added = added;
    result.evicted = 1;
    ++evictions_;
  } else {
    lru_.push_front(key.bucket);
    Entry& entry = map_[key.bucket];
    entry.sig_lo = key.sig_lo;
    entry.sig_hi = key.sig_hi;
    entry.logits.assign(logits.begin(), logits.end());
    entry.state.assign(state.begin(), state.end());
    entry.lru = lru_.begin();
    const std::size_t added = entry_bytes(logits.size(), state.size());
    bytes_ += added;
    result.bytes_added = added;
  }
  // Budget: shed least-recently-used entries, but never the one just
  // touched (front) — a budget below one entry degrades to a 1-entry
  // cache, not to an empty one.
  while (bytes_ > config_.byte_budget && map_.size() > 1) {
    evict_lru();
    ++result.evicted;
  }
  return result;
}

void PrefixCache::evict_lru() {
  RT_ASSERT(!lru_.empty(), "cache: evict on empty LRU list");
  const std::uint64_t victim = lru_.back();
  const auto it = map_.find(victim);
  RT_ASSERT(it != map_.end(), "cache: LRU tail missing from map");
  bytes_ -= entry_bytes(it->second.logits.size(), it->second.state.size());
  map_.erase(it);
  lru_.pop_back();
  ++evictions_;
}

void PrefixCache::clear() {
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace rtmobile::cache
