#include "runtime/scheduler.hpp"

#include <stdexcept>

namespace rtmobile::runtime {

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin: return "round-robin";
    case SchedulerPolicy::kEarliestDeadlineFirst: return "edf";
    case SchedulerPolicy::kLagAware: return "lag-aware";
  }
  return "?";
}

const char* to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kNone: return "none";
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kReject: return "reject";
  }
  return "?";
}

SchedulerPolicy parse_scheduler_policy(const std::string& name) {
  if (name == "round-robin") return SchedulerPolicy::kRoundRobin;
  if (name == "edf") return SchedulerPolicy::kEarliestDeadlineFirst;
  if (name == "lag-aware") return SchedulerPolicy::kLagAware;
  throw std::invalid_argument("unknown scheduler policy: " + name);
}

OverloadPolicy parse_overload_policy(const std::string& name) {
  if (name == "none") return OverloadPolicy::kNone;
  if (name == "shed") return OverloadPolicy::kShed;
  if (name == "reject") return OverloadPolicy::kReject;
  throw std::invalid_argument("unknown overload policy: " + name);
}

}  // namespace rtmobile::runtime
