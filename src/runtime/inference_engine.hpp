// Batched streaming inference engine: many concurrent audio streams, one
// CompiledSpeechModel.
//
// Each scheduling round (step) gathers at most one ready feature frame
// from up to max_batch sessions, stacks them into a single timestep
// batch, and advances all of those streams with one
// CompiledSpeechModel::step_batch call — which partitions the rows across
// the model's thread pool, so cross-stream work saturates cores even when
// each stream's matvecs are too small to thread individually. Logit rows
// are scattered back to their sessions, and a RuntimeStats collector
// tracks p50/p95 step latency, aggregate frames/sec, and the real-time
// factor.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "runtime/stats.hpp"
#include "runtime/streaming_session.hpp"
#include "speech/streaming_mfcc.hpp"

namespace rtmobile::runtime {

struct EngineConfig {
  /// Maximum streams advanced per step. Bounds tail latency: a stream
  /// never waits on more than max_batch - 1 peers per timestep.
  std::size_t max_batch = 32;
  /// Front-end defaults for sessions created without an explicit config
  /// (CMN disabled — it is whole-utterance and cannot stream).
  speech::MfccConfig mfcc = [] {
    speech::MfccConfig config;
    config.cepstral_mean_norm = false;
    return config;
  }();
};

class InferenceEngine {
 public:
  /// `model` must outlive the engine; its thread pool (if any) is what
  /// step_batch parallelizes over.
  explicit InferenceEngine(const CompiledSpeechModel& model,
                           EngineConfig config = EngineConfig{});

  /// Admits a new stream using the engine's default MFCC config (no
  /// in-loop decoding).
  StreamingSession& create_session();
  /// Admits a new stream with a per-session front-end config (no in-loop
  /// decoding).
  StreamingSession& create_session(const speech::MfccConfig& mfcc);
  /// Admits a new stream with a per-session front end and streaming
  /// decoder (decode.mode == kNone collects logits only).
  StreamingSession& create_session(
      const speech::MfccConfig& mfcc,
      const speech::StreamingDecoderConfig& decode);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] StreamingSession& session(std::size_t index);

  /// One scheduling round: advances up to max_batch streams by one frame.
  /// Returns the batch size (0 when no stream had a ready frame).
  std::size_t step();

  /// Pumps step() until no session has a ready frame; returns total
  /// frames processed. With all audio pushed and sessions finished, this
  /// completes every stream.
  std::size_t drain();

  /// Removes sessions that are done (audio finished, queue empty).
  /// Returns how many were reaped; live sessions keep their order.
  std::size_t remove_done();

  // ---- cross-engine session transfer (shard migration) ----
  /// Detaches the session at `index` and returns ownership; remaining
  /// sessions keep their relative order. The session still references
  /// this engine's model until adopted elsewhere.
  [[nodiscard]] std::unique_ptr<StreamingSession> release_session(
      std::size_t index);
  /// Same, addressed by the session pointer this engine handed out.
  [[nodiscard]] std::unique_ptr<StreamingSession> release_session(
      const StreamingSession* session);
  /// Takes ownership of a session released from another engine, rebinding
  /// it to this engine's model (dimensions must match). Its hidden state,
  /// queued frames, and logits carry over untouched.
  StreamingSession& adopt_session(std::unique_ptr<StreamingSession> session);

  // ---- load signal for shard routing ----
  /// Feature frames queued across all sessions and not yet stepped (the
  /// engine-internal backlog a shard publishes to its router).
  [[nodiscard]] std::size_t pending_frames() const;

  [[nodiscard]] const RuntimeStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// The compiled model this engine serves — capacity planners read its
  /// weight precision and storage footprint from here (a packed int8
  /// replica costs ~4x less resident weight memory than fp32, which is
  /// what decides how many replicas fit a NUMA domain).
  [[nodiscard]] const CompiledSpeechModel& model() const { return model_; }

 private:
  const CompiledSpeechModel& model_;
  EngineConfig config_;
  std::vector<std::unique_ptr<StreamingSession>> sessions_;
  std::size_t next_id_ = 0;
  std::size_t round_robin_ = 0;  // fairness cursor over sessions_
  RuntimeStats stats_;
  // Reused batch buffers, grown only when a step's batch exceeds them.
  Matrix batch_features_;
  Matrix batch_logits_;
  std::vector<StreamingSession*> active_;
  std::vector<StreamState*> states_;
};

}  // namespace rtmobile::runtime
