// Batched streaming inference engine: many concurrent audio streams, one
// CompiledSpeechModel.
//
// Each scheduling round (step) gathers at most one ready feature frame
// from up to max_batch sessions, stacks them into a single timestep
// batch, and advances all of those streams with one
// CompiledSpeechModel::step_batch call — which partitions the rows across
// the model's thread pool, so cross-stream work saturates cores even when
// each stream's matvecs are too small to thread individually. Logit rows
// are scattered back to their sessions, and a RuntimeStats collector
// tracks p50/p95 step latency, aggregate frames/sec, and the real-time
// factor.
//
// Which sessions a round serves is governed by a SchedulerPolicy:
// round-robin (the bit-identical historical default) scans from a
// rotating cursor; earliest-deadline-first and lag-aware order ready
// streams by how close each is to blowing its per-stream StreamDeadline
// budget or by how far behind real time its oldest frame already is.
// Under an OverloadPolicy the engine also acts on streams past their
// budget — shedding their overdue frames (kDegraded event) or rejecting
// the stream outright (kRejected event) — which is what bounds tail lag
// when offered load exceeds capacity. Every round additionally records
// the worst head-frame wait across ready streams into RuntimeStats::lag
// and counts deadline misses, for all policies, so round-robin's tail
// behavior under overload is measurable against the deadline-aware
// policies.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "compiler/gru_executor.hpp"
#include "runtime/clock.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"
#include "runtime/streaming_session.hpp"
#include "speech/streaming_mfcc.hpp"

namespace rtmobile::obs {
class Telemetry;
}

namespace rtmobile::fault {
class FaultInjector;
}

namespace rtmobile::runtime {

struct EngineConfig {
  /// Maximum streams advanced per step. Bounds tail latency: a stream
  /// never waits on more than max_batch - 1 peers per timestep.
  std::size_t max_batch = 32;
  /// How a scheduling round picks the streams it serves.
  SchedulerPolicy scheduler = SchedulerPolicy::kRoundRobin;
  /// What happens to streams that exceed their deadline budget, under
  /// any scheduler (kNone = accounting only).
  OverloadPolicy overload = OverloadPolicy::kNone;
  /// Time source for arrival stamps and lag (must outlive the engine);
  /// null = the shared-epoch monotonic wall clock.
  EngineClock* clock = nullptr;
  /// Retained-sample cap for the stats recorders (0 = keep every sample,
  /// the exact-quantile default; see LatencyRecorder::set_cap).
  std::size_t stats_sample_cap = 0;
  /// Observability sink (metrics counters + span traces); null keeps the
  /// engine observability-free (the historical default — cost is one
  /// branch). Shared across engines: counters are incremented in the
  /// same statements as the RuntimeStats fields they mirror, so shards
  /// pointed at one Telemetry sum into families whose totals equal the
  /// StatsAggregator's. Must outlive the engine.
  obs::Telemetry* telemetry = nullptr;
  /// Fault-injection harness (nullable — the production default). When
  /// set, step() asks the kEngineStep site before touching any state, so
  /// an injected fault leaves sessions replayable. `fault_key` is the
  /// identity the engine reports (ShardedEngine sets it to the shard
  /// index so a spec can kill one replica). Must outlive the engine.
  fault::FaultInjector* fault = nullptr;
  std::uint64_t fault_key = ~std::uint64_t{0};
  /// Prefix result cache (off by default). When enabled the engine owns
  /// a private cache::PrefixCache — one per engine, so each serving
  /// shard's replica caches shard-locally — and step() serves frames
  /// whose prefix chain matches a cached trajectory without touching
  /// step_batch (bit-identical by construction; the cache only skips
  /// compute). The kCacheLookup fault site gates every lookup, so an
  /// injected cache failure degrades to plain compute.
  cache::CacheConfig cache;
  /// Front-end defaults for sessions created without an explicit config
  /// (CMN disabled — it is whole-utterance and cannot stream).
  speech::MfccConfig mfcc = [] {
    speech::MfccConfig config;
    config.cepstral_mean_norm = false;
    return config;
  }();
};

class InferenceEngine {
 public:
  /// `model` must outlive the engine; its thread pool (if any) is what
  /// step_batch parallelizes over.
  explicit InferenceEngine(const CompiledSpeechModel& model,
                           EngineConfig config = EngineConfig{});

  /// Admits a new stream using the engine's default MFCC config (no
  /// in-loop decoding).
  StreamingSession& create_session();
  /// Admits a new stream with a per-session front-end config (no in-loop
  /// decoding).
  StreamingSession& create_session(const speech::MfccConfig& mfcc);
  /// Admits a new stream with a per-session front end and streaming
  /// decoder (decode.mode == kNone collects logits only).
  StreamingSession& create_session(
      const speech::MfccConfig& mfcc,
      const speech::StreamingDecoderConfig& decode);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] StreamingSession& session(std::size_t index);

  /// One scheduling round: advances up to max_batch streams by one frame,
  /// picked per the configured SchedulerPolicy (after the OverloadPolicy
  /// has shed or rejected streams past their budget). Returns the batch
  /// size (0 when no stream had a ready frame).
  ///
  /// Compute-panel stream order (pinned contract): the batch handed to
  /// CompiledSpeechModel::step_batch is exactly the scheduler's gather
  /// order — active_[b] becomes panel row b. When the model's fused
  /// batched step runs, that order is the panels' row order, so fp32
  /// output is bit-identical run to run under the deterministic
  /// round-robin default; cache-hit bursts and shed/finished streams
  /// simply never enter active_, shrinking the fused panel for that
  /// round. Whether a round fused or fell back (and the fused width) is
  /// recorded in stats() and mirrored to rt_fused_* telemetry.
  std::size_t step();

  /// Pumps step() until no session has a ready frame; returns total
  /// frames processed. With all audio pushed and sessions finished, this
  /// completes every stream.
  std::size_t drain();

  /// Removes sessions that are done (audio finished, queue empty).
  /// Returns how many were reaped; live sessions keep their order and
  /// the round-robin cursor keeps pointing at the same next stream.
  std::size_t remove_done();

  // ---- cross-engine session transfer (shard migration) ----
  /// Detaches the session at `index` and returns ownership; remaining
  /// sessions keep their relative order (and their place in the
  /// round-robin scan). The session still references this engine's model
  /// until adopted elsewhere.
  [[nodiscard]] std::unique_ptr<StreamingSession> release_session(
      std::size_t index);
  /// Same, addressed by the session pointer this engine handed out.
  [[nodiscard]] std::unique_ptr<StreamingSession> release_session(
      const StreamingSession* session);
  /// Takes ownership of a session released from another engine, rebinding
  /// it to this engine's model (dimensions must match) and clock. Its
  /// hidden state, queued frames (arrival stamps included), and logits
  /// carry over untouched.
  StreamingSession& adopt_session(std::unique_ptr<StreamingSession> session);

  // ---- load signals for shard routing ----
  /// Feature frames queued across all sessions and not yet stepped (the
  /// engine-internal backlog a shard publishes to its router).
  [[nodiscard]] std::size_t pending_frames() const;
  /// Worst head-frame wait across sessions right now, in seconds — the
  /// lag signal a shard publishes so the router can prefer the shard
  /// whose worst stream is least behind. 0 when nothing is queued.
  [[nodiscard]] double max_lag_seconds();

  [[nodiscard]] const RuntimeStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  [[nodiscard]] const EngineConfig& config() const { return config_; }
  /// The engine's time source (the configured override or the built-in
  /// wall clock) — what sessions stamp arrivals with.
  [[nodiscard]] EngineClock& clock() {
    return config_.clock != nullptr ? *config_.clock : wall_clock_;
  }

  /// The compiled model this engine serves — capacity planners read its
  /// weight precision and storage footprint from here (a packed int8
  /// replica costs ~4x less resident weight memory than fp32, which is
  /// what decides how many replicas fit a NUMA domain).
  [[nodiscard]] const CompiledSpeechModel& model() const { return model_; }

  /// The engine's prefix result cache (null when EngineConfig::cache is
  /// off) — tests and shard rebalancers read residency/eviction totals
  /// from here; per-frame hit/miss accounting lives in stats().
  [[nodiscard]] const cache::PrefixCache* cache() const {
    return cache_.get();
  }

 private:
  /// Serves every stream whose next frame(s) hit the prefix cache:
  /// restores the memoized post-step state, emits the memoized logits
  /// row, and pops the frame — no model compute. Returns frames served;
  /// accumulates their audio seconds into `audio_seconds`.
  std::size_t serve_cached(double& audio_seconds);
  /// Sheds/rejects streams past their budget per the overload policy.
  void apply_overload(double now_us);
  /// Fills active_ per the deadline-aware schedulers (EDF / lag-aware).
  void gather_by_priority();
  /// Records the per-round worst head-frame wait and counts deadline
  /// misses on the streams about to be served. Accounting only — never
  /// changes what was scheduled.
  void account_lag(double now_us);

  const CompiledSpeechModel& model_;
  EngineConfig config_;
  WallClock wall_clock_;  // fallback when config_.clock is null
  std::vector<std::unique_ptr<StreamingSession>> sessions_;
  std::size_t next_id_ = 0;
  std::size_t round_robin_ = 0;  // fairness cursor over sessions_
  RuntimeStats stats_;
  // Reused batch buffers, grown only when a step's batch exceeds them.
  Matrix batch_features_;
  Matrix batch_logits_;
  std::vector<StreamingSession*> active_;
  std::vector<StreamState*> states_;
  /// Priority-gather scratch: every ready session, sorted by deadline or
  /// lag (reused across steps like the batch buffers).
  std::vector<StreamingSession*> ready_;
  /// Prefix result cache (null unless config_.cache.enabled). Engine-
  /// owned: each serving shard's engine gets its own shard-local
  /// instance, touched only by the thread driving step().
  std::unique_ptr<cache::PrefixCache> cache_;
  /// Flattened hidden-state scratch for cache inserts (reused per step).
  std::vector<float> cache_state_scratch_;
};

}  // namespace rtmobile::runtime
