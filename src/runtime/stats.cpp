#include "runtime/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rtmobile::runtime {

double LatencyRecorder::mean_us() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (const double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

void LatencyRecorder::merge_from(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double LatencyRecorder::quantile_us(double q) const {
  RT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the ceil(q*n)-th smallest sample (1-based), q=0 -> min.
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t index =
      rank < 1.0 ? 0 : static_cast<std::size_t>(std::llround(rank)) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace rtmobile::runtime
