#include "runtime/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rtmobile::runtime {

void LatencyRecorder::set_cap(std::size_t cap) {
  RT_REQUIRE(cap == 0 || cap >= 2,
             "latency recorder: cap must be 0 (unbounded) or >= 2");
  cap_ = cap;
  if (cap_ == 0) return;
  while (samples_.size() >= cap_ && samples_.size() > 1) thin();
  // Resync the sampling grid with what has already been observed —
  // uncapped recording never advances next_keep_, so without this a
  // newly capped recorder would skip every future sample.
  next_keep_ = observed_ + stride_;
}

void LatencyRecorder::record(double value_us) {
  ++observed_;
  if (cap_ == 0) {
    samples_.push_back(value_us);
    return;
  }
  if (observed_ != next_keep_) return;  // off the sampling grid: skip
  samples_.push_back(value_us);
  next_keep_ += stride_;
  if (samples_.size() >= cap_) {
    thin();
    // Resume sampling from what has actually been observed (not a
    // from-observation-1 grid: merges splice in foreign sample sets, so
    // observed_ is the only anchor that never leaves the recorder
    // silent).
    next_keep_ = observed_ + stride_;
  }
}

void LatencyRecorder::thin() {
  std::size_t write = 0;
  for (std::size_t read = 0; read < samples_.size(); read += 2) {
    samples_[write++] = samples_[read];
  }
  samples_.resize(write);
  stride_ *= 2;
}

double LatencyRecorder::mean_us() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (const double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

void LatencyRecorder::merge_from(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  observed_ += other.observed_;
  if (cap_ == 0) return;
  stride_ = std::max(stride_, other.stride_);
  while (samples_.size() >= cap_ && samples_.size() > 1) thin();
  // Resume systematic sampling from here; the grids of the two inputs
  // cannot be reconciled exactly once either side has decimated.
  next_keep_ = observed_ + stride_;
}

void LatencyRecorder::reset() {
  samples_.clear();
  observed_ = 0;
  stride_ = 1;
  next_keep_ = 1;
}

obs::HistogramData LatencyRecorder::to_histogram(
    std::span<const double> upper_bounds) const {
  obs::HistogramData data;
  data.bounds.assign(upper_bounds.begin(), upper_bounds.end());
  data.cumulative.assign(data.bounds.size() + 1, 0);
  if (samples_.empty()) return data;
  // Per-bucket tallies first, cumulative sums at the end. Each retained
  // sample represents observed_/retained observations; the remainder is
  // assigned to the earliest slots so the weights are deterministic and
  // the bucket counts sum to count() exactly.
  const std::size_t retained = samples_.size();
  const std::uint64_t base = observed_ / retained;
  const std::uint64_t remainder = observed_ % retained;
  for (std::size_t i = 0; i < retained; ++i) {
    const std::uint64_t weight = base + (i < remainder ? 1 : 0);
    const auto bucket = static_cast<std::size_t>(
        std::lower_bound(data.bounds.begin(), data.bounds.end(),
                         samples_[i]) -
        data.bounds.begin());
    data.cumulative[bucket] += weight;
    data.sum += samples_[i] * static_cast<double>(weight);
  }
  for (std::size_t b = 1; b < data.cumulative.size(); ++b) {
    data.cumulative[b] += data.cumulative[b - 1];
  }
  data.count = observed_;
  return data;
}

double LatencyRecorder::quantile_us(double q) const {
  RT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the ceil(q*n)-th smallest sample (1-based), q=0 -> min.
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t index =
      rank < 1.0 ? 0 : static_cast<std::size_t>(std::llround(rank)) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace rtmobile::runtime
