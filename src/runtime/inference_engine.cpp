#include "runtime/inference_engine.hpp"

#include <algorithm>
#include <utility>

#include "hw/timer.hpp"
#include "util/check.hpp"

namespace rtmobile::runtime {

InferenceEngine::InferenceEngine(const CompiledSpeechModel& model,
                                 EngineConfig config)
    : model_(model), config_(std::move(config)) {
  RT_REQUIRE(config_.max_batch > 0, "engine: max_batch must be positive");
}

StreamingSession& InferenceEngine::create_session() {
  return create_session(config_.mfcc);
}

StreamingSession& InferenceEngine::create_session(
    const speech::MfccConfig& mfcc) {
  sessions_.push_back(
      std::make_unique<StreamingSession>(next_id_++, model_, mfcc));
  return *sessions_.back();
}

StreamingSession& InferenceEngine::create_session(
    const speech::MfccConfig& mfcc,
    const speech::StreamingDecoderConfig& decode) {
  sessions_.push_back(
      std::make_unique<StreamingSession>(next_id_++, model_, mfcc, decode));
  return *sessions_.back();
}

StreamingSession& InferenceEngine::session(std::size_t index) {
  RT_REQUIRE(index < sessions_.size(), "session index out of range");
  return *sessions_[index];
}

std::size_t InferenceEngine::step() {
  const std::size_t count = sessions_.size();
  if (count == 0) return 0;
  // Times the whole scheduling round — gather and scatter copies are part
  // of the serving cost the stats must reflect, not just the model step.
  WallTimer timer;

  // Gather one ready frame per session, round-robin so no stream starves
  // when more than max_batch are ready.
  active_.clear();
  for (std::size_t i = 0; i < count && active_.size() < config_.max_batch;
       ++i) {
    StreamingSession& candidate = *sessions_[(round_robin_ + i) % count];
    if (candidate.frame_ready()) active_.push_back(&candidate);
  }
  round_robin_ = (round_robin_ + 1) % count;
  if (active_.empty()) return 0;

  // Grow-only reuse: the ready count fluctuates step to step as streams
  // finish, so only ever enlarge; step_batch reads just the first rows.
  const std::size_t batch = active_.size();
  if (batch_features_.rows() < batch) {
    batch_features_ = Matrix(batch, model_.config().input_dim);
    batch_logits_ = Matrix(batch, model_.config().num_classes);
  }

  states_.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const float> frame = active_[b]->front_frame();
    std::copy(frame.begin(), frame.end(), batch_features_.row(b).begin());
    states_[b] = &active_[b]->state();
  }

  model_.step_batch(batch_features_, states_, batch_logits_);

  double audio_seconds = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    active_[b]->append_logits(batch_logits_.row(b));
    active_[b]->pop_frame();
    audio_seconds += active_[b]->seconds_per_frame();
  }

  const double elapsed_us = timer.elapsed_us();
  stats_.step_latency.record(elapsed_us);
  stats_.busy_us += elapsed_us;
  stats_.frames_processed += batch;
  stats_.steps += 1;
  stats_.audio_seconds += audio_seconds;
  return batch;
}

std::size_t InferenceEngine::drain() {
  std::size_t total = 0;
  while (true) {
    const std::size_t advanced = step();
    if (advanced == 0) return total;
    total += advanced;
  }
}

std::unique_ptr<StreamingSession> InferenceEngine::release_session(
    std::size_t index) {
  RT_REQUIRE(index < sessions_.size(), "release_session: index out of range");
  std::unique_ptr<StreamingSession> released = std::move(sessions_[index]);
  sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(index));
  if (sessions_.empty()) round_robin_ = 0;
  else round_robin_ %= sessions_.size();
  return released;
}

std::unique_ptr<StreamingSession> InferenceEngine::release_session(
    const StreamingSession* session) {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].get() == session) return release_session(i);
  }
  RT_REQUIRE(false, "release_session: session not owned by this engine");
  return nullptr;
}

StreamingSession& InferenceEngine::adopt_session(
    std::unique_ptr<StreamingSession> session) {
  RT_REQUIRE(session != nullptr, "adopt_session: null session");
  session->rebind(model_);
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

std::size_t InferenceEngine::pending_frames() const {
  std::size_t total = 0;
  for (const auto& session : sessions_) total += session->pending_frames();
  return total;
}

std::size_t InferenceEngine::remove_done() {
  const std::size_t before = sessions_.size();
  std::erase_if(sessions_,
                [](const std::unique_ptr<StreamingSession>& session) {
                  return session->done();
                });
  if (sessions_.empty()) round_robin_ = 0;
  else round_robin_ %= sessions_.size();
  return before - sessions_.size();
}

}  // namespace rtmobile::runtime
