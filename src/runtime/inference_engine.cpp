#include "runtime/inference_engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "fault/fault_injector.hpp"
#include "hw/timer.hpp"
#include "obs/telemetry.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace rtmobile::runtime {

InferenceEngine::InferenceEngine(const CompiledSpeechModel& model,
                                 EngineConfig config)
    : model_(model), config_(std::move(config)) {
  RT_REQUIRE(config_.max_batch > 0, "engine: max_batch must be positive");
  if (config_.stats_sample_cap != 0) {
    stats_.set_sample_cap(config_.stats_sample_cap);
  }
  if (config_.cache.enabled) {
    cache_ = std::make_unique<cache::PrefixCache>(config_.cache);
  }
}

StreamingSession& InferenceEngine::create_session() {
  return create_session(config_.mfcc);
}

StreamingSession& InferenceEngine::create_session(
    const speech::MfccConfig& mfcc) {
  return create_session(mfcc, speech::StreamingDecoderConfig::none());
}

StreamingSession& InferenceEngine::create_session(
    const speech::MfccConfig& mfcc,
    const speech::StreamingDecoderConfig& decode) {
  sessions_.push_back(
      std::make_unique<StreamingSession>(next_id_++, model_, mfcc, decode));
  sessions_.back()->set_clock(&clock());
  sessions_.back()->set_telemetry(config_.telemetry);
  return *sessions_.back();
}

StreamingSession& InferenceEngine::session(std::size_t index) {
  RT_REQUIRE(index < sessions_.size(), "session index out of range");
  return *sessions_[index];
}

void InferenceEngine::apply_overload(double now_us) {
  if (config_.overload == OverloadPolicy::kNone) return;
  for (const auto& session : sessions_) {
    if (!session->deadline().enabled() || session->rejected()) continue;
    if (!session->frame_ready()) continue;
    if (session->frame_wait_us(now_us) <= session->deadline().budget_us()) {
      continue;
    }
    if (config_.overload == OverloadPolicy::kShed) {
      const std::size_t shed = session->shed_overdue(now_us);
      stats_.shed_frames += shed;
      if (config_.telemetry != nullptr) {
        config_.telemetry->engine().shed_frames->add(shed);
      }
      RT_LOG(Debug, "engine") << "stream=" << session->id() << " shed "
                              << shed << " overdue frames";
    } else {
      const std::size_t shed = session->reject();
      stats_.shed_frames += shed;
      stats_.rejected_streams += 1;
      if (config_.telemetry != nullptr) {
        config_.telemetry->engine().shed_frames->add(shed);
        config_.telemetry->engine().rejected_streams->add(1);
      }
      RT_LOG(Info, "engine") << "stream=" << session->id()
                             << " rejected past deadline budget, dropped "
                             << shed << " frames";
    }
  }
}

void InferenceEngine::gather_by_priority() {
  ready_.clear();
  for (const auto& session : sessions_) {
    if (session->frame_ready()) ready_.push_back(session.get());
  }
  const bool edf =
      config_.scheduler == SchedulerPolicy::kEarliestDeadlineFirst;
  // EDF: serve the stream whose head-frame deadline (arrival + budget)
  // expires first; budgetless streams sort after every deadlined one,
  // oldest head frame first. Lag-aware: serve the most-behind stream
  // (oldest head-frame arrival) first. Both keys are arrival-derived, so
  // they are stable within a round; ties break by admission id for a
  // deterministic total order.
  auto key = [edf](const StreamingSession* s) {
    const double arrival = s->oldest_arrival_us();
    if (!edf) return arrival;
    return s->deadline().enabled()
               ? arrival + s->deadline().budget_us()
               : std::numeric_limits<double>::infinity();
  };
  const std::size_t take = std::min(ready_.size(), config_.max_batch);
  // Only the served prefix needs ordering: O(N log take) per round, not
  // a full sort of every ready stream in the overload regime.
  std::partial_sort(
      ready_.begin(), ready_.begin() + static_cast<std::ptrdiff_t>(take),
      ready_.end(),
      [&key, edf](const StreamingSession* a, const StreamingSession* b) {
        const double ka = key(a);
        const double kb = key(b);
        if (ka != kb) return ka < kb;
        // EDF tie (same deadline, e.g. both budgetless): the more
        // behind stream first, then id.
        if (edf && a->oldest_arrival_us() != b->oldest_arrival_us()) {
          return a->oldest_arrival_us() < b->oldest_arrival_us();
        }
        return a->id() < b->id();
      });
  active_.assign(ready_.begin(),
                 ready_.begin() + static_cast<std::ptrdiff_t>(take));
}

void InferenceEngine::account_lag(double now_us) {
  double max_wait_us = 0.0;
  bool any_ready = false;
  for (const auto& session : sessions_) {
    if (!session->frame_ready()) continue;
    any_ready = true;
    max_wait_us = std::max(max_wait_us, session->frame_wait_us(now_us));
  }
  obs::Telemetry* telemetry = config_.telemetry;
  if (any_ready) {
    stats_.lag.record(max_wait_us);
    if (telemetry != nullptr) {
      telemetry->engine().lag_us->observe(max_wait_us);
    }
  }
  for (StreamingSession* session : active_) {
    if (session->deadline().enabled() &&
        session->frame_wait_us(now_us) > session->deadline().budget_us()) {
      stats_.deadline_misses += 1;
      session->note_deadline_miss();
      if (telemetry != nullptr) {
        telemetry->engine().deadline_misses->add(1);
        // A blown budget is the trigger for slow-stream exemplar
        // capture: freeze this stream's span trace before the rings
        // overwrite it.
        telemetry->trace().capture_exemplar(session->id(),
                                            session->frame_wait_us(now_us));
      }
    }
  }
}

std::size_t InferenceEngine::serve_cached(double& audio_seconds) {
  obs::Telemetry* telemetry = config_.telemetry;
  obs::TraceCollector* trace =
      telemetry != nullptr ? &telemetry->trace() : nullptr;
  std::size_t served = 0;
  for (const auto& session : sessions_) {
    std::size_t burst = 0;
    while (session->frame_ready() &&
           (config_.cache.max_hit_burst == 0 ||
            burst < config_.cache.max_hit_burst)) {
      // The injection point makes a poisoned lookup indistinguishable
      // from a miss: the frame falls through to plain compute below.
      if (config_.fault != nullptr &&
          config_.fault->should_fire(fault::Site::kCacheLookup,
                                     config_.fault_key)) {
        break;
      }
      cache::PrefixCursor next = session->prefix_cursor();
      next.advance(session->front_frame(), config_.cache.quant_scale);
      const cache::PrefixCache::Entry* entry = cache_->lookup(next);
      if (entry == nullptr) break;
      RT_SPAN(trace, kDecode, session->id());
      // Mirror the compute path's observable order exactly — state, then
      // the logits row (which feeds the in-loop decoder), then the frame
      // pop — so the event stream is bitwise what compute would emit.
      session->restore_state(entry->state);
      session->append_logits(entry->logits);
      session->pop_frame();
      session->prefix_cursor() = next;
      audio_seconds += session->seconds_per_frame();
      ++served;
      ++burst;
      stats_.cache_hits += 1;
      stats_.cache_skipped_steps += 1;
      if (telemetry != nullptr) {
        telemetry->cache().hits->add(1);
        telemetry->cache().skipped_steps->add(1);
      }
    }
  }
  return served;
}

std::size_t InferenceEngine::step() {
  // The injection point sits before any state mutation: an injected
  // engine fault leaves every session exactly as the previous round
  // published it, which is what makes failover replay bit-identical.
  if (config_.fault != nullptr &&
      config_.fault->should_fire(fault::Site::kEngineStep,
                                 config_.fault_key)) {
    throw fault::FaultInjected("injected engine-step fault");
  }
  const std::size_t count = sessions_.size();
  if (count == 0) return 0;
  // Times the whole scheduling round — gather and scatter copies are part
  // of the serving cost the stats must reflect, not just the model step.
  WallTimer timer;
  const double now_us = clock().now_us();

  // Overload actions run under every scheduler (shedding removes
  // overdue frames, never reorders the gather); with the default
  // OverloadPolicy::kNone this is a no-op, so the round-robin default
  // stays bit-identical.
  apply_overload(now_us);

  // Cached pre-pass: streams whose next frame(s) extend a memoized
  // trajectory are served here without model compute, freeing the batch
  // below for streams that actually need step_batch. With the cache off
  // (the default) this is one null check.
  double audio_seconds = 0.0;
  const std::size_t cached =
      cache_ != nullptr ? serve_cached(audio_seconds) : 0;

  active_.clear();
  if (config_.scheduler == SchedulerPolicy::kRoundRobin) {
    // Gather one ready frame per session, round-robin so no stream
    // starves when more than max_batch are ready. (Bit-identical to the
    // historical scheduler; lag accounting below never reorders it.)
    for (std::size_t i = 0; i < count && active_.size() < config_.max_batch;
         ++i) {
      StreamingSession& candidate = *sessions_[(round_robin_ + i) % count];
      if (candidate.frame_ready()) active_.push_back(&candidate);
    }
    round_robin_ = (round_robin_ + 1) % count;
  } else {
    gather_by_priority();
  }
  account_lag(now_us);
  if (active_.empty() && cached == 0) return 0;

  obs::Telemetry* telemetry = config_.telemetry;
  obs::TraceCollector* trace =
      telemetry != nullptr ? &telemetry->trace() : nullptr;

  // Grow-only reuse: the ready count fluctuates step to step as streams
  // finish, so only ever enlarge; step_batch reads just the first rows.
  const std::size_t batch = active_.size();
  if (batch > 0) {
    if (batch_features_.rows() < batch) {
      batch_features_ = Matrix(batch, model_.config().input_dim);
      batch_logits_ = Matrix(batch, model_.config().num_classes);
    }

    states_.resize(batch);
    {
      // Panel row b is active_[b]: the scheduler's gather order (round-
      // robin scan or priority order) is the fused step's pinned stream
      // order, so fp32 results are reproducible run to run — the fused
      // kernels additionally keep each stream bit-identical regardless
      // of which peers share its panel.
      RT_SPAN(trace, kGather, obs::kNoStream);
      for (std::size_t b = 0; b < batch; ++b) {
        const std::span<const float> frame = active_[b]->front_frame();
        std::copy(frame.begin(), frame.end(),
                  batch_features_.row(b).begin());
        states_[b] = &active_[b]->state();
      }
    }

    {
      RT_SPAN(trace, kLayerStep, obs::kNoStream);
      const StepResult result =
          model_.step_batch(batch_features_, states_, batch_logits_);
      if (result.fused) {
        stats_.fused_steps += 1;
        stats_.fused_width.record(static_cast<double>(result.width));
        if (telemetry != nullptr) {
          telemetry->engine().fused_steps->add(1);
          telemetry->engine().fused_batch_width->observe(
              static_cast<double>(result.width));
        }
      } else {
        stats_.fallback_steps += 1;
        if (telemetry != nullptr) {
          telemetry->engine().fallback_steps->add(1);
        }
      }
    }

    for (std::size_t b = 0; b < batch; ++b) {
      RT_SPAN(trace, kDecode, active_[b]->id());
      // Advance the prefix chain over the frame being consumed before it
      // is popped; the cursor then names the trajectory this row extends.
      if (cache_ != nullptr) {
        active_[b]->prefix_cursor().advance(active_[b]->front_frame(),
                                            config_.cache.quant_scale);
      }
      active_[b]->append_logits(batch_logits_.row(b));
      active_[b]->pop_frame();
      audio_seconds += active_[b]->seconds_per_frame();
      if (cache_ != nullptr) {
        // Memoize this step so an identical prefix replays it: the row
        // plus the post-step hidden state the next frame resumes from.
        active_[b]->capture_state(cache_state_scratch_);
        const cache::PrefixCache::InsertResult inserted = cache_->insert(
            active_[b]->prefix_cursor(), batch_logits_.row(b),
            cache_state_scratch_);
        stats_.cache_misses += 1;
        stats_.cache_evictions += inserted.evicted;
        if (telemetry != nullptr) {
          telemetry->cache().misses->add(1);
          telemetry->cache().evictions->add(inserted.evicted);
          telemetry->cache().inserted_bytes->add(inserted.bytes_added);
        }
      }
    }
  }

  if (cache_ != nullptr) {
    stats_.cache_bytes = cache_->bytes();
    if (telemetry != nullptr) {
      telemetry->cache().resident_bytes->set(
          static_cast<double>(cache_->bytes()));
    }
  }

  const double elapsed_us = timer.elapsed_us();
  stats_.step_latency.record(elapsed_us);
  stats_.busy_us += elapsed_us;
  stats_.frames_processed += batch + cached;
  stats_.steps += 1;
  stats_.audio_seconds += audio_seconds;
  if (telemetry != nullptr) {
    // Mirrors of the stats_ updates just above, one for one, so a
    // /metrics scrape equals the StatsAggregator totals exactly.
    obs::EngineMetrics& m = telemetry->engine();
    m.step_latency_us->observe(elapsed_us);
    m.busy_us->add(elapsed_us);
    m.frames->add(batch + cached);
    m.steps->add(1);
    m.audio_seconds->add(audio_seconds);
  }
  return batch + cached;
}

std::size_t InferenceEngine::drain() {
  std::size_t total = 0;
  while (true) {
    const std::size_t advanced = step();
    if (advanced == 0) return total;
    total += advanced;
  }
}

std::unique_ptr<StreamingSession> InferenceEngine::release_session(
    std::size_t index) {
  RT_REQUIRE(index < sessions_.size(), "release_session: index out of range");
  std::unique_ptr<StreamingSession> released = std::move(sessions_[index]);
  sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(index));
  if (sessions_.empty()) {
    round_robin_ = 0;
  } else {
    // Erasing below the cursor shifts the sessions it was about to scan
    // one slot down; follow them so no stream loses its turn.
    if (index < round_robin_) --round_robin_;
    round_robin_ %= sessions_.size();
  }
  return released;
}

std::unique_ptr<StreamingSession> InferenceEngine::release_session(
    const StreamingSession* session) {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].get() == session) return release_session(i);
  }
  RT_REQUIRE(false, "release_session: session not owned by this engine");
  return nullptr;
}

StreamingSession& InferenceEngine::adopt_session(
    std::unique_ptr<StreamingSession> session) {
  RT_REQUIRE(session != nullptr, "adopt_session: null session");
  session->rebind(model_);
  session->set_clock(&clock());
  session->set_telemetry(config_.telemetry);
  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

std::size_t InferenceEngine::pending_frames() const {
  std::size_t total = 0;
  for (const auto& session : sessions_) total += session->pending_frames();
  return total;
}

double InferenceEngine::max_lag_seconds() {
  const double now_us = clock().now_us();
  double max_wait_us = 0.0;
  for (const auto& session : sessions_) {
    if (!session->frame_ready()) continue;
    max_wait_us = std::max(max_wait_us, session->frame_wait_us(now_us));
  }
  return max_wait_us * 1e-6;
}

std::size_t InferenceEngine::remove_done() {
  const std::size_t before = sessions_.size();
  // Compact in place, counting removals below the cursor so it keeps
  // pointing at the same next session (erase_if + a blind clamp would
  // skip the streams that shifted under it).
  std::size_t erased_below_cursor = 0;
  std::size_t write = 0;
  for (std::size_t read = 0; read < sessions_.size(); ++read) {
    if (sessions_[read]->done()) {
      if (read < round_robin_) ++erased_below_cursor;
      continue;
    }
    if (write != read) sessions_[write] = std::move(sessions_[read]);
    ++write;
  }
  sessions_.resize(write);
  if (sessions_.empty()) {
    round_robin_ = 0;
  } else {
    round_robin_ = (round_robin_ - erased_below_cursor) % sessions_.size();
  }
  return before - sessions_.size();
}

}  // namespace rtmobile::runtime
