// Scheduling-policy knobs for the batched streaming engine.
//
// The engine's scheduling round picks which streams advance this step.
// Round-robin treats every stream equally — under overload every stream
// degrades together and tail lag is unbounded. The deadline-aware
// policies instead read each stream's real-time lag (how long its oldest
// queued frame has waited, see StreamingSession::lag_seconds) and a
// per-stream deadline budget, prioritizing the streams that are closest
// to (or furthest past) falling behind the audio clock. The overload
// policy decides what happens to streams that blow their budget anyway:
// nothing, shed (drop the overdue frames so the stream snaps back under
// budget, emitting a kDegraded event), or reject (terminate the stream
// with a kRejected event so its capacity goes to streams still inside
// their budgets).
#pragma once

#include <cstdint>
#include <string>

namespace rtmobile::runtime {

enum class SchedulerPolicy : std::uint8_t {
  /// Scan streams in admission order from a rotating cursor — the
  /// bit-identical historical default.
  kRoundRobin,
  /// Serve the stream whose head-frame deadline (arrival + budget)
  /// expires first; streams without a budget run after every deadlined
  /// stream, oldest head frame first.
  kEarliestDeadlineFirst,
  /// Serve the most-behind stream (longest head-frame wait) first.
  kLagAware,
};

enum class OverloadPolicy : std::uint8_t {
  kNone,    // budgets are accounting only (misses counted, nothing acts)
  kShed,    // drop frames older than the budget; stream continues degraded
  kReject,  // terminate streams that exceed their budget
};

[[nodiscard]] const char* to_string(SchedulerPolicy policy);
[[nodiscard]] const char* to_string(OverloadPolicy policy);
/// Parses "round-robin" / "edf" / "lag-aware"; throws
/// std::invalid_argument otherwise.
[[nodiscard]] SchedulerPolicy parse_scheduler_policy(const std::string& name);
/// Parses "none" / "shed" / "reject"; throws std::invalid_argument
/// otherwise.
[[nodiscard]] OverloadPolicy parse_overload_policy(const std::string& name);

/// Per-stream real-time budget: how long a queued frame may wait before
/// the stream counts as behind real time (a deadline miss) and the
/// engine's overload policy may act on it.
struct StreamDeadline {
  /// Maximum head-frame wait in seconds; 0 disables (the stream never
  /// misses and is never shed or rejected).
  double budget_seconds = 0.0;

  [[nodiscard]] bool enabled() const { return budget_seconds > 0.0; }
  [[nodiscard]] double budget_us() const { return budget_seconds * 1e6; }
};

}  // namespace rtmobile::runtime
