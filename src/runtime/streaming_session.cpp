#include "runtime/streaming_session.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace rtmobile::runtime {

StreamingSession::StreamingSession(std::size_t id,
                                   const CompiledSpeechModel& model,
                                   const speech::MfccConfig& mfcc,
                                   const speech::StreamingDecoderConfig& decode)
    : id_(id), model_(&model), mfcc_(mfcc), state_(model.make_state()) {
  RT_REQUIRE(mfcc_.feature_dim() == model.config().input_dim,
             "session: MFCC feature dimension must match model input");
  if (decode.mode != speech::DecodeMode::kNone) {
    decoder_.emplace(model.config().num_classes, decode);
  }
  // Seed the prefix chain from the (zero) initial hidden state, so a
  // cached trajectory can only ever match a stream that started from the
  // same state a fresh stream does.
  std::vector<float> flat;
  capture_state(flat);
  prefix_cursor_ = cache::PrefixCursor::from_state(flat);
}

StreamingSession::StreamingSession(std::size_t id,
                                   const CompiledSpeechModel& model,
                                   const speech::MfccConfig& mfcc)
    : StreamingSession(id, model, mfcc,
                       speech::StreamingDecoderConfig::none()) {}

void StreamingSession::rebind(const CompiledSpeechModel& model) {
  const ModelConfig& from = model_->config();
  const ModelConfig& to = model.config();
  RT_REQUIRE(from.input_dim == to.input_dim &&
                 from.hidden_dim == to.hidden_dim &&
                 from.num_layers == to.num_layers &&
                 from.num_classes == to.num_classes,
             "rebind: model dimensions must match");
  model_ = &model;
}

void StreamingSession::push_audio(std::span<const float> samples) {
  if (rejected_) return;  // terminated stream: audio is dropped
  RT_SPAN(telemetry_ != nullptr ? &telemetry_->trace() : nullptr, kMfcc,
          id_);
  mfcc_.push(samples);
  drain_front_end();
}

void StreamingSession::finish() {
  if (rejected_) return;
  RT_SPAN(telemetry_ != nullptr ? &telemetry_->trace() : nullptr, kMfcc,
          id_);
  mfcc_.finish();
  drain_front_end();
  // An utterance whose frames were all served before finish() (or that
  // produced none at all) completes here, not in pop_frame.
  maybe_finish_decoder();
}

void StreamingSession::drain_front_end() {
  const std::size_t dim = mfcc_.feature_dim();
  const double now_us = clock_ != nullptr ? clock_->now_us() : 0.0;
  while (mfcc_.ready_frames() > 0) {
    pending_.emplace_back(dim);  // written in place: no intermediate copy
    const bool popped =
        mfcc_.pop_row({pending_.back().data(), pending_.back().size()});
    RT_ASSERT(popped, "ready front end must yield a row");
    arrival_us_.push_back(now_us);
  }
}

std::span<const float> StreamingSession::front_frame() const {
  RT_REQUIRE(!pending_.empty(), "front_frame: no frame queued");
  return {pending_.front().data(), pending_.front().size()};
}

void StreamingSession::pop_frame() {
  RT_REQUIRE(!pending_.empty(), "pop_frame: no frame queued");
  pending_.pop_front();
  arrival_us_.pop_front();
  // The engine appends this frame's logits before popping it, so the
  // stream's last row has been decoded by the time done() flips here.
  maybe_finish_decoder();
}

void StreamingSession::append_logits(std::span<const float> row) {
  RT_REQUIRE(row.size() == model_->config().num_classes,
             "append_logits: row width mismatch");
  logits_.insert(logits_.end(), row.begin(), row.end());
  ++frames_done_;
  if (decoder_.has_value()) decoder_->push_row(row);
}

// ------------------------------------------------- prefix-cache snapshots

std::size_t StreamingSession::state_size() const {
  std::size_t total = 0;
  for (const Vector& layer : state_.h) total += layer.size();
  return total;
}

void StreamingSession::capture_state(std::vector<float>& out) const {
  out.clear();
  out.reserve(state_size());
  for (const Vector& layer : state_.h) {
    out.insert(out.end(), layer.data(), layer.data() + layer.size());
  }
}

void StreamingSession::restore_state(std::span<const float> snapshot) {
  RT_REQUIRE(snapshot.size() == state_size(),
             "restore_state: snapshot size mismatch");
  std::size_t offset = 0;
  for (Vector& layer : state_.h) {
    std::copy(snapshot.begin() + static_cast<std::ptrdiff_t>(offset),
              snapshot.begin() +
                  static_cast<std::ptrdiff_t>(offset + layer.size()),
              layer.data());
    offset += layer.size();
  }
}

// ------------------------------------------------- real-time clock model

double StreamingSession::lag_seconds() {
  if (pending_.empty() || clock_ == nullptr) return 0.0;
  return frame_wait_us(clock_->now_us()) * 1e-6;
}

double StreamingSession::frame_wait_us(double now_us) const {
  RT_REQUIRE(!pending_.empty(), "frame_wait_us: no frame queued");
  return std::max(0.0, now_us - arrival_us_.front());
}

double StreamingSession::oldest_arrival_us() const {
  RT_REQUIRE(!pending_.empty(), "oldest_arrival_us: no frame queued");
  return arrival_us_.front();
}

std::size_t StreamingSession::shed_overdue(double now_us) {
  if (!deadline_.enabled()) return 0;
  const double budget_us = deadline_.budget_us();
  std::size_t dropped = 0;
  while (!pending_.empty() && now_us - arrival_us_.front() > budget_us) {
    pending_.pop_front();
    arrival_us_.pop_front();
    ++dropped;
  }
  if (dropped > 0) {
    shed_frames_ += dropped;
    push_control_event(speech::StreamEventKind::kDegraded, dropped,
                       /*is_final=*/false);
    // A shed that empties the queue of a finished stream completes it.
    maybe_finish_decoder();
  }
  return dropped;
}

std::size_t StreamingSession::reject() {
  if (rejected_) return 0;
  const std::size_t dropped = pending_.size();
  pending_.clear();
  arrival_us_.clear();
  shed_frames_ += dropped;
  // Finalize the decoder over the frames already served so the client's
  // last hypothesis event precedes the terminal rejection event.
  if (decoder_.has_value() && !decoder_->finished()) decoder_->finish();
  rejected_ = true;
  push_control_event(speech::StreamEventKind::kRejected, dropped,
                     /*is_final=*/true);
  return dropped;
}

void StreamingSession::push_control_event(speech::StreamEventKind kind,
                                          std::size_t dropped,
                                          bool is_final) {
  // Fold the decoder's already-emitted events in first, so a poll sees
  // every event in emission order (a kDegraded lands before hypotheses
  // the decoder produces afterwards, keeping `frames` monotonic).
  if (decoder_.has_value()) decoder_->poll_events(queued_events_);
  speech::StreamEvent event;
  event.kind = kind;
  event.frames = frames_done_;
  event.dropped_frames = dropped;
  event.is_final = is_final;
  queued_events_.push_back(std::move(event));
}

// ------------------------------------------------------ decode & results

void StreamingSession::maybe_finish_decoder() {
  if (decoder_.has_value() && !decoder_->finished() && done()) {
    decoder_->finish();
  }
}

std::size_t StreamingSession::poll_events(
    std::vector<speech::StreamEvent>& out) {
  // Session-queued events predate whatever the decoder has emitted
  // since (push_control_event folds the decoder queue in), so this
  // order is emission order.
  std::size_t moved = queued_events_.size();
  out.insert(out.end(), std::make_move_iterator(queued_events_.begin()),
             std::make_move_iterator(queued_events_.end()));
  queued_events_.clear();
  if (decoder_.has_value()) moved += decoder_->poll_events(out);
  return moved;
}

const speech::StreamingDecoder& StreamingSession::decoder() const {
  RT_REQUIRE(decoder_.has_value(),
             "session: no streaming decoder configured (mode kNone)");
  return *decoder_;
}

std::vector<std::uint16_t> StreamingSession::hypothesis() const {
  return decoder().hypothesis();
}

double StreamingSession::audio_seconds_processed() const {
  return static_cast<double>(frames_done_) * seconds_per_frame();
}

double StreamingSession::seconds_per_frame() const {
  const speech::MfccConfig& cfg = mfcc_.config();
  return static_cast<double>(cfg.frame_shift) / cfg.sample_rate_hz;
}

Matrix StreamingSession::logits() const {
  const std::size_t classes = model_->config().num_classes;
  Matrix out(frames_done_, classes);
  std::copy(logits_.begin(), logits_.end(), out.data());
  return out;
}

}  // namespace rtmobile::runtime
