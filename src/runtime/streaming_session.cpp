#include "runtime/streaming_session.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmobile::runtime {

StreamingSession::StreamingSession(std::size_t id,
                                   const CompiledSpeechModel& model,
                                   const speech::MfccConfig& mfcc)
    : id_(id), model_(&model), mfcc_(mfcc), state_(model.make_state()) {
  RT_REQUIRE(mfcc_.feature_dim() == model.config().input_dim,
             "session: MFCC feature dimension must match model input");
}

void StreamingSession::rebind(const CompiledSpeechModel& model) {
  const ModelConfig& from = model_->config();
  const ModelConfig& to = model.config();
  RT_REQUIRE(from.input_dim == to.input_dim &&
                 from.hidden_dim == to.hidden_dim &&
                 from.num_layers == to.num_layers &&
                 from.num_classes == to.num_classes,
             "rebind: model dimensions must match");
  model_ = &model;
}

void StreamingSession::push_audio(std::span<const float> samples) {
  mfcc_.push(samples);
  drain_front_end();
}

void StreamingSession::finish() {
  mfcc_.finish();
  drain_front_end();
}

void StreamingSession::drain_front_end() {
  const std::size_t dim = mfcc_.feature_dim();
  while (mfcc_.ready_frames() > 0) {
    pending_.emplace_back(dim);  // written in place: no intermediate copy
    const bool popped =
        mfcc_.pop_row({pending_.back().data(), pending_.back().size()});
    RT_ASSERT(popped, "ready front end must yield a row");
  }
}

std::span<const float> StreamingSession::front_frame() const {
  RT_REQUIRE(!pending_.empty(), "front_frame: no frame queued");
  return {pending_.front().data(), pending_.front().size()};
}

void StreamingSession::pop_frame() {
  RT_REQUIRE(!pending_.empty(), "pop_frame: no frame queued");
  pending_.pop_front();
}

void StreamingSession::append_logits(std::span<const float> row) {
  RT_REQUIRE(row.size() == model_->config().num_classes,
             "append_logits: row width mismatch");
  logits_.insert(logits_.end(), row.begin(), row.end());
  ++frames_done_;
}

double StreamingSession::audio_seconds_processed() const {
  return static_cast<double>(frames_done_) * seconds_per_frame();
}

double StreamingSession::seconds_per_frame() const {
  const speech::MfccConfig& cfg = mfcc_.config();
  return static_cast<double>(cfg.frame_shift) / cfg.sample_rate_hz;
}

Matrix StreamingSession::logits() const {
  const std::size_t classes = model_->config().num_classes;
  Matrix out(frames_done_, classes);
  std::copy(logits_.begin(), logits_.end(), out.data());
  return out;
}

}  // namespace rtmobile::runtime
