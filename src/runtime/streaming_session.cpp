#include "runtime/streaming_session.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmobile::runtime {

StreamingSession::StreamingSession(std::size_t id,
                                   const CompiledSpeechModel& model,
                                   const speech::MfccConfig& mfcc,
                                   const speech::StreamingDecoderConfig& decode)
    : id_(id), model_(&model), mfcc_(mfcc), state_(model.make_state()) {
  RT_REQUIRE(mfcc_.feature_dim() == model.config().input_dim,
             "session: MFCC feature dimension must match model input");
  if (decode.mode != speech::DecodeMode::kNone) {
    decoder_.emplace(model.config().num_classes, decode);
  }
}

StreamingSession::StreamingSession(std::size_t id,
                                   const CompiledSpeechModel& model,
                                   const speech::MfccConfig& mfcc)
    : StreamingSession(id, model, mfcc,
                       speech::StreamingDecoderConfig::none()) {}

void StreamingSession::rebind(const CompiledSpeechModel& model) {
  const ModelConfig& from = model_->config();
  const ModelConfig& to = model.config();
  RT_REQUIRE(from.input_dim == to.input_dim &&
                 from.hidden_dim == to.hidden_dim &&
                 from.num_layers == to.num_layers &&
                 from.num_classes == to.num_classes,
             "rebind: model dimensions must match");
  model_ = &model;
}

void StreamingSession::push_audio(std::span<const float> samples) {
  mfcc_.push(samples);
  drain_front_end();
}

void StreamingSession::finish() {
  mfcc_.finish();
  drain_front_end();
  // An utterance whose frames were all served before finish() (or that
  // produced none at all) completes here, not in pop_frame.
  maybe_finish_decoder();
}

void StreamingSession::drain_front_end() {
  const std::size_t dim = mfcc_.feature_dim();
  while (mfcc_.ready_frames() > 0) {
    pending_.emplace_back(dim);  // written in place: no intermediate copy
    const bool popped =
        mfcc_.pop_row({pending_.back().data(), pending_.back().size()});
    RT_ASSERT(popped, "ready front end must yield a row");
  }
}

std::span<const float> StreamingSession::front_frame() const {
  RT_REQUIRE(!pending_.empty(), "front_frame: no frame queued");
  return {pending_.front().data(), pending_.front().size()};
}

void StreamingSession::pop_frame() {
  RT_REQUIRE(!pending_.empty(), "pop_frame: no frame queued");
  pending_.pop_front();
  // The engine appends this frame's logits before popping it, so the
  // stream's last row has been decoded by the time done() flips here.
  maybe_finish_decoder();
}

void StreamingSession::append_logits(std::span<const float> row) {
  RT_REQUIRE(row.size() == model_->config().num_classes,
             "append_logits: row width mismatch");
  logits_.insert(logits_.end(), row.begin(), row.end());
  ++frames_done_;
  if (decoder_.has_value()) decoder_->push_row(row);
}

void StreamingSession::maybe_finish_decoder() {
  if (decoder_.has_value() && !decoder_->finished() && done()) {
    decoder_->finish();
  }
}

std::size_t StreamingSession::poll_events(
    std::vector<speech::StreamEvent>& out) {
  return decoder_.has_value() ? decoder_->poll_events(out) : 0;
}

const speech::StreamingDecoder& StreamingSession::decoder() const {
  RT_REQUIRE(decoder_.has_value(),
             "session: no streaming decoder configured (mode kNone)");
  return *decoder_;
}

std::vector<std::uint16_t> StreamingSession::hypothesis() const {
  return decoder().hypothesis();
}

double StreamingSession::audio_seconds_processed() const {
  return static_cast<double>(frames_done_) * seconds_per_frame();
}

double StreamingSession::seconds_per_frame() const {
  const speech::MfccConfig& cfg = mfcc_.config();
  return static_cast<double>(cfg.frame_shift) / cfg.sample_rate_hz;
}

Matrix StreamingSession::logits() const {
  const std::size_t classes = model_->config().num_classes;
  Matrix out(frames_done_, classes);
  std::copy(logits_.begin(), logits_.end(), out.data());
  return out;
}

}  // namespace rtmobile::runtime
