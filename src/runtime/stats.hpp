// Latency/throughput accounting for the streaming runtime.
//
// LatencyRecorder keeps every sample so quantiles are exact; at one entry
// per engine step (not per matvec) the memory cost is negligible against
// the audio being served. RuntimeStats aggregates what the ISSUE's
// serving story needs: p50/p95 step latency, frames/sec, and the
// real-time factor (audio seconds processed per wall second — > 1 means
// faster than real time).
#pragma once

#include <cstddef>
#include <vector>

namespace rtmobile::runtime {

class LatencyRecorder {
 public:
  void record(double value_us) { samples_.push_back(value_us); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean_us() const;
  /// Exact quantile by nearest-rank; q in [0, 1]. Returns 0 when empty.
  [[nodiscard]] double quantile_us(double q) const;
  [[nodiscard]] double p50_us() const { return quantile_us(0.50); }
  [[nodiscard]] double p95_us() const { return quantile_us(0.95); }

  /// Absorbs another recorder's samples. Because every sample is kept,
  /// merging is exact: quantiles of merge(a, b) equal quantiles computed
  /// over the union of a's and b's samples — the identity cross-shard
  /// aggregation relies on.
  void merge_from(const LatencyRecorder& other);

  void reset() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

struct RuntimeStats {
  LatencyRecorder step_latency;   // one sample per InferenceEngine::step
  std::size_t frames_processed = 0;
  std::size_t steps = 0;
  double busy_us = 0.0;           // wall time spent inside step()
  double audio_seconds = 0.0;     // audio represented by processed frames

  [[nodiscard]] double frames_per_second() const {
    return busy_us > 0.0
               ? static_cast<double>(frames_processed) / (busy_us * 1e-6)
               : 0.0;
  }
  /// Aggregate real-time factor across all streams.
  [[nodiscard]] double real_time_factor() const {
    return busy_us > 0.0 ? audio_seconds / (busy_us * 1e-6) : 0.0;
  }
  [[nodiscard]] double mean_batch() const {
    return steps > 0 ? static_cast<double>(frames_processed) /
                           static_cast<double>(steps)
                     : 0.0;
  }

  /// Accumulates another engine's stats into this one. Counters add and
  /// latency samples concatenate, so merging the stats of disjoint
  /// workload splits yields exactly the stats of the whole workload.
  void merge_from(const RuntimeStats& other) {
    step_latency.merge_from(other.step_latency);
    frames_processed += other.frames_processed;
    steps += other.steps;
    busy_us += other.busy_us;
    audio_seconds += other.audio_seconds;
  }

  void reset() {
    step_latency.reset();
    frames_processed = 0;
    steps = 0;
    busy_us = 0.0;
    audio_seconds = 0.0;
  }
};

}  // namespace rtmobile::runtime
