// Latency/throughput accounting for the streaming runtime.
//
// LatencyRecorder defaults to keeping every sample so quantiles are
// exact; at one entry per engine step (not per matvec) the memory cost
// is negligible against the audio being served. For long-running soaks
// (an overload bench stepping every 10 ms for hours) a positive cap
// switches it to deterministic systematic decimation: once the retained
// set reaches the cap, every other retained sample is dropped and the
// sampling stride doubles, so the recorder holds a uniform 1-in-stride
// subsample of the whole stream in bounded memory. Below the cap (and
// always with cap 0) behavior is bit-identical to the exact recorder,
// including merges.
//
// RuntimeStats aggregates what the serving story needs: p50/p95 step
// latency, frames/sec, the real-time factor (audio seconds processed per
// wall second — > 1 means faster than real time), and the deadline
// scheduler's overload view: per-step worst stream lag (p99-able),
// deadline-miss / shed-frame counters, and rejected streams.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "obs/metrics.hpp"

namespace rtmobile::runtime {

class LatencyRecorder {
 public:
  LatencyRecorder() = default;
  /// cap = 0 keeps every sample (exact quantiles and merges — the
  /// default); cap >= 2 bounds retained samples via deterministic
  /// decimation (see file comment).
  explicit LatencyRecorder(std::size_t cap) { set_cap(cap); }

  /// Sets the retained-sample cap (0 = unbounded). Thins immediately if
  /// the retained set already exceeds the new cap.
  void set_cap(std::size_t cap);
  [[nodiscard]] std::size_t cap() const { return cap_; }

  void record(double value_us);

  /// Samples observed (recorded), independent of decimation.
  [[nodiscard]] std::size_t count() const { return observed_; }
  /// Samples currently retained (== count() while exact).
  [[nodiscard]] std::size_t retained() const { return samples_.size(); }
  /// Mean over the retained samples (exact mean while undecimated).
  [[nodiscard]] double mean_us() const;
  /// Quantile by nearest-rank over the retained samples; q in [0, 1].
  /// Exact while undecimated; a uniform-subsample estimate after
  /// decimation. Returns 0 when empty.
  [[nodiscard]] double quantile_us(double q) const;
  [[nodiscard]] double p50_us() const { return quantile_us(0.50); }
  [[nodiscard]] double p95_us() const { return quantile_us(0.95); }
  [[nodiscard]] double p99_us() const { return quantile_us(0.99); }

  /// Absorbs another recorder's samples. While both sides are
  /// undecimated (every uncapped recorder, and capped ones still below
  /// cap) the merge is exact: quantiles of merge(a, b) equal quantiles
  /// over the union of a's and b's samples — the identity cross-shard
  /// aggregation relies on. A decimated merge keeps both retained sets,
  /// adopts the coarser stride, and re-thins if over cap.
  void merge_from(const LatencyRecorder& other);

  /// Exports the recorder's contents in the metrics registry's
  /// cumulative-bucket form (ascending `upper_bounds` plus the implicit
  /// +Inf bucket) without touching the recorder's exact-quantile
  /// semantics. Bucket counts always sum to count(): while undecimated
  /// each sample counts once; after decimation each retained sample
  /// stands for its share of the observations (observed / retained,
  /// remainder spread deterministically over the earliest slots), so the
  /// exported histogram stays a whole-stream view in bounded memory.
  [[nodiscard]] obs::HistogramData to_histogram(
      std::span<const double> upper_bounds) const;

  /// Clears samples; the cap is kept.
  void reset();

 private:
  /// Drops every other retained sample and doubles the stride.
  void thin();

  std::vector<double> samples_;
  std::size_t cap_ = 0;        // 0 = keep everything
  std::size_t observed_ = 0;   // total record() calls
  std::size_t stride_ = 1;     // 1-in-stride systematic sampling
  std::size_t next_keep_ = 1;  // 1-based observation index to retain next
};

struct RuntimeStats {
  LatencyRecorder step_latency;   // one sample per InferenceEngine::step
  /// One sample per scheduling round that found a ready frame: the worst
  /// head-frame wait (us) across streams at that instant. Its p99 is the
  /// overload bench's tail-lag metric.
  LatencyRecorder lag;
  std::size_t frames_processed = 0;
  std::size_t steps = 0;
  double busy_us = 0.0;           // wall time spent inside step()
  double audio_seconds = 0.0;     // audio represented by processed frames
  /// Frames served after waiting past their stream's deadline budget.
  std::size_t deadline_misses = 0;
  /// Frames dropped by the overload policy (shed or reject).
  std::size_t shed_frames = 0;
  /// Streams terminated by OverloadPolicy::kReject.
  std::size_t rejected_streams = 0;
  /// Prefix-cache accounting (all zero while EngineConfig::cache is
  /// off). Hits are frames served straight from the cache; misses are
  /// frames that fell through to model compute with the cache enabled,
  /// so hits + misses == frames_processed on a cache-enabled engine.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Model steps skipped by cache hits (one per hit — kept as its own
  /// counter because it is the compute-avoided metric dashboards track).
  std::size_t cache_skipped_steps = 0;
  /// Entries evicted by the cache's byte budget (or bucket collisions).
  std::size_t cache_evictions = 0;
  /// Resident cache footprint in bytes (a level, republished after every
  /// round that touched the cache; merging sums shard residency).
  std::size_t cache_bytes = 0;
  /// Scheduling rounds whose compute batch ran the fused batched-matmat
  /// spine, and rounds that fell back to the per-stream matvec path.
  /// fused_steps + fallback_steps counts every round that dispatched
  /// step_batch (cache-only rounds dispatch none, so it can be less
  /// than `steps`).
  std::size_t fused_steps = 0;
  std::size_t fallback_steps = 0;
  /// One sample per fused round: the compute panel's width (streams
  /// advanced by that fused step) — the batch-occupancy signal that
  /// says how much weight traffic the fusion is actually amortizing.
  LatencyRecorder fused_width;

  /// Applies a retained-sample cap to every recorder (0 = unbounded).
  void set_sample_cap(std::size_t cap) {
    step_latency.set_cap(cap);
    lag.set_cap(cap);
    fused_width.set_cap(cap);
  }

  [[nodiscard]] double frames_per_second() const {
    return busy_us > 0.0
               ? static_cast<double>(frames_processed) / (busy_us * 1e-6)
               : 0.0;
  }
  /// Aggregate real-time factor across all streams.
  [[nodiscard]] double real_time_factor() const {
    return busy_us > 0.0 ? audio_seconds / (busy_us * 1e-6) : 0.0;
  }
  [[nodiscard]] double mean_batch() const {
    return steps > 0 ? static_cast<double>(frames_processed) /
                           static_cast<double>(steps)
                     : 0.0;
  }
  /// Deadline misses per frame served (the overload bench's miss rate).
  [[nodiscard]] double miss_rate() const {
    return frames_processed > 0
               ? static_cast<double>(deadline_misses) /
                     static_cast<double>(frames_processed)
               : 0.0;
  }

  /// Accumulates another engine's stats into this one. Counters add and
  /// latency samples concatenate, so merging the stats of disjoint
  /// workload splits yields exactly the stats of the whole workload.
  void merge_from(const RuntimeStats& other) {
    step_latency.merge_from(other.step_latency);
    lag.merge_from(other.lag);
    frames_processed += other.frames_processed;
    steps += other.steps;
    busy_us += other.busy_us;
    audio_seconds += other.audio_seconds;
    deadline_misses += other.deadline_misses;
    shed_frames += other.shed_frames;
    rejected_streams += other.rejected_streams;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_skipped_steps += other.cache_skipped_steps;
    cache_evictions += other.cache_evictions;
    cache_bytes += other.cache_bytes;
    fused_steps += other.fused_steps;
    fallback_steps += other.fallback_steps;
    fused_width.merge_from(other.fused_width);
  }

  /// Fraction of served frames that skipped compute (0 with no cache).
  [[nodiscard]] double cache_hit_rate() const {
    const std::size_t looked = cache_hits + cache_misses;
    return looked > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(looked)
               : 0.0;
  }

  void reset() {
    step_latency.reset();
    lag.reset();
    frames_processed = 0;
    steps = 0;
    busy_us = 0.0;
    audio_seconds = 0.0;
    deadline_misses = 0;
    shed_frames = 0;
    rejected_streams = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_skipped_steps = 0;
    cache_evictions = 0;
    cache_bytes = 0;
    fused_steps = 0;
    fallback_steps = 0;
    fused_width.reset();
  }
};

}  // namespace rtmobile::runtime
