// Time source for the runtime's real-time clock model.
//
// Stream lag — how far a stream's oldest queued audio has fallen behind
// the wall clock — is the first-class serving metric of the deadline
// scheduler, so the engine stamps every feature frame with an arrival
// time. The source of those stamps is abstracted behind EngineClock so
// scheduler tests and simulation benches can drive time deterministically
// (ManualClock) while production uses the monotonic wall clock.
//
// WallClock reads microseconds since one process-wide steady epoch, so
// arrival stamps taken on one engine compare correctly against "now" on
// another — the property shard migration needs (a stream's frames keep
// their stamps when the stream moves to a sibling shard's engine).
#pragma once

#include <chrono>

namespace rtmobile::runtime {

/// Monotonic microsecond time source; injectable for deterministic tests.
class EngineClock {
 public:
  virtual ~EngineClock() = default;
  [[nodiscard]] virtual double now_us() = 0;
};

/// Microseconds since a process-wide steady epoch (first use).
class WallClock final : public EngineClock {
 public:
  [[nodiscard]] double now_us() override {
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  }
};

/// Caller-advanced clock: time moves only when the test (or a simulation
/// bench) says so, making lag accounting and scheduler decisions exactly
/// reproducible.
class ManualClock final : public EngineClock {
 public:
  [[nodiscard]] double now_us() override { return now_us_; }
  void advance_us(double us) { now_us_ += us; }
  void set_us(double us) { now_us_ = us; }

 private:
  double now_us_ = 0.0;
};

}  // namespace rtmobile::runtime
