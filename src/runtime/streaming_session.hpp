// One live audio stream being recognized through a shared compiled model.
//
// A session owns the stream-local pieces of inference: the incremental
// MFCC front end, the queue of feature frames awaiting a model step, the
// GRU hidden state carried across chunks, the logits produced so far,
// and — when a decode mode is configured — an incremental
// speech::StreamingDecoder fed each logit row as the engine produces it,
// whose StreamEvents (stable prefix + unstable tail) buffer here until
// the serving layer polls them. It does no model computation itself —
// the InferenceEngine pulls ready frames from many sessions, batches
// them into one timestep, and pushes the resulting logit rows back.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "speech/streaming_decoder.hpp"
#include "speech/streaming_mfcc.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile::runtime {

class StreamingSession {
 public:
  /// `model` must outlive the session. `mfcc.cepstral_mean_norm` must be
  /// false, and the feature dimension must match the model's input.
  /// `decode.mode` selects in-loop decoding (kNone = logits only).
  StreamingSession(std::size_t id, const CompiledSpeechModel& model,
                   const speech::MfccConfig& mfcc,
                   const speech::StreamingDecoderConfig& decode);
  /// Logits-only session (decode mode kNone).
  StreamingSession(std::size_t id, const CompiledSpeechModel& model,
                   const speech::MfccConfig& mfcc);

  [[nodiscard]] std::size_t id() const { return id_; }

  /// Re-points the session at another compiled instance of the same
  /// model (identical dimensions required). Used when a serving shard
  /// drains and its live streams migrate to a sibling shard: the hidden
  /// state, pending frames, and logits all carry over, and because every
  /// replica computes identical arithmetic the stream's output stays
  /// bit-identical to an unmigrated run.
  void rebind(const CompiledSpeechModel& model);

  /// Feeds an audio chunk (any size); newly completed feature frames are
  /// queued for the engine.
  void push_audio(std::span<const float> samples);

  /// Marks end of audio: the tail frames held back for Δ lookahead are
  /// released.
  void finish();

  /// Audio ended (finish() called).
  [[nodiscard]] bool finished() const { return mfcc_.finished(); }

  /// Audio ended and every queued frame has been processed.
  [[nodiscard]] bool done() const {
    return finished() && pending_.empty() && mfcc_.ready_frames() == 0;
  }

  // ---- engine-facing frame queue ----
  [[nodiscard]] bool frame_ready() const { return !pending_.empty(); }
  /// Feature frames queued and not yet stepped (a queue-depth signal).
  [[nodiscard]] std::size_t pending_frames() const { return pending_.size(); }
  [[nodiscard]] std::span<const float> front_frame() const;
  void pop_frame();
  [[nodiscard]] StreamState& state() { return state_; }

  /// Appends one logits row produced for this stream's oldest frame.
  void append_logits(std::span<const float> row);

  // ---- streaming decode ----
  /// True when the session decodes in-loop (mode != kNone).
  [[nodiscard]] bool decoding() const { return decoder_.has_value(); }
  /// Hypothesis events not yet polled (0 for non-decoding sessions).
  [[nodiscard]] std::size_t pending_events() const {
    return decoder_.has_value() ? decoder_->pending_events() : 0;
  }
  /// Appends pending events to `out` (oldest first); returns the count.
  std::size_t poll_events(std::vector<speech::StreamEvent>& out);
  /// The live decoder (requires decoding()).
  [[nodiscard]] const speech::StreamingDecoder& decoder() const;
  /// Stable prefix + unstable tail right now (requires decoding()).
  [[nodiscard]] std::vector<std::uint16_t> hypothesis() const;

  // ---- results / accounting ----
  [[nodiscard]] std::size_t frames_processed() const { return frames_done_; }
  /// Seconds of audio represented by the processed frames.
  [[nodiscard]] double audio_seconds_processed() const;
  /// Seconds of audio one feature frame represents (the hop size).
  [[nodiscard]] double seconds_per_frame() const;
  /// All logit rows so far as a [frames_processed x num_classes] matrix.
  [[nodiscard]] Matrix logits() const;

 private:
  void drain_front_end();
  /// Finishes the decoder once the last logit row has been produced (the
  /// decoder's tail can only be finalized when no more rows can come).
  void maybe_finish_decoder();

  std::size_t id_;
  const CompiledSpeechModel* model_;  // rebindable on shard migration
  speech::StreamingMfcc mfcc_;
  std::deque<std::vector<float>> pending_;  // feature frames awaiting a step
  StreamState state_;
  std::vector<float> logits_;  // row-major [frames_done_ x num_classes]
  std::size_t frames_done_ = 0;
  /// In-loop decoder; migrates with the session (its stable prefix, DP
  /// state, and unpolled events all live here).
  std::optional<speech::StreamingDecoder> decoder_;
};

}  // namespace rtmobile::runtime
