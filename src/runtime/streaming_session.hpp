// One live audio stream being recognized through a shared compiled model.
//
// A session owns the stream-local pieces of inference: the incremental
// MFCC front end, the queue of feature frames awaiting a model step, the
// GRU hidden state carried across chunks, the logits produced so far,
// and — when a decode mode is configured — an incremental
// speech::StreamingDecoder fed each logit row as the engine produces it,
// whose StreamEvents (stable prefix + unstable tail) buffer here until
// the serving layer polls them. It does no model computation itself —
// the InferenceEngine pulls ready frames from many sessions, batches
// them into one timestep, and pushes the resulting logit rows back.
//
// The session also carries the real-time clock model the deadline
// scheduler reads: every queued feature frame is stamped with its
// arrival time (the EngineClock reading when the audio that completed it
// was pushed), lag_seconds() reports how long the oldest queued frame
// has been waiting — how far the stream has fallen behind the audio
// clock — and a StreamDeadline budget bounds the wait the stream
// tolerates. When the engine's overload policy acts, the session either
// sheds its overdue frames (shed_overdue, emitting a kDegraded control
// event) or is terminated outright (reject, emitting kRejected); control
// events queue here alongside the decoder's hypothesis events.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "compiler/gru_executor.hpp"
#include "runtime/clock.hpp"
#include "runtime/scheduler.hpp"
#include "speech/streaming_decoder.hpp"
#include "speech/streaming_mfcc.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile::obs {
class Telemetry;
}

namespace rtmobile::runtime {

class StreamingSession {
 public:
  /// `model` must outlive the session. `mfcc.cepstral_mean_norm` must be
  /// false, and the feature dimension must match the model's input.
  /// `decode.mode` selects in-loop decoding (kNone = logits only).
  StreamingSession(std::size_t id, const CompiledSpeechModel& model,
                   const speech::MfccConfig& mfcc,
                   const speech::StreamingDecoderConfig& decode);
  /// Logits-only session (decode mode kNone).
  StreamingSession(std::size_t id, const CompiledSpeechModel& model,
                   const speech::MfccConfig& mfcc);

  [[nodiscard]] std::size_t id() const { return id_; }

  /// Re-points the session at another compiled instance of the same
  /// model (identical dimensions required). Used when a serving shard
  /// drains and its live streams migrate to a sibling shard: the hidden
  /// state, pending frames, and logits all carry over, and because every
  /// replica computes identical arithmetic the stream's output stays
  /// bit-identical to an unmigrated run.
  void rebind(const CompiledSpeechModel& model);

  /// Feeds an audio chunk (any size); newly completed feature frames are
  /// queued for the engine, stamped with the clock's current time.
  /// Audio pushed after a reject is dropped.
  void push_audio(std::span<const float> samples);

  /// Marks end of audio: the tail frames held back for Δ lookahead are
  /// released.
  void finish();

  /// Audio ended (finish() called, or the stream was rejected).
  [[nodiscard]] bool finished() const {
    return rejected_ || mfcc_.finished();
  }

  /// Audio ended and every queued frame has been processed (or the
  /// stream was rejected).
  [[nodiscard]] bool done() const {
    return rejected_ || (mfcc_.finished() && pending_.empty() &&
                         mfcc_.ready_frames() == 0);
  }

  // ---- engine-facing frame queue ----
  [[nodiscard]] bool frame_ready() const { return !pending_.empty(); }
  /// Feature frames queued and not yet stepped (a queue-depth signal).
  [[nodiscard]] std::size_t pending_frames() const { return pending_.size(); }
  [[nodiscard]] std::span<const float> front_frame() const;
  void pop_frame();
  [[nodiscard]] StreamState& state() { return state_; }

  /// Appends one logits row produced for this stream's oldest frame.
  void append_logits(std::span<const float> row);

  // ---- prefix-cache state (engine-driven) ----
  /// The stream's rolling prefix identity: seeded from the initial
  /// hidden state at admission, advanced by the engine once per consumed
  /// frame (compute and cache-hit paths alike). By-value member, so it
  /// migrates with the session across shards.
  [[nodiscard]] cache::PrefixCursor& prefix_cursor() {
    return prefix_cursor_;
  }
  /// Floats in a flattened hidden-state snapshot (layers x hidden).
  [[nodiscard]] std::size_t state_size() const;
  /// Flattens the hidden state into `out` (resized to state_size()) —
  /// the snapshot the cache memoizes beside each logits row.
  void capture_state(std::vector<float>& out) const;
  /// Overwrites the hidden state from a snapshot — the cache-hit resume
  /// path. The snapshot was captured by the compute path on an identical
  /// replica, so the restored state is bitwise what compute would have
  /// produced.
  void restore_state(std::span<const float> snapshot);

  // ---- real-time clock model ----
  /// Wires the time source arrival stamps are taken from. The engine
  /// sets this at admission and again on adoption (shard migration);
  /// without a clock, stamps are 0 and lag reads 0.
  void set_clock(EngineClock* clock) { clock_ = clock; }
  /// Wires the observability sink (the engine sets this alongside the
  /// clock); null = no spans. The front-end (mfcc) stage is timed here
  /// because feature extraction happens inside push_audio, not in the
  /// engine's step.
  void set_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }
  /// How long the oldest queued frame has been waiting, in seconds —
  /// how far the stream has fallen behind the audio clock. 0 when no
  /// frame is queued (the stream is caught up).
  [[nodiscard]] double lag_seconds();
  /// Oldest queued frame's wait in microseconds against a caller-read
  /// "now" (the engine reads the clock once per scheduling round).
  /// Requires frame_ready().
  [[nodiscard]] double frame_wait_us(double now_us) const;
  /// Arrival stamp of the oldest queued frame. Requires frame_ready().
  [[nodiscard]] double oldest_arrival_us() const;

  void set_deadline(const StreamDeadline& deadline) { deadline_ = deadline; }
  [[nodiscard]] const StreamDeadline& deadline() const { return deadline_; }

  // ---- overload actions (engine-driven) ----
  /// Drops every queued frame that has waited longer than the deadline
  /// budget, snapping the stream back under it. Emits one kDegraded
  /// control event when anything was dropped; returns the drop count.
  std::size_t shed_overdue(double now_us);
  /// Terminates the stream: every queued frame is dropped, further audio
  /// is refused, the decoder (if any) finalizes over the frames already
  /// served, and a terminal kRejected control event is emitted. Returns
  /// the frames dropped. Idempotent.
  std::size_t reject();
  [[nodiscard]] bool rejected() const { return rejected_; }

  // ---- per-stream deadline accounting ----
  /// Frames dropped by shed_overdue()/reject() over the stream's life.
  [[nodiscard]] std::size_t shed_frames() const { return shed_frames_; }
  /// Frames served after waiting past the deadline budget.
  [[nodiscard]] std::size_t deadline_misses() const {
    return deadline_misses_;
  }
  /// Engine-side accounting hook: the frame being served this round
  /// waited past the budget.
  void note_deadline_miss() { ++deadline_misses_; }

  // ---- streaming decode ----
  /// True when the session decodes in-loop (mode != kNone).
  [[nodiscard]] bool decoding() const { return decoder_.has_value(); }
  /// Events not yet polled: decoder hypotheses plus control events
  /// (0 for non-decoding sessions that were never shed or rejected).
  [[nodiscard]] std::size_t pending_events() const {
    return queued_events_.size() +
           (decoder_.has_value() ? decoder_->pending_events() : 0);
  }
  /// Appends pending events to `out` in emission order (hypothesis and
  /// control events interleaved as they happened, so each stream's
  /// `frames` stamps are monotonic); returns the count.
  std::size_t poll_events(std::vector<speech::StreamEvent>& out);
  /// The live decoder (requires decoding()).
  [[nodiscard]] const speech::StreamingDecoder& decoder() const;
  /// Stable prefix + unstable tail right now (requires decoding()).
  [[nodiscard]] std::vector<std::uint16_t> hypothesis() const;

  // ---- results / accounting ----
  [[nodiscard]] std::size_t frames_processed() const { return frames_done_; }
  /// Seconds of audio represented by the processed frames.
  [[nodiscard]] double audio_seconds_processed() const;
  /// Seconds of audio one feature frame represents (the hop size).
  [[nodiscard]] double seconds_per_frame() const;
  /// All logit rows so far as a [frames_processed x num_classes] matrix.
  [[nodiscard]] Matrix logits() const;

 private:
  void drain_front_end();
  /// Finishes the decoder once the last logit row has been produced (the
  /// decoder's tail can only be finalized when no more rows can come).
  void maybe_finish_decoder();
  void push_control_event(speech::StreamEventKind kind,
                          std::size_t dropped, bool is_final);

  std::size_t id_;
  const CompiledSpeechModel* model_;  // rebindable on shard migration
  speech::StreamingMfcc mfcc_;
  std::deque<std::vector<float>> pending_;  // feature frames awaiting a step
  /// Arrival stamp per queued frame (parallel to pending_).
  std::deque<double> arrival_us_;
  StreamState state_;
  /// Rolling prefix-cache identity (see prefix_cursor()).
  cache::PrefixCursor prefix_cursor_;
  std::vector<float> logits_;  // row-major [frames_done_ x num_classes]
  std::size_t frames_done_ = 0;
  /// In-loop decoder; migrates with the session (its stable prefix, DP
  /// state, and unpolled events all live here).
  std::optional<speech::StreamingDecoder> decoder_;

  // Real-time clock model + deadline accounting.
  EngineClock* clock_ = nullptr;  // non-owning; engine-wired
  obs::Telemetry* telemetry_ = nullptr;  // non-owning; engine-wired
  StreamDeadline deadline_;
  bool rejected_ = false;
  std::size_t shed_frames_ = 0;
  std::size_t deadline_misses_ = 0;
  /// Session-level event queue: scheduler control events, plus decoder
  /// events folded in ahead of each control push so emission order
  /// survives (the decoder's own queue holds only what it emitted since
  /// the last control event). Migrates with the session.
  std::vector<speech::StreamEvent> queued_events_;
};

}  // namespace rtmobile::runtime
