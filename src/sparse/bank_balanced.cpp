#include "sparse/bank_balanced.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace rtmobile {

BankBalancedMatrix BankBalancedMatrix::from_dense(const Matrix& dense,
                                                  std::size_t bank_size,
                                                  std::size_t keep_per_bank) {
  RT_REQUIRE(bank_size > 0 && dense.cols() % bank_size == 0,
             "bank_size must divide the column count");
  RT_REQUIRE(keep_per_bank > 0 && keep_per_bank <= bank_size,
             "keep_per_bank must be in [1, bank_size]");
  RT_REQUIRE(bank_size <= 65536, "bank-local offsets must fit in uint16");

  BankBalancedMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.bank_size_ = bank_size;
  out.keep_per_bank_ = keep_per_bank;
  out.banks_per_row_ = dense.cols() / bank_size;
  out.values_.reserve(out.rows_ * out.banks_per_row_ * keep_per_bank);
  out.offsets_.reserve(out.values_.capacity());

  std::vector<std::size_t> order(bank_size);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t bank = 0; bank < out.banks_per_row_; ++bank) {
      const std::size_t base = bank * bank_size;
      std::iota(order.begin(), order.end(), std::size_t{0});
      // Top-k by magnitude inside the bank.
      std::partial_sort(order.begin(), order.begin() + keep_per_bank,
                        order.end(), [&](std::size_t a, std::size_t b) {
                          return std::fabs(dense(r, base + a)) >
                                 std::fabs(dense(r, base + b));
                        });
      // Keep bank-local offsets sorted so the SpMV walks x forward.
      std::sort(order.begin(), order.begin() + keep_per_bank);
      for (std::size_t k = 0; k < keep_per_bank; ++k) {
        out.values_.push_back(dense(r, base + order[k]));
        out.offsets_.push_back(static_cast<std::uint16_t>(order[k]));
      }
    }
  }
  return out;
}

void BankBalancedMatrix::spmv(std::span<const float> x,
                              std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "BBS spmv: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "BBS spmv: y size mismatch");
  const std::size_t slots_per_row = banks_per_row_ * keep_per_bank_;
  for (std::size_t r = 0; r < rows_; ++r) {
    const float* vals = values_.data() + r * slots_per_row;
    const std::uint16_t* offs = offsets_.data() + r * slots_per_row;
    float acc = 0.0F;
    std::size_t slot = 0;
    for (std::size_t bank = 0; bank < banks_per_row_; ++bank) {
      const float* xbank = x.data() + bank * bank_size_;
      for (std::size_t k = 0; k < keep_per_bank_; ++k, ++slot) {
        acc += vals[slot] * xbank[offs[slot]];
      }
    }
    y[r] = acc;
  }
}

Matrix BankBalancedMatrix::to_dense() const {
  Matrix dense(rows_, cols_, 0.0F);
  const std::size_t slots_per_row = banks_per_row_ * keep_per_bank_;
  for (std::size_t r = 0; r < rows_; ++r) {
    std::size_t slot = 0;
    for (std::size_t bank = 0; bank < banks_per_row_; ++bank) {
      for (std::size_t k = 0; k < keep_per_bank_; ++k, ++slot) {
        dense(r, bank * bank_size_ + offsets_[r * slots_per_row + slot]) =
            values_[r * slots_per_row + slot];
      }
    }
  }
  return dense;
}

std::size_t BankBalancedMatrix::memory_bytes(std::size_t value_bytes) const {
  return values_.size() * value_bytes +
         offsets_.size() * sizeof(std::uint16_t);
}

Matrix BankBalancedMatrix::keep_mask() const {
  Matrix mask(rows_, cols_, 0.0F);
  const std::size_t slots_per_row = banks_per_row_ * keep_per_bank_;
  for (std::size_t r = 0; r < rows_; ++r) {
    std::size_t slot = 0;
    for (std::size_t bank = 0; bank < banks_per_row_; ++bank) {
      for (std::size_t k = 0; k < keep_per_bank_; ++k, ++slot) {
        mask(r, bank * bank_size_ + offsets_[r * slots_per_row + slot]) = 1.0F;
      }
    }
  }
  return mask;
}

}  // namespace rtmobile
