// Block-circulant weight representation (C-LSTM / E-RNN baselines).
//
// The matrix is tiled into k x k blocks; each block is constrained to be a
// circulant matrix B[i][j] = c[(i - j) mod k], so a block stores only its
// defining vector c (k values instead of k^2 — compression factor k).
// Block-vector products become circular convolutions, computed here either
// directly (reference) or via FFT with cached defining-vector spectra.
//
// Matrices whose shape is not a multiple of k are zero-padded internally;
// callers always see the original rows()/cols().
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "sparse/fft.hpp"
#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

class BlockCirculantMatrix {
 public:
  BlockCirculantMatrix() = default;

  /// Projects `dense` onto the nearest (Frobenius) block-circulant matrix
  /// with k x k circulant blocks: each defining-vector entry is the mean of
  /// its wrapped diagonal in the zero-padded block. k must be a power of
  /// two (the FFT path requires it).
  [[nodiscard]] static BlockCirculantMatrix from_dense(const Matrix& dense,
                                                       std::size_t block_size);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t block_size() const { return block_size_; }

  /// Stored parameter count: one defining vector per block.
  [[nodiscard]] std::size_t param_count() const { return defining_.size(); }

  /// y = A x via FFT (frequency-domain accumulation per block row).
  void matvec(std::span<const float> x, std::span<float> y) const;

  /// y = A x by direct circular convolution; the test oracle.
  void matvec_naive(std::span<const float> x, std::span<float> y) const;

  /// Expands to the dense (unpadded) matrix.
  [[nodiscard]] Matrix to_dense() const;

  [[nodiscard]] std::size_t memory_bytes(std::size_t value_bytes = 4) const;

 private:
  [[nodiscard]] std::span<const float> defining(std::size_t block_row,
                                                std::size_t block_col) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t block_size_ = 0;
  std::size_t block_rows_ = 0;
  std::size_t block_cols_ = 0;
  // defining_[(br * block_cols_ + bc) * k .. +k) = first column of block.
  std::vector<float, AlignedAllocator<float>> defining_;
  // Cached forward FFT of every defining vector (same indexing, k complex).
  std::vector<Complex> defining_fft_;
};

}  // namespace rtmobile
