#include "sparse/csc.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rtmobile {

CscMatrix CscMatrix::from_dense(const Matrix& dense, float threshold) {
  RT_REQUIRE(threshold >= 0.0F, "threshold must be non-negative");
  CscMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.col_ptr_.reserve(dense.cols() + 1);
  out.col_ptr_.push_back(0);
  for (std::size_t c = 0; c < dense.cols(); ++c) {
    for (std::size_t r = 0; r < dense.rows(); ++r) {
      const float w = dense(r, c);
      if (std::fabs(w) > threshold) {
        out.row_idx_.push_back(static_cast<std::uint32_t>(r));
        out.values_.push_back(w);
      }
    }
    out.col_ptr_.push_back(static_cast<std::uint32_t>(out.row_idx_.size()));
  }
  return out;
}

void CscMatrix::spmv(std::span<const float> x, std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "spmv: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "spmv: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0F);
  for (std::size_t c = 0; c < cols_; ++c) {
    const float xv = x[c];
    if (xv == 0.0F) continue;
    for (std::uint32_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      y[row_idx_[k]] += values_[k] * xv;
    }
  }
}

Matrix CscMatrix::to_dense() const {
  Matrix dense(rows_, cols_, 0.0F);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::uint32_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      dense(row_idx_[k], c) = values_[k];
    }
  }
  return dense;
}

std::size_t CscMatrix::memory_bytes(std::size_t value_bytes,
                                    std::size_t index_bytes) const {
  return values_.size() * value_bytes + row_idx_.size() * index_bytes +
         col_ptr_.size() * index_bytes;
}

}  // namespace rtmobile
