// BlockMask: the structured-sparsity descriptor produced by BSP.
//
// A weight matrix is partitioned into Num_r horizontal stripes and Num_c
// vertical blocks (paper Sec. IV-A). BSP step 1 keeps a subset of columns
// *within each (stripe, block)*; step 2 keeps a subset of whole rows.
// BlockMask records both decisions and is the contract between the pruning
// algorithm (src/core), the compact storage format (BspcMatrix), and the
// compiler passes (src/compiler).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace rtmobile {

class BlockMask {
 public:
  /// Creates a fully-dense mask over a rows x cols matrix partitioned into
  /// num_r stripes and num_c column blocks. num_r must not exceed rows and
  /// num_c must not exceed cols.
  BlockMask(std::size_t rows, std::size_t cols, std::size_t num_r,
            std::size_t num_c);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t num_r() const { return num_r_; }
  [[nodiscard]] std::size_t num_c() const { return num_c_; }

  /// Stripe s covers rows [row_begin(s), row_end(s)); stripes are the
  /// balanced integer partition of [0, rows).
  [[nodiscard]] std::size_t row_begin(std::size_t stripe) const;
  [[nodiscard]] std::size_t row_end(std::size_t stripe) const;
  /// Column block b covers columns [col_begin(b), col_end(b)).
  [[nodiscard]] std::size_t col_begin(std::size_t block) const;
  [[nodiscard]] std::size_t col_end(std::size_t block) const;
  /// Stripe index containing row r.
  [[nodiscard]] std::size_t stripe_of_row(std::size_t row) const;
  /// Block index containing column c.
  [[nodiscard]] std::size_t block_of_col(std::size_t col) const;

  /// Replaces the kept-column set of (stripe, block). Columns are global
  /// indices, must be sorted, unique, and inside the block's range.
  void set_block_cols(std::size_t stripe, std::size_t block,
                      std::vector<std::uint32_t> kept_cols);

  /// Kept columns (global indices, sorted) of (stripe, block).
  [[nodiscard]] std::span<const std::uint32_t> block_cols(
      std::size_t stripe, std::size_t block) const;

  /// Marks a whole row kept or pruned (BSP step 2).
  void set_row_kept(std::size_t row, bool kept);
  [[nodiscard]] bool row_kept(std::size_t row) const;

  /// True when entry (r, c) survives both pruning steps.
  [[nodiscard]] bool is_kept(std::size_t row, std::size_t col) const;

  /// Number of surviving entries.
  [[nodiscard]] std::size_t nnz() const;

  /// Number of rows that survive step 2.
  [[nodiscard]] std::size_t kept_row_count() const;

  /// Sum over (stripe, block) of kept column counts; the step-1 budget.
  [[nodiscard]] std::size_t kept_block_col_count() const;

  /// Fraction of (stripe, block, column) slots kept by step 1.
  [[nodiscard]] double column_keep_fraction() const;

  /// Fraction of rows kept by step 2.
  [[nodiscard]] double row_keep_fraction() const;

  /// Renders the mask as a 0/1 dense matrix (for tests and inspection).
  [[nodiscard]] Matrix to_dense() const;

  /// Zeroes every pruned entry of `weights` (shape must match).
  void apply(Matrix& weights) const;

  /// Elementwise keep-pattern equality.
  friend bool operator==(const BlockMask& a, const BlockMask& b);

 private:
  [[nodiscard]] std::size_t cell_index(std::size_t stripe,
                                       std::size_t block) const {
    return stripe * num_c_ + block;
  }

  std::size_t rows_;
  std::size_t cols_;
  std::size_t num_r_;
  std::size_t num_c_;
  std::vector<std::vector<std::uint32_t>> kept_cols_;
  std::vector<std::uint8_t> row_kept_;
};

}  // namespace rtmobile
