// Radix-2 complex FFT.
//
// Two consumers: (1) the C-LSTM / E-RNN block-circulant baselines, which
// multiply circulant blocks in the frequency domain, and (2) the speech
// front end's spectral analysis. A naive O(n^2) DFT is provided as the
// test oracle.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace rtmobile {

using Complex = std::complex<double>;

/// True when n is a power of two (n >= 1).
[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

/// In-place iterative radix-2 FFT. Size must be a power of two.
/// `inverse` selects the inverse transform (with 1/n normalization).
void fft_inplace(std::span<Complex> data, bool inverse);

/// Forward FFT of a real signal, zero-padded to `fft_size` (power of two).
[[nodiscard]] std::vector<Complex> fft_real(std::span<const float> signal,
                                            std::size_t fft_size);

/// Naive O(n^2) DFT used as the correctness oracle in tests.
[[nodiscard]] std::vector<Complex> dft_naive(std::span<const Complex> data,
                                             bool inverse);

/// Circular convolution of two equal-length real vectors via FFT.
/// out[i] = sum_j a[j] * b[(i - j) mod n]. Length must be a power of two.
void circular_convolve(std::span<const float> a, std::span<const float> b,
                       std::span<float> out);

/// Reference O(n^2) circular convolution for tests (any length).
void circular_convolve_naive(std::span<const float> a,
                             std::span<const float> b, std::span<float> out);

/// Power spectrum |FFT(x)|^2 of a real frame, allocation-free:
/// writes fft_size/2+1 bins into `power`
/// using `fft_scratch` (fft_size entries) as the transform workspace.
/// The 10 ms streaming front end calls this once per frame, so per-frame
/// heap traffic would land directly on the serving hot path.
void power_spectrum(std::span<const float> frame, std::size_t fft_size,
                    std::span<float> power, std::span<Complex> fft_scratch);

}  // namespace rtmobile
