#include "sparse/block_circulant.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rtmobile {

BlockCirculantMatrix BlockCirculantMatrix::from_dense(const Matrix& dense,
                                                      std::size_t block_size) {
  RT_REQUIRE(is_power_of_two(block_size),
             "circulant block size must be a power of two");
  BlockCirculantMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.block_size_ = block_size;
  out.block_rows_ = (dense.rows() + block_size - 1) / block_size;
  out.block_cols_ = (dense.cols() + block_size - 1) / block_size;
  const std::size_t k = block_size;
  out.defining_.assign(out.block_rows_ * out.block_cols_ * k, 0.0F);

  // Frobenius projection of each zero-padded block onto circulants: average
  // along wrapped diagonals d = (i - j) mod k.
  for (std::size_t br = 0; br < out.block_rows_; ++br) {
    for (std::size_t bc = 0; bc < out.block_cols_; ++bc) {
      float* c = out.defining_.data() + (br * out.block_cols_ + bc) * k;
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
          const std::size_t r = br * k + i;
          const std::size_t col = bc * k + j;
          const float w = (r < dense.rows() && col < dense.cols())
                              ? dense(r, col)
                              : 0.0F;
          c[(i + k - j) % k] += w;
        }
      }
      for (std::size_t d = 0; d < k; ++d) {
        c[d] /= static_cast<float>(k);
      }
    }
  }

  // Cache defining-vector spectra for the FFT matvec.
  out.defining_fft_.resize(out.defining_.size());
  std::vector<Complex> buffer(k);
  for (std::size_t blk = 0; blk < out.block_rows_ * out.block_cols_; ++blk) {
    const float* c = out.defining_.data() + blk * k;
    for (std::size_t i = 0; i < k; ++i) {
      buffer[i] = Complex(static_cast<double>(c[i]), 0.0);
    }
    fft_inplace(buffer, /*inverse=*/false);
    std::copy(buffer.begin(), buffer.end(),
              out.defining_fft_.begin() + static_cast<std::ptrdiff_t>(blk * k));
  }
  return out;
}

std::span<const float> BlockCirculantMatrix::defining(
    std::size_t block_row, std::size_t block_col) const {
  return {defining_.data() + (block_row * block_cols_ + block_col) *
                                 block_size_,
          block_size_};
}

void BlockCirculantMatrix::matvec(std::span<const float> x,
                                  std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "circulant matvec: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "circulant matvec: y size mismatch");
  const std::size_t k = block_size_;

  // FFT of every padded x segment, computed once and reused by all block
  // rows — this is where block-circulant wins over per-block convolution.
  std::vector<Complex> x_fft(block_cols_ * k);
  std::vector<Complex> buffer(k);
  for (std::size_t bc = 0; bc < block_cols_; ++bc) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t col = bc * k + j;
      buffer[j] = Complex(col < cols_ ? static_cast<double>(x[col]) : 0.0, 0.0);
    }
    fft_inplace(buffer, false);
    std::copy(buffer.begin(), buffer.end(),
              x_fft.begin() + static_cast<std::ptrdiff_t>(bc * k));
  }

  std::vector<Complex> acc(k);
  for (std::size_t br = 0; br < block_rows_; ++br) {
    std::fill(acc.begin(), acc.end(), Complex(0.0, 0.0));
    for (std::size_t bc = 0; bc < block_cols_; ++bc) {
      const Complex* cf =
          defining_fft_.data() + (br * block_cols_ + bc) * k;
      const Complex* xf = x_fft.data() + bc * k;
      for (std::size_t i = 0; i < k; ++i) acc[i] += cf[i] * xf[i];
    }
    fft_inplace(acc, /*inverse=*/true);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t r = br * k + i;
      if (r < rows_) y[r] = static_cast<float>(acc[i].real());
    }
  }
}

void BlockCirculantMatrix::matvec_naive(std::span<const float> x,
                                        std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "circulant matvec: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "circulant matvec: y size mismatch");
  const std::size_t k = block_size_;
  std::fill(y.begin(), y.end(), 0.0F);
  for (std::size_t br = 0; br < block_rows_; ++br) {
    for (std::size_t bc = 0; bc < block_cols_; ++bc) {
      const auto c = defining(br, bc);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t r = br * k + i;
        if (r >= rows_) break;
        double accum = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
          const std::size_t col = bc * k + j;
          if (col >= cols_) continue;
          accum += static_cast<double>(c[(i + k - j) % k]) *
                   static_cast<double>(x[col]);
        }
        y[r] += static_cast<float>(accum);
      }
    }
  }
}

Matrix BlockCirculantMatrix::to_dense() const {
  Matrix dense(rows_, cols_, 0.0F);
  const std::size_t k = block_size_;
  for (std::size_t br = 0; br < block_rows_; ++br) {
    for (std::size_t bc = 0; bc < block_cols_; ++bc) {
      const auto c = defining(br, bc);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t r = br * k + i;
        if (r >= rows_) break;
        for (std::size_t j = 0; j < k; ++j) {
          const std::size_t col = bc * k + j;
          if (col >= cols_) continue;
          dense(r, col) = c[(i + k - j) % k];
        }
      }
    }
  }
  return dense;
}

std::size_t BlockCirculantMatrix::memory_bytes(std::size_t value_bytes) const {
  return defining_.size() * value_bytes;
}

}  // namespace rtmobile
