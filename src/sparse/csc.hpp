// Compressed Sparse Column storage.
//
// ESE stores weights in CSC; we provide it both for fidelity of the ESE
// baseline's storage accounting and as a second sparse reference kernel
// (scatter-style SpMV).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

class CscMatrix {
 public:
  CscMatrix() = default;

  /// Builds CSC from dense, keeping entries with |w| > threshold.
  [[nodiscard]] static CscMatrix from_dense(const Matrix& dense,
                                            float threshold = 0.0F);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x (scatter over columns).
  void spmv(std::span<const float> x, std::span<float> y) const;

  [[nodiscard]] Matrix to_dense() const;

  [[nodiscard]] std::size_t memory_bytes(std::size_t value_bytes = 4,
                                         std::size_t index_bytes = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> col_ptr_;
  std::vector<std::uint32_t> row_idx_;
  std::vector<float, AlignedAllocator<float>> values_;
};

}  // namespace rtmobile
