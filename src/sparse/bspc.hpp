// BSPC — Block-based Structured Pruning Compact format (paper Sec. IV-B(c)).
//
// After BSP, every kept row of a stripe shares the stripe's kept-column
// pattern, so the column indices need to be stored once per (stripe, block)
// instead of once per nonzero as in CSR. The payload per (stripe, block) is
// a dense tile of shape [active rows in stripe] x [kept columns in block].
//
// The format records everything the executor needs: the surviving rows per
// stripe (which doubles as the reorder information once the compiler pass
// permutes them), the kept-column pool, and packed values. Index overhead
// is O(#blocks + #rows) versus CSR's O(nnz).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "sparse/block_mask.hpp"
#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

class BspcMatrix {
 public:
  /// One (stripe, block) tile: `col_count` kept columns starting at
  /// `col_offset` in the column pool, with a dense [active rows x
  /// col_count] value payload at `value_offset`. Public so the packed
  /// quantized format (PackedQuantizedBspc) can share the structural
  /// metadata while swapping the value payload's storage width.
  struct BlockRef {
    std::uint32_t col_offset = 0;  // into col_pool()
    std::uint32_t col_count = 0;
    std::uint64_t value_offset = 0;  // into values()
  };

  BspcMatrix() = default;

  /// Packs `weights` according to `mask`. Shapes must match. Entries not
  /// kept by the mask are dropped regardless of their value.
  [[nodiscard]] static BspcMatrix from_dense(const Matrix& weights,
                                             const BlockMask& mask);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t num_stripes() const { return num_r_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x using the redundant-load-elimination schedule: the input
  /// values of a block are gathered once and reused by every active row.
  void spmv(std::span<const float> x, std::span<float> y) const;

  /// y = A x indexing x per row (no LRE). Same result, used for the
  /// compiler-ablation benchmark.
  void spmv_no_lre(std::span<const float> x, std::span<float> y) const;

  /// Processes stripes [stripe_begin, stripe_end) only, accumulating into
  /// y (caller zeroes y). This is the unit of work the multithreaded
  /// executor partitions across threads.
  void spmv_stripes(std::span<const float> x, std::span<float> y,
                    std::size_t stripe_begin, std::size_t stripe_end,
                    bool use_lre = true) const;

  /// Processes an explicit list of stripes in the given order (the
  /// compiler's reorder pass chooses the order), accumulating into y.
  /// Stripe row sets are disjoint, so concurrent calls with disjoint
  /// stripe lists never race on y. `gather` is the LRE scratch buffer
  /// (>= max_block_cols() floats when use_lre; may be empty otherwise) —
  /// caller-provided so the serving step path performs zero heap
  /// allocations per matvec. Concurrent calls need disjoint buffers.
  void spmv_stripe_list(std::span<const float> x, std::span<float> y,
                        std::span<const std::uint32_t> stripes, bool use_lre,
                        std::span<float> gather) const;
  /// Convenience overload that allocates its own gather scratch.
  void spmv_stripe_list(std::span<const float> x, std::span<float> y,
                        std::span<const std::uint32_t> stripes,
                        bool use_lre = true) const;

  /// Batched form of spmv_stripe_list: row b of X (b < batch) is an
  /// independent input vector and row b of Y accumulates (A X[b]) for
  /// the listed stripes (caller zeroes the rows). Each block's weight
  /// tile is streamed from memory once for the whole batch — the fused
  /// step's weight-traffic amortization — while every (row, stream)
  /// accumulation keeps the exact per-vector loop shape, so each
  /// stream's result is bit-identical to spmv_stripe_list on its own.
  /// `gather` needs batch * max_block_cols() floats when use_lre
  /// (stream b's gathered panel lives at offset b * max_block_cols()).
  /// X/Y may have extra trailing rows beyond `batch`.
  void spmm_stripe_list(const Matrix& x, Matrix& y, std::size_t batch,
                        std::span<const std::uint32_t> stripes, bool use_lre,
                        std::span<float> gather) const;

  /// Nonzeros in one stripe (for load balancing).
  [[nodiscard]] std::size_t stripe_nnz(std::size_t stripe) const;

  /// Active (surviving) rows of a stripe, in execution order.
  [[nodiscard]] std::span<const std::uint32_t> stripe_rows(
      std::size_t stripe) const;

  /// Reconstructs the dense matrix.
  [[nodiscard]] Matrix to_dense() const;

  /// Storage footprint. value_bytes=2 models the paper's fp16 GPU path.
  [[nodiscard]] std::size_t memory_bytes(std::size_t value_bytes = 4,
                                         std::size_t index_bytes = 4) const;

  /// Serializes the compiled format (the artifact a deployment ships:
  /// no dense reconstruction needed on device). Binary, versioned.
  void write(std::ostream& os) const;

  /// Reads a matrix written by write(). Throws on malformed input.
  [[nodiscard]] static BspcMatrix read(std::istream& is);

  /// Structural + value equality.
  friend bool operator==(const BspcMatrix& a, const BspcMatrix& b);

  // ---- structural views (consumed by PackedQuantizedBspc) ----
  [[nodiscard]] std::size_t num_col_blocks() const { return num_c_; }
  [[nodiscard]] std::size_t max_block_cols() const {
    return max_block_cols_;
  }
  [[nodiscard]] std::span<const std::uint32_t> stripe_row_ptr() const {
    return stripe_row_ptr_;
  }
  [[nodiscard]] std::span<const std::uint32_t> active_rows() const {
    return active_rows_;
  }
  [[nodiscard]] std::span<const std::uint32_t> stripe_block_ptr() const {
    return stripe_block_ptr_;
  }
  [[nodiscard]] std::span<const BlockRef> blocks() const { return blocks_; }
  [[nodiscard]] std::span<const std::uint32_t> col_pool() const {
    return col_pool_;
  }
  [[nodiscard]] std::span<const float> values() const { return values_; }

 private:
  /// Runs one stripe's blocks, accumulating into y. `gathered` is the
  /// caller-provided LRE scratch buffer (>= max_block_cols_ when use_lre).
  void process_stripe(std::span<const float> x, std::span<float> y,
                      std::size_t s, bool use_lre,
                      std::span<float> gathered) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_r_ = 0;
  std::size_t num_c_ = 0;
  std::size_t max_block_cols_ = 0;
  std::vector<std::uint32_t> stripe_row_ptr_;    // num_r_+1 into active_rows_
  std::vector<std::uint32_t> active_rows_;       // global row ids
  std::vector<std::uint32_t> stripe_block_ptr_;  // num_r_+1 into blocks_
  std::vector<BlockRef> blocks_;
  std::vector<std::uint32_t> col_pool_;
  std::vector<float, AlignedAllocator<float>> values_;
};

}  // namespace rtmobile
