#include "sparse/bspc.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace rtmobile {

BspcMatrix BspcMatrix::from_dense(const Matrix& weights,
                                  const BlockMask& mask) {
  RT_REQUIRE(weights.rows() == mask.rows() && weights.cols() == mask.cols(),
             "BSPC: weight/mask shape mismatch");
  BspcMatrix out;
  out.rows_ = mask.rows();
  out.cols_ = mask.cols();
  out.num_r_ = mask.num_r();
  out.num_c_ = mask.num_c();

  out.stripe_row_ptr_.push_back(0);
  out.stripe_block_ptr_.push_back(0);
  for (std::size_t s = 0; s < mask.num_r(); ++s) {
    // Surviving rows of this stripe, ascending. The compiler's reorder pass
    // rebuilds the matrix with a permuted mask when it changes this order.
    for (std::size_t r = mask.row_begin(s); r < mask.row_end(s); ++r) {
      if (mask.row_kept(r)) {
        out.active_rows_.push_back(static_cast<std::uint32_t>(r));
      }
    }
    out.stripe_row_ptr_.push_back(
        static_cast<std::uint32_t>(out.active_rows_.size()));

    const std::size_t row_lo = out.stripe_row_ptr_[s];
    const std::size_t row_hi = out.stripe_row_ptr_[s + 1];
    for (std::size_t b = 0; b < mask.num_c(); ++b) {
      const auto cols = mask.block_cols(s, b);
      if (cols.empty() || row_lo == row_hi) continue;
      BlockRef ref;
      ref.col_offset = static_cast<std::uint32_t>(out.col_pool_.size());
      ref.col_count = static_cast<std::uint32_t>(cols.size());
      ref.value_offset = out.values_.size();
      out.col_pool_.insert(out.col_pool_.end(), cols.begin(), cols.end());
      out.max_block_cols_ = std::max(out.max_block_cols_, cols.size());
      for (std::size_t i = row_lo; i < row_hi; ++i) {
        const std::size_t r = out.active_rows_[i];
        for (const std::uint32_t c : cols) {
          out.values_.push_back(weights(r, c));
        }
      }
      out.blocks_.push_back(ref);
    }
    out.stripe_block_ptr_.push_back(
        static_cast<std::uint32_t>(out.blocks_.size()));
  }
  return out;
}

void BspcMatrix::spmv(std::span<const float> x, std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "BSPC spmv: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "BSPC spmv: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0F);
  spmv_stripes(x, y, 0, num_r_, /*use_lre=*/true);
}

void BspcMatrix::spmv_no_lre(std::span<const float> x,
                             std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "BSPC spmv: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "BSPC spmv: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0F);
  spmv_stripes(x, y, 0, num_r_, /*use_lre=*/false);
}

void BspcMatrix::spmv_stripes(std::span<const float> x, std::span<float> y,
                              std::size_t stripe_begin,
                              std::size_t stripe_end, bool use_lre) const {
  RT_REQUIRE(stripe_begin <= stripe_end && stripe_end <= num_r_,
             "BSPC spmv: stripe range out of bounds");
  // One gather buffer reused by every block in the range; sized to the
  // widest block so there is no per-block allocation.
  std::vector<float> gathered;
  if (use_lre) gathered.resize(max_block_cols_);
  for (std::size_t s = stripe_begin; s < stripe_end; ++s) {
    process_stripe(x, y, s, use_lre, gathered);
  }
}

void BspcMatrix::spmv_stripe_list(std::span<const float> x,
                                  std::span<float> y,
                                  std::span<const std::uint32_t> stripes,
                                  bool use_lre,
                                  std::span<float> gather) const {
  RT_REQUIRE(!use_lre || gather.size() >= max_block_cols_,
             "BSPC spmv: LRE gather scratch smaller than max_block_cols");
  for (const std::uint32_t s : stripes) {
    RT_REQUIRE(s < num_r_, "BSPC spmv: stripe index out of range");
    process_stripe(x, y, s, use_lre, gather);
  }
}

void BspcMatrix::spmv_stripe_list(std::span<const float> x,
                                  std::span<float> y,
                                  std::span<const std::uint32_t> stripes,
                                  bool use_lre) const {
  std::vector<float> gathered;
  if (use_lre) gathered.resize(max_block_cols_);
  spmv_stripe_list(x, y, stripes, use_lre,
                   {gathered.data(), gathered.size()});
}

void BspcMatrix::spmm_stripe_list(const Matrix& x, Matrix& y,
                                  std::size_t batch,
                                  std::span<const std::uint32_t> stripes,
                                  bool use_lre,
                                  std::span<float> gather) const {
  RT_REQUIRE(x.cols() == cols_ && y.cols() == rows_,
             "BSPC spmm: panel shape mismatch");
  RT_REQUIRE(batch <= x.rows() && batch <= y.rows(),
             "BSPC spmm: batch exceeds panel");
  RT_REQUIRE(!use_lre || gather.size() >= batch * max_block_cols_,
             "BSPC spmm: LRE gather scratch smaller than batch panel");
  for (const std::uint32_t s : stripes) {
    RT_REQUIRE(s < num_r_, "BSPC spmm: stripe index out of range");
    const std::size_t row_lo = stripe_row_ptr_[s];
    const std::size_t n_rows = stripe_row_ptr_[s + 1] - row_lo;
    if (n_rows == 0) continue;
    for (std::uint32_t bi = stripe_block_ptr_[s];
         bi < stripe_block_ptr_[s + 1]; ++bi) {
      const BlockRef& ref = blocks_[bi];
      const std::uint32_t* cols = col_pool_.data() + ref.col_offset;
      const float* block_values = values_.data() + ref.value_offset;
      if (use_lre) {
        // One gather of each stream's x per block, then every weight row
        // is streamed once and dotted against all streams' panels. The
        // inner accumulation is the exact per-vector LRE loop, so per
        // stream the sum is bit-identical to spmv_stripe_list.
        for (std::size_t b = 0; b < batch; ++b) {
          float* g = gather.data() + b * max_block_cols_;
          const float* xb = x.row(b).data();
          for (std::uint32_t k = 0; k < ref.col_count; ++k) {
            g[k] = xb[cols[k]];
          }
        }
        for (std::size_t i = 0; i < n_rows; ++i) {
          const float* vrow = block_values + i * ref.col_count;
          const std::size_t r = active_rows_[row_lo + i];
          for (std::size_t b = 0; b < batch; ++b) {
            const float* g = gather.data() + b * max_block_cols_;
            float acc = 0.0F;
            for (std::uint32_t k = 0; k < ref.col_count; ++k) {
              acc += vrow[k] * g[k];
            }
            y.row(b)[r] += acc;
          }
        }
      } else {
        for (std::size_t i = 0; i < n_rows; ++i) {
          const float* vrow = block_values + i * ref.col_count;
          const std::size_t r = active_rows_[row_lo + i];
          for (std::size_t b = 0; b < batch; ++b) {
            const float* xb = x.row(b).data();
            float acc = 0.0F;
            for (std::uint32_t k = 0; k < ref.col_count; ++k) {
              acc += vrow[k] * xb[cols[k]];
            }
            y.row(b)[r] += acc;
          }
        }
      }
    }
  }
}

void BspcMatrix::process_stripe(std::span<const float> x, std::span<float> y,
                                std::size_t s, bool use_lre,
                                std::span<float> gathered) const {
  {
    const std::size_t row_lo = stripe_row_ptr_[s];
    const std::size_t row_hi = stripe_row_ptr_[s + 1];
    const std::size_t n_rows = row_hi - row_lo;
    if (n_rows == 0) return;
    for (std::uint32_t bi = stripe_block_ptr_[s]; bi < stripe_block_ptr_[s + 1];
         ++bi) {
      const BlockRef& ref = blocks_[bi];
      const std::uint32_t* cols = col_pool_.data() + ref.col_offset;
      const float* block_values = values_.data() + ref.value_offset;
      if (use_lre) {
        // Redundant load elimination: one gather of x per block, shared by
        // all rows of the stripe.
        for (std::uint32_t k = 0; k < ref.col_count; ++k) {
          gathered[k] = x[cols[k]];
        }
        for (std::size_t i = 0; i < n_rows; ++i) {
          const float* vrow = block_values + i * ref.col_count;
          float acc = 0.0F;
          for (std::uint32_t k = 0; k < ref.col_count; ++k) {
            acc += vrow[k] * gathered[k];
          }
          y[active_rows_[row_lo + i]] += acc;
        }
      } else {
        // Ablation path: every row re-gathers x through the index pool.
        for (std::size_t i = 0; i < n_rows; ++i) {
          const float* vrow = block_values + i * ref.col_count;
          float acc = 0.0F;
          for (std::uint32_t k = 0; k < ref.col_count; ++k) {
            acc += vrow[k] * x[cols[k]];
          }
          y[active_rows_[row_lo + i]] += acc;
        }
      }
    }
  }
}

std::size_t BspcMatrix::stripe_nnz(std::size_t stripe) const {
  RT_REQUIRE(stripe < num_r_, "stripe index out of range");
  const std::size_t n_rows =
      stripe_row_ptr_[stripe + 1] - stripe_row_ptr_[stripe];
  std::size_t cols_in_stripe = 0;
  for (std::uint32_t bi = stripe_block_ptr_[stripe];
       bi < stripe_block_ptr_[stripe + 1]; ++bi) {
    cols_in_stripe += blocks_[bi].col_count;
  }
  return n_rows * cols_in_stripe;
}

std::span<const std::uint32_t> BspcMatrix::stripe_rows(
    std::size_t stripe) const {
  RT_REQUIRE(stripe < num_r_, "stripe index out of range");
  return {active_rows_.data() + stripe_row_ptr_[stripe],
          stripe_row_ptr_[stripe + 1] - stripe_row_ptr_[stripe]};
}

Matrix BspcMatrix::to_dense() const {
  Matrix dense(rows_, cols_, 0.0F);
  for (std::size_t s = 0; s < num_r_; ++s) {
    const std::size_t row_lo = stripe_row_ptr_[s];
    const std::size_t n_rows = stripe_row_ptr_[s + 1] - row_lo;
    for (std::uint32_t bi = stripe_block_ptr_[s]; bi < stripe_block_ptr_[s + 1];
         ++bi) {
      const BlockRef& ref = blocks_[bi];
      for (std::size_t i = 0; i < n_rows; ++i) {
        const std::size_t r = active_rows_[row_lo + i];
        const float* vrow = values_.data() + ref.value_offset +
                            i * ref.col_count;
        for (std::uint32_t k = 0; k < ref.col_count; ++k) {
          dense(r, col_pool_[ref.col_offset + k]) = vrow[k];
        }
      }
    }
  }
  return dense;
}

namespace {

constexpr std::array<char, 4> kBspcMagic = {'B', 'S', 'P', 'C'};
constexpr std::uint32_t kBspcVersion = 1;

void write_u64(std::ostream& os, std::uint64_t value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t value = 0;
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  RT_CHECK(is.good(), "truncated BSPC stream");
  return value;
}

template <typename T>
void write_pod_vector(std::ostream& os, const T& vec) {
  write_u64(os, vec.size());
  os.write(reinterpret_cast<const char*>(vec.data()),
           static_cast<std::streamsize>(vec.size() *
                                        sizeof(typename T::value_type)));
}

template <typename T>
void read_pod_vector(std::istream& is, T& vec, std::uint64_t max_size) {
  const std::uint64_t size = read_u64(is);
  RT_CHECK(size <= max_size, "BSPC vector size out of range");
  vec.resize(static_cast<std::size_t>(size));
  is.read(reinterpret_cast<char*>(vec.data()),
          static_cast<std::streamsize>(vec.size() *
                                       sizeof(typename T::value_type)));
  RT_CHECK(is.good(), "truncated BSPC payload");
}

}  // namespace

void BspcMatrix::write(std::ostream& os) const {
  os.write(kBspcMagic.data(), kBspcMagic.size());
  const std::uint32_t version = kBspcVersion;
  os.write(reinterpret_cast<const char*>(&version), sizeof version);
  write_u64(os, rows_);
  write_u64(os, cols_);
  write_u64(os, num_r_);
  write_u64(os, num_c_);
  write_u64(os, max_block_cols_);
  write_pod_vector(os, stripe_row_ptr_);
  write_pod_vector(os, active_rows_);
  write_pod_vector(os, stripe_block_ptr_);
  write_pod_vector(os, blocks_);
  write_pod_vector(os, col_pool_);
  write_pod_vector(os, values_);
  RT_CHECK(os.good(), "failed writing BSPC payload");
}

BspcMatrix BspcMatrix::read(std::istream& is) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  RT_CHECK(is.good() && magic == kBspcMagic, "bad BSPC magic");
  std::uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof version);
  RT_CHECK(is.good() && version == kBspcVersion,
           "unsupported BSPC version");

  BspcMatrix out;
  out.rows_ = static_cast<std::size_t>(read_u64(is));
  out.cols_ = static_cast<std::size_t>(read_u64(is));
  out.num_r_ = static_cast<std::size_t>(read_u64(is));
  out.num_c_ = static_cast<std::size_t>(read_u64(is));
  out.max_block_cols_ = static_cast<std::size_t>(read_u64(is));
  constexpr std::uint64_t kLimit = 1ULL << 34;
  RT_CHECK(out.rows_ <= kLimit && out.cols_ <= kLimit &&
               out.num_r_ <= out.rows_ && out.num_c_ <= out.cols_ &&
               out.max_block_cols_ <= out.cols_,
           "BSPC header out of range");
  read_pod_vector(is, out.stripe_row_ptr_, kLimit);
  read_pod_vector(is, out.active_rows_, kLimit);
  read_pod_vector(is, out.stripe_block_ptr_, kLimit);
  read_pod_vector(is, out.blocks_, kLimit);
  read_pod_vector(is, out.col_pool_, kLimit);
  read_pod_vector(is, out.values_, kLimit);

  // Structural validation: a corrupt file must not produce out-of-bounds
  // execution later.
  RT_CHECK(out.stripe_row_ptr_.size() == out.num_r_ + 1 &&
               out.stripe_block_ptr_.size() == out.num_r_ + 1,
           "BSPC stripe tables inconsistent");
  RT_CHECK(out.stripe_row_ptr_.back() == out.active_rows_.size() &&
               out.stripe_block_ptr_.back() == out.blocks_.size(),
           "BSPC table terminators inconsistent");
  for (const std::uint32_t r : out.active_rows_) {
    RT_CHECK(r < out.rows_, "BSPC active row out of range");
  }
  for (const std::uint32_t c : out.col_pool_) {
    RT_CHECK(c < out.cols_, "BSPC column index out of range");
  }
  for (const BlockRef& ref : out.blocks_) {
    RT_CHECK(ref.col_offset + ref.col_count <= out.col_pool_.size(),
             "BSPC block column range out of bounds");
    RT_CHECK(ref.col_count <= out.max_block_cols_,
             "BSPC block wider than declared maximum");
  }
  // Value extents per stripe: rows_in_stripe * cols must fit values_.
  for (std::size_t s = 0; s < out.num_r_; ++s) {
    const std::size_t n_rows =
        out.stripe_row_ptr_[s + 1] - out.stripe_row_ptr_[s];
    for (std::uint32_t bi = out.stripe_block_ptr_[s];
         bi < out.stripe_block_ptr_[s + 1]; ++bi) {
      const BlockRef& ref = out.blocks_[bi];
      RT_CHECK(ref.value_offset + n_rows * ref.col_count <=
                   out.values_.size(),
               "BSPC block values out of bounds");
    }
  }
  return out;
}

bool operator==(const BspcMatrix& a, const BspcMatrix& b) {
  const auto block_eq = [](const BspcMatrix::BlockRef& x,
                           const BspcMatrix::BlockRef& y) {
    return x.col_offset == y.col_offset && x.col_count == y.col_count &&
           x.value_offset == y.value_offset;
  };
  return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.num_r_ == b.num_r_ &&
         a.num_c_ == b.num_c_ && a.stripe_row_ptr_ == b.stripe_row_ptr_ &&
         a.active_rows_ == b.active_rows_ &&
         a.stripe_block_ptr_ == b.stripe_block_ptr_ &&
         a.blocks_.size() == b.blocks_.size() &&
         std::equal(a.blocks_.begin(), a.blocks_.end(), b.blocks_.begin(),
                    block_eq) &&
         a.col_pool_ == b.col_pool_ && a.values_ == b.values_;
}

std::size_t BspcMatrix::memory_bytes(std::size_t value_bytes,
                                     std::size_t index_bytes) const {
  const std::size_t meta_bytes =
      blocks_.size() * (2 * index_bytes + sizeof(std::uint64_t)) +
      (stripe_row_ptr_.size() + stripe_block_ptr_.size()) * index_bytes;
  return values_.size() * value_bytes + col_pool_.size() * index_bytes +
         active_rows_.size() * index_bytes + meta_bytes;
}

}  // namespace rtmobile
