// Bank-balanced sparse format (BBS baseline, Cao et al. FPGA'19).
//
// Each row is divided into fixed-size banks and exactly `keep_per_bank`
// largest-magnitude entries survive per bank, so every row has identical
// nonzero count and every bank identical occupancy — the load-balance
// property BBS trades accuracy for. Offsets are bank-local and fit in
// uint16, which is BBS's index-compression story.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

class BankBalancedMatrix {
 public:
  BankBalancedMatrix() = default;

  /// Keeps the top `keep_per_bank` magnitudes in every bank of every row.
  /// `bank_size` must divide cols and `keep_per_bank <= bank_size`.
  [[nodiscard]] static BankBalancedMatrix from_dense(const Matrix& dense,
                                                     std::size_t bank_size,
                                                     std::size_t keep_per_bank);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t bank_size() const { return bank_size_; }
  [[nodiscard]] std::size_t keep_per_bank() const { return keep_per_bank_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x.
  void spmv(std::span<const float> x, std::span<float> y) const;

  [[nodiscard]] Matrix to_dense() const;

  [[nodiscard]] std::size_t memory_bytes(std::size_t value_bytes = 4) const;

  /// The 0/1 keep mask the pruning induces (for retraining baselines).
  [[nodiscard]] Matrix keep_mask() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t bank_size_ = 0;
  std::size_t keep_per_bank_ = 0;
  std::size_t banks_per_row_ = 0;
  // Layout: [row][bank][slot] flattened; offsets are bank-local.
  std::vector<float, AlignedAllocator<float>> values_;
  std::vector<std::uint16_t> offsets_;
};

}  // namespace rtmobile
