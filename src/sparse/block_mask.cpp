#include "sparse/block_mask.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace rtmobile {

BlockMask::BlockMask(std::size_t rows, std::size_t cols, std::size_t num_r,
                     std::size_t num_c)
    : rows_(rows), cols_(cols), num_r_(num_r), num_c_(num_c) {
  RT_REQUIRE(rows > 0 && cols > 0, "mask dimensions must be positive");
  RT_REQUIRE(num_r > 0 && num_r <= rows,
             "num_r must be in [1, rows]");
  RT_REQUIRE(num_c > 0 && num_c <= cols,
             "num_c must be in [1, cols]");
  kept_cols_.resize(num_r_ * num_c_);
  for (std::size_t s = 0; s < num_r_; ++s) {
    for (std::size_t b = 0; b < num_c_; ++b) {
      auto& cell = kept_cols_[cell_index(s, b)];
      const std::size_t begin = col_begin(b);
      const std::size_t end = col_end(b);
      cell.resize(end - begin);
      std::iota(cell.begin(), cell.end(), static_cast<std::uint32_t>(begin));
    }
  }
  row_kept_.assign(rows_, 1);
}

std::size_t BlockMask::row_begin(std::size_t stripe) const {
  RT_REQUIRE(stripe < num_r_, "stripe index out of range");
  return stripe * rows_ / num_r_;
}

std::size_t BlockMask::row_end(std::size_t stripe) const {
  RT_REQUIRE(stripe < num_r_, "stripe index out of range");
  return (stripe + 1) * rows_ / num_r_;
}

std::size_t BlockMask::col_begin(std::size_t block) const {
  RT_REQUIRE(block < num_c_, "block index out of range");
  return block * cols_ / num_c_;
}

std::size_t BlockMask::col_end(std::size_t block) const {
  RT_REQUIRE(block < num_c_, "block index out of range");
  return (block + 1) * cols_ / num_c_;
}

std::size_t BlockMask::stripe_of_row(std::size_t row) const {
  RT_REQUIRE(row < rows_, "row index out of range");
  // Inverse of the balanced partition: candidate from the closed form,
  // corrected by at most one step either way (integer rounding).
  std::size_t s = std::min(num_r_ - 1, row * num_r_ / rows_);
  while (row < row_begin(s)) --s;
  while (row >= row_end(s)) ++s;
  return s;
}

std::size_t BlockMask::block_of_col(std::size_t col) const {
  RT_REQUIRE(col < cols_, "column index out of range");
  std::size_t b = std::min(num_c_ - 1, col * num_c_ / cols_);
  while (col < col_begin(b)) --b;
  while (col >= col_end(b)) ++b;
  return b;
}

void BlockMask::set_block_cols(std::size_t stripe, std::size_t block,
                               std::vector<std::uint32_t> kept_cols) {
  RT_REQUIRE(stripe < num_r_, "stripe index out of range");
  RT_REQUIRE(block < num_c_, "block index out of range");
  const std::size_t begin = col_begin(block);
  const std::size_t end = col_end(block);
  RT_REQUIRE(std::is_sorted(kept_cols.begin(), kept_cols.end()),
             "kept columns must be sorted");
  RT_REQUIRE(
      std::adjacent_find(kept_cols.begin(), kept_cols.end()) ==
          kept_cols.end(),
      "kept columns must be unique");
  for (const std::uint32_t c : kept_cols) {
    RT_REQUIRE(c >= begin && c < end, "kept column outside block range");
  }
  kept_cols_[cell_index(stripe, block)] = std::move(kept_cols);
}

std::span<const std::uint32_t> BlockMask::block_cols(
    std::size_t stripe, std::size_t block) const {
  RT_REQUIRE(stripe < num_r_, "stripe index out of range");
  RT_REQUIRE(block < num_c_, "block index out of range");
  const auto& cell = kept_cols_[cell_index(stripe, block)];
  return {cell.data(), cell.size()};
}

void BlockMask::set_row_kept(std::size_t row, bool kept) {
  RT_REQUIRE(row < rows_, "row index out of range");
  row_kept_[row] = kept ? 1 : 0;
}

bool BlockMask::row_kept(std::size_t row) const {
  RT_REQUIRE(row < rows_, "row index out of range");
  return row_kept_[row] != 0;
}

bool BlockMask::is_kept(std::size_t row, std::size_t col) const {
  RT_REQUIRE(row < rows_ && col < cols_, "mask index out of range");
  if (row_kept_[row] == 0) return false;
  const std::size_t s = stripe_of_row(row);
  const std::size_t b = block_of_col(col);
  const auto& cell = kept_cols_[cell_index(s, b)];
  return std::binary_search(cell.begin(), cell.end(),
                            static_cast<std::uint32_t>(col));
}

std::size_t BlockMask::nnz() const {
  std::size_t count = 0;
  for (std::size_t s = 0; s < num_r_; ++s) {
    std::size_t kept_rows_in_stripe = 0;
    for (std::size_t r = row_begin(s); r < row_end(s); ++r) {
      kept_rows_in_stripe += row_kept_[r];
    }
    std::size_t cols_in_stripe = 0;
    for (std::size_t b = 0; b < num_c_; ++b) {
      cols_in_stripe += kept_cols_[cell_index(s, b)].size();
    }
    count += kept_rows_in_stripe * cols_in_stripe;
  }
  return count;
}

std::size_t BlockMask::kept_row_count() const {
  return static_cast<std::size_t>(
      std::count(row_kept_.begin(), row_kept_.end(), std::uint8_t{1}));
}

std::size_t BlockMask::kept_block_col_count() const {
  std::size_t count = 0;
  for (const auto& cell : kept_cols_) count += cell.size();
  return count;
}

double BlockMask::column_keep_fraction() const {
  return static_cast<double>(kept_block_col_count()) /
         static_cast<double>(num_r_ * cols_);
}

double BlockMask::row_keep_fraction() const {
  return static_cast<double>(kept_row_count()) / static_cast<double>(rows_);
}

Matrix BlockMask::to_dense() const {
  Matrix mask(rows_, cols_, 0.0F);
  for (std::size_t s = 0; s < num_r_; ++s) {
    for (std::size_t b = 0; b < num_c_; ++b) {
      for (const std::uint32_t c : kept_cols_[cell_index(s, b)]) {
        for (std::size_t r = row_begin(s); r < row_end(s); ++r) {
          if (row_kept_[r] != 0) mask(r, c) = 1.0F;
        }
      }
    }
  }
  return mask;
}

void BlockMask::apply(Matrix& weights) const {
  RT_REQUIRE(weights.rows() == rows_ && weights.cols() == cols_,
             "mask/matrix shape mismatch");
  const Matrix mask = to_dense();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights.span()[i] *= mask.span()[i];
  }
}

bool operator==(const BlockMask& a, const BlockMask& b) {
  return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.num_r_ == b.num_r_ &&
         a.num_c_ == b.num_c_ && a.kept_cols_ == b.kept_cols_ &&
         a.row_kept_ == b.row_kept_;
}

}  // namespace rtmobile
