#include "sparse/bspc_quant.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/quant_dot.hpp"
#include "util/check.hpp"

namespace rtmobile {

namespace {

/// clamp(round(v / scale)) onto the symmetric int8 grid. scale == 0
/// means the row (or tensor) is all zeros, so every code is zero.
std::int8_t quantize_code(float value, float scale) {
  if (scale == 0.0F) return 0;
  const float q = std::round(value / scale);
  return static_cast<std::int8_t>(
      std::clamp(q, -kInt8CodeLimit, kInt8CodeLimit));
}

}  // namespace

PackedQuantizedBspc PackedQuantizedBspc::pack(const BspcMatrix& source,
                                              WeightPrecision precision) {
  RT_REQUIRE(precision != WeightPrecision::kFp32,
             "pack: fp32 keeps the BspcMatrix itself");
  PackedQuantizedBspc out;
  out.precision_ = precision;
  out.rows_ = source.rows();
  out.cols_ = source.cols();
  out.num_r_ = source.num_stripes();
  out.num_c_ = source.num_col_blocks();
  out.max_block_cols_ = source.max_block_cols();
  out.nnz_ = source.nnz();
  out.stripe_row_ptr_.assign(source.stripe_row_ptr().begin(),
                             source.stripe_row_ptr().end());
  for (std::size_t s = 0; s + 1 < out.stripe_row_ptr_.size(); ++s) {
    out.max_stripe_rows_ = std::max<std::size_t>(
        out.max_stripe_rows_,
        out.stripe_row_ptr_[s + 1] - out.stripe_row_ptr_[s]);
  }
  out.active_rows_.assign(source.active_rows().begin(),
                          source.active_rows().end());
  out.stripe_block_ptr_.assign(source.stripe_block_ptr().begin(),
                               source.stripe_block_ptr().end());
  out.blocks_.assign(source.blocks().begin(), source.blocks().end());
  out.col_pool_.assign(source.col_pool().begin(), source.col_pool().end());

  const std::span<const float> values = source.values();
  if (precision == WeightPrecision::kFp16) {
    out.f16_.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      out.f16_[i] = fp16_from_float(values[i]);
    }
    return out;
  }

  // Int8: one pass over the structure for the per-row (or tensor) max,
  // a second to emit codes. Visiting through the block refs attributes
  // every stored value to its global row.
  out.row_scale_.assign(out.rows_, 0.0F);
  std::vector<float> row_max(out.rows_, 0.0F);
  const auto for_each_value = [&](auto&& fn) {
    for (std::size_t s = 0; s < out.num_r_; ++s) {
      const std::size_t row_lo = out.stripe_row_ptr_[s];
      const std::size_t n_rows = out.stripe_row_ptr_[s + 1] - row_lo;
      for (std::uint32_t bi = out.stripe_block_ptr_[s];
           bi < out.stripe_block_ptr_[s + 1]; ++bi) {
        const BspcMatrix::BlockRef& ref = out.blocks_[bi];
        for (std::size_t i = 0; i < n_rows; ++i) {
          const std::uint32_t r = out.active_rows_[row_lo + i];
          const std::size_t base = ref.value_offset + i * ref.col_count;
          for (std::uint32_t k = 0; k < ref.col_count; ++k) {
            fn(base + k, r);
          }
        }
      }
    }
  };

  for_each_value([&](std::size_t v, std::uint32_t r) {
    row_max[r] = std::max(row_max[r], std::fabs(values[v]));
  });
  if (precision == WeightPrecision::kInt8PerTensor) {
    float tensor_max = 0.0F;
    for (const float m : row_max) tensor_max = std::max(tensor_max, m);
    std::fill(row_max.begin(), row_max.end(), tensor_max);
  }
  for (std::size_t r = 0; r < out.rows_; ++r) {
    out.row_scale_[r] = row_max[r] / kInt8CodeLimit;
  }

  out.q8_.resize(values.size());
  for_each_value([&](std::size_t v, std::uint32_t r) {
    out.q8_[v] = quantize_code(values[v], out.row_scale_[r]);
  });
  return out;
}

template <bool kUseLre>
void PackedQuantizedBspc::process_stripe(std::span<const float> x,
                                         std::span<float> y, std::size_t s,
                                         std::span<float> gathered) const {
  const std::size_t row_lo = stripe_row_ptr_[s];
  const std::size_t row_hi = stripe_row_ptr_[s + 1];
  const std::size_t n_rows = row_hi - row_lo;
  if (n_rows == 0) return;
  const bool is_int8 = !q8_.empty();
  for (std::uint32_t bi = stripe_block_ptr_[s]; bi < stripe_block_ptr_[s + 1];
       ++bi) {
    const BspcMatrix::BlockRef& ref = blocks_[bi];
    const std::uint32_t* cols = col_pool_.data() + ref.col_offset;
    if constexpr (kUseLre) {
      // Redundant load elimination: one gather of x per block, shared by
      // all rows of the stripe.
      for (std::uint32_t k = 0; k < ref.col_count; ++k) {
        gathered[k] = x[cols[k]];
      }
    }
    if (is_int8) {
      const std::int8_t* block_values = q8_.data() + ref.value_offset;
      const float* g = gathered.data();
      for (std::size_t i = 0; i < n_rows; ++i) {
        const std::int8_t* vrow = block_values + i * ref.col_count;
        const float acc =
            kUseLre ? dot_q8_f32(vrow, g, ref.col_count)
                    : dot_q8_f32_indexed(vrow, x.data(), cols,
                                         ref.col_count);
        const std::uint32_t r = active_rows_[row_lo + i];
        y[r] += acc * row_scale_[r];
      }
    } else {
      const std::uint16_t* block_values = f16_.data() + ref.value_offset;
      for (std::size_t i = 0; i < n_rows; ++i) {
        const std::uint16_t* vrow = block_values + i * ref.col_count;
        const float acc =
            kUseLre ? dot_f16_f32(vrow, gathered.data(), ref.col_count)
                    : dot_f16_f32_indexed(vrow, x.data(), cols,
                                          ref.col_count);
        y[active_rows_[row_lo + i]] += acc;
      }
    }
  }
}

void PackedQuantizedBspc::spmv(std::span<const float> x,
                               std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "packed spmv: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "packed spmv: y size mismatch");
  std::fill(y.begin(), y.end(), 0.0F);
  std::vector<float> gathered(max_block_cols_);
  for (std::size_t s = 0; s < num_r_; ++s) {
    process_stripe<true>(x, y, s, gathered);
  }
}

void PackedQuantizedBspc::spmv_stripe_list(
    std::span<const float> x, std::span<float> y,
    std::span<const std::uint32_t> stripes, bool use_lre,
    std::span<float> gather) const {
  RT_REQUIRE(!use_lre || gather.size() >= max_block_cols_,
             "packed spmv: LRE gather scratch smaller than max_block_cols");
  for (const std::uint32_t s : stripes) {
    RT_REQUIRE(s < num_r_, "packed spmv: stripe index out of range");
    if (use_lre) {
      process_stripe<true>(x, y, s, gather);
    } else {
      process_stripe<false>(x, y, s, gather);
    }
  }
}

void PackedQuantizedBspc::spmv_stripe_list(
    std::span<const float> x, std::span<float> y,
    std::span<const std::uint32_t> stripes, bool use_lre) const {
  std::vector<float> gathered;
  if (use_lre) gathered.resize(max_block_cols_);
  spmv_stripe_list(x, y, stripes, use_lre,
                   {gathered.data(), gathered.size()});
}

void PackedQuantizedBspc::spmm(const Matrix& x, Matrix& y,
                               std::size_t batch) const {
  RT_REQUIRE(batch > 0, "packed spmm: empty batch");
  RT_REQUIRE(x.rows() >= batch && x.cols() == cols_,
             "packed spmm: X shape mismatch");
  RT_REQUIRE(y.rows() >= batch && y.cols() == rows_,
             "packed spmm: Y shape mismatch");
  for (std::size_t b = 0; b < batch; ++b) {
    std::fill(y.row(b).begin(), y.row(b).end(), 0.0F);
  }
  const bool is_int8 = !q8_.empty();
  // One gather of the whole batch's inputs per block: weights stream
  // through each row exactly once for all right-hand sides.
  std::vector<float> gathered(batch * max_block_cols_);
  for (std::size_t s = 0; s < num_r_; ++s) {
    const std::size_t row_lo = stripe_row_ptr_[s];
    const std::size_t n_rows = stripe_row_ptr_[s + 1] - row_lo;
    if (n_rows == 0) continue;
    for (std::uint32_t bi = stripe_block_ptr_[s];
         bi < stripe_block_ptr_[s + 1]; ++bi) {
      const BspcMatrix::BlockRef& ref = blocks_[bi];
      const std::uint32_t* cols = col_pool_.data() + ref.col_offset;
      for (std::size_t b = 0; b < batch; ++b) {
        const std::span<const float> xb = x.row(b);
        float* g = gathered.data() + b * ref.col_count;
        for (std::uint32_t k = 0; k < ref.col_count; ++k) {
          g[k] = xb[cols[k]];
        }
      }
      for (std::size_t i = 0; i < n_rows; ++i) {
        const std::uint32_t r = active_rows_[row_lo + i];
        if (is_int8) {
          const std::int8_t* vrow =
              q8_.data() + ref.value_offset + i * ref.col_count;
          const float scale = row_scale_[r];
          for (std::size_t b = 0; b < batch; ++b) {
            const float* g = gathered.data() + b * ref.col_count;
            const float acc = dot_q8_f32(vrow, g, ref.col_count);
            y.row(b)[r] += acc * scale;
          }
        } else {
          const std::uint16_t* vrow =
              f16_.data() + ref.value_offset + i * ref.col_count;
          for (std::size_t b = 0; b < batch; ++b) {
            const float* g = gathered.data() + b * ref.col_count;
            y.row(b)[r] += dot_f16_f32(vrow, g, ref.col_count);
          }
        }
      }
    }
  }
}

void PackedQuantizedBspc::spmm_stripe_list(
    const Matrix& x, Matrix& y, std::size_t batch,
    std::span<const std::uint32_t> stripes, std::span<float> gather) const {
  RT_REQUIRE(x.cols() == cols_ && y.cols() == rows_,
             "packed spmm: panel shape mismatch");
  RT_REQUIRE(batch <= x.rows() && batch <= y.rows(),
             "packed spmm: batch exceeds panel");
  RT_REQUIRE(gather.size() >= batch * max_block_cols_,
             "packed spmm: gather scratch smaller than batch panel");
  const bool is_int8 = !q8_.empty();
  for (const std::uint32_t s : stripes) {
    RT_REQUIRE(s < num_r_, "packed spmm: stripe index out of range");
    const std::size_t row_lo = stripe_row_ptr_[s];
    const std::size_t n_rows = stripe_row_ptr_[s + 1] - row_lo;
    if (n_rows == 0) continue;
    for (std::uint32_t bi = stripe_block_ptr_[s];
         bi < stripe_block_ptr_[s + 1]; ++bi) {
      const BspcMatrix::BlockRef& ref = blocks_[bi];
      const std::uint32_t* cols = col_pool_.data() + ref.col_offset;
      for (std::size_t b = 0; b < batch; ++b) {
        const float* xb = x.row(b).data();
        float* g = gather.data() + b * max_block_cols_;
        for (std::uint32_t k = 0; k < ref.col_count; ++k) {
          g[k] = xb[cols[k]];
        }
      }
      if (is_int8) {
        const std::int8_t* block_values = q8_.data() + ref.value_offset;
        for (std::size_t i = 0; i < n_rows; ++i) {
          const std::int8_t* vrow = block_values + i * ref.col_count;
          const std::uint32_t r = active_rows_[row_lo + i];
          const float scale = row_scale_[r];
          for (std::size_t b = 0; b < batch; ++b) {
            const float* g = gather.data() + b * max_block_cols_;
            y.row(b)[r] += dot_q8_f32(vrow, g, ref.col_count) * scale;
          }
        }
      } else {
        const std::uint16_t* block_values = f16_.data() + ref.value_offset;
        for (std::size_t i = 0; i < n_rows; ++i) {
          const std::uint16_t* vrow = block_values + i * ref.col_count;
          const std::uint32_t r = active_rows_[row_lo + i];
          for (std::size_t b = 0; b < batch; ++b) {
            const float* g = gather.data() + b * max_block_cols_;
            y.row(b)[r] += dot_f16_f32(vrow, g, ref.col_count);
          }
        }
      }
    }
  }
}

void PackedQuantizedBspc::spmm_stripe_list_q8(
    const QuantizedActivations& x, Matrix& y, std::size_t batch,
    std::span<const std::uint32_t> stripes,
    std::span<std::int32_t> scratch) const {
  RT_REQUIRE(!q8_.empty(), "packed spmm q8: int8 weight storage required");
  RT_REQUIRE(x.dim == cols_ && y.cols() == rows_,
             "packed spmm q8: panel shape mismatch");
  RT_REQUIRE(batch <= x.batch && batch <= y.rows(),
             "packed spmm q8: batch exceeds panel");
  RT_REQUIRE(scratch.size() >= q8_scratch_words(batch),
             "packed spmm q8: scratch smaller than q8_scratch_words");
  const std::size_t bp = (batch + 7) & ~std::size_t{7};
  RT_REQUIRE(x.padded_batch >= bp,
             "packed spmm q8: panel not transpose()d for this batch");
  const std::size_t max_pairs = (max_block_cols_ + 1) / 2;
  // Scratch layout: the interleaved activation panel (one int32 lane =
  // one stream's int16 code pair), then the stripe's int32 accumulators.
  std::int16_t* panel = reinterpret_cast<std::int16_t*>(scratch.data());
  std::int32_t* acc = scratch.data() + bp * max_pairs;
  for (const std::uint32_t s : stripes) {
    RT_REQUIRE(s < num_r_, "packed spmm q8: stripe index out of range");
    const std::size_t row_lo = stripe_row_ptr_[s];
    const std::size_t n_rows = stripe_row_ptr_[s + 1] - row_lo;
    if (n_rows == 0) continue;
    std::fill(acc, acc + n_rows * bp, 0);
    for (std::uint32_t bi = stripe_block_ptr_[s];
         bi < stripe_block_ptr_[s + 1]; ++bi) {
      const BspcMatrix::BlockRef& ref = blocks_[bi];
      const std::uint32_t* cols = col_pool_.data() + ref.col_offset;
      const std::size_t pairs = (ref.col_count + 1) / 2;
      // Interleave once per block from the transposed activation panel:
      // pair p's lane b holds the int16 code pair (x[b][cols[2p]],
      // x[b][cols[2p+1]]). Columns are stream-contiguous, so each pair
      // is two straight loads + byte interleave; pad lanes are already
      // zero in tcodes and the odd tail column interleaves with null.
      for (std::size_t p = 0; p < pairs; ++p) {
        const bool has_hi = 2 * p + 1 < ref.col_count;
        interleave_q8_pairs(x.col(cols[2 * p]),
                            has_hi ? x.col(cols[2 * p + 1]) : nullptr, bp,
                            panel + p * 2 * bp);
      }
      madd_q8_block(q8_.data() + ref.value_offset, ref.col_count, n_rows,
                    panel, bp, acc);
    }
    // One dequantization per (row, stream) for the whole stripe. Stream
    // outer so each stream's output row is written in ascending column
    // order (acc is small enough to sit in L1 either way).
    for (std::size_t b = 0; b < batch; ++b) {
      float* yb = y.row(b).data();
      const float xs = x.scale[b];
      for (std::size_t i = 0; i < n_rows; ++i) {
        const std::uint32_t r = active_rows_[row_lo + i];
        yb[r] += static_cast<float>(acc[i * bp + b]) * row_scale_[r] * xs;
      }
    }
  }
}

float PackedQuantizedBspc::dequantize_at(std::size_t value_index,
                                         std::size_t row) const {
  if (!q8_.empty()) {
    return static_cast<float>(q8_[value_index]) * row_scale_[row];
  }
  return fp16_bits_to_float(f16_[value_index]);
}

Matrix PackedQuantizedBspc::to_dense() const {
  Matrix dense(rows_, cols_, 0.0F);
  for (std::size_t s = 0; s < num_r_; ++s) {
    const std::size_t row_lo = stripe_row_ptr_[s];
    const std::size_t n_rows = stripe_row_ptr_[s + 1] - row_lo;
    for (std::uint32_t bi = stripe_block_ptr_[s];
         bi < stripe_block_ptr_[s + 1]; ++bi) {
      const BspcMatrix::BlockRef& ref = blocks_[bi];
      for (std::size_t i = 0; i < n_rows; ++i) {
        const std::size_t r = active_rows_[row_lo + i];
        for (std::uint32_t k = 0; k < ref.col_count; ++k) {
          dense(r, col_pool_[ref.col_offset + k]) =
              dequantize_at(ref.value_offset + i * ref.col_count + k, r);
        }
      }
    }
  }
  return dense;
}

std::size_t PackedQuantizedBspc::memory_bytes(std::size_t index_bytes) const {
  const std::size_t meta_bytes =
      blocks_.size() * (2 * index_bytes + sizeof(std::uint64_t)) +
      (stripe_row_ptr_.size() + stripe_block_ptr_.size()) * index_bytes;
  std::size_t scale_bytes = 0;
  if (precision_ == WeightPrecision::kInt8PerRow) {
    scale_bytes = row_scale_.size() * sizeof(float);
  } else if (precision_ == WeightPrecision::kInt8PerTensor) {
    scale_bytes = sizeof(float);  // one scale, replicated only in memory
  }
  return nnz_ * bytes_per_weight(precision_) + scale_bytes +
         col_pool_.size() * index_bytes + active_rows_.size() * index_bytes +
         meta_bytes;
}

}  // namespace rtmobile
