#include "sparse/csr.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rtmobile {

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, float threshold) {
  RT_REQUIRE(threshold >= 0.0F, "threshold must be non-negative");
  CsrMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_ptr_.reserve(dense.rows() + 1);
  out.row_ptr_.push_back(0);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    const auto row = dense.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (std::fabs(row[c]) > threshold) {
        out.col_idx_.push_back(static_cast<std::uint32_t>(c));
        out.values_.push_back(row[c]);
      }
    }
    out.row_ptr_.push_back(static_cast<std::uint32_t>(out.col_idx_.size()));
  }
  return out;
}

void CsrMatrix::spmv(std::span<const float> x, std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "spmv: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "spmv: y size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    float acc = 0.0F;
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
}

void CsrMatrix::spmv_accumulate(std::span<const float> x,
                                std::span<float> y) const {
  RT_REQUIRE(x.size() == cols_, "spmv: x size mismatch");
  RT_REQUIRE(y.size() == rows_, "spmv: y size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    float acc = 0.0F;
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] += acc;
  }
}

Matrix CsrMatrix::to_dense() const {
  Matrix dense(rows_, cols_, 0.0F);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      dense(r, col_idx_[k]) = values_[k];
    }
  }
  return dense;
}

std::size_t CsrMatrix::memory_bytes(std::size_t value_bytes,
                                    std::size_t index_bytes) const {
  return values_.size() * value_bytes + col_idx_.size() * index_bytes +
         row_ptr_.size() * index_bytes;
}

std::size_t CsrMatrix::row_nnz(std::size_t row) const {
  RT_REQUIRE(row < rows_, "row index out of range");
  return row_ptr_[row + 1] - row_ptr_[row];
}

}  // namespace rtmobile
