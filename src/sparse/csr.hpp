// Compressed Sparse Row storage.
//
// CSR is the format non-structured pruning (ESE-style) must fall back to;
// in the paper it is the strawman that BSPC beats on both index overhead
// (one index per nonzero) and access regularity. It doubles as our general
// sparse reference implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds CSR from a dense matrix, keeping entries with |w| > threshold.
  [[nodiscard]] static CsrMatrix from_dense(const Matrix& dense,
                                            float threshold = 0.0F);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x.
  void spmv(std::span<const float> x, std::span<float> y) const;

  /// y += A x.
  void spmv_accumulate(std::span<const float> x, std::span<float> y) const;

  /// Reconstructs the dense matrix (pruned entries are zero).
  [[nodiscard]] Matrix to_dense() const;

  /// Storage footprint given value/index widths in bytes. The paper's
  /// mobile GPU kernels use fp16 values (value_bytes = 2).
  [[nodiscard]] std::size_t memory_bytes(std::size_t value_bytes = 4,
                                         std::size_t index_bytes = 4) const;

  [[nodiscard]] std::span<const std::uint32_t> row_ptr() const {
    return {row_ptr_.data(), row_ptr_.size()};
  }
  [[nodiscard]] std::span<const std::uint32_t> col_idx() const {
    return {col_idx_.data(), col_idx_.size()};
  }
  [[nodiscard]] std::span<const float> values() const {
    return {values_.data(), values_.size()};
  }

  /// Nonzero count of one row.
  [[nodiscard]] std::size_t row_nnz(std::size_t row) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<float, AlignedAllocator<float>> values_;
};

}  // namespace rtmobile
