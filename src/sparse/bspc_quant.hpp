// PackedQuantizedBspc — the BSPC format with int8/fp16 value storage.
//
// core/quantize only *simulates* storage precision: weights are rounded
// through the grid and dequantized back into fp32 matrices, so the hot
// loops never get smaller. This format actually stores the packed value
// payload at reduced width — int8 codes with per-row (or per-tensor)
// fp32 scales, or IEEE binary16 bits — while sharing BspcMatrix's
// structural metadata (stripe row sets, kept-column pool, block refs)
// byte for byte. Kernels accumulate in fp32 and apply the int8 scale
// once per (row, block) partial sum, so numerics stay within the grid's
// rounding bound of the dequantize-then-fp32 simulation; the fp16 path
// is bit-identical to it (fp16 -> fp32 conversion is exact and the loop
// structure matches BspcMatrix::spmv exactly).
//
// The throughput win is bandwidth: the value payload is 2-4x smaller,
// which is what the memory-bound batched serving path streams per
// stream per timestep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/bspc.hpp"
#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"
#include "tensor/precision.hpp"

namespace rtmobile {

class PackedQuantizedBspc {
 public:
  PackedQuantizedBspc() = default;

  /// Quantizes `source`'s value payload under `precision` (kFp32 is
  /// rejected — keep the BspcMatrix itself for fp32). Int8 scales are
  /// computed over the kept entries only, which matches quantize_int8 on
  /// the masked dense matrix: pruned entries are zero there and cannot
  /// raise a row's max |w|.
  [[nodiscard]] static PackedQuantizedBspc pack(const BspcMatrix& source,
                                                WeightPrecision precision);

  [[nodiscard]] WeightPrecision precision() const { return precision_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t num_stripes() const { return num_r_; }
  [[nodiscard]] std::size_t nnz() const { return nnz_; }

  /// y = A x over all stripes (zeroes y first).
  void spmv(std::span<const float> x, std::span<float> y) const;

  /// Processes an explicit stripe list in order, accumulating into y —
  /// the unit the compiler's thread partition dispatches, mirroring
  /// BspcMatrix::spmv_stripe_list. Stripe row sets are disjoint, so
  /// concurrent calls with disjoint lists never race on y. `gather` is
  /// the caller-provided LRE scratch (>= max_block_cols() floats when
  /// use_lre); concurrent calls need disjoint buffers.
  void spmv_stripe_list(std::span<const float> x, std::span<float> y,
                        std::span<const std::uint32_t> stripes, bool use_lre,
                        std::span<float> gather) const;
  /// Convenience overload that allocates its own gather scratch.
  void spmv_stripe_list(std::span<const float> x, std::span<float> y,
                        std::span<const std::uint32_t> stripes,
                        bool use_lre = true) const;

  /// Widest block's kept-column count (the LRE gather scratch size).
  [[nodiscard]] std::size_t max_block_cols() const {
    return max_block_cols_;
  }

  /// Batched right-hand sides: row b of X (b < batch) is an independent
  /// input vector and row b of Y receives A X[b]. Weights are streamed
  /// once per block for the whole batch instead of once per vector;
  /// each row's result is bit-identical to spmv on that row (same
  /// per-row accumulation order). Y rows [0, batch) are zeroed first.
  /// Not yet wired into step_batch (which keeps per-stream matvecs for
  /// its chunked thread partition — see the ROADMAP next step);
  /// bench_quantization quantifies the matmat-vs-matvec gap.
  void spmm(const Matrix& x, Matrix& y, std::size_t batch) const;

  /// Dequantized dense reconstruction (for verification).
  [[nodiscard]] Matrix to_dense() const;

  /// Storage footprint: packed values at their true width, plus scales,
  /// plus the shared structural metadata.
  [[nodiscard]] std::size_t memory_bytes(std::size_t index_bytes = 4) const;

 private:
  template <bool kUseLre>
  void process_stripe(std::span<const float> x, std::span<float> y,
                      std::size_t s, std::span<float> gathered) const;

  [[nodiscard]] float dequantize_at(std::size_t value_index,
                                    std::size_t row) const;

  WeightPrecision precision_ = WeightPrecision::kInt8PerTensor;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_r_ = 0;
  std::size_t num_c_ = 0;
  std::size_t max_block_cols_ = 0;
  std::size_t nnz_ = 0;
  // Structural metadata, copied verbatim from the source BspcMatrix.
  std::vector<std::uint32_t> stripe_row_ptr_;
  std::vector<std::uint32_t> active_rows_;
  std::vector<std::uint32_t> stripe_block_ptr_;
  std::vector<BspcMatrix::BlockRef> blocks_;
  std::vector<std::uint32_t> col_pool_;
  // Value payload: exactly one of these is populated.
  std::vector<std::int8_t, AlignedAllocator<std::int8_t>> q8_;
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> f16_;
  /// Dequantization scale per global row (per-tensor precision stores
  /// the one tensor scale replicated, keeping the kernel uniform).
  std::vector<float, AlignedAllocator<float>> row_scale_;
};

}  // namespace rtmobile
