// PackedQuantizedBspc — the BSPC format with int8/fp16 value storage.
//
// core/quantize only *simulates* storage precision: weights are rounded
// through the grid and dequantized back into fp32 matrices, so the hot
// loops never get smaller. This format actually stores the packed value
// payload at reduced width — int8 codes with per-row (or per-tensor)
// fp32 scales, or IEEE binary16 bits — while sharing BspcMatrix's
// structural metadata (stripe row sets, kept-column pool, block refs)
// byte for byte. Kernels accumulate in fp32 and apply the int8 scale
// once per (row, block) partial sum, so numerics stay within the grid's
// rounding bound of the dequantize-then-fp32 simulation; the fp16 path
// is bit-identical to it (fp16 -> fp32 conversion is exact and the loop
// structure matches BspcMatrix::spmv exactly).
//
// The throughput win is bandwidth: the value payload is 2-4x smaller,
// which is what the memory-bound batched serving path streams per
// stream per timestep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/bspc.hpp"
#include "tensor/aligned.hpp"
#include "tensor/matrix.hpp"
#include "tensor/precision.hpp"

namespace rtmobile {

class PackedQuantizedBspc {
 public:
  PackedQuantizedBspc() = default;

  /// Quantizes `source`'s value payload under `precision` (kFp32 is
  /// rejected — keep the BspcMatrix itself for fp32). Int8 scales are
  /// computed over the kept entries only, which matches quantize_int8 on
  /// the masked dense matrix: pruned entries are zero there and cannot
  /// raise a row's max |w|.
  [[nodiscard]] static PackedQuantizedBspc pack(const BspcMatrix& source,
                                                WeightPrecision precision);

  [[nodiscard]] WeightPrecision precision() const { return precision_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t num_stripes() const { return num_r_; }
  [[nodiscard]] std::size_t nnz() const { return nnz_; }

  /// y = A x over all stripes (zeroes y first).
  void spmv(std::span<const float> x, std::span<float> y) const;

  /// Processes an explicit stripe list in order, accumulating into y —
  /// the unit the compiler's thread partition dispatches, mirroring
  /// BspcMatrix::spmv_stripe_list. Stripe row sets are disjoint, so
  /// concurrent calls with disjoint lists never race on y. `gather` is
  /// the caller-provided LRE scratch (>= max_block_cols() floats when
  /// use_lre); concurrent calls need disjoint buffers.
  void spmv_stripe_list(std::span<const float> x, std::span<float> y,
                        std::span<const std::uint32_t> stripes, bool use_lre,
                        std::span<float> gather) const;
  /// Convenience overload that allocates its own gather scratch.
  void spmv_stripe_list(std::span<const float> x, std::span<float> y,
                        std::span<const std::uint32_t> stripes,
                        bool use_lre = true) const;

  /// Widest block's kept-column count (the LRE gather scratch size).
  [[nodiscard]] std::size_t max_block_cols() const {
    return max_block_cols_;
  }

  /// Batched right-hand sides: row b of X (b < batch) is an independent
  /// input vector and row b of Y receives A X[b]. Weights are streamed
  /// once per block for the whole batch instead of once per vector;
  /// each row's result is bit-identical to spmv on that row (same
  /// per-row accumulation order). Y rows [0, batch) are zeroed first.
  /// The fused step_batch path uses the stripe-list forms below (this
  /// whole-matrix form is the single-threaded convenience);
  /// bench_fused quantifies the matmat-vs-matvec gap.
  void spmm(const Matrix& x, Matrix& y, std::size_t batch) const;

  /// Batched stripe-list form (the fused step's kernel): row b of X
  /// (b < batch) is an independent fp32 input vector and row b of Y
  /// accumulates (A X[b]) for the listed stripes (caller zeroes the
  /// rows). Weights stream once per block per batch; per-(row, stream)
  /// dots go through the same dot_q8_f32 / dot_f16_f32 helpers as
  /// spmv_stripe_list, so each stream's result is bit-identical to the
  /// per-vector path. `gather` needs batch * max_block_cols() floats
  /// (stream b's panel at offset b * max_block_cols()). LRE is implied:
  /// the batched gather is the redundant-load elimination.
  void spmm_stripe_list(const Matrix& x, Matrix& y, std::size_t batch,
                        std::span<const std::uint32_t> stripes,
                        std::span<float> gather) const;

  /// Batched stripe-list form over int8-quantized activations (int8
  /// weight storage only) — the fused step's throughput kernel. Codes
  /// multiply codes with exact int32 accumulation: each block's
  /// activation codes are gathered once into a stream-major interleaved
  /// panel, every weight code pair is broadcast and madd'ed across the
  /// whole batch (no per-stream horizontal reductions), and partial
  /// sums ride per-stripe int32 accumulators dequantized once per
  /// (row, stream) as i32 * row_scale[r] * x.scale[b]. Per-stream sums
  /// equal dot_q8_q8_i32 exactly (integer associativity), so the result
  /// is within the activation grid's rounding slack of
  /// spmm_stripe_list, not bitwise. `scratch` needs
  /// q8_scratch_words(batch) int32 words.
  void spmm_stripe_list_q8(const QuantizedActivations& x, Matrix& y,
                           std::size_t batch,
                           std::span<const std::uint32_t> stripes,
                           std::span<std::int32_t> scratch) const;

  /// int32 scratch words spmm_stripe_list_q8 needs at `batch`: the
  /// interleaved activation panel plus the stripe accumulator block,
  /// both padded to 8-stream lanes (the transposed activation panel's
  /// lane group).
  [[nodiscard]] std::size_t q8_scratch_words(std::size_t batch) const {
    const std::size_t bp = (batch + 7) & ~std::size_t{7};
    return bp * ((max_block_cols_ + 1) / 2 + max_stripe_rows_);
  }

  /// Dequantized dense reconstruction (for verification).
  [[nodiscard]] Matrix to_dense() const;

  /// Storage footprint: packed values at their true width, plus scales,
  /// plus the shared structural metadata.
  [[nodiscard]] std::size_t memory_bytes(std::size_t index_bytes = 4) const;

 private:
  template <bool kUseLre>
  void process_stripe(std::span<const float> x, std::span<float> y,
                      std::size_t s, std::span<float> gathered) const;

  [[nodiscard]] float dequantize_at(std::size_t value_index,
                                    std::size_t row) const;

  WeightPrecision precision_ = WeightPrecision::kInt8PerTensor;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_r_ = 0;
  std::size_t num_c_ = 0;
  std::size_t max_block_cols_ = 0;
  /// Widest stripe's active-row count (sizes the q8 kernel's per-stripe
  /// int32 accumulator block).
  std::size_t max_stripe_rows_ = 0;
  std::size_t nnz_ = 0;
  // Structural metadata, copied verbatim from the source BspcMatrix.
  std::vector<std::uint32_t> stripe_row_ptr_;
  std::vector<std::uint32_t> active_rows_;
  std::vector<std::uint32_t> stripe_block_ptr_;
  std::vector<BspcMatrix::BlockRef> blocks_;
  std::vector<std::uint32_t> col_pool_;
  // Value payload: exactly one of these is populated.
  std::vector<std::int8_t, AlignedAllocator<std::int8_t>> q8_;
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> f16_;
  /// Dequantization scale per global row (per-tensor precision stores
  /// the one tensor scale replicated, keeping the kernel uniform).
  std::vector<float, AlignedAllocator<float>> row_scale_;
};

}  // namespace rtmobile
