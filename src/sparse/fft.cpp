#include "sparse/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace rtmobile {

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  RT_REQUIRE(is_power_of_two(n), "FFT size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Danielson-Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const Complex w_len(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= w_len;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& value : data) value *= inv_n;
  }
}

std::vector<Complex> fft_real(std::span<const float> signal,
                              std::size_t fft_size) {
  RT_REQUIRE(is_power_of_two(fft_size), "FFT size must be a power of two");
  RT_REQUIRE(signal.size() <= fft_size, "signal longer than FFT size");
  std::vector<Complex> data(fft_size, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < signal.size(); ++i) {
    data[i] = Complex(static_cast<double>(signal[i]), 0.0);
  }
  fft_inplace(data, /*inverse=*/false);
  return data;
}

std::vector<Complex> dft_naive(std::span<const Complex> data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

void circular_convolve(std::span<const float> a, std::span<const float> b,
                       std::span<float> out) {
  const std::size_t n = a.size();
  RT_REQUIRE(b.size() == n && out.size() == n,
             "circular_convolve: length mismatch");
  RT_REQUIRE(is_power_of_two(n), "circular_convolve: length must be 2^k");
  std::vector<Complex> fa(n);
  std::vector<Complex> fb(n);
  for (std::size_t i = 0; i < n; ++i) {
    fa[i] = Complex(static_cast<double>(a[i]), 0.0);
    fb[i] = Complex(static_cast<double>(b[i]), 0.0);
  }
  fft_inplace(fa, false);
  fft_inplace(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft_inplace(fa, true);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(fa[i].real());
  }
}

void circular_convolve_naive(std::span<const float> a,
                             std::span<const float> b, std::span<float> out) {
  const std::size_t n = a.size();
  RT_REQUIRE(b.size() == n && out.size() == n,
             "circular_convolve_naive: length mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += static_cast<double>(a[j]) *
             static_cast<double>(b[(i + n - j) % n]);
    }
    out[i] = static_cast<float>(acc);
  }
}

void power_spectrum(std::span<const float> frame, std::size_t fft_size,
                    std::span<float> power,
                    std::span<Complex> fft_scratch) {
  RT_REQUIRE(is_power_of_two(fft_size), "FFT size must be a power of two");
  RT_REQUIRE(frame.size() <= fft_size, "signal longer than FFT size");
  RT_REQUIRE(power.size() == fft_size / 2 + 1,
             "power_spectrum: output must hold fft_size/2+1 bins");
  RT_REQUIRE(fft_scratch.size() == fft_size,
             "power_spectrum: scratch must hold fft_size entries");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    fft_scratch[i] = Complex(static_cast<double>(frame[i]), 0.0);
  }
  std::fill(fft_scratch.begin() + static_cast<std::ptrdiff_t>(frame.size()),
            fft_scratch.end(), Complex(0.0, 0.0));
  fft_inplace(fft_scratch, /*inverse=*/false);
  for (std::size_t i = 0; i < power.size(); ++i) {
    power[i] = static_cast<float>(std::norm(fft_scratch[i]));
  }
}

}  // namespace rtmobile
