// Recognizer over one InferenceEngine + its CompiledSpeechModel.
//
// The single-engine implementation of the unified serving surface: the
// smallest deployment (one compiled model, one engine, caller-driven
// stepping) speaks the exact same stream API as the sharded fleet, so a
// client outgrowing one engine swaps the constructor, not its code.
// Single-threaded by design — the caller that submits audio also calls
// drain(); for concurrent producers and background pumping, use
// ShardedEngine (even with shards = 1).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/timer.hpp"
#include "runtime/inference_engine.hpp"
#include "serve/recognizer.hpp"

namespace rtmobile::serve {

class LocalRecognizer final : public Recognizer {
 public:
  /// `model` must outlive the recognizer; its thread pool (if any) is
  /// what step batches parallelize over.
  explicit LocalRecognizer(const CompiledSpeechModel& model,
                           runtime::EngineConfig config = {});

  /// Open-time admission: when the stream asks for a deadline, the
  /// engine's current worst head-frame wait is the projected lag — a
  /// stream opened while the engine is already further behind than the
  /// requested budget is refused with kRejectedOverBudget. An in-memory
  /// engine never reports kBackpressure.
  [[nodiscard]] OpenResult try_open_stream(const StreamConfig& config) override;
  [[nodiscard]] bool submit_audio(StreamHandle h,
                                  std::span<const float> samples) override;
  [[nodiscard]] bool finish_stream(StreamHandle h) override;
  [[nodiscard]] bool close_stream(StreamHandle h) override;

  std::size_t poll_events(StreamHandle h,
                          std::vector<speech::StreamEvent>& out) override;
  std::size_t poll_events(std::vector<RecognizerEvent>& out) override;
  bool wait_for_events(std::chrono::microseconds timeout) override;

  [[nodiscard]] bool stream_done(StreamHandle h) const override;
  [[nodiscard]] StreamDeadlineStats stream_deadline_stats(
      StreamHandle h) const override;
  [[nodiscard]] Matrix stream_logits(StreamHandle h) const override;

  std::size_t drain() override;
  /// One scheduling round (up to max_batch streams advance one frame);
  /// finer-grained than drain() for callers interleaving with arrival.
  std::size_t step();

  [[nodiscard]] GlobalStats stats() const override;
  void reset_stats() override;

  /// The wrapped engine (stats inspection, tests).
  [[nodiscard]] const runtime::InferenceEngine& engine() const {
    return engine_;
  }

 private:
  [[nodiscard]] runtime::StreamingSession& session(StreamHandle h) const;
  [[nodiscard]] bool any_pending_events() const;
  /// Wakes wait_for_events after serving work that produced events.
  void notify_events();

  runtime::InferenceEngine engine_;
  /// Ordered so the drain-all poll emits streams in ascending handle-id
  /// order — the deterministic cross-implementation contract.
  std::map<std::uint64_t, runtime::StreamingSession*> streams_;
  std::uint64_t next_id_ = 1;
  WallTimer window_;  // spans construction / reset_stats() .. now
  /// Drain-all poll scratch, reused so the hot event path stays
  /// allocation-free once warmed (like the engine's batch buffers).
  std::vector<speech::StreamEvent> poll_scratch_;
  /// wait_for_events backing: drain()/step() notify after producing
  /// events (see the wakeup contract in recognizer.hpp).
  mutable std::mutex events_cv_mutex_;
  std::condition_variable events_cv_;
};

}  // namespace rtmobile::serve
