// Bounded MPSC ingress queue: the lock-free-ish path between client
// threads and one serving shard.
//
// Callers (any number of producer threads) enqueue stream commands —
// open, audio chunk, finish — without ever taking the shard's engine
// step lock; the shard's pump thread is the single consumer that applies
// them between engine steps. The implementation is a Vyukov-style
// bounded ring: each slot carries an atomic sequence number, producers
// claim slots with a CAS on the enqueue cursor, and a full queue is
// reported to the caller (backpressure) instead of blocking.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/scheduler.hpp"
#include "speech/streaming_decoder.hpp"

namespace rtmobile::fault {
class FaultInjector;
}

namespace rtmobile::serve {

/// One ingress message for a stream on its owning shard.
struct StreamCommand {
  enum class Kind : std::uint8_t {
    kOpen,    // create the session for `stream` on this shard
    kAudio,   // append `samples` to the stream's front end
    kFinish,  // end of audio: release lookahead tail frames
    kClose,   // client is done with the results: release the session
  };
  Kind kind = Kind::kAudio;
  std::uint64_t stream = 0;    // ShardedEngine stream handle id
  std::vector<float> samples;  // audio payload (kAudio only, moved in)
  /// The stream's decoder setup, carried across the shard boundary so
  /// the pump builds the session exactly as the client configured it
  /// (kOpen only).
  speech::StreamingDecoderConfig decode =
      speech::StreamingDecoderConfig::none();
  /// The stream's real-time budget, carried with the open the same way
  /// (kOpen only).
  runtime::StreamDeadline deadline;
};

class SubmissionQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SubmissionQueue(std::size_t capacity);

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  /// Enqueues from any thread; returns false when the ring is full (the
  /// caller decides whether to retry, drop, or slow the client).
  bool try_push(StreamCommand&& command);

  /// Installs a fault harness: when the kQueuePush site fires for `key`,
  /// try_push reports full without touching the ring — deterministic
  /// ingress backpressure. Call before producers start.
  void set_fault(fault::FaultInjector* fault, std::uint64_t key);

  /// Dequeues into `out`; single consumer only. Returns false when empty.
  bool try_pop(StreamCommand& out);

  /// Commands currently buffered (approximate under concurrency; exact
  /// when producers are quiescent). This is the router's queue-depth
  /// signal.
  [[nodiscard]] std::size_t depth() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<std::size_t> sequence{0};
    StreamCommand command;
  };

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  fault::FaultInjector* fault_ = nullptr;
  std::uint64_t fault_key_ = ~std::uint64_t{0};
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace rtmobile::serve
