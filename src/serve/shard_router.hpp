// Stream admission policy: which shard a new stream lands on.
//
// The router sees only per-shard load numbers (submission-queue depth
// plus pending engine work), per-shard worst-stream lag, and an
// admissibility mask (shards being drained stop taking new streams).
// Four policies cover the serving spectrum: round-robin (uniform
// traffic), least-loaded (queue-depth balancing under skewed utterance
// lengths), session-hash (sticky placement so one client's repeated
// utterances hit the same replica's warm caches), and least-lag (prefer
// the shard whose worst stream is least behind real time, so a new
// stream lands where it is least likely to miss its deadline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rtmobile::serve {

enum class RoutePolicy : std::uint8_t {
  kRoundRobin,   // cycle shards in order, skipping inadmissible ones
  kLeastLoaded,  // lowest current load; ties break to the lowest index
  kSessionHash,  // stable hash of a client key, probing past drained shards
  kLeastLag,     // lowest worst-stream lag; ties break to lowest load
};

[[nodiscard]] const char* to_string(RoutePolicy policy);
/// Parses "round-robin" / "least-loaded" / "session-hash" / "least-lag";
/// throws std::invalid_argument otherwise.
[[nodiscard]] RoutePolicy parse_route_policy(const std::string& name);

class ShardRouter {
 public:
  ShardRouter(std::size_t shards, RoutePolicy policy);

  [[nodiscard]] std::size_t shard_count() const {
    return admissible_.size();
  }
  [[nodiscard]] RoutePolicy policy() const { return policy_; }

  /// Marks a shard (in)admissible; draining shards stop receiving new
  /// streams but keep serving the ones they own.
  void set_admissible(std::size_t shard, bool admissible);
  [[nodiscard]] bool admissible(std::size_t shard) const;
  [[nodiscard]] std::size_t admissible_count() const;

  /// Picks the shard for a new stream. `loads[s]` is shard s's current
  /// queue depth; `session_key` feeds the hash policy (ignored by the
  /// others). The least-lag policy degrades to least-loaded through this
  /// overload (no lag signal supplied). Throws when no shard is
  /// admissible.
  [[nodiscard]] std::size_t pick(std::span<const std::size_t> loads,
                                 std::uint64_t session_key = 0);
  /// Same, with `lags_us[s]` = shard s's published worst-stream lag —
  /// the signal the least-lag policy minimizes (ties break to the lower
  /// load, then the lower index).
  [[nodiscard]] std::size_t pick(std::span<const std::size_t> loads,
                                 std::span<const double> lags_us,
                                 std::uint64_t session_key);

 private:
  RoutePolicy policy_;
  std::vector<bool> admissible_;
  std::size_t cursor_ = 0;  // round-robin position
};

}  // namespace rtmobile::serve
