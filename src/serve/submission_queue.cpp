#include "serve/submission_queue.hpp"

#include <bit>
#include <utility>

#include "fault/fault_injector.hpp"
#include "util/check.hpp"

namespace rtmobile::serve {

SubmissionQueue::SubmissionQueue(std::size_t capacity) {
  RT_REQUIRE(capacity >= 1, "submission queue needs capacity >= 1");
  capacity_ = std::bit_ceil(capacity < 2 ? 2 : capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

void SubmissionQueue::set_fault(fault::FaultInjector* fault,
                                std::uint64_t key) {
  fault_ = fault;
  fault_key_ = key;
}

bool SubmissionQueue::try_push(StreamCommand&& command) {
  if (fault_ != nullptr &&
      fault_->should_fire(fault::Site::kQueuePush, fault_key_)) {
    return false;  // injected "ring full": producers see backpressure
  }
  std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
    const std::ptrdiff_t diff =
        static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
    if (diff == 0) {
      // Slot is free at this ticket; race other producers for it.
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        slot.command = std::move(command);
        // Publish: consumer may pop once sequence reads pos + 1.
        slot.sequence.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS refreshed `pos`; retry with the new ticket.
    } else if (diff < 0) {
      // Slot still holds an unconsumed command a full lap behind: full.
      return false;
    } else {
      // Another producer claimed this ticket; chase the cursor.
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool SubmissionQueue::try_pop(StreamCommand& out) {
  const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Slot& slot = slots_[pos & mask_];
  const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
  const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                              static_cast<std::ptrdiff_t>(pos + 1);
  if (diff < 0) return false;  // producer has not published this slot yet
  out = std::move(slot.command);
  slot.command = StreamCommand{};  // drop any payload capacity promptly
  // Mark the slot free for the producers' next lap.
  slot.sequence.store(pos + capacity_, std::memory_order_release);
  dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
  return true;
}

std::size_t SubmissionQueue::depth() const {
  const std::size_t head = enqueue_pos_.load(std::memory_order_acquire);
  const std::size_t tail = dequeue_pos_.load(std::memory_order_acquire);
  return head >= tail ? head - tail : 0;
}

}  // namespace rtmobile::serve
