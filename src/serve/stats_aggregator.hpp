// Cross-shard serving statistics.
//
// Each shard's InferenceEngine keeps its own RuntimeStats; the
// aggregator folds those into one fleet view. Counters add and latency
// samples concatenate, so the merge is exact: merging the stats of any
// disjoint split of the workload reproduces the stats of the whole
// (tested as an identity). Two throughput views are reported because
// shards run concurrently: `aggregate_fps` sums each shard's
// frames-per-compute-second (capacity — what the fleet sustains with a
// core range per shard, same convention as the runtime's summed
// real-time factor), and `wall_fps` divides total frames by a measured
// wall-clock window when the caller provides one.
#pragma once

#include <cstddef>

#include "runtime/stats.hpp"

namespace rtmobile::serve {

struct GlobalStats {
  runtime::RuntimeStats merged;  // counters summed, samples concatenated
  std::size_t shards = 0;
  double aggregate_fps = 0.0;  // sum over shards of frames / busy seconds
  double wall_us = 0.0;        // serving window; 0 when not measured
  /// Compiled weight storage (values + indices + quantization scales)
  /// each replica carries — the per-shard memory cost of another
  /// replica, which CompilerOptions::precision shrinks 2-4x. Summed over
  /// shards by the engine when it fills this view.
  std::size_t weight_bytes = 0;

  /// Frames per wall-clock second over the measured window (0 when no
  /// window was recorded).
  [[nodiscard]] double wall_fps() const {
    return wall_us > 0.0
               ? static_cast<double>(merged.frames_processed) /
                     (wall_us * 1e-6)
               : 0.0;
  }
  /// Audio seconds served per wall second over the measured window.
  [[nodiscard]] double wall_real_time_factor() const {
    return wall_us > 0.0 ? merged.audio_seconds / (wall_us * 1e-6) : 0.0;
  }
};

class StatsAggregator {
 public:
  /// Folds one shard's stats into the global view.
  void add_shard(const runtime::RuntimeStats& stats);

  /// Records the wall-clock duration of the serving window the shard
  /// stats cover (shards overlap in time, so wall != sum of busy).
  void set_wall_us(double wall_us) { global_.wall_us = wall_us; }

  [[nodiscard]] const GlobalStats& global() const { return global_; }

  void reset() { global_ = GlobalStats{}; }

 private:
  GlobalStats global_;
};

}  // namespace rtmobile::serve
