#include "serve/local_recognizer.hpp"

#include <utility>

#include "util/check.hpp"

namespace rtmobile::serve {

LocalRecognizer::LocalRecognizer(const CompiledSpeechModel& model,
                                 runtime::EngineConfig config)
    : engine_(model, std::move(config)) {}

runtime::StreamingSession& LocalRecognizer::session(StreamHandle h) const {
  const auto it = streams_.find(h.id);
  RT_REQUIRE(it != streams_.end(),
             "unknown stream handle (never opened or already closed)");
  return *it->second;
}

OpenResult LocalRecognizer::try_open_stream(const StreamConfig& config) {
  // Open-time admission control: a deadline-carrying stream opened while
  // the engine is already further behind than its budget would only have
  // its frames shed — refuse before compute is wasted.
  if (config.deadline.enabled() &&
      engine_.max_lag_seconds() > config.deadline.budget_seconds) {
    return OpenResult{StreamHandle{}, OpenStatus::kRejectedOverBudget};
  }
  // One engine: config.session_key has no routing to influence.
  runtime::StreamingSession& session =
      engine_.create_session(engine_.config().mfcc, config.decode);
  session.set_deadline(config.deadline);
  const StreamHandle handle{next_id_++};
  streams_.emplace(handle.id, &session);
  return OpenResult{handle, OpenStatus::kOk};
}

bool LocalRecognizer::submit_audio(StreamHandle h,
                                   std::span<const float> samples) {
  runtime::StreamingSession& s = session(h);
  // Audio after finish is dropped, matching the sharded applier.
  if (!s.finished()) s.push_audio(samples);
  return true;  // in-memory ingestion never backpressures
}

bool LocalRecognizer::finish_stream(StreamHandle h) {
  runtime::StreamingSession& s = session(h);
  if (!s.finished()) s.finish();
  return true;
}

bool LocalRecognizer::close_stream(StreamHandle h) {
  runtime::StreamingSession& s = session(h);
  streams_.erase(h.id);
  // Ownership returns to us and dies here: the session is freed.
  (void)engine_.release_session(&s);
  return true;
}

std::size_t LocalRecognizer::poll_events(
    StreamHandle h, std::vector<speech::StreamEvent>& out) {
  return session(h).poll_events(out);
}

std::size_t LocalRecognizer::poll_events(std::vector<RecognizerEvent>& out) {
  std::size_t total = 0;
  // streams_ is ordered: the drain-all poll emits streams in ascending
  // handle-id order, matching ShardedEngine's sorted flush.
  for (const auto& [id, session] : streams_) {
    if (session->pending_events() == 0) continue;
    poll_scratch_.clear();
    session->poll_events(poll_scratch_);
    for (speech::StreamEvent& event : poll_scratch_) {
      out.push_back(RecognizerEvent{StreamHandle{id}, std::move(event)});
    }
    total += poll_scratch_.size();
  }
  return total;
}

bool LocalRecognizer::stream_done(StreamHandle h) const {
  return session(h).done();
}

StreamDeadlineStats LocalRecognizer::stream_deadline_stats(
    StreamHandle h) const {
  runtime::StreamingSession& s = session(h);
  StreamDeadlineStats stats;
  stats.lag_seconds = s.lag_seconds();
  stats.shed_frames = s.shed_frames();
  stats.deadline_misses = s.deadline_misses();
  stats.rejected = s.rejected();
  return stats;
}

Matrix LocalRecognizer::stream_logits(StreamHandle h) const {
  return session(h).logits();
}

bool LocalRecognizer::any_pending_events() const {
  for (const auto& [id, session] : streams_) {
    if (session->pending_events() > 0) return true;
  }
  return false;
}

void LocalRecognizer::notify_events() {
  if (!any_pending_events()) return;
  // Pair with wait_for_events' predicate check under the same mutex so a
  // waiter never sleeps through a publish (classic lost-wakeup guard).
  { const std::lock_guard<std::mutex> lock(events_cv_mutex_); }
  events_cv_.notify_all();
}

bool LocalRecognizer::wait_for_events(std::chrono::microseconds timeout) {
  if (any_pending_events()) return true;
  std::unique_lock<std::mutex> lock(events_cv_mutex_);
  return events_cv_.wait_for(lock, timeout,
                             [this] { return any_pending_events(); });
}

std::size_t LocalRecognizer::drain() {
  const std::size_t frames = engine_.drain();
  // A round can publish events even when no frame advanced (overload
  // shed/reject control events), so notify on pending events, not on
  // frames; notify_events is a no-op when nothing is pending.
  notify_events();
  return frames;
}

std::size_t LocalRecognizer::step() {
  const std::size_t advanced = engine_.step();
  notify_events();
  return advanced;
}

GlobalStats LocalRecognizer::stats() const {
  StatsAggregator aggregator;
  aggregator.add_shard(engine_.stats());
  aggregator.set_wall_us(window_.elapsed_us());
  GlobalStats global = aggregator.global();
  global.weight_bytes = engine_.model().total_memory_bytes();
  return global;
}

void LocalRecognizer::reset_stats() {
  engine_.reset_stats();
  window_.reset();
}

}  // namespace rtmobile::serve
