#include "serve/recognizer.hpp"

#include <thread>

#include "util/check.hpp"

namespace rtmobile::serve {

const char* to_string(OpenStatus status) {
  switch (status) {
    case OpenStatus::kOk:
      return "ok";
    case OpenStatus::kRejectedOverBudget:
      return "rejected-over-budget";
    case OpenStatus::kBackpressure:
      return "backpressure";
  }
  return "unknown";
}

StreamHandle Recognizer::open_stream(const StreamConfig& config) {
  for (;;) {
    const OpenResult result = try_open_stream(config);
    if (result.ok()) return result.handle;
    // Admission refused for good: the throwing surface has no way to
    // hand back a typed failure, so it throws; transports that want to
    // refuse gracefully call try_open_stream themselves.
    RT_CHECK(result.status == OpenStatus::kBackpressure,
             "open_stream: projected lag exceeds the stream's deadline "
             "budget (use try_open_stream for a typed refusal)");
    std::this_thread::yield();
  }
}

}  // namespace rtmobile::serve
