// The unified serving surface: audio in, incremental hypotheses out.
//
// A Recognizer is what a speech client codes against — one abstract
// stream API implemented by both LocalRecognizer (a single
// InferenceEngine wrapping one CompiledSpeechModel) and ShardedEngine
// (N engine replicas behind a router), so the exact same client code
// runs against one engine or a sharded fleet:
//
//   StreamHandle h = recognizer.open_stream({});        // router decides
//   while (audio) recognizer.submit_audio(h, chunk);    // backpressured
//   recognizer.finish_stream(h);
//   ... recognizer.poll_events(h, events);              // partials stream
//   // final hypothesis = concatenation of every event's stable delta
//
// Every stream carries an incremental speech::StreamingDecoder; its
// StreamEvents (stable decoded prefix + unstable partial tail) are the
// product output, with the final hypothesis bit-identical to the batch
// greedy_decode / viterbi_decode of the stream's logits. Events are a
// pure function of the logit-row stream, so they are identical across
// implementations, chunk sizes, shard placements, and live migrations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/scheduler.hpp"
#include "serve/stats_aggregator.hpp"
#include "speech/streaming_decoder.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile::serve {

/// Opaque ticket for one client stream, valid for the Recognizer that
/// issued it.
struct StreamHandle {
  std::uint64_t id = 0;
};

/// Per-stream options a client passes at open time.
struct StreamConfig {
  /// In-loop decoding. The default emits greedy partial hypotheses;
  /// kViterbi upgrades to the duration-penalty DP; kNone collects logits
  /// only (no events).
  speech::StreamingDecoderConfig decode;
  /// Real-time budget: how long the stream's oldest queued audio may
  /// wait before the engine's overload policy may shed its overdue
  /// frames or reject the stream (0 = no deadline; the default).
  runtime::StreamDeadline deadline;
  /// Client affinity key for the session-hash routing policy (sharded
  /// implementations; a single engine ignores it).
  std::uint64_t session_key = 0;
};

/// Per-stream deadline accounting snapshot (see StreamingSession's
/// real-time clock model).
struct StreamDeadlineStats {
  /// How long the stream's oldest queued frame has been waiting, in
  /// seconds (0 when caught up). Sharded implementations report the
  /// value last published by the stream's pump.
  double lag_seconds = 0.0;
  std::size_t shed_frames = 0;      // frames dropped by shed/reject
  std::size_t deadline_misses = 0;  // frames served past the budget
  bool rejected = false;            // terminated by OverloadPolicy::kReject
};

/// A hypothesis update tagged with the stream it belongs to (the
/// drain-all poll's result element).
struct RecognizerEvent {
  StreamHandle stream;
  speech::StreamEvent event;
};

class Recognizer {
 public:
  virtual ~Recognizer() = default;

  // ---- stream lifecycle ----
  /// Admits a new stream and returns its ticket.
  [[nodiscard]] virtual StreamHandle open_stream(
      const StreamConfig& config) = 0;
  [[nodiscard]] StreamHandle open_stream() {
    return open_stream(StreamConfig{});
  }
  /// Feeds an audio chunk. Returns false under ingress backpressure (the
  /// caller retries or drops); audio submitted after finish_stream is
  /// dropped. Throws on a dead stream/serving failure.
  [[nodiscard]] virtual bool submit_audio(StreamHandle h,
                                          std::span<const float> samples) = 0;
  /// Marks end of audio; the decoder finalizes once the tail is served.
  /// Same backpressure contract as submit_audio.
  [[nodiscard]] virtual bool finish_stream(StreamHandle h) = 0;
  /// Releases the stream's resources once the client has read what it
  /// needs; the handle is dead afterwards. Closing a live stream
  /// abandons it. Same backpressure contract as submit_audio.
  [[nodiscard]] virtual bool close_stream(StreamHandle h) = 0;

  // ---- hypothesis events ----
  /// Appends the stream's pending events to `out` (oldest first);
  /// returns how many were appended.
  virtual std::size_t poll_events(StreamHandle h,
                                  std::vector<speech::StreamEvent>& out) = 0;
  /// Drain-all: appends every stream's pending events, each tagged with
  /// its handle; returns how many were appended. Deterministic order:
  /// streams appear in ascending handle id (per-stream event order
  /// preserved), identical across implementations and runs.
  virtual std::size_t poll_events(std::vector<RecognizerEvent>& out) = 0;

  // ---- completion & results ----
  /// True once the stream's audio is finished and every frame served
  /// (its final event has been emitted).
  [[nodiscard]] virtual bool stream_done(StreamHandle h) const = 0;
  /// The stream's deadline accounting: current lag, frames shed by the
  /// overload policy, deadline misses, and whether it was rejected.
  [[nodiscard]] virtual StreamDeadlineStats stream_deadline_stats(
      StreamHandle h) const = 0;
  /// The stream's raw logit rows so far (whole matrix once done) — the
  /// escape hatch for clients that decode externally.
  [[nodiscard]] virtual Matrix stream_logits(StreamHandle h) const = 0;

  // ---- caller-driven serving ----
  /// Serves everything submitted so far and returns frames stepped.
  /// Implementations with their own serving threads (a started
  /// ShardedEngine) reject this — the pumps already drain continuously.
  virtual std::size_t drain() = 0;

  // ---- fleet view ----
  [[nodiscard]] virtual GlobalStats stats() const = 0;
  virtual void reset_stats() = 0;
};

}  // namespace rtmobile::serve
