// The unified serving surface: audio in, incremental hypotheses out.
//
// A Recognizer is what a speech client codes against — one abstract
// stream API implemented by both LocalRecognizer (a single
// InferenceEngine wrapping one CompiledSpeechModel) and ShardedEngine
// (N engine replicas behind a router), so the exact same client code
// runs against one engine or a sharded fleet:
//
//   StreamHandle h = recognizer.open_stream({});        // router decides
//   while (audio) recognizer.submit_audio(h, chunk);    // backpressured
//   recognizer.finish_stream(h);
//   ... recognizer.poll_events(h, events);              // partials stream
//   // final hypothesis = concatenation of every event's stable delta
//
// Every stream carries an incremental speech::StreamingDecoder; its
// StreamEvents (stable decoded prefix + unstable partial tail) are the
// product output, with the final hypothesis bit-identical to the batch
// greedy_decode / viterbi_decode of the stream's logits. Events are a
// pure function of the logit-row stream, so they are identical across
// implementations, chunk sizes, shard placements, and live migrations.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "runtime/scheduler.hpp"
#include "serve/stats_aggregator.hpp"
#include "speech/streaming_decoder.hpp"
#include "tensor/matrix.hpp"

namespace rtmobile::serve {

/// Opaque ticket for one client stream, valid for the Recognizer that
/// issued it.
struct StreamHandle {
  std::uint64_t id = 0;
};

/// Why try_open_stream did (or did not) admit a stream. A transport maps
/// each failure to a distinct wire error instead of inferring the cause
/// from a bool or an invalid handle.
enum class OpenStatus : std::uint8_t {
  kOk,
  /// Open-time admission control refused the stream: the deployment's
  /// projected lag already exceeds the stream's deadline budget, so
  /// serving it would only waste compute on frames it is bound to shed.
  /// Only streams that ask for a deadline (config.deadline.enabled())
  /// are ever refused this way.
  kRejectedOverBudget,
  /// The admission path itself is congested (e.g. a shard's ingress ring
  /// is full). Transient: the caller retries or surfaces backpressure.
  kBackpressure,
};

[[nodiscard]] const char* to_string(OpenStatus status);

/// try_open_stream's result: `handle` is valid only when `status == kOk`.
struct OpenResult {
  StreamHandle handle;
  OpenStatus status = OpenStatus::kOk;

  [[nodiscard]] bool ok() const { return status == OpenStatus::kOk; }
};

/// Per-stream options a client passes at open time.
struct StreamConfig {
  /// In-loop decoding. The default emits greedy partial hypotheses;
  /// kViterbi upgrades to the duration-penalty DP; kNone collects logits
  /// only (no events).
  speech::StreamingDecoderConfig decode;
  /// Real-time budget: how long the stream's oldest queued audio may
  /// wait before the engine's overload policy may shed its overdue
  /// frames or reject the stream (0 = no deadline; the default).
  runtime::StreamDeadline deadline;
  /// Client affinity key for the session-hash routing policy (sharded
  /// implementations; a single engine ignores it).
  std::uint64_t session_key = 0;
};

/// Per-stream deadline accounting snapshot (see StreamingSession's
/// real-time clock model).
struct StreamDeadlineStats {
  /// How long the stream's oldest queued frame has been waiting, in
  /// seconds (0 when caught up). Sharded implementations report the
  /// value last published by the stream's pump.
  double lag_seconds = 0.0;
  std::size_t shed_frames = 0;      // frames dropped by shed/reject
  std::size_t deadline_misses = 0;  // frames served past the budget
  bool rejected = false;            // terminated by OverloadPolicy::kReject
};

/// A hypothesis update tagged with the stream it belongs to (the
/// drain-all poll's result element).
struct RecognizerEvent {
  StreamHandle stream;
  speech::StreamEvent event;
};

class Recognizer {
 public:
  virtual ~Recognizer() = default;

  // ---- stream lifecycle ----
  /// Attempts to admit a new stream, reporting the outcome as a typed
  /// status instead of throwing or spinning. When the stream carries a
  /// deadline budget (config.deadline.enabled()), implementations apply
  /// open-time admission control: if the deployment's projected lag (the
  /// worst head-frame wait the serving target last reported) already
  /// exceeds that budget, the stream is refused with
  /// kRejectedOverBudget — degrading gracefully before compute is spent
  /// on frames the overload policy would immediately shed. kBackpressure
  /// reports transient admission congestion (retry).
  [[nodiscard]] virtual OpenResult try_open_stream(
      const StreamConfig& config) = 0;
  /// Admits a new stream and returns its ticket: a thin wrapper over
  /// try_open_stream that retries kBackpressure (yielding between
  /// attempts) and throws std::runtime_error on kRejectedOverBudget —
  /// transports that need to degrade instead of throw call
  /// try_open_stream directly.
  [[nodiscard]] StreamHandle open_stream(const StreamConfig& config);
  [[nodiscard]] StreamHandle open_stream() {
    return open_stream(StreamConfig{});
  }
  /// Feeds an audio chunk. Returns false under ingress backpressure (the
  /// caller retries or drops); audio submitted after finish_stream is
  /// dropped. Throws on a dead stream/serving failure.
  [[nodiscard]] virtual bool submit_audio(StreamHandle h,
                                          std::span<const float> samples) = 0;
  /// Marks end of audio; the decoder finalizes once the tail is served.
  /// Same backpressure contract as submit_audio.
  [[nodiscard]] virtual bool finish_stream(StreamHandle h) = 0;
  /// Releases the stream's resources once the client has read what it
  /// needs; the handle is dead afterwards. Closing a live stream
  /// abandons it. Same backpressure contract as submit_audio.
  [[nodiscard]] virtual bool close_stream(StreamHandle h) = 0;

  // ---- hypothesis events ----
  /// Appends the stream's pending events to `out` (oldest first);
  /// returns how many were appended.
  virtual std::size_t poll_events(StreamHandle h,
                                  std::vector<speech::StreamEvent>& out) = 0;
  /// Drain-all: appends every stream's pending events, each tagged with
  /// its handle; returns how many were appended. Deterministic order:
  /// streams appear in ascending handle id (per-stream event order
  /// preserved), identical across implementations and runs.
  virtual std::size_t poll_events(std::vector<RecognizerEvent>& out) = 0;
  /// Blocks until at least one stream has a pending event or `timeout`
  /// elapses; returns true when events are (or may be) pending, false on
  /// timeout. The event-loop hook: a transport's poll thread sleeps here
  /// instead of spin-polling poll_events.
  ///
  /// Wakeup contract: implementations are condition-variable backed and
  /// signal whenever serving publishes new events — ShardedEngine's
  /// pumps notify after every scheduling round that flushed events;
  /// LocalRecognizer notifies from the drain()/step() that produced
  /// them (so in the single-threaded deployment, where the caller of
  /// drain() is the only thread, a true return simply means "poll now").
  /// Spurious wakeups are allowed, and a true return does not reserve
  /// the events — a concurrent poller may drain them first. False
  /// guarantees only that no event was pending for one full timeout.
  virtual bool wait_for_events(std::chrono::microseconds timeout) = 0;

  // ---- completion & results ----
  /// True once the stream's audio is finished and every frame served
  /// (its final event has been emitted).
  [[nodiscard]] virtual bool stream_done(StreamHandle h) const = 0;
  /// The stream's deadline accounting: current lag, frames shed by the
  /// overload policy, deadline misses, and whether it was rejected.
  [[nodiscard]] virtual StreamDeadlineStats stream_deadline_stats(
      StreamHandle h) const = 0;
  /// The stream's raw logit rows so far (whole matrix once done) — the
  /// escape hatch for clients that decode externally.
  [[nodiscard]] virtual Matrix stream_logits(StreamHandle h) const = 0;

  // ---- caller-driven serving ----
  /// Serves everything submitted so far and returns frames stepped.
  /// Implementations with their own serving threads (a started
  /// ShardedEngine) reject this — the pumps already drain continuously.
  virtual std::size_t drain() = 0;

  // ---- fleet view ----
  [[nodiscard]] virtual GlobalStats stats() const = 0;
  virtual void reset_stats() = 0;
};

}  // namespace rtmobile::serve
