// Sharded multi-engine serving layer.
//
// A ShardedEngine owns N engine replicas ("shards"): each shard compiles
// its own CompiledSpeechModel instance, owns a private thread pool
// (optionally pinned to a disjoint core range so shards never fight over
// cores), an InferenceEngine multiplexing that shard's streams, and a
// bounded MPSC SubmissionQueue as its ingress. Client threads enqueue
// audio chunks through the queue without ever taking an engine step
// lock; one pump thread per shard applies queued commands and steps its
// engine. A ShardRouter admits each new stream to a shard (round-robin,
// least-loaded by queue depth, or session-hash affinity), and a
// StatsAggregator folds per-shard RuntimeStats into the fleet view.
//
// Two execution modes:
//  - threaded: start() launches one pump thread per shard; stop() is a
//    graceful shutdown that serves everything already submitted before
//    returning.
//  - synchronous: without start(), the caller drives pump_shard()/
//    drain() directly — the mode tests use to prove that per-stream
//    logits are bit-identical regardless of shard placement, and the
//    mode in which drain_shard() migrates live streams (hidden state,
//    queued frames, and produced logits intact) onto sibling shards.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "compiler/gru_executor.hpp"
#include "hw/timer.hpp"
#include "runtime/inference_engine.hpp"
#include "serve/recognizer.hpp"
#include "serve/shard_router.hpp"
#include "serve/stats_aggregator.hpp"
#include "serve/submission_queue.hpp"

namespace rtmobile::obs {
class Gauge;
}

namespace rtmobile::fault {
class FaultInjector;
}

namespace rtmobile::serve {

/// A shard's place in the supervisor's health state machine.
enum class ShardHealth : std::uint8_t {
  kHealthy = 0,     // in rotation, pump serving
  kQuarantined,     // declared unhealthy; out of rotation, being seized
  kFailed,          // failed over: live streams migrated; can rejoin
  kLost,            // pump wedged past the grace; streams were aborted
};

[[nodiscard]] const char* to_string(ShardHealth health);

/// The shard supervisor's knobs. With `enabled` false (the default) no
/// monitor thread runs and every pre-existing failure semantic is
/// unchanged (a dead pump throws at producers, stop() rethrows).
struct SupervisorConfig {
  bool enabled = false;
  /// Monitor wake period.
  std::chrono::milliseconds check_interval{2};
  /// A pump whose heartbeat is older than this is declared stalled.
  std::chrono::milliseconds stall_timeout{250};
  /// How long a stalled pump gets to park cooperatively (state-clean,
  /// between rounds) before its streams are aborted instead of replayed.
  std::chrono::milliseconds park_grace{100};
  /// Probe and restart failed shards automatically after rejoin_backoff.
  bool auto_rejoin = false;
  std::chrono::milliseconds rejoin_backoff{50};
};

struct ShardConfig {
  /// Engine replicas to run. Each compiles its own copy of the model.
  std::size_t shards = 2;
  RoutePolicy policy = RoutePolicy::kLeastLoaded;
  /// Per-shard ingress ring capacity (commands; rounded up to a power of
  /// two). A full ring surfaces as submit_audio() returning false.
  std::size_t queue_capacity = 1024;
  /// Pool width per shard (1 = the pump thread computes alone).
  std::size_t threads_per_shard = 1;
  /// Pin shard s's pump + pool onto cores [s*threads_per_shard, ...), the
  /// core-range hint recorded in each replica's CompilerOptions.
  bool pin_cores = false;
  /// Per-shard engine settings (max_batch, default MFCC front end).
  /// `engine.fault` (nullable) also arms the serve-layer injection
  /// sites: each shard keys its engine, pump, and ingress ring by its
  /// shard index, so a spec can kill exactly one replica.
  runtime::EngineConfig engine;
  /// Shard failure detection + failover (off by default).
  SupervisorConfig supervisor;
};

class ShardedEngine final : public Recognizer {
 public:
  /// Compiles `config.shards` replicas of `model` under `options` (the
  /// per-shard thread width and core range are filled in per replica).
  ShardedEngine(const SpeechModel& model,
                const std::map<std::string, BlockMask>& masks,
                const CompilerOptions& options, ShardConfig config);
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const ShardConfig& config() const { return config_; }
  [[nodiscard]] const CompiledSpeechModel& shard_model(std::size_t s) const;

  // ---- stream lifecycle (any thread) ----
  /// Admits a new stream; the router picks its shard (config.session_key
  /// drives the session-hash policy: clients reusing a key stick to one
  /// shard; other policies ignore it). The stream's decoder config rides
  /// the open command to its shard.
  using Recognizer::open_stream;
  /// Typed admission. kRejectedOverBudget: the stream carries a deadline
  /// budget and even the shard the router would pick last published a
  /// worst-stream lag beyond it (every shard is at least that far
  /// behind, so the stream's frames would be shed on arrival).
  /// kBackpressure: the target shard's ingress ring had no room for the
  /// open command (transient; the slot is recycled, nothing leaks).
  [[nodiscard]] OpenResult try_open_stream(const StreamConfig& config) override;
  /// Pre-Recognizer compatibility surface: a keyed stream with NO
  /// in-loop decoding, exactly the pre-redesign behavior — existing
  /// logits-only callers (and their benchmark baselines) keep their
  /// workload. New code passes a StreamConfig, where decoding defaults
  /// on.
  [[nodiscard]] StreamHandle open_stream(std::uint64_t session_key);
  /// Enqueues an audio chunk on the stream's shard without taking any
  /// engine lock. Returns false when the shard's ingress ring is full —
  /// backpressure the caller handles by retrying or dropping. Throws if
  /// the shard's pump died on an internal error (retrying could never
  /// succeed); stop() reports the underlying cause.
  [[nodiscard]] bool submit_audio(StreamHandle h,
                                  std::span<const float> samples) override;
  /// Marks end of audio (releases the front end's lookahead tail). Same
  /// backpressure contract as submit_audio.
  [[nodiscard]] bool finish_stream(StreamHandle h) override;
  /// Releases the stream's session (results included) once the client
  /// has read its logits — without this, finished sessions accumulate on
  /// their engines forever. Closing a live stream abandons it. Same
  /// backpressure contract as submit_audio. The handle is dead once the
  /// close is issued: the owning client must not race stream_logits()
  /// against close_stream() on the same handle (same rule as read()
  /// racing close() on a file descriptor).
  [[nodiscard]] bool close_stream(StreamHandle h) override;

  // ---- hypothesis events (any thread) ----
  /// Drains the stream's hypothesis events into `out`. Each shard's pump
  /// flushes its sessions' events into a per-stream mailbox after every
  /// scheduling round, so polling never touches an engine; mailboxes
  /// live in the handle table, so an event survives its stream's
  /// migration to another shard.
  std::size_t poll_events(StreamHandle h,
                          std::vector<speech::StreamEvent>& out) override;
  /// Drain-all: every stream's pending events, tagged with their handles.
  std::size_t poll_events(std::vector<RecognizerEvent>& out) override;
  /// Sleeps until a pump publishes events into some mailbox (or timeout).
  /// See the wakeup contract in recognizer.hpp.
  bool wait_for_events(std::chrono::microseconds timeout) override;

  /// True once the stream's audio is finished and every frame is served.
  /// After it returns true, stream_logits() is safe from any thread (for
  /// as long as the handle is not closed). Throws if the stream's shard
  /// died before completing it — it would otherwise never flip.
  [[nodiscard]] bool stream_done(StreamHandle h) const override;
  /// The stream's deadline accounting as last published by its shard's
  /// pump (after every scheduling round) — readable from any thread
  /// without touching the engine.
  [[nodiscard]] StreamDeadlineStats stream_deadline_stats(
      StreamHandle h) const override;
  /// The stream's logits so far. Requires the stream to be done, or the
  /// engine to be out of threaded mode (no pump running).
  [[nodiscard]] Matrix stream_logits(StreamHandle h) const override;
  /// Which shard currently serves the stream (moves on migration).
  [[nodiscard]] std::size_t stream_shard(StreamHandle h) const;

  // ---- threaded mode ----
  /// Launches one pump thread per shard.
  void start();
  /// Graceful shutdown: pumps finish every command already enqueued and
  /// step their engines dry before exiting; submissions that raced the
  /// stop are then flushed synchronously until the rings read empty. A
  /// submission landing after that final sweep (producers must quiesce
  /// for a strict guarantee) is served by the next drain() or start().
  /// If a pump died on an internal error, stop() rethrows it (first one
  /// wins) after the remaining shards are wound down.
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  // ---- synchronous mode (no pump threads) ----
  /// One scheduling round for one shard: applies all queued commands,
  /// then one engine step. Returns units of work done (commands+frames).
  std::size_t pump_shard(std::size_t s);
  /// Pumps all shards round-robin until no shard makes progress (all
  /// submitted audio served). Returns total frames stepped.
  std::size_t drain() override;

  // ---- shard drain / migration (synchronous mode) ----
  /// Gracefully drains shard `s`: stops admission, flushes its ingress
  /// queue, and migrates its live streams onto admissible sibling shards
  /// with hidden state, pending frames, and logits intact. Finished
  /// streams stay readable where they are. Returns streams migrated.
  /// Producers may keep submitting concurrently: every routed push takes
  /// the stream's route latch, so per-stream command order survives the
  /// re-route (no lost or duplicated commands).
  std::size_t drain_shard(std::size_t s);
  /// Re-opens (or closes) a shard for new-stream admission.
  void set_shard_admissible(std::size_t s, bool admissible);

  // ---- fault tolerance (supervision, failover, rejoin) ----
  [[nodiscard]] ShardHealth shard_health(std::size_t s) const;
  /// Pump scheduling rounds completed (the supervisor's heartbeat word).
  [[nodiscard]] std::uint64_t shard_heartbeat(std::size_t s) const;
  /// Fails shard `s` over: flushes its ring (re-routing stranded
  /// commands), migrates its live streams to healthy siblings with state
  /// intact, and marks it kFailed. In threaded mode the supervisor calls
  /// this after seizing a dead/parked pump; callers may invoke it
  /// directly in synchronous mode (no pumps). Returns streams migrated.
  std::size_t fail_over_shard(std::size_t s);
  /// Last-resort path for a shard whose engine state cannot be trusted
  /// (wedged pump): every live stream routed to it gets a terminal
  /// kAborted event in its mailbox — typed failure, never silence — and
  /// the shard is marked kLost. Returns streams aborted.
  std::size_t abort_shard_streams(std::size_t s);
  /// Probes a kFailed shard with a synthetic utterance on its own
  /// engine; on success clears its failure state, restarts its pump
  /// (threaded mode), and re-admits it. False = probe failed, shard
  /// stays failed.
  bool rejoin_shard(std::size_t s);

  // ---- load & stats ----
  /// The router's load signal: ingress-queue depth, live streams, and
  /// the engine-internal frame backlog the shard last published.
  [[nodiscard]] std::size_t load(std::size_t s) const;
  [[nodiscard]] std::size_t queue_depth(std::size_t s) const;
  /// Worst-stream lag (seconds) the shard last published — the signal
  /// the least-lag routing policy minimizes.
  [[nodiscard]] double shard_lag_seconds(std::size_t s) const;
  /// Per-shard engine stats (requires no pump running).
  [[nodiscard]] const runtime::RuntimeStats& shard_stats(std::size_t s) const;
  /// Shard `s`'s engine-owned prefix result cache — each replica caches
  /// shard-locally, so residency/eviction totals are per shard (null
  /// when ShardConfig::engine.cache is off; requires no pump running).
  [[nodiscard]] const cache::PrefixCache* shard_cache(std::size_t s) const;
  /// Sessions currently held by a shard's engine — live plus
  /// done-but-not-closed (requires no pump running).
  [[nodiscard]] std::size_t shard_session_count(std::size_t s) const;
  /// Fleet view: merged counters/latency plus capacity and wall-clock
  /// throughput over the threaded serving windows accumulated since the
  /// last reset_stats (requires no pump running).
  [[nodiscard]] GlobalStats stats() const override;
  void reset_stats() override;

 private:
  struct StreamEntry {
    std::atomic<std::size_t> shard{0};
    std::atomic<runtime::StreamingSession*> session{nullptr};
    std::atomic<bool> done{false};
    /// Hypothesis events flushed out of the stream's session by its
    /// shard's pump, awaiting a client poll. Guarded by its own tiny
    /// mutex: the pump appends between scheduling rounds, the client
    /// drains — neither path ever holds an engine lock. Lives here (not
    /// on the shard) so pending events follow the stream through
    /// migration.
    std::mutex events_mutex;
    std::vector<speech::StreamEvent> events;
    /// Deadline accounting published by the stream's pump after every
    /// scheduling round (see publish_deadline), so clients can read lag
    /// and overload counters without touching an engine.
    std::atomic<double> lag_us{0.0};
    std::atomic<std::size_t> shed_frames{0};
    std::atomic<std::size_t> deadline_misses{0};
    std::atomic<bool> rejected{false};
    /// Bumped every time the slot is reissued to a new stream; a handle
    /// whose generation no longer matches is stale (its stream was
    /// closed and the slot reused) and is rejected instead of silently
    /// aliasing the new occupant.
    std::atomic<std::uint64_t> generation{0};
    /// The client key open_stream was given; migration re-hashes it so
    /// session-hash placement stays consistent with future streams of
    /// the same client. Written once at admission, before the handle is
    /// published.
    std::uint64_t session_key = 0;
    /// Per-stream route latch (tiny spinlock): every producer push reads
    /// `shard` and enqueues under it, and migration/failover re-routes a
    /// stream only while holding it. That makes a seized ring provably
    /// quiescent and keeps each stream's command order exact across a
    /// re-route — the invariant the failover replay guarantee rests on.
    std::atomic<bool> route_latch{false};
    /// Set by abort_shard_streams: the stream got its terminal kAborted
    /// event and its session (if any) is stranded in a lost shard. Pump
    /// publishing paths skip orphaned entries; a revived pump reclaims
    /// their sessions.
    std::atomic<bool> orphaned{false};
  };

  struct Shard {
    std::unique_ptr<ThreadPool> pool;  // null when threads_per_shard == 1
    std::unique_ptr<CompiledSpeechModel> model;
    std::unique_ptr<runtime::InferenceEngine> engine;
    std::unique_ptr<SubmissionQueue> queue;
    std::thread pump;
    /// Live streams owned by this shard; touched only by its pump (or
    /// the caller in synchronous mode).
    std::unordered_map<std::uint64_t, runtime::StreamingSession*> local;
    std::atomic<std::size_t> live_streams{0};
    /// Engine-internal frame backlog, republished after every pump
    /// round so the router can read it without touching the engine.
    std::atomic<std::size_t> backlog{0};
    /// Worst-stream lag (us), republished alongside the backlog — what
    /// the least-lag routing policy reads.
    std::atomic<double> max_lag_us{0.0};
    /// First internal error that killed the pump (written by the pump
    /// before exiting, read after join); rethrown by stop().
    std::exception_ptr failure;
    /// Set when the pump dies so producers fail fast (throw when
    /// unsupervised; backpressure under supervision, which re-routes)
    /// instead of spinning on a ring nobody drains.
    std::atomic<bool> dead{false};
    /// Heartbeat words: rounds completed + a steady-clock stamp written
    /// at the top of every pump round. The supervisor declares the pump
    /// stalled when the stamp goes stale.
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<std::uint64_t> heartbeat_us{0};
    /// Cooperative park protocol: the supervisor requests, the pump
    /// acknowledges by exiting between rounds (state-clean), which is
    /// what makes post-park failover replay bit-identical.
    std::atomic<bool> park_requested{false};
    std::atomic<bool> parked{false};
    std::atomic<std::uint8_t> health{
        static_cast<std::uint8_t>(ShardHealth::kHealthy)};
    std::atomic<std::uint64_t> failed_at_us{0};
    /// Adoption inbox: sessions migrated here by a failover land in this
    /// mutex-guarded vector; the pump adopts them at the top of each
    /// round (inbox_size is the cheap empty check).
    std::mutex inbox_mutex;
    std::vector<std::pair<std::uint64_t,
                          std::unique_ptr<runtime::StreamingSession>>>
        inbox;
    std::atomic<std::size_t> inbox_size{0};
    /// Per-shard load gauges (null when ShardConfig::engine.telemetry is
    /// off); publish_backlog writes them beside the atomics they mirror,
    /// so a /metrics scrape sees the same load signal the router does.
    obs::Gauge* queue_depth_gauge = nullptr;
    obs::Gauge* backlog_gauge = nullptr;
    obs::Gauge* lag_gauge = nullptr;
    obs::Gauge* streams_gauge = nullptr;
  };

  // Handle table: a fixed array of lazily allocated blocks. Blocks are
  // only written under admit_mutex_ before the slot is published through
  // slot_count_ (release), so entry() can index without any lock — the
  // chunk-submission path never serializes on the admission mutex.
  // A handle id packs [generation | slot]; closed slots return to a free
  // list and are reissued under a bumped generation, so the table bounds
  // concurrent streams (~1M), not lifetime streams.
  static constexpr std::size_t kEntriesPerBlock = 256;
  static constexpr std::size_t kMaxBlocks = 4096;
  static constexpr std::uint64_t kSlotBits = 20;  // 256 * 4096 = 2^20
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  struct EntryBlock {
    std::array<StreamEntry, kEntriesPerBlock> entries;
  };

  StreamEntry& entry(StreamHandle h) const;
  /// entry() that reports unknown/stale handles as nullptr instead of
  /// throwing — for the command applier, where a stale command must be
  /// dropped, never kill the shard.
  StreamEntry* try_entry(std::uint64_t id) const;
  bool enqueue(std::size_t shard, StreamCommand&& command);
  /// Reads the stream's current shard and enqueues under its route
  /// latch — the only correct way to push a routed command while
  /// migration/failover may be re-routing the stream.
  bool enqueue_routed(StreamEntry& e, StreamCommand&& command);
  void apply(Shard& shard, StreamCommand&& command);
  std::size_t apply_commands(Shard& shard);
  /// Adopts sessions a failover migrated into this shard's inbox.
  std::size_t adopt_inbox(Shard& shard);
  /// Flushes every local session's decoder events into its stream's
  /// mailbox. Runs after each scheduling round, before mark_done, so a
  /// completing stream's final event is published before its session
  /// leaves `local`.
  void collect_events(Shard& shard);
  void mark_done(Shard& shard);
  /// Publishes every local stream's deadline accounting into its handle
  /// entry. Runs before mark_done so a completing stream's final
  /// counters are published while it is still local.
  void publish_deadline(Shard& shard);
  void publish_backlog(Shard& shard);
  void pump_loop(std::size_t s);
  std::vector<std::size_t> snapshot_loads() const;
  std::vector<double> snapshot_lags_us() const;

  // ---- supervision internals ----
  void supervisor_loop();
  /// Marks the shard out of rotation + kQuarantined and counts the
  /// detection. Idempotent per failure.
  void quarantine(std::size_t s);
  /// The seize-and-migrate core shared by drain_shard, fail_over_shard,
  /// and the supervisor: requires the shard's pump to not be running
  /// (never started, parked, or dead-and-joined). Latches every entry
  /// routed to the shard, flushes+re-routes its ring, migrates its live
  /// sessions (adoption inbox in threaded mode, direct adoption in
  /// synchronous mode), and releases the latches.
  std::size_t seize_and_migrate(std::size_t s, bool record_failover);
  /// Supervisor handling of one detected failure (dead or stalled).
  void handle_shard_failure(std::size_t s);
  bool probe_shard(Shard& shard);
  void push_abort_event(StreamEntry& e);
  std::size_t pick_target(std::uint64_t session_key);
  void forward_command(std::size_t target, StreamCommand&& command);

  ShardConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardRouter router_;
  /// Guards admission (table growth + router state); never taken on the
  /// audio-chunk path and never held while stepping an engine.
  mutable std::mutex admit_mutex_;
  std::unique_ptr<std::unique_ptr<EntryBlock>[]> blocks_;
  std::atomic<std::uint64_t> slot_count_{0};  // high-water slots in use
  /// Slots whose streams were closed, awaiting reissue. Pushed by the
  /// applier (pump or sync caller), popped at admission.
  std::mutex free_mutex_;
  std::vector<std::uint32_t> free_slots_;
  /// Unpolled events across every mailbox, maintained at each mailbox
  /// mutation — wait_for_events' predicate, so a waiter never scans the
  /// handle table.
  std::atomic<std::size_t> pending_events_{0};
  std::mutex events_cv_mutex_;
  std::condition_variable events_cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread supervisor_;
  WallTimer window_timer_;  // spans start() .. stop()
  double window_us_ = 0.0;  // threaded window wall time since reset_stats
};

}  // namespace rtmobile::serve
