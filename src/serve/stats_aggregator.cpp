#include "serve/stats_aggregator.hpp"

namespace rtmobile::serve {

void StatsAggregator::add_shard(const runtime::RuntimeStats& stats) {
  global_.merged.merge_from(stats);
  global_.shards += 1;
  global_.aggregate_fps += stats.frames_per_second();
}

}  // namespace rtmobile::serve
