#include "serve/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "fault/fault_injector.hpp"
#include "hw/timer.hpp"
#include "obs/telemetry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rtmobile::serve {

namespace {

void latch_acquire(std::atomic<bool>& flag) {
  while (flag.exchange(true, std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void latch_release(std::atomic<bool>& flag) {
  flag.store(false, std::memory_order_release);
}

/// RAII form of the route latch for single-entry critical sections
/// (multi-entry holders — migration — acquire/release manually).
class SpinLatch {
 public:
  explicit SpinLatch(std::atomic<bool>& flag) : flag_(flag) {
    latch_acquire(flag_);
  }
  ~SpinLatch() { latch_release(flag_); }
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

 private:
  std::atomic<bool>& flag_;
};

/// Monotonic microseconds for heartbeat stamps (steady: never jumps with
/// wall-clock adjustments, which would fake a stall).
std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* to_string(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kQuarantined: return "quarantined";
    case ShardHealth::kFailed: return "failed";
    case ShardHealth::kLost: return "lost";
  }
  return "unknown";
}

ShardedEngine::ShardedEngine(const SpeechModel& model,
                             const std::map<std::string, BlockMask>& masks,
                             const CompilerOptions& options,
                             ShardConfig config)
    : config_(std::move(config)),
      router_(config_.shards, config_.policy) {
  RT_REQUIRE(config_.shards >= 1, "sharded engine needs >= 1 shard");
  RT_REQUIRE(config_.threads_per_shard >= 1,
             "sharded engine needs >= 1 thread per shard");

  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    CompilerOptions shard_options = options;
    shard_options.threads = config_.threads_per_shard;
    if (config_.pin_cores) {
      shard_options.core_range = CoreRange{s * config_.threads_per_shard,
                                           config_.threads_per_shard};
    }
    if (config_.threads_per_shard > 1) {
      shard->pool = std::make_unique<ThreadPool>(config_.threads_per_shard,
                                                 shard_options.core_range);
    }
    shard->model = std::make_unique<CompiledSpeechModel>(
        model, masks, shard_options, shard->pool.get());
    // Each replica keys every injection site by its shard index, so a
    // fault spec can kill exactly one replica and leave its siblings
    // serving.
    runtime::EngineConfig engine_config = config_.engine;
    engine_config.fault_key = s;
    shard->engine = std::make_unique<runtime::InferenceEngine>(
        *shard->model, engine_config);
    shard->queue = std::make_unique<SubmissionQueue>(config_.queue_capacity);
    if (config_.engine.fault != nullptr) {
      shard->queue->set_fault(config_.engine.fault, s);
    }
    if (config_.engine.telemetry != nullptr) {
      obs::Telemetry& telemetry = *config_.engine.telemetry;
      shard->queue_depth_gauge = &telemetry.shard_gauge(
          "rt_shard_queue_depth", "Ingress commands queued per shard", s);
      shard->backlog_gauge = &telemetry.shard_gauge(
          "rt_shard_backlog_frames",
          "Engine-internal feature-frame backlog per shard", s);
      shard->lag_gauge = &telemetry.shard_gauge(
          "rt_shard_max_lag_us",
          "Worst-stream lag last published per shard", s);
      shard->streams_gauge = &telemetry.shard_gauge(
          "rt_shard_live_streams", "Live streams per shard", s);
    }
    shards_.push_back(std::move(shard));
  }
  blocks_ = std::make_unique<std::unique_ptr<EntryBlock>[]>(kMaxBlocks);
}

ShardedEngine::~ShardedEngine() {
  try {
    stop();
  } catch (...) {
    // A pump's stored failure must not escape a destructor.
  }
}

const CompiledSpeechModel& ShardedEngine::shard_model(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return *shards_[s]->model;
}

ShardedEngine::StreamEntry& ShardedEngine::entry(StreamHandle h) const {
  // Lock-free: open_stream fully initializes the entry (and its block)
  // before publishing the slot through slot_count_ with release order,
  // so a slot below the acquired count always maps to a ready entry. The
  // generation check rejects handles whose stream was closed and whose
  // slot has since been reissued.
  const std::uint64_t slot = h.id & kSlotMask;
  RT_REQUIRE(slot < slot_count_.load(std::memory_order_acquire),
             "unknown stream handle");
  StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                       ->entries[slot % kEntriesPerBlock];
  RT_REQUIRE(e.generation.load(std::memory_order_acquire) ==
                 h.id >> kSlotBits,
             "stale stream handle (stream closed, slot reissued)");
  return e;
}

ShardedEngine::StreamEntry* ShardedEngine::try_entry(
    std::uint64_t id) const {
  const std::uint64_t slot = id & kSlotMask;
  if (slot >= slot_count_.load(std::memory_order_acquire)) return nullptr;
  StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                       ->entries[slot % kEntriesPerBlock];
  if (e.generation.load(std::memory_order_acquire) != id >> kSlotBits) {
    return nullptr;
  }
  return &e;
}

std::vector<std::size_t> ShardedEngine::snapshot_loads() const {
  std::vector<std::size_t> loads(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) loads[s] = load(s);
  return loads;
}

std::vector<double> ShardedEngine::snapshot_lags_us() const {
  std::vector<double> lags(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    lags[s] = shards_[s]->max_lag_us.load(std::memory_order_acquire);
  }
  return lags;
}

StreamHandle ShardedEngine::open_stream(std::uint64_t session_key) {
  StreamConfig config;
  config.decode = speech::StreamingDecoderConfig::none();
  config.session_key = session_key;
  return open_stream(config);
}

OpenResult ShardedEngine::try_open_stream(const StreamConfig& config) {
  std::size_t target = 0;
  StreamHandle handle;
  bool reused = false;
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    const std::vector<std::size_t> loads = snapshot_loads();
    const std::vector<double> lags = snapshot_lags_us();
    target = router_.pick(loads, lags, config.session_key);
    // Open-time admission control: the router already picked the
    // least-loaded/least-lagged admissible shard, so if even that
    // shard's last published worst-stream lag exceeds the requested
    // budget, the whole fleet is too far behind to serve this stream
    // inside its deadline — refuse before wasting a slot and compute.
    if (config.deadline.enabled() &&
        lags[target] * 1e-6 > config.deadline.budget_seconds) {
      return OpenResult{StreamHandle{}, OpenStatus::kRejectedOverBudget};
    }

    // Prefer a slot freed by a closed stream; grow the table otherwise.
    std::uint64_t slot = 0;
    {
      const std::lock_guard<std::mutex> free_lock(free_mutex_);
      if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        reused = true;
      }
    }
    if (reused) {
      StreamEntry& free_entry = blocks_[slot / kEntriesPerBlock]
                                    ->entries[slot % kEntriesPerBlock];
      if (free_entry.route_latch.exchange(true,
                                          std::memory_order_acquire)) {
        // A migration sweep latched this free slot (its stale shard
        // field matched the shard being seized). Never block here — the
        // sweep may itself be waiting on admit_mutex_, which we hold —
        // put the slot back and grow the table instead.
        const std::lock_guard<std::mutex> free_lock(free_mutex_);
        free_slots_.push_back(static_cast<std::uint32_t>(slot));
        reused = false;
      }
    }
    if (!reused) {
      slot = slot_count_.load(std::memory_order_relaxed);
      RT_REQUIRE(slot < kEntriesPerBlock * kMaxBlocks,
                 "stream handle table exhausted (too many live streams)");
      std::unique_ptr<EntryBlock>& block = blocks_[slot / kEntriesPerBlock];
      if (block == nullptr) block = std::make_unique<EntryBlock>();
    }
    StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                         ->entries[slot % kEntriesPerBlock];
    const std::uint64_t generation =
        reused ? e.generation.load(std::memory_order_relaxed) + 1 : 0;
    e.shard.store(target, std::memory_order_relaxed);
    e.session.store(nullptr, std::memory_order_relaxed);
    e.done.store(false, std::memory_order_relaxed);
    e.lag_us.store(0.0, std::memory_order_relaxed);
    e.shed_frames.store(0, std::memory_order_relaxed);
    e.deadline_misses.store(0, std::memory_order_relaxed);
    e.rejected.store(false, std::memory_order_relaxed);
    e.orphaned.store(false, std::memory_order_relaxed);
    e.session_key = config.session_key;
    {
      // Events the previous occupant never polled die with its handle.
      const std::lock_guard<std::mutex> events_lock(e.events_mutex);
      pending_events_.fetch_sub(e.events.size(),
                                std::memory_order_acq_rel);
      e.events.clear();
    }
    // Publish: a stale handle's generation stops matching here, and for
    // a fresh slot entry() accepts it only after the count store.
    e.generation.store(generation, std::memory_order_release);
    if (reused) {
      e.route_latch.store(false, std::memory_order_release);
    } else {
      slot_count_.store(slot + 1, std::memory_order_release);
    }
    handle.id = generation << kSlotBits | slot;
    // Counted before the admission lock drops so concurrent admissions
    // see this stream in load() and don't dog-pile one shard.
    shards_[target]->live_streams.fetch_add(1, std::memory_order_acq_rel);
  }
  StreamEntry& e = entry(handle);
  StreamCommand open;
  open.kind = StreamCommand::Kind::kOpen;
  open.stream = handle.id;
  open.decode = config.decode;
  open.deadline = config.deadline;
  // Undoes a failed admission: the stream never existed. The load signal
  // reverts (on whichever shard the stream is currently routed to — a
  // failover may have moved it along with its admission count) and the
  // slot is recycled (its next occupant bumps the generation, so the
  // handle we never returned can't alias it).
  const auto rollback = [this, &e, &handle] {
    {
      const SpinLatch latch(e.route_latch);
      shards_[e.shard.load(std::memory_order_acquire)]
          ->live_streams.fetch_sub(1, std::memory_order_acq_rel);
    }
    const std::lock_guard<std::mutex> free_lock(free_mutex_);
    free_slots_.push_back(static_cast<std::uint32_t>(handle.id & kSlotMask));
  };
  try {
    if (running()) {
      if (!enqueue_routed(e, std::move(open))) {
        // Ingress ring full: typed backpressure instead of spinning —
        // the base-class open_stream wrapper retries, a transport maps
        // it to a wire-level "try again" before any state leaks.
        rollback();
        return OpenResult{StreamHandle{}, OpenStatus::kBackpressure};
      }
    } else {
      // Synchronous mode: the caller is the only actor, apply in place.
      apply(*shards_[e.shard.load(std::memory_order_acquire)],
            std::move(open));
    }
  } catch (...) {
    rollback();  // dead shard: fail the open, not the engine
    throw;
  }
  return OpenResult{handle, OpenStatus::kOk};
}

bool ShardedEngine::enqueue(std::size_t shard, StreamCommand&& command) {
  Shard& target = *shards_[shard];
  if (target.dead.load(std::memory_order_acquire)) {
    // Fail fast on a dead shard when nobody will recover it: returning
    // false would send backpressure loops spinning on a ring nobody
    // drains. Under supervision the same condition is transient — the
    // supervisor is about to re-route this stream — so it surfaces as
    // ordinary backpressure and the caller's retry lands on the new
    // shard. A close is the exception either way: the failover's ring
    // flush (or the supervisor's failed-ring sweep) still serves it.
    RT_REQUIRE(config_.supervisor.enabled,
               "serve: shard pump died; stop() reports the cause");
    if (command.kind != StreamCommand::Kind::kClose) return false;
  } else if (config_.supervisor.enabled &&
             static_cast<ShardHealth>(target.health.load(
                 std::memory_order_acquire)) != ShardHealth::kHealthy &&
             command.kind != StreamCommand::Kind::kClose) {
    return false;
  }
  return target.queue->try_push(std::move(command));
}

bool ShardedEngine::enqueue_routed(StreamEntry& e, StreamCommand&& command) {
  // The latch orders this push against migration: either the command
  // lands in the ring the migrator is about to flush (and is re-routed
  // with the stream), or the shard load here is the post-migration one.
  const SpinLatch latch(e.route_latch);
  return enqueue(e.shard.load(std::memory_order_acquire),
                 std::move(command));
}

bool ShardedEngine::submit_audio(StreamHandle h,
                                 std::span<const float> samples) {
  StreamEntry& e = entry(h);
  {
    // Cheap pre-check: when the ring is saturated, report backpressure
    // before copying the payload — retry loops would otherwise allocate
    // and copy the chunk on every failed attempt. (Racy by nature; the
    // authoritative answer is still try_push's.)
    const Shard& shard = *shards_[e.shard.load(std::memory_order_acquire)];
    if (shard.queue->depth() >= shard.queue->capacity()) {
      RT_REQUIRE(config_.supervisor.enabled ||
                     !shard.dead.load(std::memory_order_acquire),
                 "serve: shard pump died; stop() reports the cause");
      return false;
    }
  }
  StreamCommand command;
  command.kind = StreamCommand::Kind::kAudio;
  command.stream = h.id;
  command.samples.assign(samples.begin(), samples.end());
  return enqueue_routed(e, std::move(command));
}

bool ShardedEngine::finish_stream(StreamHandle h) {
  StreamEntry& e = entry(h);
  StreamCommand command;
  command.kind = StreamCommand::Kind::kFinish;
  command.stream = h.id;
  return enqueue_routed(e, std::move(command));
}

bool ShardedEngine::close_stream(StreamHandle h) {
  StreamEntry& e = entry(h);
  if (e.orphaned.load(std::memory_order_acquire)) {
    // The stream was aborted with its shard: there is no session to
    // release and no pump to route through. Retire the mailbox here;
    // the slot stays reserved (never reissued), so a late lookup on
    // this handle keeps failing typed instead of aliasing a new stream.
    const std::lock_guard<std::mutex> lock(e.events_mutex);
    pending_events_.fetch_sub(e.events.size(), std::memory_order_acq_rel);
    e.events.clear();
    return true;
  }
  StreamCommand command;
  command.kind = StreamCommand::Kind::kClose;
  command.stream = h.id;
  if (running()) return enqueue_routed(e, std::move(command));
  apply(*shards_[e.shard.load(std::memory_order_acquire)],
        std::move(command));  // synchronous mode
  return true;
}

StreamDeadlineStats ShardedEngine::stream_deadline_stats(
    StreamHandle h) const {
  const StreamEntry& e = entry(h);
  StreamDeadlineStats stats;
  stats.lag_seconds = e.lag_us.load(std::memory_order_acquire) * 1e-6;
  stats.shed_frames = e.shed_frames.load(std::memory_order_acquire);
  stats.deadline_misses =
      e.deadline_misses.load(std::memory_order_acquire);
  stats.rejected = e.rejected.load(std::memory_order_acquire);
  return stats;
}

bool ShardedEngine::stream_done(StreamHandle h) const {
  StreamEntry& e = entry(h);
  if (e.done.load(std::memory_order_acquire)) return true;
  // An incomplete stream on a dead shard will never finish; surface
  // that instead of letting completion pollers spin forever. Under
  // supervision "not done yet" is the truth: the supervisor fails the
  // stream over (or aborts it with a terminal event, flipping done).
  if (!config_.supervisor.enabled) {
    RT_REQUIRE(
        !shards_[e.shard.load(std::memory_order_acquire)]->dead.load(
            std::memory_order_acquire),
        "serve: shard pump died; stop() reports the cause");
  }
  return false;
}

Matrix ShardedEngine::stream_logits(StreamHandle h) const {
  StreamEntry& e = entry(h);
  RT_REQUIRE(e.done.load(std::memory_order_acquire) || !running(),
             "stream_logits: stream still being served");
  const runtime::StreamingSession* session =
      e.session.load(std::memory_order_acquire);
  RT_REQUIRE(session != nullptr,
             "stream_logits: stream not open (never pumped or closed)");
  return session->logits();
}

std::size_t ShardedEngine::stream_shard(StreamHandle h) const {
  return entry(h).shard.load(std::memory_order_acquire);
}

std::size_t ShardedEngine::poll_events(StreamHandle h,
                                       std::vector<speech::StreamEvent>& out) {
  StreamEntry& e = entry(h);
  const std::lock_guard<std::mutex> lock(e.events_mutex);
  const std::size_t moved = e.events.size();
  out.insert(out.end(), std::make_move_iterator(e.events.begin()),
             std::make_move_iterator(e.events.end()));
  e.events.clear();
  pending_events_.fetch_sub(moved, std::memory_order_acq_rel);
  return moved;
}

std::size_t ShardedEngine::poll_events(std::vector<RecognizerEvent>& out) {
  const std::size_t start = out.size();
  std::size_t total = 0;
  const std::uint64_t slots = slot_count_.load(std::memory_order_acquire);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                         ->entries[slot % kEntriesPerBlock];
    const std::lock_guard<std::mutex> lock(e.events_mutex);
    if (e.events.empty()) continue;
    // The mailbox was cleared when this slot was last reissued, so its
    // events belong to the current generation's stream.
    const std::uint64_t generation =
        e.generation.load(std::memory_order_acquire);
    const StreamHandle handle{generation << kSlotBits | slot};
    const std::size_t moved = e.events.size();
    for (speech::StreamEvent& event : e.events) {
      out.push_back(RecognizerEvent{handle, std::move(event)});
    }
    total += moved;
    e.events.clear();
    pending_events_.fetch_sub(moved, std::memory_order_acq_rel);
  }
  // Slot order is not handle order once closed slots are reissued (a
  // reissued low slot carries a newer, higher id). Sort into ascending
  // handle-id order — the deterministic drain-all contract shared with
  // LocalRecognizer; stable, so each stream's own events stay ordered.
  std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(start),
                   out.end(),
                   [](const RecognizerEvent& a, const RecognizerEvent& b) {
                     return a.stream.id < b.stream.id;
                   });
  return total;
}

bool ShardedEngine::wait_for_events(std::chrono::microseconds timeout) {
  if (pending_events_.load(std::memory_order_acquire) > 0) return true;
  std::unique_lock<std::mutex> lock(events_cv_mutex_);
  return events_cv_.wait_for(lock, timeout, [this] {
    return pending_events_.load(std::memory_order_acquire) > 0;
  });
}

// ---------------------------------------------------------- command flow

void ShardedEngine::apply(Shard& shard, StreamCommand&& command) {
  switch (command.kind) {
    case StreamCommand::Kind::kOpen: {
      StreamEntry* e = try_entry(command.stream);
      if (e == nullptr) break;  // slot already reissued: drop
      runtime::StreamingSession& session = shard.engine->create_session(
          config_.engine.mfcc, command.decode);
      session.set_deadline(command.deadline);
      shard.local.emplace(command.stream, &session);
      e->session.store(&session, std::memory_order_release);
      break;
    }
    // kAudio/kFinish for a stream no longer in `local` (it completed or
    // was closed while the command sat in the ring) are dropped: one
    // misbehaving client must not take the shard down. A stream that a
    // failover just migrated HERE may still sit in the adoption inbox
    // when its next chunk arrives (the producer pushed between the
    // migrator's inbox store and this pump's round top) — adopt before
    // concluding the stream is gone, or the chunk would be lost.
    case StreamCommand::Kind::kAudio: {
      auto it = shard.local.find(command.stream);
      if (it == shard.local.end() &&
          shard.inbox_size.load(std::memory_order_acquire) > 0) {
        adopt_inbox(shard);
        it = shard.local.find(command.stream);
      }
      if (it != shard.local.end() && !it->second->finished()) {
        it->second->push_audio(command.samples);
      }
      break;
    }
    case StreamCommand::Kind::kFinish: {
      auto it = shard.local.find(command.stream);
      if (it == shard.local.end() &&
          shard.inbox_size.load(std::memory_order_acquire) > 0) {
        adopt_inbox(shard);
        it = shard.local.find(command.stream);
      }
      if (it != shard.local.end() && !it->second->finished()) {
        it->second->finish();
      }
      break;
    }
    case StreamCommand::Kind::kClose: {
      StreamEntry* stale_checked = try_entry(command.stream);
      if (stale_checked == nullptr) break;  // slot already reissued: drop
      StreamEntry& e = *stale_checked;
      runtime::StreamingSession* session =
          e.session.load(std::memory_order_acquire);
      if (session == nullptr) break;  // double close: drop
      const auto it = shard.local.find(command.stream);
      if (it != shard.local.end()) {  // closing a live stream abandons it
        shard.local.erase(it);
        shard.live_streams.fetch_sub(1, std::memory_order_acq_rel);
      }
      // Unpublish so no NEW stream_logits lookup can reach the dying
      // session. A lookup already in flight on this handle is the
      // documented client misuse (reading a handle while closing it).
      e.session.store(nullptr, std::memory_order_release);
      e.done.store(true, std::memory_order_release);
      {
        // Unpolled hypotheses die with the stream the client abandoned.
        const std::lock_guard<std::mutex> events_lock(e.events_mutex);
        pending_events_.fetch_sub(e.events.size(),
                                  std::memory_order_acq_rel);
        e.events.clear();
      }
      // Ownership returns to us and dies here: the session is freed.
      (void)shard.engine->release_session(session);
      // The slot can serve a future stream; its next occupant bumps the
      // generation, invalidating this handle.
      {
        const std::lock_guard<std::mutex> free_lock(free_mutex_);
        free_slots_.push_back(
            static_cast<std::uint32_t>(command.stream & kSlotMask));
      }
      break;
    }
  }
}

std::size_t ShardedEngine::apply_commands(Shard& shard) {
  std::size_t applied = 0;
  StreamCommand command;
  while (shard.queue->try_pop(command)) {
    apply(shard, std::move(command));
    ++applied;
  }
  return applied;
}

std::size_t ShardedEngine::adopt_inbox(Shard& shard) {
  if (shard.inbox_size.load(std::memory_order_acquire) == 0) return 0;
  std::vector<std::pair<std::uint64_t,
                        std::unique_ptr<runtime::StreamingSession>>>
      batch;
  {
    const std::lock_guard<std::mutex> lock(shard.inbox_mutex);
    batch.swap(shard.inbox);
    shard.inbox_size.store(0, std::memory_order_release);
  }
  for (auto& [id, session] : batch) {
    // adopt_session keeps the session object's identity, so the handle
    // entry's published session pointer stays valid across the move.
    runtime::StreamingSession& adopted =
        shard.engine->adopt_session(std::move(session));
    shard.local.emplace(id, &adopted);
  }
  return batch.size();
}

void ShardedEngine::collect_events(Shard& shard) {
  obs::Telemetry* telemetry = config_.engine.telemetry;
  RT_SPAN(telemetry != nullptr ? &telemetry->trace() : nullptr,
          kEventFlush, obs::kNoStream);
  std::size_t published = 0;
  for (const auto& [id, session] : shard.local) {
    if (session->pending_events() == 0) continue;
    StreamEntry* e = try_entry(id);
    if (e == nullptr || e->orphaned.load(std::memory_order_acquire)) {
      continue;  // slot reissued or stream aborted mid-flight: drop
    }
    const std::lock_guard<std::mutex> lock(e->events_mutex);
    published += session->poll_events(e->events);
  }
  if (published > 0) {
    pending_events_.fetch_add(published, std::memory_order_acq_rel);
    // Empty critical section: a wait_for_events caller that checked the
    // counter before this add is guaranteed to be inside wait_for by the
    // time notify fires (the lost-wakeup guard).
    { const std::lock_guard<std::mutex> lock(events_cv_mutex_); }
    events_cv_.notify_all();
  }
}

void ShardedEngine::mark_done(Shard& shard) {
  for (auto it = shard.local.begin(); it != shard.local.end();) {
    StreamEntry* e = try_entry(it->first);
    if (e == nullptr || e->orphaned.load(std::memory_order_acquire)) {
      // A session stranded by an abort: its stream already got its
      // terminal event and its live_streams accounting was settled when
      // it was aborted — just reclaim the memory.
      (void)shard.engine->release_session(it->second);
      it = shard.local.erase(it);
      continue;
    }
    if (it->second->done()) {
      e->done.store(true, std::memory_order_release);
      shard.live_streams.fetch_sub(1, std::memory_order_acq_rel);
      it = shard.local.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardedEngine::publish_deadline(Shard& shard) {
  for (const auto& [id, session] : shard.local) {
    StreamEntry* e = try_entry(id);
    if (e == nullptr || e->orphaned.load(std::memory_order_acquire)) {
      continue;  // slot reissued or stream aborted mid-flight: drop
    }
    e->lag_us.store(session->lag_seconds() * 1e6,
                    std::memory_order_release);
    e->shed_frames.store(session->shed_frames(),
                         std::memory_order_release);
    e->deadline_misses.store(session->deadline_misses(),
                             std::memory_order_release);
    e->rejected.store(session->rejected(), std::memory_order_release);
  }
}

void ShardedEngine::publish_backlog(Shard& shard) {
  const std::size_t backlog = shard.engine->pending_frames();
  const double lag_us = shard.engine->max_lag_seconds() * 1e6;
  shard.backlog.store(backlog, std::memory_order_release);
  shard.max_lag_us.store(lag_us, std::memory_order_release);
  if (shard.backlog_gauge != nullptr) {
    shard.queue_depth_gauge->set(
        static_cast<double>(shard.queue->depth()));
    shard.backlog_gauge->set(static_cast<double>(backlog));
    shard.lag_gauge->set(lag_us);
    shard.streams_gauge->set(static_cast<double>(
        shard.live_streams.load(std::memory_order_acquire)));
  }
}

// ---------------------------------------------------------- threaded mode

void ShardedEngine::pump_loop(std::size_t s) {
  Shard& shard = *shards_[s];
  fault::FaultInjector* fault = config_.engine.fault;
  if (config_.pin_cores) {
    ThreadPool::pin_current_thread(s * config_.threads_per_shard);
  }
  try {
    std::size_t idle_rounds = 0;
    for (;;) {
      if (shard.park_requested.load(std::memory_order_acquire)) {
        // Cooperative park: exit between rounds, state-clean, so the
        // supervisor can replay this shard's streams bit-identically.
        shard.parked.store(true, std::memory_order_release);
        return;
      }
      shard.heartbeat.fetch_add(1, std::memory_order_acq_rel);
      shard.heartbeat_us.store(steady_now_us(), std::memory_order_release);
      if (fault != nullptr) {
        if (fault->should_fire(fault::Site::kPumpStall, s)) {
          std::this_thread::sleep_for(fault->stall(fault::Site::kPumpStall));
        }
        if (fault->should_fire(fault::Site::kPumpFault, s)) {
          throw fault::FaultInjected("injected pump fault");
        }
      }
      std::size_t worked = adopt_inbox(shard);
      worked += apply_commands(shard);
      worked += shard.engine->step();
      collect_events(shard);
      publish_deadline(shard);
      mark_done(shard);
      publish_backlog(shard);
      if (worked > 0) {
        idle_rounds = 0;
        continue;
      }
      if (stop_requested_.load(std::memory_order_acquire) &&
          shard.queue->depth() == 0) {
        break;  // graceful: everything submitted has been served
      }
      // Idle backoff: yield first so bursts restart instantly, then
      // sleep so parked shards do not burn a core.
      ++idle_rounds;
      if (idle_rounds < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  } catch (...) {
    // An internal error must not std::terminate the whole service; park
    // the shard (producers fail fast on `dead`; the supervisor, when
    // enabled, fails its streams over) and surface the failure from
    // stop() if nothing recovers it first.
    shard.failure = std::current_exception();
    shard.dead.store(true, std::memory_order_release);
  }
}

void ShardedEngine::start() {
  RT_REQUIRE(!running(), "sharded engine already running");
  stop_requested_.store(false, std::memory_order_release);
  for (const auto& shard : shards_) {
    // A shard parked by a previous window's failure gets a fresh pump;
    // clear its health state so traffic flows again. (Admissibility is
    // the caller's: a drained or failed-over shard stays out of the
    // rotation until re-admitted or rejoined.)
    shard->failure = nullptr;
    shard->dead.store(false, std::memory_order_release);
    shard->park_requested.store(false, std::memory_order_release);
    shard->parked.store(false, std::memory_order_release);
    shard->health.store(static_cast<std::uint8_t>(ShardHealth::kHealthy),
                        std::memory_order_release);
    shard->heartbeat_us.store(steady_now_us(), std::memory_order_release);
  }
  running_.store(true, std::memory_order_release);
  window_timer_.reset();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->pump = std::thread([this, s] { pump_loop(s); });
  }
  if (config_.supervisor.enabled) {
    supervisor_ = std::thread([this] { supervisor_loop(); });
  }
}

void ShardedEngine::stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  // The supervisor joins first: it is the only other thread that joins
  // and relaunches pump threads, so winding it down before touching the
  // pumps keeps thread-handle ownership single-threaded here.
  if (supervisor_.joinable()) supervisor_.join();
  for (const auto& shard : shards_) {
    if (shard->pump.joinable()) shard->pump.join();
  }
  // A submission can race the pumps' exit check and strand in a ring.
  // With the pumps joined this thread is the sole consumer, so sweep
  // until every ring reads empty — anything accepted before the sweep
  // finishes is served here. running_ stays true until the sweep is
  // over, so stream_logits cannot read a session the sweep still feeds.
  std::exception_ptr failure;
  try {
    for (;;) {
      std::size_t worked = 0;
      for (const auto& shard : shards_) {
        worked += adopt_inbox(*shard);
        worked += apply_commands(*shard);
        worked += shard->engine->drain();
        collect_events(*shard);
        publish_deadline(*shard);
        mark_done(*shard);
        publish_backlog(*shard);
      }
      if (worked == 0) break;
    }
  } catch (...) {
    failure = std::current_exception();
  }
  // Close the window only now (frames the sweep served are in the
  // per-shard stats, so they must be inside it), and accumulate: stats
  // counters span every window since reset_stats, so the wall view must
  // too.
  window_us_ += window_timer_.elapsed_us();
  running_.store(false, std::memory_order_release);
  for (const auto& shard : shards_) {
    // Failures the supervisor already recovered (failover or abort) were
    // cleared when they were handled; only unrecovered ones surface.
    if (failure == nullptr && shard->failure != nullptr) {
      failure = shard->failure;
    }
    shard->failure = nullptr;
  }
  if (failure != nullptr) std::rethrow_exception(failure);
}

// ------------------------------------------------------- synchronous mode

std::size_t ShardedEngine::pump_shard(std::size_t s) {
  RT_REQUIRE(!running(), "pump_shard: engine is in threaded mode");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  Shard& shard = *shards_[s];
  std::size_t worked = adopt_inbox(shard);
  worked += apply_commands(shard);
  worked += shard.engine->step();
  collect_events(shard);
  publish_deadline(shard);
  mark_done(shard);
  publish_backlog(shard);
  return worked;
}

std::size_t ShardedEngine::drain() {
  RT_REQUIRE(!running(), "drain: engine is in threaded mode");
  std::size_t total_frames = 0;
  for (;;) {
    std::size_t worked = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      worked += adopt_inbox(shard);
      worked += apply_commands(shard);
      const std::size_t frames = shard.engine->drain();
      worked += frames;
      total_frames += frames;
      collect_events(shard);
      publish_deadline(shard);
      mark_done(shard);
      publish_backlog(shard);
    }
    if (worked == 0) return total_frames;
  }
}

// ------------------------------------------------------------- migration

std::size_t ShardedEngine::drain_shard(std::size_t s) {
  RT_REQUIRE(!running(), "drain_shard: stop the engine first");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    router_.set_admissible(s, false);
    RT_REQUIRE(router_.admissible_count() > 0,
               "drain_shard: no shard left to migrate to");
  }
  return seize_and_migrate(s, /*record_failover=*/false);
}

void ShardedEngine::set_shard_admissible(std::size_t s, bool admissible) {
  const std::lock_guard<std::mutex> lock(admit_mutex_);
  router_.set_admissible(s, admissible);
}

std::size_t ShardedEngine::pick_target(std::uint64_t session_key) {
  const std::lock_guard<std::mutex> lock(admit_mutex_);
  // Re-route with the client's original key so session-hash placement
  // stays consistent with future streams of that client (and with the
  // lag signal, so least-lag keeps holding during migration).
  const std::vector<std::size_t> loads = snapshot_loads();
  const std::vector<double> lags = snapshot_lags_us();
  return router_.pick(loads, lags, session_key);
}

void ShardedEngine::forward_command(std::size_t target,
                                    StreamCommand&& command) {
  Shard& shard = *shards_[target];
  if (!running()) {
    // Synchronous mode: the migrator is the only actor, apply in place.
    apply(shard, std::move(command));
    return;
  }
  // A forwarded command is already accepted work — it cannot be dropped
  // and there is no client to bounce backpressure to. The target's pump
  // is live (it was picked as admissible), so a full ring drains.
  while (!shard.queue->try_push(std::move(command))) {
    std::this_thread::yield();
  }
}

std::size_t ShardedEngine::seize_and_migrate(std::size_t s,
                                             bool record_failover) {
  Shard& source = *shards_[s];
  obs::Telemetry* telemetry = config_.engine.telemetry;

  // Sessions a previous failover parked in the inbox that the pump died
  // before adopting must not be stranded here.
  adopt_inbox(source);

  // Latch every entry currently routed to this shard. From here no
  // producer can push toward the source ring (enqueue_routed re-reads
  // the shard under the latch), so one ring flush below reaches a
  // provably quiescent ring, and per-stream command order is preserved
  // across the re-route. Entries created after this snapshot route to
  // admissible shards only — the source was already taken out of the
  // rotation.
  std::vector<StreamEntry*> latched;
  const std::uint64_t slots = slot_count_.load(std::memory_order_acquire);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                         ->entries[slot % kEntriesPerBlock];
    latch_acquire(e.route_latch);
    if (e.shard.load(std::memory_order_acquire) != s) {
      latch_release(e.route_latch);
      continue;
    }
    latched.push_back(&e);
  }

  // Flush the ring. Commands for streams with a live session here are
  // applied in place (their effects migrate with the session); a kOpen
  // that never reached its session re-routes the stream, and everything
  // behind it in the ring follows it to the new shard, in order.
  std::unordered_set<std::uint64_t> rerouted;
  StreamCommand command;
  while (source.queue->try_pop(command)) {
    StreamEntry* e = try_entry(command.stream);
    if (e == nullptr) continue;  // stale: drop, as the pump would
    if (rerouted.contains(command.stream)) {
      forward_command(e->shard.load(std::memory_order_acquire),
                      std::move(command));
      command = StreamCommand{};
      continue;
    }
    if (command.kind == StreamCommand::Kind::kOpen &&
        e->session.load(std::memory_order_acquire) == nullptr &&
        !e->done.load(std::memory_order_acquire)) {
      const std::size_t target = pick_target(e->session_key);
      source.live_streams.fetch_sub(1, std::memory_order_acq_rel);
      shards_[target]->live_streams.fetch_add(1, std::memory_order_acq_rel);
      e->shard.store(target, std::memory_order_release);
      rerouted.insert(command.stream);
      forward_command(target, std::move(command));
      command = StreamCommand{};
      continue;
    }
    if (source.local.contains(command.stream) ||
        command.kind == StreamCommand::Kind::kClose) {
      apply(source, std::move(command));
      command = StreamCommand{};
      continue;
    }
    // Audio/finish for a completed or closed stream: drop.
  }

  // Publish any decoder events the flush produced and let finished
  // streams complete in place — they stay readable where they are.
  collect_events(source);
  publish_deadline(source);
  mark_done(source);

  // Move every remaining live stream to an admissible sibling, hidden
  // state, pending frames, and produced logits intact.
  std::size_t migrated = 0;
  while (!source.local.empty()) {
    const auto [id, session] = *source.local.begin();
    source.local.erase(source.local.begin());
    StreamEntry* e = try_entry(id);
    if (e == nullptr || e->orphaned.load(std::memory_order_acquire)) {
      (void)source.engine->release_session(session);
      continue;
    }
    const std::size_t target_index = pick_target(e->session_key);
    Shard& target = *shards_[target_index];
    std::unique_ptr<runtime::StreamingSession> released =
        source.engine->release_session(session);
    if (running()) {
      // The target's pump owns its engine; hand the session over through
      // the adoption inbox, which it drains at its next round top. The
      // session object's identity is preserved, so the entry's published
      // pointer stays valid throughout the transit.
      const std::lock_guard<std::mutex> lock(target.inbox_mutex);
      target.inbox.emplace_back(id, std::move(released));
      target.inbox_size.store(target.inbox.size(),
                              std::memory_order_release);
    } else {
      runtime::StreamingSession& adopted =
          target.engine->adopt_session(std::move(released));
      target.local.emplace(id, &adopted);
    }
    source.live_streams.fetch_sub(1, std::memory_order_acq_rel);
    target.live_streams.fetch_add(1, std::memory_order_acq_rel);
    e->shard.store(target_index, std::memory_order_release);
    ++migrated;
  }

  // Streams admitted to this shard whose open is still in a producer's
  // hands (blocked on the latch, or about to enqueue): re-route the
  // entry so that push lands on a live shard. Closed slots whose stale
  // shard field matched are left alone (`done` distinguishes them).
  for (StreamEntry* e : latched) {
    if (e->shard.load(std::memory_order_relaxed) != s) continue;
    if (e->done.load(std::memory_order_acquire) ||
        e->orphaned.load(std::memory_order_acquire)) {
      continue;
    }
    if (e->session.load(std::memory_order_acquire) != nullptr) continue;
    const std::size_t target = pick_target(e->session_key);
    source.live_streams.fetch_sub(1, std::memory_order_acq_rel);
    shards_[target]->live_streams.fetch_add(1, std::memory_order_acq_rel);
    e->shard.store(target, std::memory_order_release);
  }

  for (StreamEntry* e : latched) latch_release(e->route_latch);
  for (const auto& shard : shards_) publish_backlog(*shard);

  if (telemetry != nullptr) {
    if (record_failover) telemetry->fault().failovers->add(1);
    telemetry->fault().replayed_streams->add(migrated);
  }
  return migrated;
}

// ------------------------------------------- supervision, failover, rejoin

ShardHealth ShardedEngine::shard_health(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return static_cast<ShardHealth>(
      shards_[s]->health.load(std::memory_order_acquire));
}

std::uint64_t ShardedEngine::shard_heartbeat(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->heartbeat.load(std::memory_order_acquire);
}

void ShardedEngine::quarantine(std::size_t s) {
  Shard& shard = *shards_[s];
  auto expected = static_cast<std::uint8_t>(ShardHealth::kHealthy);
  if (!shard.health.compare_exchange_strong(
          expected, static_cast<std::uint8_t>(ShardHealth::kQuarantined),
          std::memory_order_acq_rel)) {
    return;  // already out of rotation for this failure
  }
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    router_.set_admissible(s, false);
  }
  if (config_.engine.telemetry != nullptr) {
    config_.engine.telemetry->fault().detected->add(1);
  }
}

std::size_t ShardedEngine::fail_over_shard(std::size_t s) {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  Shard& shard = *shards_[s];
  RT_REQUIRE(!running() || shard.dead.load(std::memory_order_acquire) ||
                 shard.parked.load(std::memory_order_acquire),
             "fail_over_shard: the shard's pump must not be running");
  quarantine(s);
  bool has_target = false;
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    has_target = router_.admissible_count() > 0;
  }
  if (!has_target) {
    // Nowhere to replay to: typed abort beats silent hanging streams.
    (void)abort_shard_streams(s);
    return 0;
  }
  // The pump exited (dead or parked) but its thread handle may still
  // need collecting before this thread touches the shard's engine.
  if (shard.pump.joinable() && running()) shard.pump.join();
  const std::size_t migrated = seize_and_migrate(s, /*record_failover=*/true);
  shard.health.store(static_cast<std::uint8_t>(ShardHealth::kFailed),
                     std::memory_order_release);
  shard.failed_at_us.store(steady_now_us(), std::memory_order_release);
  // The failure is handled — every stream was replayed elsewhere — so
  // stop() must not rethrow it as if it had gone unrecovered.
  shard.failure = nullptr;
  return migrated;
}

std::size_t ShardedEngine::abort_shard_streams(std::size_t s) {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  Shard& shard = *shards_[s];
  quarantine(s);
  obs::Telemetry* telemetry = config_.engine.telemetry;
  std::size_t aborted = 0;
  const std::uint64_t slots = slot_count_.load(std::memory_order_acquire);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                         ->entries[slot % kEntriesPerBlock];
    const SpinLatch latch(e.route_latch);
    if (e.shard.load(std::memory_order_acquire) != s) continue;
    if (e.done.load(std::memory_order_acquire) ||
        e.orphaned.load(std::memory_order_acquire)) {
      continue;  // finished streams stay readable; closed slots are stale
    }
    // The shard's engine cannot be trusted (its pump may still be wedged
    // inside it), so the session is stranded: unpublish it, deliver the
    // typed terminal event, and settle the stream's accounting. The slot
    // is never reissued — a revived pump reclaims the session memory via
    // the orphan sweep in mark_done.
    e.orphaned.store(true, std::memory_order_release);
    e.session.store(nullptr, std::memory_order_release);
    push_abort_event(e);
    e.done.store(true, std::memory_order_release);
    shard.live_streams.fetch_sub(1, std::memory_order_acq_rel);
    ++aborted;
    if (telemetry != nullptr) telemetry->fault().aborted_streams->add(1);
  }
  shard.health.store(static_cast<std::uint8_t>(ShardHealth::kLost),
                     std::memory_order_release);
  shard.failed_at_us.store(steady_now_us(), std::memory_order_release);
  return aborted;
}

void ShardedEngine::push_abort_event(StreamEntry& e) {
  speech::StreamEvent event;
  event.kind = speech::StreamEventKind::kAborted;
  event.is_final = true;
  {
    const std::lock_guard<std::mutex> lock(e.events_mutex);
    e.events.push_back(std::move(event));
  }
  pending_events_.fetch_add(1, std::memory_order_acq_rel);
  { const std::lock_guard<std::mutex> lock(events_cv_mutex_); }
  events_cv_.notify_all();
}

bool ShardedEngine::probe_shard(Shard& shard) {
  // Health probe: one short synthetic utterance end to end through the
  // shard's own engine. Created and released here, so a passing shard
  // rejoins with no residue; any engine fault (including a still-armed
  // injection) fails the probe instead of escaping.
  try {
    runtime::StreamingSession& session = shard.engine->create_session(
        config_.engine.mfcc, speech::StreamingDecoderConfig::none());
    Rng rng(42);
    std::vector<float> samples(3200);
    for (float& x : samples) x = rng.uniform(-0.05F, 0.05F);
    session.push_audio(samples);
    session.finish();
    for (int i = 0; i < 10000 && !session.done(); ++i) {
      if (shard.engine->step() == 0) break;
    }
    const bool ok = session.done() && session.logits().rows() > 0;
    (void)shard.engine->release_session(&session);
    return ok;
  } catch (...) {
    return false;
  }
}

bool ShardedEngine::rejoin_shard(std::size_t s) {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  Shard& shard = *shards_[s];
  if (static_cast<ShardHealth>(shard.health.load(
          std::memory_order_acquire)) != ShardHealth::kFailed) {
    return false;  // only a failed-over (replayed) shard can come back
  }
  if (!probe_shard(shard)) {
    // Restart the backoff clock so auto-rejoin doesn't probe-spin.
    shard.failed_at_us.store(steady_now_us(), std::memory_order_release);
    return false;
  }
  shard.failure = nullptr;
  shard.dead.store(false, std::memory_order_release);
  shard.park_requested.store(false, std::memory_order_release);
  shard.parked.store(false, std::memory_order_release);
  shard.heartbeat_us.store(steady_now_us(), std::memory_order_release);
  shard.health.store(static_cast<std::uint8_t>(ShardHealth::kHealthy),
                     std::memory_order_release);
  if (running()) {
    if (shard.pump.joinable()) shard.pump.join();
    const std::size_t index = s;
    shard.pump = std::thread([this, index] { pump_loop(index); });
  }
  set_shard_admissible(s, true);
  return true;
}

void ShardedEngine::handle_shard_failure(std::size_t s) {
  Shard& shard = *shards_[s];
  quarantine(s);
  if (!shard.dead.load(std::memory_order_acquire)) {
    // Stalled, not dead: ask the pump to park between rounds — a
    // state-clean exit, which is what keeps its streams' replay
    // bit-identical — and give it the grace window to comply.
    shard.park_requested.store(true, std::memory_order_release);
    const auto deadline =
        std::chrono::steady_clock::now() + config_.supervisor.park_grace;
    while (!shard.parked.load(std::memory_order_acquire) &&
           !shard.dead.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        // Wedged past the grace: its engine state cannot be trusted.
        (void)abort_shard_streams(s);
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  (void)fail_over_shard(s);
}

void ShardedEngine::supervisor_loop() {
  const SupervisorConfig& sup = config_.supervisor;
  const std::uint64_t stall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          sup.stall_timeout)
          .count());
  const std::uint64_t rejoin_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          sup.rejoin_backoff)
          .count());
  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(sup.check_interval);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      const auto health = static_cast<ShardHealth>(
          shard.health.load(std::memory_order_acquire));
      if (health == ShardHealth::kHealthy) {
        if (shard.dead.load(std::memory_order_acquire)) {
          handle_shard_failure(s);
          continue;
        }
        const std::uint64_t beat =
            shard.heartbeat_us.load(std::memory_order_acquire);
        const std::uint64_t now = steady_now_us();
        if (now > beat && now - beat > stall_us) handle_shard_failure(s);
        continue;
      }
      if (health == ShardHealth::kFailed) {
        // No pump: the supervisor is the failed ring's consumer, so a
        // straggler command (e.g. a close that raced the failover) is
        // still served instead of rotting in the ring.
        StreamCommand command;
        while (shard.queue->try_pop(command)) {
          apply(shard, std::move(command));
        }
        if (sup.auto_rejoin &&
            steady_now_us() -
                    shard.failed_at_us.load(std::memory_order_acquire) >
                rejoin_us) {
          (void)rejoin_shard(s);
        }
      }
      // kQuarantined is transient (this thread finishes the failover
      // before returning here); kLost shards are never touched — their
      // wedged pump may still own the engine.
    }
  }
}

// ----------------------------------------------------------- load & stats

std::size_t ShardedEngine::load(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  const Shard& shard = *shards_[s];
  return shard.queue->depth() +
         shard.live_streams.load(std::memory_order_acquire) +
         shard.backlog.load(std::memory_order_acquire);
}

std::size_t ShardedEngine::queue_depth(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->queue->depth();
}

double ShardedEngine::shard_lag_seconds(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->max_lag_us.load(std::memory_order_acquire) * 1e-6;
}

const runtime::RuntimeStats& ShardedEngine::shard_stats(
    std::size_t s) const {
  RT_REQUIRE(!running(), "shard_stats: stop the engine first");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->engine->stats();
}

const cache::PrefixCache* ShardedEngine::shard_cache(std::size_t s) const {
  RT_REQUIRE(!running(), "shard_cache: stop the engine first");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->engine->cache();
}

std::size_t ShardedEngine::shard_session_count(std::size_t s) const {
  RT_REQUIRE(!running(), "shard_session_count: stop the engine first");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->engine->session_count();
}

GlobalStats ShardedEngine::stats() const {
  RT_REQUIRE(!running(), "stats: stop the engine first");
  StatsAggregator aggregator;
  for (const auto& shard : shards_) {
    aggregator.add_shard(shard->engine->stats());
  }
  aggregator.set_wall_us(window_us_);
  GlobalStats global = aggregator.global();
  for (const auto& shard : shards_) {
    global.weight_bytes += shard->model->total_memory_bytes();
  }
  return global;
}

void ShardedEngine::reset_stats() {
  RT_REQUIRE(!running(), "reset_stats: stop the engine first");
  for (const auto& shard : shards_) shard->engine->reset_stats();
  window_us_ = 0.0;
}

}  // namespace rtmobile::serve
