#include "serve/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "hw/timer.hpp"
#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace rtmobile::serve {

ShardedEngine::ShardedEngine(const SpeechModel& model,
                             const std::map<std::string, BlockMask>& masks,
                             const CompilerOptions& options,
                             ShardConfig config)
    : config_(std::move(config)),
      router_(config_.shards, config_.policy) {
  RT_REQUIRE(config_.shards >= 1, "sharded engine needs >= 1 shard");
  RT_REQUIRE(config_.threads_per_shard >= 1,
             "sharded engine needs >= 1 thread per shard");

  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    CompilerOptions shard_options = options;
    shard_options.threads = config_.threads_per_shard;
    if (config_.pin_cores) {
      shard_options.core_range = CoreRange{s * config_.threads_per_shard,
                                           config_.threads_per_shard};
    }
    if (config_.threads_per_shard > 1) {
      shard->pool = std::make_unique<ThreadPool>(config_.threads_per_shard,
                                                 shard_options.core_range);
    }
    shard->model = std::make_unique<CompiledSpeechModel>(
        model, masks, shard_options, shard->pool.get());
    shard->engine = std::make_unique<runtime::InferenceEngine>(
        *shard->model, config_.engine);
    shard->queue = std::make_unique<SubmissionQueue>(config_.queue_capacity);
    if (config_.engine.telemetry != nullptr) {
      obs::Telemetry& telemetry = *config_.engine.telemetry;
      shard->queue_depth_gauge = &telemetry.shard_gauge(
          "rt_shard_queue_depth", "Ingress commands queued per shard", s);
      shard->backlog_gauge = &telemetry.shard_gauge(
          "rt_shard_backlog_frames",
          "Engine-internal feature-frame backlog per shard", s);
      shard->lag_gauge = &telemetry.shard_gauge(
          "rt_shard_max_lag_us",
          "Worst-stream lag last published per shard", s);
      shard->streams_gauge = &telemetry.shard_gauge(
          "rt_shard_live_streams", "Live streams per shard", s);
    }
    shards_.push_back(std::move(shard));
  }
  blocks_ = std::make_unique<std::unique_ptr<EntryBlock>[]>(kMaxBlocks);
}

ShardedEngine::~ShardedEngine() {
  try {
    stop();
  } catch (...) {
    // A pump's stored failure must not escape a destructor.
  }
}

const CompiledSpeechModel& ShardedEngine::shard_model(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return *shards_[s]->model;
}

ShardedEngine::StreamEntry& ShardedEngine::entry(StreamHandle h) const {
  // Lock-free: open_stream fully initializes the entry (and its block)
  // before publishing the slot through slot_count_ with release order,
  // so a slot below the acquired count always maps to a ready entry. The
  // generation check rejects handles whose stream was closed and whose
  // slot has since been reissued.
  const std::uint64_t slot = h.id & kSlotMask;
  RT_REQUIRE(slot < slot_count_.load(std::memory_order_acquire),
             "unknown stream handle");
  StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                       ->entries[slot % kEntriesPerBlock];
  RT_REQUIRE(e.generation.load(std::memory_order_acquire) ==
                 h.id >> kSlotBits,
             "stale stream handle (stream closed, slot reissued)");
  return e;
}

ShardedEngine::StreamEntry* ShardedEngine::try_entry(
    std::uint64_t id) const {
  const std::uint64_t slot = id & kSlotMask;
  if (slot >= slot_count_.load(std::memory_order_acquire)) return nullptr;
  StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                       ->entries[slot % kEntriesPerBlock];
  if (e.generation.load(std::memory_order_acquire) != id >> kSlotBits) {
    return nullptr;
  }
  return &e;
}

std::vector<std::size_t> ShardedEngine::snapshot_loads() const {
  std::vector<std::size_t> loads(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) loads[s] = load(s);
  return loads;
}

std::vector<double> ShardedEngine::snapshot_lags_us() const {
  std::vector<double> lags(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    lags[s] = shards_[s]->max_lag_us.load(std::memory_order_acquire);
  }
  return lags;
}

StreamHandle ShardedEngine::open_stream(std::uint64_t session_key) {
  StreamConfig config;
  config.decode = speech::StreamingDecoderConfig::none();
  config.session_key = session_key;
  return open_stream(config);
}

OpenResult ShardedEngine::try_open_stream(const StreamConfig& config) {
  std::size_t target = 0;
  StreamHandle handle;
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    const std::vector<std::size_t> loads = snapshot_loads();
    const std::vector<double> lags = snapshot_lags_us();
    target = router_.pick(loads, lags, config.session_key);
    // Open-time admission control: the router already picked the
    // least-loaded/least-lagged admissible shard, so if even that
    // shard's last published worst-stream lag exceeds the requested
    // budget, the whole fleet is too far behind to serve this stream
    // inside its deadline — refuse before wasting a slot and compute.
    if (config.deadline.enabled() &&
        lags[target] * 1e-6 > config.deadline.budget_seconds) {
      return OpenResult{StreamHandle{}, OpenStatus::kRejectedOverBudget};
    }

    // Prefer a slot freed by a closed stream; grow the table otherwise.
    std::uint64_t slot = 0;
    bool reused = false;
    {
      const std::lock_guard<std::mutex> free_lock(free_mutex_);
      if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        reused = true;
      }
    }
    if (!reused) {
      slot = slot_count_.load(std::memory_order_relaxed);
      RT_REQUIRE(slot < kEntriesPerBlock * kMaxBlocks,
                 "stream handle table exhausted (too many live streams)");
      std::unique_ptr<EntryBlock>& block = blocks_[slot / kEntriesPerBlock];
      if (block == nullptr) block = std::make_unique<EntryBlock>();
    }
    StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                         ->entries[slot % kEntriesPerBlock];
    const std::uint64_t generation =
        reused ? e.generation.load(std::memory_order_relaxed) + 1 : 0;
    e.shard.store(target, std::memory_order_relaxed);
    e.session.store(nullptr, std::memory_order_relaxed);
    e.done.store(false, std::memory_order_relaxed);
    e.lag_us.store(0.0, std::memory_order_relaxed);
    e.shed_frames.store(0, std::memory_order_relaxed);
    e.deadline_misses.store(0, std::memory_order_relaxed);
    e.rejected.store(false, std::memory_order_relaxed);
    e.session_key = config.session_key;
    {
      // Events the previous occupant never polled die with its handle.
      const std::lock_guard<std::mutex> events_lock(e.events_mutex);
      pending_events_.fetch_sub(e.events.size(),
                                std::memory_order_acq_rel);
      e.events.clear();
    }
    // Publish: a stale handle's generation stops matching here, and for
    // a fresh slot entry() accepts it only after the count store.
    e.generation.store(generation, std::memory_order_release);
    if (!reused) {
      slot_count_.store(slot + 1, std::memory_order_release);
    }
    handle.id = generation << kSlotBits | slot;
    // Counted before the admission lock drops so concurrent admissions
    // see this stream in load() and don't dog-pile one shard.
    shards_[target]->live_streams.fetch_add(1, std::memory_order_acq_rel);
  }
  Shard& shard = *shards_[target];
  StreamCommand open;
  open.kind = StreamCommand::Kind::kOpen;
  open.stream = handle.id;
  open.decode = config.decode;
  open.deadline = config.deadline;
  // Undoes a failed admission: the stream never existed. The load signal
  // reverts and the slot is recycled (its next occupant bumps the
  // generation, so the handle we never returned can't alias it).
  const auto rollback = [this, &shard, &handle] {
    shard.live_streams.fetch_sub(1, std::memory_order_acq_rel);
    const std::lock_guard<std::mutex> free_lock(free_mutex_);
    free_slots_.push_back(static_cast<std::uint32_t>(handle.id & kSlotMask));
  };
  try {
    if (running()) {
      if (!enqueue(target, std::move(open))) {
        // Ingress ring full: typed backpressure instead of spinning —
        // the base-class open_stream wrapper retries, a transport maps
        // it to a wire-level "try again" before any state leaks.
        rollback();
        return OpenResult{StreamHandle{}, OpenStatus::kBackpressure};
      }
    } else {
      // Synchronous mode: the caller is the only actor, apply in place.
      apply(shard, std::move(open));
    }
  } catch (...) {
    rollback();  // dead shard: fail the open, not the engine
    throw;
  }
  return OpenResult{handle, OpenStatus::kOk};
}

bool ShardedEngine::enqueue(std::size_t shard, StreamCommand&& command) {
  // Fail fast on a dead shard: returning false would send backpressure
  // loops spinning on a ring nobody will ever drain.
  RT_REQUIRE(!shards_[shard]->dead.load(std::memory_order_acquire),
             "serve: shard pump died; stop() reports the cause");
  return shards_[shard]->queue->try_push(std::move(command));
}

bool ShardedEngine::submit_audio(StreamHandle h,
                                 std::span<const float> samples) {
  StreamEntry& e = entry(h);
  const std::size_t shard = e.shard.load(std::memory_order_acquire);
  // Cheap pre-check: when the ring is saturated, report backpressure
  // before copying the payload — retry loops would otherwise allocate
  // and copy the chunk on every failed attempt. (Racy by nature; the
  // authoritative answer is still try_push's.)
  if (shards_[shard]->queue->depth() >= shards_[shard]->queue->capacity()) {
    RT_REQUIRE(!shards_[shard]->dead.load(std::memory_order_acquire),
               "serve: shard pump died; stop() reports the cause");
    return false;
  }
  StreamCommand command;
  command.kind = StreamCommand::Kind::kAudio;
  command.stream = h.id;
  command.samples.assign(samples.begin(), samples.end());
  return enqueue(shard, std::move(command));
}

bool ShardedEngine::finish_stream(StreamHandle h) {
  StreamEntry& e = entry(h);
  StreamCommand command;
  command.kind = StreamCommand::Kind::kFinish;
  command.stream = h.id;
  return enqueue(e.shard.load(std::memory_order_acquire),
                 std::move(command));
}

bool ShardedEngine::close_stream(StreamHandle h) {
  StreamEntry& e = entry(h);
  const std::size_t shard = e.shard.load(std::memory_order_acquire);
  StreamCommand command;
  command.kind = StreamCommand::Kind::kClose;
  command.stream = h.id;
  if (running()) return enqueue(shard, std::move(command));
  apply(*shards_[shard], std::move(command));  // synchronous mode
  return true;
}

StreamDeadlineStats ShardedEngine::stream_deadline_stats(
    StreamHandle h) const {
  const StreamEntry& e = entry(h);
  StreamDeadlineStats stats;
  stats.lag_seconds = e.lag_us.load(std::memory_order_acquire) * 1e-6;
  stats.shed_frames = e.shed_frames.load(std::memory_order_acquire);
  stats.deadline_misses =
      e.deadline_misses.load(std::memory_order_acquire);
  stats.rejected = e.rejected.load(std::memory_order_acquire);
  return stats;
}

bool ShardedEngine::stream_done(StreamHandle h) const {
  StreamEntry& e = entry(h);
  if (e.done.load(std::memory_order_acquire)) return true;
  // An incomplete stream on a dead shard will never finish; surface
  // that instead of letting completion pollers spin forever.
  RT_REQUIRE(
      !shards_[e.shard.load(std::memory_order_acquire)]->dead.load(
          std::memory_order_acquire),
      "serve: shard pump died; stop() reports the cause");
  return false;
}

Matrix ShardedEngine::stream_logits(StreamHandle h) const {
  StreamEntry& e = entry(h);
  RT_REQUIRE(e.done.load(std::memory_order_acquire) || !running(),
             "stream_logits: stream still being served");
  const runtime::StreamingSession* session =
      e.session.load(std::memory_order_acquire);
  RT_REQUIRE(session != nullptr,
             "stream_logits: stream not open (never pumped or closed)");
  return session->logits();
}

std::size_t ShardedEngine::stream_shard(StreamHandle h) const {
  return entry(h).shard.load(std::memory_order_acquire);
}

std::size_t ShardedEngine::poll_events(StreamHandle h,
                                       std::vector<speech::StreamEvent>& out) {
  StreamEntry& e = entry(h);
  const std::lock_guard<std::mutex> lock(e.events_mutex);
  const std::size_t moved = e.events.size();
  out.insert(out.end(), std::make_move_iterator(e.events.begin()),
             std::make_move_iterator(e.events.end()));
  e.events.clear();
  pending_events_.fetch_sub(moved, std::memory_order_acq_rel);
  return moved;
}

std::size_t ShardedEngine::poll_events(std::vector<RecognizerEvent>& out) {
  const std::size_t start = out.size();
  std::size_t total = 0;
  const std::uint64_t slots = slot_count_.load(std::memory_order_acquire);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    StreamEntry& e = blocks_[slot / kEntriesPerBlock]
                         ->entries[slot % kEntriesPerBlock];
    const std::lock_guard<std::mutex> lock(e.events_mutex);
    if (e.events.empty()) continue;
    // The mailbox was cleared when this slot was last reissued, so its
    // events belong to the current generation's stream.
    const std::uint64_t generation =
        e.generation.load(std::memory_order_acquire);
    const StreamHandle handle{generation << kSlotBits | slot};
    const std::size_t moved = e.events.size();
    for (speech::StreamEvent& event : e.events) {
      out.push_back(RecognizerEvent{handle, std::move(event)});
    }
    total += moved;
    e.events.clear();
    pending_events_.fetch_sub(moved, std::memory_order_acq_rel);
  }
  // Slot order is not handle order once closed slots are reissued (a
  // reissued low slot carries a newer, higher id). Sort into ascending
  // handle-id order — the deterministic drain-all contract shared with
  // LocalRecognizer; stable, so each stream's own events stay ordered.
  std::stable_sort(out.begin() + static_cast<std::ptrdiff_t>(start),
                   out.end(),
                   [](const RecognizerEvent& a, const RecognizerEvent& b) {
                     return a.stream.id < b.stream.id;
                   });
  return total;
}

bool ShardedEngine::wait_for_events(std::chrono::microseconds timeout) {
  if (pending_events_.load(std::memory_order_acquire) > 0) return true;
  std::unique_lock<std::mutex> lock(events_cv_mutex_);
  return events_cv_.wait_for(lock, timeout, [this] {
    return pending_events_.load(std::memory_order_acquire) > 0;
  });
}

// ---------------------------------------------------------- command flow

void ShardedEngine::apply(Shard& shard, StreamCommand&& command) {
  switch (command.kind) {
    case StreamCommand::Kind::kOpen: {
      runtime::StreamingSession& session = shard.engine->create_session(
          config_.engine.mfcc, command.decode);
      session.set_deadline(command.deadline);
      shard.local.emplace(command.stream, &session);
      entry(StreamHandle{command.stream})
          .session.store(&session, std::memory_order_release);
      break;
    }
    // kAudio/kFinish for a stream no longer in `local` (it completed or
    // was closed while the command sat in the ring) are dropped: one
    // misbehaving client must not take the shard down.
    case StreamCommand::Kind::kAudio: {
      const auto it = shard.local.find(command.stream);
      if (it != shard.local.end() && !it->second->finished()) {
        it->second->push_audio(command.samples);
      }
      break;
    }
    case StreamCommand::Kind::kFinish: {
      const auto it = shard.local.find(command.stream);
      if (it != shard.local.end() && !it->second->finished()) {
        it->second->finish();
      }
      break;
    }
    case StreamCommand::Kind::kClose: {
      StreamEntry* stale_checked = try_entry(command.stream);
      if (stale_checked == nullptr) break;  // slot already reissued: drop
      StreamEntry& e = *stale_checked;
      runtime::StreamingSession* session =
          e.session.load(std::memory_order_acquire);
      if (session == nullptr) break;  // double close: drop
      const auto it = shard.local.find(command.stream);
      if (it != shard.local.end()) {  // closing a live stream abandons it
        shard.local.erase(it);
        shard.live_streams.fetch_sub(1, std::memory_order_acq_rel);
      }
      // Unpublish so no NEW stream_logits lookup can reach the dying
      // session. A lookup already in flight on this handle is the
      // documented client misuse (reading a handle while closing it).
      e.session.store(nullptr, std::memory_order_release);
      e.done.store(true, std::memory_order_release);
      {
        // Unpolled hypotheses die with the stream the client abandoned.
        const std::lock_guard<std::mutex> events_lock(e.events_mutex);
        pending_events_.fetch_sub(e.events.size(),
                                  std::memory_order_acq_rel);
        e.events.clear();
      }
      // Ownership returns to us and dies here: the session is freed.
      (void)shard.engine->release_session(session);
      // The slot can serve a future stream; its next occupant bumps the
      // generation, invalidating this handle.
      {
        const std::lock_guard<std::mutex> free_lock(free_mutex_);
        free_slots_.push_back(
            static_cast<std::uint32_t>(command.stream & kSlotMask));
      }
      break;
    }
  }
}

std::size_t ShardedEngine::apply_commands(Shard& shard) {
  std::size_t applied = 0;
  StreamCommand command;
  while (shard.queue->try_pop(command)) {
    apply(shard, std::move(command));
    ++applied;
  }
  return applied;
}

void ShardedEngine::collect_events(Shard& shard) {
  obs::Telemetry* telemetry = config_.engine.telemetry;
  RT_SPAN(telemetry != nullptr ? &telemetry->trace() : nullptr,
          kEventFlush, obs::kNoStream);
  std::size_t published = 0;
  for (const auto& [id, session] : shard.local) {
    if (session->pending_events() == 0) continue;
    StreamEntry* e = try_entry(id);
    if (e == nullptr) continue;  // slot reissued mid-flight: drop
    const std::lock_guard<std::mutex> lock(e->events_mutex);
    published += session->poll_events(e->events);
  }
  if (published > 0) {
    pending_events_.fetch_add(published, std::memory_order_acq_rel);
    // Empty critical section: a wait_for_events caller that checked the
    // counter before this add is guaranteed to be inside wait_for by the
    // time notify fires (the lost-wakeup guard).
    { const std::lock_guard<std::mutex> lock(events_cv_mutex_); }
    events_cv_.notify_all();
  }
}

void ShardedEngine::mark_done(Shard& shard) {
  for (auto it = shard.local.begin(); it != shard.local.end();) {
    if (it->second->done()) {
      entry(StreamHandle{it->first}).done.store(true,
                                                std::memory_order_release);
      shard.live_streams.fetch_sub(1, std::memory_order_acq_rel);
      it = shard.local.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardedEngine::publish_deadline(Shard& shard) {
  for (const auto& [id, session] : shard.local) {
    StreamEntry* e = try_entry(id);
    if (e == nullptr) continue;  // slot reissued mid-flight: drop
    e->lag_us.store(session->lag_seconds() * 1e6,
                    std::memory_order_release);
    e->shed_frames.store(session->shed_frames(),
                         std::memory_order_release);
    e->deadline_misses.store(session->deadline_misses(),
                             std::memory_order_release);
    e->rejected.store(session->rejected(), std::memory_order_release);
  }
}

void ShardedEngine::publish_backlog(Shard& shard) {
  const std::size_t backlog = shard.engine->pending_frames();
  const double lag_us = shard.engine->max_lag_seconds() * 1e6;
  shard.backlog.store(backlog, std::memory_order_release);
  shard.max_lag_us.store(lag_us, std::memory_order_release);
  if (shard.backlog_gauge != nullptr) {
    shard.queue_depth_gauge->set(
        static_cast<double>(shard.queue->depth()));
    shard.backlog_gauge->set(static_cast<double>(backlog));
    shard.lag_gauge->set(lag_us);
    shard.streams_gauge->set(static_cast<double>(
        shard.live_streams.load(std::memory_order_acquire)));
  }
}

// ---------------------------------------------------------- threaded mode

void ShardedEngine::pump_loop(std::size_t s) {
  Shard& shard = *shards_[s];
  if (config_.pin_cores) {
    ThreadPool::pin_current_thread(s * config_.threads_per_shard);
  }
  try {
    std::size_t idle_rounds = 0;
    for (;;) {
      std::size_t worked = apply_commands(shard);
      worked += shard.engine->step();
      collect_events(shard);
      publish_deadline(shard);
      mark_done(shard);
      publish_backlog(shard);
      if (worked > 0) {
        idle_rounds = 0;
        continue;
      }
      if (stop_requested_.load(std::memory_order_acquire) &&
          shard.queue->depth() == 0) {
        break;  // graceful: everything submitted has been served
      }
      // Idle backoff: yield first so bursts restart instantly, then
      // sleep so parked shards do not burn a core.
      ++idle_rounds;
      if (idle_rounds < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  } catch (...) {
    // An internal error must not std::terminate the whole service; park
    // the shard (producers fail fast on `dead`) and surface the failure
    // from stop().
    shard.failure = std::current_exception();
    shard.dead.store(true, std::memory_order_release);
  }
}

void ShardedEngine::start() {
  RT_REQUIRE(!running(), "sharded engine already running");
  stop_requested_.store(false, std::memory_order_release);
  for (const auto& shard : shards_) {
    // A shard parked by a previous window's failure gets a fresh pump;
    // clear its health state so traffic flows again.
    shard->failure = nullptr;
    shard->dead.store(false, std::memory_order_release);
  }
  running_.store(true, std::memory_order_release);
  window_timer_.reset();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->pump = std::thread([this, s] { pump_loop(s); });
  }
}

void ShardedEngine::stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  for (const auto& shard : shards_) {
    if (shard->pump.joinable()) shard->pump.join();
  }
  // A submission can race the pumps' exit check and strand in a ring.
  // With the pumps joined this thread is the sole consumer, so sweep
  // until every ring reads empty — anything accepted before the sweep
  // finishes is served here. running_ stays true until the sweep is
  // over, so stream_logits cannot read a session the sweep still feeds.
  std::exception_ptr failure;
  try {
    for (;;) {
      std::size_t worked = 0;
      for (const auto& shard : shards_) {
        worked += apply_commands(*shard);
        worked += shard->engine->drain();
        collect_events(*shard);
        publish_deadline(*shard);
        mark_done(*shard);
        publish_backlog(*shard);
      }
      if (worked == 0) break;
    }
  } catch (...) {
    failure = std::current_exception();
  }
  // Close the window only now (frames the sweep served are in the
  // per-shard stats, so they must be inside it), and accumulate: stats
  // counters span every window since reset_stats, so the wall view must
  // too.
  window_us_ += window_timer_.elapsed_us();
  running_.store(false, std::memory_order_release);
  for (const auto& shard : shards_) {
    if (failure == nullptr && shard->failure != nullptr) {
      failure = shard->failure;
    }
    shard->failure = nullptr;
  }
  if (failure != nullptr) std::rethrow_exception(failure);
}

// ------------------------------------------------------- synchronous mode

std::size_t ShardedEngine::pump_shard(std::size_t s) {
  RT_REQUIRE(!running(), "pump_shard: engine is in threaded mode");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  Shard& shard = *shards_[s];
  std::size_t worked = apply_commands(shard);
  worked += shard.engine->step();
  collect_events(shard);
  publish_deadline(shard);
  mark_done(shard);
  publish_backlog(shard);
  return worked;
}

std::size_t ShardedEngine::drain() {
  RT_REQUIRE(!running(), "drain: engine is in threaded mode");
  std::size_t total_frames = 0;
  for (;;) {
    std::size_t worked = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      worked += apply_commands(shard);
      const std::size_t frames = shard.engine->drain();
      worked += frames;
      total_frames += frames;
      collect_events(shard);
      publish_deadline(shard);
      mark_done(shard);
      publish_backlog(shard);
    }
    if (worked == 0) return total_frames;
  }
}

// ------------------------------------------------------------- migration

std::size_t ShardedEngine::drain_shard(std::size_t s) {
  RT_REQUIRE(!running(), "drain_shard: stop the engine first");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  Shard& source = *shards_[s];
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    router_.set_admissible(s, false);
    RT_REQUIRE(router_.admissible_count() > 0,
               "drain_shard: no shard left to migrate to");
  }
  // Flush the ingress ring so no command is stranded on the dead shard,
  // and publish any decoder events it produced before its streams leave.
  apply_commands(source);
  collect_events(source);
  mark_done(source);

  // Move every live stream to an admissible sibling, state intact.
  std::size_t migrated = 0;
  while (!source.local.empty()) {
    const auto [id, session] = *source.local.begin();
    source.local.erase(source.local.begin());
    StreamEntry& e = entry(StreamHandle{id});

    std::size_t target_index = 0;
    {
      const std::lock_guard<std::mutex> lock(admit_mutex_);
      // Re-route with the client's original key so session-hash
      // placement stays consistent with future streams of that client
      // (and with the lag signal, so least-lag keeps holding during
      // migration).
      const std::vector<std::size_t> loads = snapshot_loads();
      const std::vector<double> lags = snapshot_lags_us();
      target_index = router_.pick(loads, lags, e.session_key);
    }
    Shard& target = *shards_[target_index];
    target.engine->adopt_session(source.engine->release_session(session));

    target.local.emplace(id, session);
    source.live_streams.fetch_sub(1, std::memory_order_acq_rel);
    target.live_streams.fetch_add(1, std::memory_order_acq_rel);
    e.shard.store(target_index, std::memory_order_release);
    ++migrated;
  }
  for (const auto& shard : shards_) publish_backlog(*shard);
  return migrated;
}

void ShardedEngine::set_shard_admissible(std::size_t s, bool admissible) {
  const std::lock_guard<std::mutex> lock(admit_mutex_);
  router_.set_admissible(s, admissible);
}

// ----------------------------------------------------------- load & stats

std::size_t ShardedEngine::load(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  const Shard& shard = *shards_[s];
  return shard.queue->depth() +
         shard.live_streams.load(std::memory_order_acquire) +
         shard.backlog.load(std::memory_order_acquire);
}

std::size_t ShardedEngine::queue_depth(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->queue->depth();
}

double ShardedEngine::shard_lag_seconds(std::size_t s) const {
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->max_lag_us.load(std::memory_order_acquire) * 1e-6;
}

const runtime::RuntimeStats& ShardedEngine::shard_stats(
    std::size_t s) const {
  RT_REQUIRE(!running(), "shard_stats: stop the engine first");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->engine->stats();
}

std::size_t ShardedEngine::shard_session_count(std::size_t s) const {
  RT_REQUIRE(!running(), "shard_session_count: stop the engine first");
  RT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->engine->session_count();
}

GlobalStats ShardedEngine::stats() const {
  RT_REQUIRE(!running(), "stats: stop the engine first");
  StatsAggregator aggregator;
  for (const auto& shard : shards_) {
    aggregator.add_shard(shard->engine->stats());
  }
  aggregator.set_wall_us(window_us_);
  GlobalStats global = aggregator.global();
  for (const auto& shard : shards_) {
    global.weight_bytes += shard->model->total_memory_bytes();
  }
  return global;
}

void ShardedEngine::reset_stats() {
  RT_REQUIRE(!running(), "reset_stats: stop the engine first");
  for (const auto& shard : shards_) shard->engine->reset_stats();
  window_us_ = 0.0;
}

}  // namespace rtmobile::serve
