#include "serve/shard_router.hpp"

#include <string>

#include "util/check.hpp"

namespace rtmobile::serve {
namespace {

/// splitmix64: cheap, well-mixed stable hash so session keys spread
/// evenly across shards regardless of how clients number themselves.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin: return "round-robin";
    case RoutePolicy::kLeastLoaded: return "least-loaded";
    case RoutePolicy::kSessionHash: return "session-hash";
    case RoutePolicy::kLeastLag: return "least-lag";
  }
  return "?";
}

RoutePolicy parse_route_policy(const std::string& name) {
  if (name == "round-robin") return RoutePolicy::kRoundRobin;
  if (name == "least-loaded") return RoutePolicy::kLeastLoaded;
  if (name == "session-hash") return RoutePolicy::kSessionHash;
  if (name == "least-lag") return RoutePolicy::kLeastLag;
  throw std::invalid_argument("unknown route policy: " + name);
}

ShardRouter::ShardRouter(std::size_t shards, RoutePolicy policy)
    : policy_(policy), admissible_(shards, true) {
  RT_REQUIRE(shards >= 1, "router needs at least one shard");
}

void ShardRouter::set_admissible(std::size_t shard, bool admissible) {
  RT_REQUIRE(shard < admissible_.size(), "router: shard out of range");
  admissible_[shard] = admissible;
}

bool ShardRouter::admissible(std::size_t shard) const {
  RT_REQUIRE(shard < admissible_.size(), "router: shard out of range");
  return admissible_[shard];
}

std::size_t ShardRouter::admissible_count() const {
  std::size_t count = 0;
  for (const bool a : admissible_) count += a ? 1 : 0;
  return count;
}

std::size_t ShardRouter::pick(std::span<const std::size_t> loads,
                              std::uint64_t session_key) {
  return pick(loads, {}, session_key);
}

std::size_t ShardRouter::pick(std::span<const std::size_t> loads,
                              std::span<const double> lags_us,
                              std::uint64_t session_key) {
  const std::size_t shards = admissible_.size();
  RT_REQUIRE(loads.size() == shards, "router: one load per shard");
  RT_REQUIRE(lags_us.empty() || lags_us.size() == shards,
             "router: one lag per shard (or none)");
  RT_REQUIRE(admissible_count() > 0, "router: no admissible shard");

  switch (policy_) {
    case RoutePolicy::kRoundRobin: {
      for (std::size_t i = 0; i < shards; ++i) {
        const std::size_t shard = (cursor_ + i) % shards;
        if (admissible_[shard]) {
          cursor_ = (shard + 1) % shards;
          return shard;
        }
      }
      break;  // unreachable: admissible_count() > 0
    }
    case RoutePolicy::kLeastLoaded: {
      std::size_t best = shards;
      for (std::size_t shard = 0; shard < shards; ++shard) {
        if (!admissible_[shard]) continue;
        if (best == shards || loads[shard] < loads[best]) best = shard;
      }
      return best;
    }
    case RoutePolicy::kLeastLag: {
      // Without a lag signal (single-engine callers, old call sites)
      // this is least-loaded; with one, prefer the shard whose worst
      // stream is least behind, breaking ties toward the lower load.
      std::size_t best = shards;
      for (std::size_t shard = 0; shard < shards; ++shard) {
        if (!admissible_[shard]) continue;
        if (best == shards) {
          best = shard;
          continue;
        }
        const double lag = lags_us.empty() ? 0.0 : lags_us[shard];
        const double best_lag = lags_us.empty() ? 0.0 : lags_us[best];
        if (lag < best_lag ||
            (lag == best_lag && loads[shard] < loads[best])) {
          best = shard;
        }
      }
      return best;
    }
    case RoutePolicy::kSessionHash: {
      // Stable target first, then linear probe past drained shards so a
      // key's placement only moves when its home shard is inadmissible.
      const std::size_t home =
          static_cast<std::size_t>(mix(session_key) % shards);
      for (std::size_t i = 0; i < shards; ++i) {
        const std::size_t shard = (home + i) % shards;
        if (admissible_[shard]) return shard;
      }
      break;  // unreachable: admissible_count() > 0
    }
  }
  RT_ASSERT(false, "router: pick fell through");
  return 0;
}

}  // namespace rtmobile::serve
