// Lightweight JSON report writer.
//
// Benches emit machine-readable result records alongside the human tables
// so experiments can be diffed across runs. The writer supports the subset
// of JSON needed for flat records and arrays of records; it is not a
// general JSON library.
#pragma once

#include <string>
#include <variant>
#include <vector>

namespace rtmobile {

/// One flat JSON object built from key/value pairs, preserving insert order.
class JsonRecord {
 public:
  void set(std::string key, std::string value);
  void set(std::string key, const char* value);
  void set(std::string key, double value);
  void set(std::string key, std::int64_t value);
  void set(std::string key, bool value);

  /// Serializes as a single-line JSON object.
  [[nodiscard]] std::string to_json() const;

 private:
  using Value = std::variant<std::string, double, std::int64_t, bool>;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Appends records and writes them as a JSON array, or as JSON Lines.
class JsonReport {
 public:
  void add(JsonRecord record);

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Serializes as a pretty-ish JSON array (one record per line).
  [[nodiscard]] std::string to_json_array() const;

  /// Writes the JSON array to `path`. Throws on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<JsonRecord> records_;
};

/// Escapes a string for inclusion in JSON output.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace rtmobile
