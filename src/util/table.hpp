// ASCII table printer used by the benchmark harness to reproduce the
// paper's tables with aligned columns on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rtmobile {

/// Column-aligned ASCII table. Rows may be added as pre-formatted strings;
/// numeric helpers format with fixed precision.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row. Must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Number of data rows added so far (separators not counted).
  [[nodiscard]] std::size_t row_count() const { return data_rows_; }

  /// Renders the table ("| a | b |" style with a header rule).
  [[nodiscard]] std::string to_string() const;

  /// Renders to a stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
  std::size_t data_rows_ = 0;
};

}  // namespace rtmobile
