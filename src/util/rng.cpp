#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace rtmobile {
namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // All-zero state is the one invalid xoshiro state; SplitMix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RT_REQUIRE(bound > 0, "next_below bound must be positive");
  // Lemire-style rejection: draw until the value falls inside the largest
  // multiple of `bound`, which removes modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t draw = next_u64();
    if (draw >= threshold) return draw % bound;
  }
}

float Rng::next_float() {
  // 24 high-quality bits -> [0,1) with full float precision.
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24F;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  RT_REQUIRE(lo <= hi, "uniform range must satisfy lo <= hi");
  return lo + (hi - lo) * next_float();
}

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on two uniform draws; u1 is kept away from zero.
  float u1 = next_float();
  if (u1 < 1e-12F) u1 = 1e-12F;
  const float u2 = next_float();
  const float radius = std::sqrt(-2.0F * std::log(u1));
  const float angle = 2.0F * std::numbers::pi_v<float> * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

float Rng::normal(float mean, float stddev) {
  RT_REQUIRE(stddev >= 0.0F, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  RT_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli probability must be in [0,1]");
  return next_double() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  RT_REQUIRE(!weights.empty(), "categorical weights must be non-empty");
  double total = 0.0;
  for (const double w : weights) {
    RT_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  RT_REQUIRE(total > 0.0, "categorical weights must not all be zero");
  double draw = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end by rounding
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace rtmobile
