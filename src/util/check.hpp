// Error-checking macros and failure reporting.
//
// Following the C++ Core Guidelines (E.2, E.3) errors that a caller can
// plausibly recover from are reported via exceptions; programming errors
// (broken invariants inside the library) also throw so that tests can
// observe them, but carry a distinct type.
#pragma once

#include <stdexcept>
#include <string>

namespace rtmobile {

/// Thrown when a library invariant is violated (a bug in the library or in
/// how it is driven), as opposed to invalid user input.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

/// Builds the exception message "<file>:<line>: <what> (<expr>)".
[[nodiscard]] std::string format_check_message(const char* file, int line,
                                               const char* expr,
                                               const std::string& what);

[[noreturn]] void throw_invalid_argument(const char* file, int line,
                                         const char* expr,
                                         const std::string& what);
[[noreturn]] void throw_runtime_error(const char* file, int line,
                                      const char* expr,
                                      const std::string& what);
[[noreturn]] void throw_internal_error(const char* file, int line,
                                       const char* expr,
                                       const std::string& what);

}  // namespace detail
}  // namespace rtmobile

/// Validates a precondition on user-supplied input. Throws
/// std::invalid_argument with file/line context on failure.
#define RT_REQUIRE(expr, what)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::rtmobile::detail::throw_invalid_argument(__FILE__, __LINE__, #expr, \
                                                 (what));                   \
    }                                                                       \
  } while (false)

/// Validates a runtime condition (I/O, environment, numeric state). Throws
/// std::runtime_error with file/line context on failure.
#define RT_CHECK(expr, what)                                             \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::rtmobile::detail::throw_runtime_error(__FILE__, __LINE__, #expr, \
                                              (what));                   \
    }                                                                    \
  } while (false)

/// Asserts an internal invariant. Throws rtmobile::InternalError on failure.
#define RT_ASSERT(expr, what)                                             \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rtmobile::detail::throw_internal_error(__FILE__, __LINE__, #expr, \
                                               (what));                   \
    }                                                                     \
  } while (false)
