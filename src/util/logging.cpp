#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace rtmobile {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;
LogSink g_sink;  // empty = stderr default; guarded by g_emit_mutex

[[nodiscard]] const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load();
}

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_sink = std::move(sink);
}

namespace detail {

void log_line(LogLevel level, std::string_view tag, std::string_view message) {
  if (!log_enabled(level)) return;
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, tag, message);
    return;
  }
  std::string line;
  line.reserve(tag.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line.append(tag.data(), tag.size());
  line += ": ";
  line.append(message.data(), message.size());
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

}  // namespace detail
}  // namespace rtmobile
