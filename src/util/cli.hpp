// Tiny command-line flag parser for the examples.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.
// Unknown flags are an error so typos fail fast.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rtmobile {

/// Declarative flag set: register flags with defaults, then parse argv.
class CliParser {
 public:
  /// Registers a string flag (also the backing store for int/double flags).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Registers a boolean switch (present => true).
  void add_switch(const std::string& name, const std::string& help);

  /// Parses argv. Throws std::invalid_argument on unknown or malformed
  /// flags. Positional arguments are collected in order.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_switch(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Renders a usage/help string listing all registered flags.
  [[nodiscard]] std::string help(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool is_switch = false;
    bool seen = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rtmobile
