// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, synthetic corpus
// generation, dropout-style masking in tests) flows through Rng so that
// every experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded via SplitMix64, following the reference construction
// by Blackman & Vigna; it is fast, has 256 bits of state, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rtmobile {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5EEDBA5EULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform float in [0, 1).
  float next_float();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal draw (Box-Muller; caches the second value).
  float normal();

  /// Normal with the given mean and standard deviation.
  float normal(float mean, float stddev);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Derives an independent child generator (for parallel streams).
  [[nodiscard]] Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  float cached_normal_ = 0.0F;
  bool has_cached_normal_ = false;
};

}  // namespace rtmobile
