#include "util/check.hpp"

namespace rtmobile::detail {

std::string format_check_message(const char* file, int line, const char* expr,
                                 const std::string& what) {
  std::string msg;
  msg.reserve(what.size() + 64);
  msg += file;
  msg += ':';
  msg += std::to_string(line);
  msg += ": ";
  msg += what;
  msg += " (failed: ";
  msg += expr;
  msg += ')';
  return msg;
}

void throw_invalid_argument(const char* file, int line, const char* expr,
                            const std::string& what) {
  throw std::invalid_argument(format_check_message(file, line, expr, what));
}

void throw_runtime_error(const char* file, int line, const char* expr,
                         const std::string& what) {
  throw std::runtime_error(format_check_message(file, line, expr, what));
}

void throw_internal_error(const char* file, int line, const char* expr,
                          const std::string& what) {
  throw InternalError(format_check_message(file, line, expr, what));
}

}  // namespace rtmobile::detail
