#include "util/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace rtmobile {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonRecord::set(std::string key, std::string value) {
  fields_.emplace_back(std::move(key), Value(std::move(value)));
}
void JsonRecord::set(std::string key, const char* value) {
  fields_.emplace_back(std::move(key), Value(std::string(value)));
}
void JsonRecord::set(std::string key, double value) {
  fields_.emplace_back(std::move(key), Value(value));
}
void JsonRecord::set(std::string key, std::int64_t value) {
  fields_.emplace_back(std::move(key), Value(value));
}
void JsonRecord::set(std::string key, bool value) {
  fields_.emplace_back(std::move(key), Value(value));
}

std::string JsonRecord::to_json() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(key) << "\": ";
    if (std::holds_alternative<std::string>(value)) {
      out << '"' << json_escape(std::get<std::string>(value)) << '"';
    } else if (std::holds_alternative<double>(value)) {
      const double d = std::get<double>(value);
      if (std::isfinite(d)) {
        out << format_double(d, 6);
      } else {
        out << "null";  // JSON has no Inf/NaN literals
      }
    } else if (std::holds_alternative<std::int64_t>(value)) {
      out << std::get<std::int64_t>(value);
    } else {
      out << (std::get<bool>(value) ? "true" : "false");
    }
  }
  out << '}';
  return out.str();
}

void JsonReport::add(JsonRecord record) { records_.push_back(std::move(record)); }

std::string JsonReport::to_json_array() const {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out << "  " << records_[i].to_json();
    if (i + 1 != records_.size()) out << ',';
    out << '\n';
  }
  out << "]\n";
  return out.str();
}

void JsonReport::write_file(const std::string& path) const {
  std::ofstream file(path);
  RT_CHECK(file.good(), "failed to open report file: " + path);
  file << to_json_array();
  RT_CHECK(file.good(), "failed to write report file: " + path);
}

}  // namespace rtmobile
