#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace rtmobile {

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  RT_REQUIRE(!name.empty(), "flag name must be non-empty");
  RT_REQUIRE(flags_.find(name) == flags_.end(), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, default_value, help, false, false};
}

void CliParser::add_switch(const std::string& name, const std::string& help) {
  RT_REQUIRE(!name.empty(), "switch name must be non-empty");
  RT_REQUIRE(flags_.find(name) == flags_.end(), "duplicate flag: " + name);
  flags_[name] = Flag{"false", "false", help, true, false};
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const auto it = flags_.find(name);
    RT_REQUIRE(it != flags_.end(), "unknown flag: --" + name);
    Flag& flag = it->second;
    flag.seen = true;
    if (flag.is_switch) {
      RT_REQUIRE(!inline_value || *inline_value == "true" ||
                     *inline_value == "false",
                 "switch --" + name + " takes no value or true/false");
      flag.value = inline_value.value_or("true");
    } else if (inline_value) {
      flag.value = *inline_value;
    } else {
      RT_REQUIRE(i + 1 < argc, "flag --" + name + " expects a value");
      flag.value = argv[++i];
    }
  }
}

std::string CliParser::get_string(const std::string& name) const {
  const auto it = flags_.find(name);
  RT_REQUIRE(it != flags_.end(), "unregistered flag: " + name);
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string text = get_string(name);
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  RT_REQUIRE(end != nullptr && *end == '\0' && !text.empty(),
             "flag --" + name + " expects an integer, got: " + text);
  return static_cast<std::int64_t>(value);
}

double CliParser::get_double(const std::string& name) const {
  const std::string text = get_string(name);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  RT_REQUIRE(end != nullptr && *end == '\0' && !text.empty(),
             "flag --" + name + " expects a number, got: " + text);
  return value;
}

bool CliParser::get_switch(const std::string& name) const {
  return get_string(name) == "true";
}

std::string CliParser::help(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.is_switch) out << " <value, default: " << flag.default_value << '>';
    out << "\n      " << flag.help << '\n';
  }
  return out.str();
}

}  // namespace rtmobile
