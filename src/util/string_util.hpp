// Small string helpers shared across tools and benches.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rtmobile {

/// Splits `text` on `delimiter`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Joins `parts` with `separator`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

/// True when `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Formats a double with `precision` digits after the decimal point.
[[nodiscard]] std::string format_double(double value, int precision);

/// Formats a value in engineering style: 1234567 -> "1.23M", 0.0012 -> "1.20m".
[[nodiscard]] std::string format_si(double value, int precision = 2);

/// Formats a fraction as a percentage string, e.g. 0.1234 -> "12.34%".
[[nodiscard]] std::string format_percent(double fraction, int precision = 2);

}  // namespace rtmobile
