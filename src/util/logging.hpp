// Minimal leveled logger for library diagnostics.
//
// The logger writes to stderr by default so that bench/table output on
// stdout stays machine-parsable. Verbosity is a process-wide setting;
// library code logs at Debug/Info, tools at Info/Warn.
#pragma once

#include <functional>
#include <sstream>
#include <string_view>

namespace rtmobile {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that is actually emitted.
void set_log_level(LogLevel level);

/// Returns the current process-wide log level.
[[nodiscard]] LogLevel log_level();

/// Returns true when messages at `level` would be emitted.
[[nodiscard]] bool log_enabled(LogLevel level);

/// Receives every emitted log record (already level-filtered). Called
/// under the emit lock, so implementations must not log.
using LogSink = std::function<void(LogLevel level, std::string_view tag,
                                   std::string_view message)>;

/// Replaces the stderr writer with `sink` — how a serving process ships
/// its logs somewhere structured (a file, a collector, a test capture).
/// An empty sink restores the stderr default.
void set_log_sink(LogSink sink);

namespace detail {

/// Emits one formatted log line ("[level] tag: message") to stderr.
void log_line(LogLevel level, std::string_view tag, std::string_view message);

/// Stream-style accumulator used by the RT_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, tag_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view tag_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace rtmobile

/// Usage: RT_LOG(Info, "tuner") << "best block size " << bs;
#define RT_LOG(level, tag)                                             \
  if (!::rtmobile::log_enabled(::rtmobile::LogLevel::k##level)) {      \
  } else                                                               \
    ::rtmobile::detail::LogMessage(::rtmobile::LogLevel::k##level, (tag))
