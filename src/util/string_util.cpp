#include "util/string_util.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace rtmobile {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(separator);
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int precision) {
  RT_REQUIRE(precision >= 0 && precision <= 17, "precision out of range");
  std::array<char, 64> buffer{};
  const int written = std::snprintf(buffer.data(), buffer.size(), "%.*f",
                                    precision, value);
  RT_ASSERT(written > 0 && static_cast<std::size_t>(written) < buffer.size(),
            "format_double buffer overflow");
  return std::string(buffer.data(), static_cast<std::size_t>(written));
}

std::string format_si(double value, int precision) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 7> kScales = {{{1e9, "G"},
                                                    {1e6, "M"},
                                                    {1e3, "k"},
                                                    {1.0, ""},
                                                    {1e-3, "m"},
                                                    {1e-6, "u"},
                                                    {1e-9, "n"}}};
  const double magnitude = std::fabs(value);
  if (magnitude == 0.0) return format_double(0.0, precision);
  for (const auto& scale : kScales) {
    if (magnitude >= scale.factor) {
      return format_double(value / scale.factor, precision) + scale.suffix;
    }
  }
  return format_double(value / kScales.back().factor, precision) +
         kScales.back().suffix;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

}  // namespace rtmobile
