#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace rtmobile {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RT_REQUIRE(!headers_.empty(), "table must have at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  RT_REQUIRE(cells.size() == headers_.size(),
             "row cell count must match header count");
  rows_.push_back(std::move(cells));
  ++data_rows_;
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_rule = [&] {
    out << '+';
    for (const std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  emit_rule();
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace rtmobile
