// Blocking wire-protocol client: the reference implementation the
// loopback tests, the example load generator, and bench_net share.
//
// One WireClient = one TCP connection = one stream. Sends are blocking
// writes (the OS buffers or the caller waits — exactly the client-side
// backpressure the server's paused-read design produces); receives
// deframe blocking reads into typed replies.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire_protocol.hpp"
#include "speech/streaming_decoder.hpp"

namespace rtmobile::net {

/// One deframed server reply, decoded.
struct ServerMessage {
  FrameType type = FrameType::kError;
  std::uint64_t handle_id = 0;  // kOpened
  /// kPartial/kFinal/kDegraded/kRejected/kAborted
  speech::StreamEvent event;
  WireError error = WireError::kProtocol;  // kError
  std::string error_message;               // kError
};

/// Bounded-retry policy for open_with_retry. The server answers
/// admission-path congestion with a typed kBackpressureOverflow error
/// and closes the connection, so each retry is a full reconnect;
/// exponential backoff with jitter keeps a retrying fleet from
/// re-stampeding the admission path in lockstep.
struct OpenRetryPolicy {
  int max_attempts = 5;
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{500};
  /// Seeds the jitter stream — vary per client so backoffs decorrelate;
  /// fix it in tests for reproducible schedules.
  std::uint64_t jitter_seed = 1;
};

class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;

  /// Connects to `address:port`; throws std::runtime_error on failure.
  void connect(const std::string& address, std::uint16_t port);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  /// Half-closes the outbound direction / closes the socket entirely.
  void disconnect();

  // ---- sends (blocking; throw std::runtime_error on a dead socket) ----
  void send_open(const OpenRequest& request);
  void send_audio(std::span<const float> samples);
  void send_finish();
  void send_close();

  // ---- receives ----
  /// Blocks for the next server frame. nullopt = orderly server close.
  /// Throws std::runtime_error on socket errors or garbled frames.
  [[nodiscard]] std::optional<ServerMessage> read_message();
  /// Convenience open handshake: send_open + read until kOpened or
  /// kError. Returns nullopt (and fills `error`) on a typed refusal.
  [[nodiscard]] std::optional<std::uint64_t> open(const OpenRequest& request,
                                                 WireError* error = nullptr);
  /// open() that rides out transient failures: kBackpressureOverflow
  /// refusals, connect failures, and mid-handshake disconnects trigger a
  /// reconnect after exponential backoff with jitter, up to
  /// `policy.max_attempts`. Non-transient refusals (over-budget,
  /// protocol) return immediately. Uses the address from the last
  /// connect(); may be called disconnected.
  [[nodiscard]] std::optional<std::uint64_t> open_with_retry(
      const OpenRequest& request, const OpenRetryPolicy& policy,
      WireError* error = nullptr);
  /// Reads events until the final one (is_final) arrives, appending each
  /// to `events`. Returns the wire error if the server failed the stream
  /// instead, nullopt on success.
  [[nodiscard]] std::optional<WireError> collect_until_final(
      std::vector<speech::StreamEvent>& events);

 private:
  void send_bytes(const std::vector<std::uint8_t>& bytes);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> send_buf_;
  // Last connect() target, kept so open_with_retry can reconnect.
  std::string host_;
  std::uint16_t port_ = 0;
};

}  // namespace rtmobile::net
