// Blocking wire-protocol client: the reference implementation the
// loopback tests, the example load generator, and bench_net share.
//
// One WireClient = one TCP connection = one stream. Sends are blocking
// writes (the OS buffers or the caller waits — exactly the client-side
// backpressure the server's paused-read design produces); receives
// deframe blocking reads into typed replies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire_protocol.hpp"
#include "speech/streaming_decoder.hpp"

namespace rtmobile::net {

/// One deframed server reply, decoded.
struct ServerMessage {
  FrameType type = FrameType::kError;
  std::uint64_t handle_id = 0;        // kOpened
  speech::StreamEvent event;          // kPartial/kFinal/kDegraded/kRejected
  WireError error = WireError::kProtocol;  // kError
  std::string error_message;               // kError
};

class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;

  /// Connects to `address:port`; throws std::runtime_error on failure.
  void connect(const std::string& address, std::uint16_t port);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  /// Half-closes the outbound direction / closes the socket entirely.
  void disconnect();

  // ---- sends (blocking; throw std::runtime_error on a dead socket) ----
  void send_open(const OpenRequest& request);
  void send_audio(std::span<const float> samples);
  void send_finish();
  void send_close();

  // ---- receives ----
  /// Blocks for the next server frame. nullopt = orderly server close.
  /// Throws std::runtime_error on socket errors or garbled frames.
  [[nodiscard]] std::optional<ServerMessage> read_message();
  /// Convenience open handshake: send_open + read until kOpened or
  /// kError. Returns nullopt (and fills `error`) on a typed refusal.
  [[nodiscard]] std::optional<std::uint64_t> open(const OpenRequest& request,
                                                 WireError* error = nullptr);
  /// Reads events until the final one (is_final) arrives, appending each
  /// to `events`. Returns the wire error if the server failed the stream
  /// instead, nullopt on success.
  [[nodiscard]] std::optional<WireError> collect_until_final(
      std::vector<speech::StreamEvent>& events);

 private:
  void send_bytes(const std::vector<std::uint8_t>& bytes);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::vector<std::uint8_t> send_buf_;
};

}  // namespace rtmobile::net
