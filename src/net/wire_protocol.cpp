#include "net/wire_protocol.hpp"

#include <algorithm>

namespace rtmobile::net {
namespace {

// Little-endian scalar writers/readers. memcpy keeps them defined on any
// alignment; the byte swizzle makes the wire format host-independent.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFU));
  out.push_back(static_cast<std::uint8_t>(v >> 8U));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Sequential little-endian reader over a payload span; any under-run
/// sets ok=false and every later read keeps it false, so parsers check
/// once at the end.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  [[nodiscard]] bool take(std::size_t n, const std::uint8_t** p) {
    if (!ok || data.size() - pos < n) {
      ok = false;
      return false;
    }
    *p = data.data() + pos;
    pos += n;
    return true;
  }
  [[nodiscard]] std::uint8_t u8() {
    const std::uint8_t* p = nullptr;
    return take(1, &p) ? *p : 0;
  }
  [[nodiscard]] std::uint16_t u16() {
    const std::uint8_t* p = nullptr;
    if (!take(2, &p)) return 0;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8U));
  }
  [[nodiscard]] std::uint32_t u32() {
    const std::uint8_t* p = nullptr;
    if (!take(4, &p)) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8U) | p[i];
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::uint8_t* p = nullptr;
    if (!take(8, &p)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8U) | p[i];
    return v;
  }
  [[nodiscard]] float f32() {
    const std::uint32_t bits = u32();
    float v = 0.0F;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// Whole payload consumed, no trailing garbage.
  [[nodiscard]] bool done() const { return ok && pos == data.size(); }
};

/// Reserves the 4-byte length slot and writes the type byte; returns the
/// slot's offset for patch_header.
std::size_t begin_frame(std::vector<std::uint8_t>& out, FrameType type) {
  const std::size_t header = out.size();
  put_u32(out, 0);  // patched once the payload size is known
  out.push_back(static_cast<std::uint8_t>(type));
  return header;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t header) {
  const std::uint32_t frame_len =
      static_cast<std::uint32_t>(out.size() - header - 4);
  for (int i = 0; i < 4; ++i) {
    out[header + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(frame_len >> (8 * i));
  }
}

void put_u16_array(std::vector<std::uint8_t>& out,
                   std::span<const std::uint16_t> values) {
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  for (const std::uint16_t v : values) put_u16(out, v);
}

[[nodiscard]] bool read_u16_array(Reader& r,
                                  std::vector<std::uint16_t>& out) {
  const std::uint32_t count = r.u32();
  if (!r.ok || r.data.size() - r.pos < std::size_t{count} * 2) {
    r.ok = false;
    return false;
  }
  out.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) out[i] = r.u16();
  return r.ok;
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kOpen: return "open";
    case FrameType::kAudio: return "audio";
    case FrameType::kFinish: return "finish";
    case FrameType::kClose: return "close";
    case FrameType::kOpened: return "opened";
    case FrameType::kPartial: return "partial";
    case FrameType::kFinal: return "final";
    case FrameType::kDegraded: return "degraded";
    case FrameType::kRejected: return "rejected";
    case FrameType::kError: return "error";
    case FrameType::kAborted: return "aborted";
  }
  return "unknown";
}

const char* to_string(WireError error) {
  switch (error) {
    case WireError::kProtocol: return "protocol";
    case WireError::kRejectedOverBudget: return "rejected-over-budget";
    case WireError::kBackpressureOverflow: return "backpressure-overflow";
    case WireError::kServerError: return "server-error";
    case WireError::kSlowConsumer: return "slow-consumer";
    case WireError::kFrameTooLarge: return "frame-too-large";
    case WireError::kTimeout: return "timeout";
  }
  return "unknown";
}

serve::StreamConfig OpenRequest::to_stream_config() const {
  serve::StreamConfig config;
  config.decode.mode = static_cast<speech::DecodeMode>(decode_mode);
  config.decode.greedy.smooth_window = smooth_window;
  config.decode.greedy.min_run = min_run;
  config.decode.switch_penalty = switch_penalty;
  config.deadline.budget_seconds = deadline_budget_seconds;
  config.session_key = session_key;
  return config;
}

OpenRequest OpenRequest::from_stream_config(
    const serve::StreamConfig& config) {
  OpenRequest request;
  request.decode_mode = static_cast<std::uint8_t>(config.decode.mode);
  request.smooth_window =
      static_cast<std::uint32_t>(config.decode.greedy.smooth_window);
  request.min_run = static_cast<std::uint32_t>(config.decode.greedy.min_run);
  request.switch_penalty = config.decode.switch_penalty;
  request.deadline_budget_seconds = config.deadline.budget_seconds;
  request.session_key = config.session_key;
  return request;
}

void append_open(std::vector<std::uint8_t>& out, const OpenRequest& request) {
  const std::size_t header = begin_frame(out, FrameType::kOpen);
  out.push_back(request.decode_mode);
  put_u32(out, request.smooth_window);
  put_u32(out, request.min_run);
  put_f64(out, request.switch_penalty);
  put_f64(out, request.deadline_budget_seconds);
  put_u64(out, request.session_key);
  end_frame(out, header);
}

void append_audio(std::vector<std::uint8_t>& out,
                  std::span<const float> samples) {
  const std::size_t header = begin_frame(out, FrameType::kAudio);
  out.reserve(out.size() + samples.size() * 4);
  for (const float s : samples) put_f32(out, s);
  end_frame(out, header);
}

void append_finish(std::vector<std::uint8_t>& out) {
  end_frame(out, begin_frame(out, FrameType::kFinish));
}

void append_close(std::vector<std::uint8_t>& out) {
  end_frame(out, begin_frame(out, FrameType::kClose));
}

void append_opened(std::vector<std::uint8_t>& out, std::uint64_t handle_id) {
  const std::size_t header = begin_frame(out, FrameType::kOpened);
  put_u64(out, handle_id);
  end_frame(out, header);
}

void append_event(std::vector<std::uint8_t>& out,
                  const speech::StreamEvent& event) {
  FrameType type = FrameType::kPartial;
  switch (event.kind) {
    case speech::StreamEventKind::kHypothesis:
      type = event.is_final ? FrameType::kFinal : FrameType::kPartial;
      break;
    case speech::StreamEventKind::kDegraded:
      type = FrameType::kDegraded;
      break;
    case speech::StreamEventKind::kRejected:
      type = FrameType::kRejected;
      break;
    case speech::StreamEventKind::kAborted:
      type = FrameType::kAborted;
      break;
  }
  const std::size_t header = begin_frame(out, type);
  // The payload re-states kind/is_final so decode_event reconstructs the
  // event from the payload alone — the frame type is a routing hint.
  out.push_back(static_cast<std::uint8_t>(event.kind));
  out.push_back(event.is_final ? 1 : 0);
  put_u64(out, event.frames);
  put_u64(out, event.dropped_frames);
  put_u16_array(out, event.stable);
  put_u16_array(out, event.partial);
  end_frame(out, header);
}

void append_error(std::vector<std::uint8_t>& out, WireError error,
                  std::string_view message) {
  const std::size_t header = begin_frame(out, FrameType::kError);
  put_u16(out, static_cast<std::uint16_t>(error));
  out.insert(out.end(), message.begin(), message.end());
  end_frame(out, header);
}

bool decode_open(std::span<const std::uint8_t> payload, OpenRequest& out) {
  Reader r{payload};
  out.decode_mode = r.u8();
  out.smooth_window = r.u32();
  out.min_run = r.u32();
  out.switch_penalty = r.f64();
  out.deadline_budget_seconds = r.f64();
  out.session_key = r.u64();
  if (!r.done()) return false;
  // The mode byte must name a real DecodeMode — a garbled open must not
  // reach the decoder as an out-of-range enum.
  return out.decode_mode <=
         static_cast<std::uint8_t>(speech::DecodeMode::kViterbi);
}

bool decode_audio(std::span<const std::uint8_t> payload,
                  std::vector<float>& out) {
  if (payload.size() % 4 != 0) return false;
  Reader r{payload};
  const std::size_t count = payload.size() / 4;
  out.reserve(out.size() + count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(r.f32());
  return r.done();
}

bool decode_opened(std::span<const std::uint8_t> payload,
                   std::uint64_t& handle_id) {
  Reader r{payload};
  handle_id = r.u64();
  return r.done();
}

bool decode_event(std::span<const std::uint8_t> payload,
                  speech::StreamEvent& out) {
  Reader r{payload};
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(speech::StreamEventKind::kAborted)) {
    return false;
  }
  out.kind = static_cast<speech::StreamEventKind>(kind);
  const std::uint8_t is_final = r.u8();
  if (is_final > 1) return false;
  out.is_final = is_final == 1;
  out.frames = static_cast<std::size_t>(r.u64());
  out.dropped_frames = static_cast<std::size_t>(r.u64());
  if (!read_u16_array(r, out.stable)) return false;
  if (!read_u16_array(r, out.partial)) return false;
  return r.done();
}

bool decode_error(std::span<const std::uint8_t> payload, WireError& error,
                  std::string& message) {
  Reader r{payload};
  error = static_cast<WireError>(r.u16());
  if (!r.ok) return false;
  message.assign(payload.begin() + static_cast<std::ptrdiff_t>(r.pos),
                 payload.end());
  return true;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (failed_) return;
  // Drop the consumed prefix before growing, so a long-lived connection
  // doesn't accrete every byte it ever received.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

bool FrameDecoder::next(Frame& frame) {
  if (failed_) return false;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const std::uint8_t* p = buffer_.data() + consumed_;
  std::uint32_t frame_len = 0;
  for (int i = 3; i >= 0; --i) frame_len = (frame_len << 8U) | p[i];
  if (frame_len == 0 || frame_len > max_frame_bytes_) {
    // Lost sync: there is no way to find the next frame boundary. The
    // typed reason lets the server answer an absurd declared length
    // (length-prefix attack) distinctly from garbled framing.
    failed_ = true;
    failure_ = frame_len > max_frame_bytes_ ? WireError::kFrameTooLarge
                                            : WireError::kProtocol;
    return false;
  }
  if (available < 4 + std::size_t{frame_len}) return false;
  frame.type = static_cast<FrameType>(p[4]);
  frame.payload.assign(p + 5, p + 4 + frame_len);
  consumed_ += 4 + std::size_t{frame_len};
  return true;
}

}  // namespace rtmobile::net
