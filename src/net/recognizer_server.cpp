#include "net/recognizer_server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <csignal>
#include <cstring>
#include <mutex>

#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace rtmobile::net {

namespace {
constexpr int kMaxEpollEvents = 64;
/// A scrape request larger than this is garbage, not HTTP.
constexpr std::size_t kMaxHttpRequest = 16 * 1024;

/// Every write path already passes MSG_NOSIGNAL, but belt-and-braces:
/// a stray write to a peer-closed socket must never kill the process.
/// Process-wide, done once, never restored — SIGPIPE's default action
/// has no place in a server.
std::once_flag sigpipe_once;
void ignore_sigpipe() {
  std::call_once(sigpipe_once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Binds a non-blocking listener and reports the resolved port.
int make_listener(const std::string& address, std::uint16_t port,
                  int backlog, std::uint16_t& bound_port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  RT_CHECK(fd >= 0, "socket creation failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  RT_CHECK(::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) == 1,
           "invalid bind address (dotted-quad IPv4 expected)");
  RT_CHECK(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0,
           "bind failed (address in use?)");
  RT_CHECK(::listen(fd, backlog) == 0, "listen failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  RT_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
               0,
           "getsockname failed");
  bound_port = ntohs(bound.sin_port);
  return fd;
}
}  // namespace

RecognizerServer::RecognizerServer(serve::Recognizer& recognizer,
                                   ServerConfig config)
    : recognizer_(recognizer), config_(std::move(config)) {
  ignore_sigpipe();
  listen_fd_ = make_listener(config_.bind_address, config_.port,
                             config_.backlog, port_);
  if (config_.telemetry != nullptr) {
    metrics_listen_fd_ = make_listener(
        config_.bind_address, config_.metrics_port, config_.backlog,
        metrics_port_);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  RT_CHECK(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  RT_CHECK(wake_fd_ >= 0, "eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: accept backlog must persist
  ev.data.fd = listen_fd_;
  RT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
           "epoll_ctl(listen) failed");
  if (metrics_listen_fd_ >= 0) {
    ev.events = EPOLLIN;
    ev.data.fd = metrics_listen_fd_;
    RT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, metrics_listen_fd_,
                         &ev) == 0,
             "epoll_ctl(metrics listen) failed");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  RT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
           "epoll_ctl(eventfd) failed");
}

RecognizerServer::~RecognizerServer() {
  stop();
  connections_.clear();  // closes sockets, releases live streams
  for (const auto& [fd, client] : http_clients_) ::close(fd);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (metrics_listen_fd_ >= 0) ::close(metrics_listen_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void RecognizerServer::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void RecognizerServer::start() {
  if (running_.exchange(true)) return;
  loop_thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      run_once(std::chrono::milliseconds(50));
    }
  });
  if (!config_.drive_recognizer) {
    // The pumps publish events on their own threads; this thread turns
    // "events pending" into an epoll wakeup so the loop sleeps properly.
    notifier_thread_ = std::thread([this] {
      while (running_.load(std::memory_order_relaxed)) {
        if (recognizer_.wait_for_events(std::chrono::microseconds(100000))) {
          wake();
        }
      }
    });
  }
}

void RecognizerServer::stop() {
  if (!running_.exchange(false)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    if (notifier_thread_.joinable()) notifier_thread_.join();
    return;
  }
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (notifier_thread_.joinable()) notifier_thread_.join();
}

void RecognizerServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; backlog retried next loop
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Entry entry;
    entry.conn = std::make_unique<Connection>(
        fd, recognizer_, config_.max_write_buffer, config_.telemetry,
        config_.fault);
    epoll_event ev{};
    // Edge-triggered for clients: each readiness transition is serviced
    // exactly once by draining to EAGAIN; a connection paused for
    // backpressure simply declines to drain, and the kernel buffer
    // filling is what backpressures the peer.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // Entry destruction closes fd and any stream
    }
    connections_.emplace(fd, std::move(entry));
    accepted_total_.fetch_add(1, std::memory_order_relaxed);
    if (config_.telemetry != nullptr) config_.telemetry->net().accepted->add(1);
    publish_connection_count();
  }
}

void RecognizerServer::publish_connection_count() {
  live_connections_.store(connections_.size(), std::memory_order_relaxed);
  if (config_.telemetry != nullptr) {
    config_.telemetry->net().connections->set(
        static_cast<double>(connections_.size()));
  }
}

void RecognizerServer::service(int fd, std::uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second.conn;
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
    conn.on_readable();
  }
  if ((events & EPOLLOUT) != 0) conn.on_writable();
}

std::size_t RecognizerServer::run_once(std::chrono::milliseconds timeout) {
  // Parked operations and drive-mode serving both want another turn
  // promptly; otherwise sleep until socket or notifier activity.
  bool busy = false;
  for (const auto& [fd, entry] : connections_) {
    if (entry.conn->paused() || entry.conn->wants_write()) {
      busy = true;
      break;
    }
    if (config_.drive_recognizer && entry.conn->has_stream()) {
      busy = true;
      break;
    }
  }
  const int wait_ms =
      busy ? 0 : deadline_capped_wait_ms(static_cast<int>(timeout.count()));

  std::array<epoll_event, kMaxEpollEvents> events;
  int n = ::epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), wait_ms);
  if (n < 0) n = 0;  // EINTR: treat as timeout

  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
    if (fd == listen_fd_) {
      accept_ready();
    } else if (fd == metrics_listen_fd_) {
      accept_metrics_ready();
    } else if (fd == wake_fd_) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(wake_fd_, &drained, sizeof(drained));
    } else if (http_clients_.count(fd) != 0) {
      service_http(fd, mask);
    } else {
      service(fd, mask);
    }
  }

  pump();
  return static_cast<std::size_t>(n);
}

void RecognizerServer::pump() {
  if (config_.drive_recognizer) recognizer_.drain();

  // Map freshly opened streams so the event fan-out below can route.
  for (auto& [fd, entry] : connections_) {
    if (!entry.mapped && entry.conn->has_stream()) {
      entry.mapped_handle = entry.conn->handle_id();
      by_handle_.emplace(entry.mapped_handle, entry.conn.get());
      entry.mapped = true;
    }
  }

  event_scratch_.clear();
  recognizer_.poll_events(event_scratch_);
  for (serve::RecognizerEvent& tagged : event_scratch_) {
    const auto it = by_handle_.find(tagged.stream.id);
    // Events of a stream whose connection died are dropped on the
    // floor — there is no client left to care.
    if (it != by_handle_.end()) it->second->deliver_event(tagged.event);
  }

  for (auto& [fd, entry] : connections_) {
    entry.conn->pump_pending();
    entry.conn->try_flush();
  }
  expire_connections();
  reap();
}

void RecognizerServer::expire_connections() {
  const std::uint64_t idle_us = static_cast<std::uint64_t>(
      config_.idle_timeout.count() * 1000);
  const std::uint64_t stall_us = static_cast<std::uint64_t>(
      config_.write_stall_timeout.count() * 1000);
  if (idle_us == 0 && stall_us == 0) return;
  const std::uint64_t now = steady_now_us();
  for (auto& [fd, entry] : connections_) {
    Connection& conn = *entry.conn;
    // Write stall first: it is the harder failure (the error frame an
    // idle expiry would queue could never be delivered anyway).
    if (stall_us != 0 && conn.wants_write() &&
        now - conn.last_write_progress_us() >= stall_us) {
      conn.expire_write_stalled();
      continue;
    }
    if (idle_us != 0 && now - conn.last_activity_us() >= idle_us) {
      conn.expire_idle();
    }
  }
}

int RecognizerServer::deadline_capped_wait_ms(int budget) const {
  const std::uint64_t idle_us = static_cast<std::uint64_t>(
      config_.idle_timeout.count() * 1000);
  const std::uint64_t stall_us = static_cast<std::uint64_t>(
      config_.write_stall_timeout.count() * 1000);
  if ((idle_us == 0 && stall_us == 0) || connections_.empty()) {
    return budget;
  }
  const std::uint64_t now = steady_now_us();
  std::uint64_t earliest_us = static_cast<std::uint64_t>(budget) * 1000;
  for (const auto& [fd, entry] : connections_) {
    const Connection& conn = *entry.conn;
    if (idle_us != 0) {
      const std::uint64_t elapsed = now - conn.last_activity_us();
      const std::uint64_t left = elapsed >= idle_us ? 0 : idle_us - elapsed;
      earliest_us = std::min(earliest_us, left);
    }
    if (stall_us != 0 && conn.wants_write()) {
      const std::uint64_t elapsed = now - conn.last_write_progress_us();
      const std::uint64_t left =
          elapsed >= stall_us ? 0 : stall_us - elapsed;
      earliest_us = std::min(earliest_us, left);
    }
  }
  // Round up: sleeping 1ms short beats waking 1ms past the deadline
  // forever at sub-ms granularity.
  return static_cast<int>((earliest_us + 999) / 1000);
}

void RecognizerServer::reap() {
  reap_scratch_.clear();
  for (auto& [fd, entry] : connections_) {
    if (entry.conn->should_drop()) reap_scratch_.push_back(fd);
  }
  for (const int fd : reap_scratch_) {
    const auto it = connections_.find(fd);
    if (it->second.mapped) by_handle_.erase(it->second.mapped_handle);
    // Connection's destructor closes the socket, which also removes it
    // from the epoll interest list.
    connections_.erase(it);
  }
  if (!reap_scratch_.empty()) {
    if (config_.telemetry != nullptr) {
      config_.telemetry->net().closed->add(reap_scratch_.size());
    }
    publish_connection_count();
  }
}

// ------------------------------------------------------ metrics endpoint

void RecognizerServer::accept_metrics_ready() {
  for (;;) {
    const int fd = ::accept4(metrics_listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    // Edge-triggered like the data plane; adding an already-readable fd
    // still delivers its first edge, so a request that raced the accept
    // is not lost.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    http_clients_.emplace(fd, HttpClient{});
  }
}

void RecognizerServer::service_http(int fd, std::uint32_t events) {
  const auto it = http_clients_.find(fd);
  if (it == http_clients_.end()) return;
  HttpClient& client = it->second;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) client.dead = true;
  if (!client.dead && (events & (EPOLLIN | EPOLLRDHUP)) != 0) {
    bool saw_eof = false;
    std::array<char, 4096> chunk;
    for (;;) {
      const ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
      if (n > 0) {
        client.in.append(chunk.data(), static_cast<std::size_t>(n));
        if (client.in.size() > kMaxHttpRequest) {
          client.dead = true;
          break;
        }
        continue;
      }
      if (n == 0) {  // peer finished sending (half-close) or closed
        saw_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      client.dead = true;
      break;
    }
    if (!client.dead && !client.responded &&
        (client.in.find("\r\n\r\n") != std::string::npos ||
         client.in.find("\n\n") != std::string::npos)) {
      respond_http(client);
    }
    // EOF with no (complete) request: nothing will ever arrive to
    // answer — drop instead of holding the fd forever.
    if (saw_eof && !client.responded) client.dead = true;
  }
  flush_http(fd, client);
  if (client.dead ||
      (client.responded && client.out_pos >= client.out.size())) {
    ::close(fd);  // also deregisters from epoll
    http_clients_.erase(fd);
  }
}

void RecognizerServer::respond_http(HttpClient& client) {
  // Request line: METHOD SP PATH SP VERSION. Everything else (headers)
  // is ignored — a scrape has no body and needs no negotiation.
  const std::string line =
      client.in.substr(0, client.in.find_first_of("\r\n"));
  const std::size_t method_end = line.find(' ');
  const std::size_t path_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  const std::string method =
      method_end == std::string::npos ? "" : line.substr(0, method_end);
  const std::string path =
      path_end == std::string::npos
          ? ""
          : line.substr(method_end + 1, path_end - method_end - 1);

  std::string status = "200 OK";
  std::string type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "only GET is served here\n";
  } else if (path == "/metrics") {
    type = "text/plain; version=0.0.4; charset=utf-8";
    body = config_.telemetry->render_prometheus();
  } else if (path == "/metrics.json") {
    type = "application/json";
    body = config_.telemetry->render_json();
  } else {
    status = "404 Not Found";
    body = "try /metrics or /metrics.json\n";
  }
  if (status[0] == '2') config_.telemetry->net().scrapes->add(1);

  client.out = "HTTP/1.0 " + status + "\r\nContent-Type: " + type +
               "\r\nContent-Length: " + std::to_string(body.size()) +
               "\r\nConnection: close\r\n\r\n" + body;
  client.responded = true;
}

void RecognizerServer::flush_http(int fd, HttpClient& client) {
  if (client.dead) return;
  while (client.out_pos < client.out.size()) {
    const ssize_t n =
        ::send(fd, client.out.data() + client.out_pos,
               client.out.size() - client.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      client.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // EPOLLOUT later
    if (errno == EINTR) continue;
    client.dead = true;
    return;
  }
}

}  // namespace rtmobile::net
