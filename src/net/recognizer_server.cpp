#include "net/recognizer_server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstring>

#include "util/check.hpp"

namespace rtmobile::net {

namespace {
constexpr int kMaxEpollEvents = 64;
}  // namespace

RecognizerServer::RecognizerServer(serve::Recognizer& recognizer,
                                   ServerConfig config)
    : recognizer_(recognizer), config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  RT_CHECK(listen_fd_ >= 0, "socket creation failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  RT_CHECK(::inet_pton(AF_INET, config_.bind_address.c_str(),
                       &addr.sin_addr) == 1,
           "invalid bind address (dotted-quad IPv4 expected)");
  RT_CHECK(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0,
           "bind failed (address in use?)");
  RT_CHECK(::listen(listen_fd_, config_.backlog) == 0, "listen failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  RT_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                         &len) == 0,
           "getsockname failed");
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  RT_CHECK(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  RT_CHECK(wake_fd_ >= 0, "eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: accept backlog must persist
  ev.data.fd = listen_fd_;
  RT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
           "epoll_ctl(listen) failed");
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  RT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
           "epoll_ctl(eventfd) failed");
}

RecognizerServer::~RecognizerServer() {
  stop();
  connections_.clear();  // closes sockets, releases live streams
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void RecognizerServer::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void RecognizerServer::start() {
  if (running_.exchange(true)) return;
  loop_thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      run_once(std::chrono::milliseconds(50));
    }
  });
  if (!config_.drive_recognizer) {
    // The pumps publish events on their own threads; this thread turns
    // "events pending" into an epoll wakeup so the loop sleeps properly.
    notifier_thread_ = std::thread([this] {
      while (running_.load(std::memory_order_relaxed)) {
        if (recognizer_.wait_for_events(std::chrono::microseconds(100000))) {
          wake();
        }
      }
    });
  }
}

void RecognizerServer::stop() {
  if (!running_.exchange(false)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    if (notifier_thread_.joinable()) notifier_thread_.join();
    return;
  }
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (notifier_thread_.joinable()) notifier_thread_.join();
}

void RecognizerServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; backlog retried next loop
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Entry entry;
    entry.conn = std::make_unique<Connection>(fd, recognizer_,
                                              config_.max_write_buffer);
    epoll_event ev{};
    // Edge-triggered for clients: each readiness transition is serviced
    // exactly once by draining to EAGAIN; a connection paused for
    // backpressure simply declines to drain, and the kernel buffer
    // filling is what backpressures the peer.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // Entry destruction closes fd and any stream
    }
    connections_.emplace(fd, std::move(entry));
    live_connections_.store(connections_.size(), std::memory_order_relaxed);
    accepted_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RecognizerServer::service(int fd, std::uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second.conn;
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
    conn.on_readable();
  }
  if ((events & EPOLLOUT) != 0) conn.on_writable();
}

std::size_t RecognizerServer::run_once(std::chrono::milliseconds timeout) {
  // Parked operations and drive-mode serving both want another turn
  // promptly; otherwise sleep until socket or notifier activity.
  bool busy = false;
  for (const auto& [fd, entry] : connections_) {
    if (entry.conn->paused() || entry.conn->wants_write()) {
      busy = true;
      break;
    }
    if (config_.drive_recognizer && entry.conn->has_stream()) {
      busy = true;
      break;
    }
  }
  const int wait_ms = busy ? 0 : static_cast<int>(timeout.count());

  std::array<epoll_event, kMaxEpollEvents> events;
  int n = ::epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), wait_ms);
  if (n < 0) n = 0;  // EINTR: treat as timeout

  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
    if (fd == listen_fd_) {
      accept_ready();
    } else if (fd == wake_fd_) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(wake_fd_, &drained, sizeof(drained));
    } else {
      service(fd, mask);
    }
  }

  pump();
  return static_cast<std::size_t>(n);
}

void RecognizerServer::pump() {
  if (config_.drive_recognizer) recognizer_.drain();

  // Map freshly opened streams so the event fan-out below can route.
  for (auto& [fd, entry] : connections_) {
    if (!entry.mapped && entry.conn->has_stream()) {
      entry.mapped_handle = entry.conn->handle_id();
      by_handle_.emplace(entry.mapped_handle, entry.conn.get());
      entry.mapped = true;
    }
  }

  event_scratch_.clear();
  recognizer_.poll_events(event_scratch_);
  for (serve::RecognizerEvent& tagged : event_scratch_) {
    const auto it = by_handle_.find(tagged.stream.id);
    // Events of a stream whose connection died are dropped on the
    // floor — there is no client left to care.
    if (it != by_handle_.end()) it->second->deliver_event(tagged.event);
  }

  for (auto& [fd, entry] : connections_) {
    entry.conn->pump_pending();
    entry.conn->try_flush();
  }
  reap();
}

void RecognizerServer::reap() {
  reap_scratch_.clear();
  for (auto& [fd, entry] : connections_) {
    if (entry.conn->should_drop()) reap_scratch_.push_back(fd);
  }
  for (const int fd : reap_scratch_) {
    const auto it = connections_.find(fd);
    if (it->second.mapped) by_handle_.erase(it->second.mapped_handle);
    // Connection's destructor closes the socket, which also removes it
    // from the epoll interest list.
    connections_.erase(it);
  }
  if (!reap_scratch_.empty()) {
    live_connections_.store(connections_.size(), std::memory_order_relaxed);
  }
}

}  // namespace rtmobile::net
